// Reward-design ablation on a single client (Table 2's Alibaba-2017):
//   ρ sweep            response-time vs load-balance trade-off (Eq. 6)
//   Eq. 8 sign         literal paper reward vs the corrected form
//   energy extension   blending in the consolidation objective
#include "bench_common.hpp"
#include "rl/ppo.hpp"

using namespace pfrl;

namespace {

struct Variant {
  std::string name;
  env::RewardConfig reward;
};

sim::EpisodeMetrics train_and_eval(const Variant& variant, const bench::Options& opt) {
  const core::ClientPreset preset = core::table2_clients()[1];
  const core::FederationLayout layout = core::layout_for({&preset, 1}, opt.scale);
  env::SchedulingEnvConfig cfg = core::make_env_config(preset, layout, opt.scale);
  cfg.reward = variant.reward;

  auto [train, test] = workload::split_train_test(
      core::make_trace(preset, opt.scale, opt.seed), opt.scale.train_fraction);
  env::SchedulingEnv environment(cfg, std::move(train));
  rl::PpoConfig ppo;
  ppo.seed = opt.seed + 5;
  rl::PpoAgent agent(environment.state_dim(), environment.action_count(), ppo);
  for (std::size_t e = 0; e < opt.scale.episodes; ++e) (void)agent.train_episode(environment);

  environment.set_trace(std::move(test));
  std::vector<sim::EpisodeMetrics> runs;
  for (int r = 0; r < 3; ++r)
    runs.push_back(agent.evaluate_sampled(environment, /*masked=*/true).metrics);
  return sim::average_metrics(runs);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "ablation_reward");
  bench::print_banner("Ablation: reward design",
                      "ρ sweep, Eq. 8 sign, energy extension (not a paper figure)", opt);

  std::vector<Variant> variants;
  for (const double rho : {0.1, 0.5, 0.9}) {
    Variant v;
    v.name = "rho=" + util::TablePrinter::num(rho, 1);
    v.reward.rho = rho;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "strict Eq.8 (literal sign)";
    v.reward.strict_paper_reward = true;
    variants.push_back(v);
  }
  for (const double ew : {0.3, 0.6}) {
    Variant v;
    v.name = "energy weight " + util::TablePrinter::num(ew, 1);
    v.reward.energy_weight = ew;
    variants.push_back(v);
  }

  util::TablePrinter table({"variant", "avg response (s)", "utilization", "load balance",
                            "makespan (s)"});
  auto csv = bench::maybe_csv(opt, "ablation_reward",
                              {"variant", "response", "utilization", "load_balance"});
  for (const Variant& v : variants) {
    const sim::EpisodeMetrics m = train_and_eval(v, opt);
    table.row({v.name, util::TablePrinter::num(m.avg_response_time, 2),
               util::TablePrinter::num(m.avg_utilization, 3),
               util::TablePrinter::num(m.avg_load_balance, 3),
               util::TablePrinter::num(m.makespan, 2)});
    if (csv)
      csv->row({v.name, util::CsvWriter::field(m.avg_response_time),
                util::CsvWriter::field(m.avg_utilization),
                util::CsvWriter::field(m.avg_load_balance)});
    std::printf("%s done\n", v.name.c_str());
  }
  std::printf("\n");
  table.print();
  std::printf("\nExpected: higher ρ favors response time, lower ρ favors balance; the "
              "energy-weighted variants trade some balance for consolidation.\n");
  return 0;
}
