// Figure 7 (+ Table 2) — the motivating observation: schedulers trained
// on the *combined* heterogeneous workload beat schedulers trained on
// each provider's isolated workload, on both isolated and heterogeneous
// test sets.
#include "bench_common.hpp"
#include "rl/ppo.hpp"

using namespace pfrl;

namespace {

/// Samples dataset `d` calibrated & clamped to client `c`'s cluster.
workload::Trace dataset_on_cluster(const core::ClientPreset& client,
                                   workload::DatasetId dataset,
                                   const core::ExperimentScale& scale, std::uint64_t seed) {
  core::ClientPreset mixed = client;
  mixed.dataset = dataset;
  return core::make_trace(mixed, scale, seed);
}

double train_and_eval_response(const env::SchedulingEnvConfig& env_cfg,
                               const workload::Trace& train, const workload::Trace& test,
                               const bench::Options& opt, std::uint64_t seed) {
  env::SchedulingEnv environment(env_cfg, train);
  rl::PpoConfig ppo;
  ppo.seed = seed;
  rl::PpoAgent agent(environment.state_dim(), environment.action_count(), ppo);
  for (std::size_t e = 0; e < opt.scale.episodes; ++e) (void)agent.train_episode(environment);
  environment.set_trace(test);
  // Average a few stochastic rollouts — policy-distribution differences
  // between iso- and heter-trained schedulers are the point of Fig. 7.
  const std::size_t rollouts = 3;
  double response = 0.0;
  for (std::size_t r = 0; r < rollouts; ++r)
    response += agent.evaluate_sampled(environment).metrics.avg_response_time /
                static_cast<double>(rollouts);
  return response;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "fig07_iso_vs_heter");
  bench::print_banner("Fig. 7: isolated vs combined training",
                      "Paper: §3.1 — avg response time of iso-/heter-trained PPO", opt);

  const auto clients = core::table2_clients();
  const core::FederationLayout layout = core::layout_for(clients, opt.scale);

  util::TablePrinter table({"client", "dataset", "iso-train/iso-test",
                            "iso-train/heter-test", "heter-train/iso-test",
                            "heter-train/heter-test"});
  auto csv = bench::maybe_csv(opt, "fig07",
                              {"client", "train_set", "test_set", "avg_response"});

  // Each dataset contributes a quarter of the tasks AND a quarter of the
  // offered load, so the combined stream carries the same pressure as the
  // isolated one.
  core::ExperimentScale quarter = opt.scale;
  quarter.tasks_per_client = std::max<std::size_t>(8, opt.scale.tasks_per_client / clients.size());
  quarter.target_utilization = opt.scale.target_utilization / static_cast<double>(clients.size());

  for (std::size_t i = 0; i < clients.size(); ++i) {
    const env::SchedulingEnvConfig env_cfg = core::make_env_config(clients[i], layout, opt.scale);

    // Isolated: this client's own dataset.
    const workload::Trace iso_full =
        core::make_trace(clients[i], opt.scale, opt.seed + i * 101);
    auto [iso_train, iso_test] = workload::split_train_test(iso_full, opt.scale.train_fraction);

    // Heterogeneous: equal parts of all four datasets, on this cluster.
    std::vector<workload::Trace> parts;
    for (std::size_t j = 0; j < clients.size(); ++j)
      parts.push_back(dataset_on_cluster(clients[i], clients[j].dataset, quarter,
                                         opt.seed + i * 101 + j * 7 + 1));
    const workload::Trace heter_full = workload::combine(parts);
    auto [heter_train, heter_test] =
        workload::split_train_test(heter_full, opt.scale.train_fraction);

    const double ii = train_and_eval_response(env_cfg, iso_train, iso_test, opt, opt.seed + i);
    const double ih = train_and_eval_response(env_cfg, iso_train, heter_test, opt, opt.seed + i);
    const double hi = train_and_eval_response(env_cfg, heter_train, iso_test, opt, opt.seed + i);
    const double hh =
        train_and_eval_response(env_cfg, heter_train, heter_test, opt, opt.seed + i);

    table.row({"Client " + std::to_string(i + 1), workload::dataset_name(clients[i].dataset),
               util::TablePrinter::num(ii, 2), util::TablePrinter::num(ih, 2),
               util::TablePrinter::num(hi, 2), util::TablePrinter::num(hh, 2)});
    if (csv) {
      csv->row({std::to_string(i), "iso", "iso", util::CsvWriter::field(ii)});
      csv->row({std::to_string(i), "iso", "heter", util::CsvWriter::field(ih)});
      csv->row({std::to_string(i), "heter", "iso", util::CsvWriter::field(hi)});
      csv->row({std::to_string(i), "heter", "heter", util::CsvWriter::field(hh)});
    }
    std::printf("client %zu done\n", i + 1);
  }

  std::printf("\nAverage response time (s) per training/testing combination:\n");
  table.print();
  std::printf("\nPaper shape: the heter-train columns should sit below their iso-train "
              "counterparts on most clients.\n");
  return 0;
}
