// Figure 8 — traditional FRL (FedAvg) underperforms independent PPO in
// heterogeneous environments: mean-reward convergence curves of the two,
// on the Table 2 four-client setup.
#include "bench_common.hpp"

using namespace pfrl;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "fig08_fedavg_vs_ppo");
  bench::print_banner("Fig. 8: FedAvg vs independent PPO",
                      "Paper: §3.2 — FedAvg converges slower under heterogeneity", opt);

  const auto clients = bench::clients_or_default(opt, core::table2_clients());
  std::vector<bench::Series> curves;

  for (const fed::FedAlgorithm alg :
       {fed::FedAlgorithm::kFedAvg, fed::FedAlgorithm::kIndependent}) {
    core::FederationConfig cfg = bench::fed_config(opt, alg);
    cfg.participants_per_round = clients.size();  // classic FedAvg: everyone
    core::Federation federation(clients, cfg);
    const fed::TrainingHistory history = federation.train();
    curves.emplace_back(fed::algorithm_name(alg), history.mean_reward_curve());
    std::printf("%s trained (%zu rounds, %.1f KiB uplink)\n",
                fed::algorithm_name(alg).c_str(), history.rounds,
                static_cast<double>(history.uplink_bytes) / 1024.0);
  }

  std::printf("\nMean reward across the 4 clients (EMA-smoothed):\n");
  bench::print_series_table(curves);
  bench::dump_series_csv(opt, "fig08", curves);
  std::printf("\nPaper shape: the FedAvg curve should trail the PPO curve.\n");
  return 0;
}
