// Figure 21 — impact of the communication frequency Ω (local episodes
// between aggregation rounds) on PFRL-DM's convergence. The paper finds
// it matters, but not dramatically.
#include "bench_common.hpp"

using namespace pfrl;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "fig21_comm_frequency");
  bench::print_banner("Fig. 21: impact of communication frequency",
                      "Paper: §5.4 — convergence under different round lengths", opt);

  const auto clients = bench::clients_or_default(opt, core::table3_clients());
  const std::vector<std::size_t> frequencies =
      opt.full ? std::vector<std::size_t>{5, 10, 25, 50}
               : std::vector<std::size_t>{2, 5, 10, 20};

  std::vector<bench::Series> curves;
  util::TablePrinter summary({"comm every (episodes)", "rounds", "uplink KiB",
                              "final mean reward"});
  for (const std::size_t freq : frequencies) {
    core::FederationConfig cfg = bench::fed_config(opt, fed::FedAlgorithm::kPfrlDm);
    cfg.scale.comm_every = freq;
    core::Federation federation(clients, cfg);
    const fed::TrainingHistory history = federation.train();
    const std::vector<double> curve = history.mean_reward_curve();
    summary.row({std::to_string(freq), std::to_string(history.rounds),
                 util::TablePrinter::num(static_cast<double>(history.uplink_bytes) / 1024.0, 1),
                 util::TablePrinter::num(curve.empty() ? 0.0 : curve.back(), 2)});
    curves.emplace_back("every " + std::to_string(freq), curve);
    std::printf("comm_every=%zu trained\n", freq);
  }

  std::printf("\nMean reward across clients per communication frequency:\n");
  bench::print_series_table(curves);
  std::printf("\n");
  summary.print();
  bench::dump_series_csv(opt, "fig21", curves);
  std::printf("\nPaper shape: curves end close together — frequency matters, but the "
              "differences are generally not substantial.\n");
  return 0;
}
