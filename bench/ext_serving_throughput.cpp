// Extension: serving throughput of the policy-serving engine. Drives a
// PolicyServer with closed-loop simulated tenants (src/serve/load_gen)
// and reports decisions/sec plus enqueue→decision latency percentiles —
// the numbers the check_perf gate tracks. A tenant sweep shows how
// micro-batching trades latency for throughput as concurrency grows;
// the gated headline row is the fixed "standard" configuration so the
// regression comparison is apples-to-apples across PRs.
//
//   ext_serving_throughput [--shards N] [--tenants N] [--requests N]
//                          [--window N] [--max-batch N] [--seed S]
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/load_gen.hpp"
#include "serve/policy_server.hpp"

using namespace pfrl;

namespace {

serve::LoadGenReport run_config(serve::PolicyServer& server, std::size_t tenants,
                                std::size_t requests, std::size_t window, std::uint64_t seed) {
  // Percentiles must describe this configuration only.
  obs::metrics().reset_values();
  serve::LoadGenConfig cfg;
  cfg.tenants = tenants;
  cfg.requests_per_tenant = requests;
  cfg.window = window;
  cfg.seed = seed;
  return run_load(server, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  const util::Cli cli(argc, argv);
  bench::Session session(opt, "ext_serving_throughput");
  bench::print_banner("Extension: policy-serving throughput",
                      "batched, sharded scheduling decisions from a trained policy", opt);

  // Architecture-faithful agent (Table 3 client 0 under quick scale); an
  // untrained policy costs exactly as much to serve as a trained one.
  const std::vector<core::ClientPreset> presets = core::table3_clients();
  core::SingleClientBuild build =
      core::build_single_client(presets, bench::fed_config(opt, fed::FedAlgorithm::kPfrlDm), 0);

  serve::PolicyServerConfig server_cfg;
  server_cfg.shards = static_cast<std::size_t>(cli.get_int("shards", 2));
  server_cfg.max_batch = static_cast<std::size_t>(cli.get_int("max-batch", 64));
  serve::PolicyServer server(build.client->agent().actor(), server_cfg);
  server.start();

  const auto requests = static_cast<std::size_t>(cli.get_int("requests", 40000));
  const auto window = static_cast<std::size_t>(cli.get_int("window", 32));
  const auto standard_tenants = static_cast<std::size_t>(cli.get_int("tenants", 8));
  std::printf("server: %zu shards, state dim %zu, %d actions, max batch %zu\n\n",
              server.shard_count(), server.state_dim(), server.action_count(),
              server_cfg.max_batch);

  util::TablePrinter table({"tenants", "decisions/s", "p50 (us)", "p95 (us)", "p99 (us)",
                            "mean batch", "retries"});
  for (const std::size_t tenants : std::vector<std::size_t>{1, standard_tenants,
                                                            standard_tenants * 4}) {
    // Fixed total work per row, so wall time stays flat across the sweep.
    const std::size_t per_tenant = std::max<std::size_t>(1, requests / tenants);
    const serve::LoadGenReport r = run_config(server, tenants, per_tenant, window, opt.seed);
    table.row({std::to_string(tenants), util::TablePrinter::num(r.decisions_per_sec, 0),
               util::TablePrinter::num(r.p50_us, 2), util::TablePrinter::num(r.p95_us, 2),
               util::TablePrinter::num(r.p99_us, 2), util::TablePrinter::num(r.mean_batch, 2),
               std::to_string(r.retries)});
  }
  table.print();

  // Gated headline: the standard configuration, run three times — the
  // regression check compares best throughput and median percentiles, so
  // one unlucky scheduler hiccup does not flap the gate.
  std::vector<serve::LoadGenReport> runs;
  for (int i = 0; i < 3; ++i)
    runs.push_back(run_config(server, standard_tenants,
                              std::max<std::size_t>(1, requests / standard_tenants), window,
                              opt.seed + static_cast<std::uint64_t>(i)));
  const auto median_of = [&runs](double serve::LoadGenReport::* field) {
    std::vector<double> values;
    for (const serve::LoadGenReport& r : runs) values.push_back(r.*field);
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
  };
  double best_rate = 0.0;
  for (const serve::LoadGenReport& r : runs) best_rate = std::max(best_rate, r.decisions_per_sec);
  session.record().add("serving.decisions_per_sec", best_rate, "decisions/s");
  session.record().add("serving.latency_p50_us", median_of(&serve::LoadGenReport::p50_us), "us");
  session.record().add("serving.latency_p95_us", median_of(&serve::LoadGenReport::p95_us), "us");
  session.record().add("serving.latency_p99_us", median_of(&serve::LoadGenReport::p99_us), "us");
  session.record().add("serving.mean_batch", median_of(&serve::LoadGenReport::mean_batch),
                       "rows");
  std::printf("\ngated: best %.0f decisions/s, median p50/p95/p99 %.1f/%.1f/%.1f us\n",
              best_rate, median_of(&serve::LoadGenReport::p50_us),
              median_of(&serve::LoadGenReport::p95_us),
              median_of(&serve::LoadGenReport::p99_us));
  server.stop();
  // The registry still holds the last run's raw instruments; zero them so
  // the Session's auto-captured report doesn't add gate-relevant duplicates
  // of the serving.* metrics above (both sides of a comparison do this).
  obs::metrics().reset_values();
  return 0;
}
