// Table 1 — machine specifications of the source clusters — plus the
// synthetic workload-model parameters standing in for each dataset and
// the client environments of Tables 2 and 3.
#include "bench_common.hpp"
#include "workload/catalog.hpp"

int main(int argc, char** argv) {
  using namespace pfrl;
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "table1_machine_specs");
  bench::print_banner("Table 1: machine specifications",
                      "Paper: Table 1 (+ Tables 2-3 client settings)", opt);

  {
    util::TablePrinter table({"dataset", "#CPUs", "Mem (GiB)", "#Nodes", "platform"});
    for (const workload::Table1Row& row : workload::table1_machine_specs())
      table.row({row.dataset, row.cpus, row.memory_gib, std::to_string(row.nodes),
                 row.platform});
    table.print();
  }

  std::printf("\nSynthetic workload models standing in for the datasets:\n");
  {
    util::TablePrinter table(
        {"dataset", "vCPU request", "memory request (GB)", "duration (s)", "arrivals/h"});
    for (const workload::WorkloadModel& m : workload::dataset_catalog())
      table.row({m.name, m.vcpu_request.describe(), m.memory_request.describe(),
                 m.duration.describe(), util::TablePrinter::num(m.arrivals_per_hour, 0)});
    table.print();
  }

  const auto print_clients = [](const char* title,
                                const std::vector<core::ClientPreset>& clients) {
    std::printf("\n%s\n", title);
    util::TablePrinter table({"client", "machine specs (CPU,Mem,Count)", "dataset"});
    for (std::size_t i = 0; i < clients.size(); ++i) {
      std::string specs;
      for (const sim::MachineSpec& s : clients[i].specs)
        specs += "(" + std::to_string(s.vcpus) + "," +
                 std::to_string(static_cast<int>(s.memory_gb)) + "," +
                 std::to_string(s.count) + ") ";
      table.row({"Client " + std::to_string(i + 1), specs,
                 workload::dataset_name(clients[i].dataset)});
    }
    table.print();
  };
  print_clients("Table 2: observation-experiment clients:", core::table2_clients());
  print_clients("Table 3: evaluation clients:", core::table3_clients());
  return 0;
}
