// Extension: PFRL-DM against the regularization-based FRL baselines the
// paper cites but does not run — FedProx (proximal term) and FedKL
// (KL-penalty, Xie & Song) — on the Table 2 heterogeneous setup.
#include "bench_common.hpp"

using namespace pfrl;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "ext_baselines_convergence");
  bench::print_banner("Extension: regularized FRL baselines",
                      "PFRL-DM vs FedProx vs FedKL vs FedAvg (beyond the paper's set)", opt);

  const auto clients = bench::clients_or_default(opt, core::table2_clients());
  std::vector<bench::Series> curves;
  util::TablePrinter table({"algorithm", "final mean reward", "uplink KiB"});

  for (const fed::FedAlgorithm alg :
       {fed::FedAlgorithm::kPfrlDm, fed::FedAlgorithm::kFedProx, fed::FedAlgorithm::kFedKl,
        fed::FedAlgorithm::kFedAvg}) {
    core::Federation federation(clients, bench::fed_config(opt, alg));
    const fed::TrainingHistory history = federation.train();
    const auto curve = history.mean_reward_curve();
    curves.emplace_back(fed::algorithm_name(alg), curve);
    table.row({fed::algorithm_name(alg),
               util::TablePrinter::num(curve.empty() ? 0.0 : curve.back(), 2),
               util::TablePrinter::num(static_cast<double>(history.uplink_bytes) / 1024.0, 1)});
    std::printf("%s trained\n", fed::algorithm_name(alg).c_str());
  }

  std::printf("\nMean reward across clients (EMA-smoothed):\n");
  bench::print_series_table(curves);
  std::printf("\n");
  table.print();
  bench::dump_series_csv(opt, "ext_baselines", curves);
  std::printf("\nExpected: the regularizers soften FedAvg's heterogeneity problem but lack "
              "personalization; PFRL-DM stays ahead while shipping fewer bytes.\n");
  return 0;
}
