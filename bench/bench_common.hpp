// Shared plumbing for the experiment harnesses: option parsing (scaled
// defaults, --full for paper scale), convergence-curve tables, optional
// CSV dumps for external re-plotting.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/federation.hpp"
#include "obs/obs.hpp"
#include "stats/summary.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace pfrl::bench {

struct Options {
  core::ExperimentScale scale = core::ExperimentScale::quick();
  std::uint64_t seed = 42;
  std::string csv_dir;     // empty -> no CSV output
  bool full = false;       // --full: paper-scale parameters
  std::size_t clients = 0; // 0 -> experiment default
  std::size_t threads = 0; // 0 -> hardware concurrency

  // Observability (obs/): every harness emits a BENCH_<name>.json perf
  // record unless --no-perf; --metrics-out/--trace-out add the CSV
  // snapshot and the JSONL span stream.
  std::string perf_out;     // empty -> BENCH_<name>.json in the cwd
  std::string metrics_out;  // empty -> no metrics CSV
  std::string trace_out;    // empty -> no span stream
  std::string log_level = "info";
  bool no_perf = false;
  bool report = false;  // --report: end-of-run obs table on stderr

  static Options parse(int argc, const char* const* argv) {
    const util::Cli cli(argc, argv);
    Options opt;
    opt.full = cli.get_bool("full", false);
    opt.scale = opt.full ? core::ExperimentScale::paper() : core::ExperimentScale::quick();
    opt.scale.episodes = static_cast<std::size_t>(
        cli.get_int("episodes", static_cast<std::int64_t>(opt.scale.episodes)));
    opt.scale.tasks_per_client = static_cast<std::size_t>(
        cli.get_int("tasks", static_cast<std::int64_t>(opt.scale.tasks_per_client)));
    opt.scale.comm_every = static_cast<std::size_t>(
        cli.get_int("comm-every", static_cast<std::int64_t>(opt.scale.comm_every)));
    opt.scale.cpu_scale =
        static_cast<int>(cli.get_int("cpu-scale", opt.scale.cpu_scale));
    opt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    opt.csv_dir = cli.get("csv", "");
    opt.clients = static_cast<std::size_t>(cli.get_int("clients", 0));
    opt.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
    opt.perf_out = cli.get("perf-out", "");
    opt.metrics_out = cli.get("metrics-out", "");
    opt.trace_out = cli.get("trace-out", "");
    opt.log_level = cli.get("log-level", "info");
    opt.no_perf = cli.get_bool("no-perf", false);
    opt.report = cli.get_bool("report", false);
    return opt;
  }
};

/// Arms observability for a harness run and, on destruction, writes the
/// perf record (BENCH_<name>.json), the optional metrics CSV, and the
/// optional stderr report. Create one right after Options::parse:
///
///   bench::Session session(opt, "fig15_convergence");
///   session.record().add("final_reward", r, "reward");  // optional extras
class Session {
 public:
  Session(const Options& options, std::string name)
      : options_(options), record_(std::move(name)) {
    util::set_log_level(util::parse_log_level(options_.log_level));
    obs::set_enabled(true);
    if (!options_.trace_out.empty()) obs::tracer().set_stream_path(options_.trace_out);
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Harnesses may add headline numbers (final reward, p-values, ...) so
  /// the perf record carries results, not just instrumentation.
  obs::PerfRecord& record() { return record_; }

  ~Session() {
    const obs::Report report = obs::capture_report();
    record_.add("wall_time_s", clock_.seconds(), "s");
    record_.add_report(report);
    try {
      if (!options_.no_perf) record_.write(options_.perf_out);
      if (!options_.metrics_out.empty()) obs::write_report_csv(report, options_.metrics_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench: observability output failed: %s\n", e.what());
    }
    if (options_.report) obs::print_report(report);
    obs::tracer().set_stream_path("");
  }

 private:
  Options options_;
  obs::PerfRecord record_;
  util::Stopwatch clock_;
};

inline void print_banner(const char* experiment, const char* paper_ref, const Options& opt) {
  std::printf("=== %s ===\n%s\n", experiment, paper_ref);
  std::printf("scale: %zu episodes, %zu tasks/client, comm every %zu, cpu/%d%s\n\n",
              opt.scale.episodes, opt.scale.tasks_per_client, opt.scale.comm_every,
              opt.scale.cpu_scale, opt.full ? " [paper scale]" : "");
}

using Series = std::pair<std::string, std::vector<double>>;

/// Prints several convergence curves side by side, sampled at ~`points`
/// episodes, EMA-smoothed like the paper's reward plots.
inline void print_series_table(const std::vector<Series>& series, std::size_t points = 12,
                               double ema_alpha = 0.25) {
  if (series.empty()) return;
  std::size_t len = 0;
  for (const Series& s : series) len = std::max(len, s.second.size());
  if (len == 0) return;

  std::vector<std::vector<double>> smoothed;
  smoothed.reserve(series.size());
  std::vector<std::string> header{"episode"};
  for (const Series& s : series) {
    smoothed.push_back(stats::ema_smooth(s.second, ema_alpha));
    header.push_back(s.first);
  }
  util::TablePrinter table(std::move(header));
  const std::size_t stride = std::max<std::size_t>(1, len / points);
  for (std::size_t e = 0; e < len; e += stride) {
    std::vector<std::string> row{std::to_string(e)};
    for (const auto& s : smoothed)
      row.push_back(e < s.size() ? util::TablePrinter::num(s[e], 2) : "-");
    table.row(std::move(row));
  }
  std::vector<std::string> final_row{"final"};
  for (const auto& s : smoothed)
    final_row.push_back(s.empty() ? "-" : util::TablePrinter::num(s.back(), 2));
  table.row(std::move(final_row));
  table.print();
}

/// Opens `<csv_dir>/<name>.csv` when --csv was given (else null).
inline std::unique_ptr<util::CsvWriter> maybe_csv(const Options& opt, const std::string& name,
                                                  std::vector<std::string> header) {
  if (opt.csv_dir.empty()) return nullptr;
  return std::make_unique<util::CsvWriter>(opt.csv_dir + "/" + name + ".csv",
                                           std::move(header));
}

/// Writes curves as long-format CSV (series,episode,value).
inline void dump_series_csv(const Options& opt, const std::string& name,
                            const std::vector<Series>& series) {
  auto csv = maybe_csv(opt, name, {"series", "episode", "value"});
  if (!csv) return;
  for (const Series& s : series)
    for (std::size_t e = 0; e < s.second.size(); ++e)
      csv->row({s.first, std::to_string(e), util::CsvWriter::field(s.second[e])});
}

/// Builds a FederationConfig for an algorithm under these options.
inline core::FederationConfig fed_config(const Options& opt, fed::FedAlgorithm algorithm) {
  core::FederationConfig cfg;
  cfg.algorithm = algorithm;
  cfg.scale = opt.scale;
  cfg.seed = opt.seed;
  cfg.threads = opt.threads;
  return cfg;
}

inline std::vector<core::ClientPreset> clients_or_default(
    const Options& opt, std::vector<core::ClientPreset> defaults) {
  if (opt.clients > 0 && opt.clients < defaults.size()) defaults.resize(opt.clients);
  return defaults;
}

}  // namespace pfrl::bench
