// Figure 9 — the mechanism behind Fig. 8: loading the FedAvg-aggregated
// critic *increases* the local agents' critic loss (evaluated on their
// own trajectories), i.e. the averaged model evaluates actions worse
// than the local critics it replaces.
#include "bench_common.hpp"

using namespace pfrl;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "fig09_critic_loss_aggregation");
  bench::print_banner("Fig. 9: critic loss before/after aggregation",
                      "Paper: §3.2 — averaged critics lose local evaluation accuracy", opt);

  const auto clients = bench::clients_or_default(opt, core::table2_clients());
  core::FederationConfig cfg = bench::fed_config(opt, fed::FedAlgorithm::kFedAvg);
  cfg.participants_per_round = clients.size();
  // §3.2 runs FedAvg with 15 local episodes per round; longer rounds give
  // the local critics room to re-specialize, which is what the averaged
  // model then destroys.
  cfg.scale.comm_every = std::max<std::size_t>(cfg.scale.comm_every, 15);
  core::Federation federation(clients, cfg);
  const fed::TrainingHistory history = federation.train();

  util::TablePrinter table({"round", "avg critic loss before", "avg critic loss after",
                            "degradation (after/before)"});
  auto csv = bench::maybe_csv(opt, "fig09", {"round", "before", "after"});
  std::size_t worse_rounds = 0;
  for (std::size_t r = 0; r < history.rounds; ++r) {
    double before = 0.0;
    double after = 0.0;
    for (const fed::ClientHistory& c : history.clients) {
      before += c.critic_loss_before[r] / static_cast<double>(history.clients.size());
      after += c.critic_loss_after[r] / static_cast<double>(history.clients.size());
    }
    if (after > before) ++worse_rounds;
    table.row({std::to_string(r), util::TablePrinter::num(before, 4),
               util::TablePrinter::num(after, 4),
               util::TablePrinter::num(before > 0 ? after / before : 0.0, 2)});
    if (csv)
      csv->row({std::to_string(r), util::CsvWriter::field(before),
                util::CsvWriter::field(after)});
  }
  table.print();
  std::printf("\nRounds where aggregation degraded the critic: %zu / %zu\n", worse_rounds,
              history.rounds);
  std::printf("Paper shape: 'after' consistently above 'before'.\n");
  return 0;
}
