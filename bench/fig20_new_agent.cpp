// Figure 20 — a new agent joins the federation mid-training. PFRL-DM
// initializes it from the server's global model; the baseline trains a
// fresh PPO in the identical environment. The warm-started agent earns
// higher rewards immediately and converges faster.
#include "bench_common.hpp"

using namespace pfrl;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "fig20_new_agent");
  bench::print_banner("Fig. 20: new agent joining the federation",
                      "Paper: §5.3 — aggregation-based init beats random init", opt);

  const auto presets = bench::clients_or_default(opt, core::table3_clients());
  const std::size_t join_at = opt.full ? 100 : opt.scale.episodes / 2;

  core::Federation federation(presets, bench::fed_config(opt, fed::FedAlgorithm::kPfrlDm));
  std::printf("Pre-training %zu clients for %zu episodes...\n", presets.size(), join_at);
  while (federation.trainer().episodes_done() < join_at) federation.trainer().step_round();

  // The joiner replicates client 1's environment, as in the paper.
  const std::size_t joiner = federation.add_client(presets[0]);
  std::printf("New agent joined (initialized from the server's global critic).\n");
  while (federation.trainer().episodes_done() < join_at + opt.scale.episodes)
    federation.trainer().step_round();
  const auto history = federation.trainer().snapshot_history();
  const std::vector<double>& warm = history.clients[joiner].episode_rewards;

  // Baseline: fresh PPO, identical environment, random init.
  core::FederationConfig cold_cfg = bench::fed_config(opt, fed::FedAlgorithm::kIndependent);
  cold_cfg.scale.episodes = warm.size();
  core::Federation cold({presets[0]}, cold_cfg);
  const fed::TrainingHistory cold_history = cold.train();
  const std::vector<double>& cold_rewards = cold_history.clients[0].episode_rewards;
  std::printf("Cold-start PPO baseline trained.\n");

  std::vector<bench::Series> curves;
  curves.emplace_back("PFRL-DM (warm join)", warm);
  curves.emplace_back("PPO (random init)", cold_rewards);
  std::printf("\nReward from the joining step (episode 0 = join):\n");
  bench::print_series_table(curves);
  bench::dump_series_csv(opt, "fig20", curves);

  const std::size_t first = std::min<std::size_t>(5, warm.size());
  double warm_first = 0.0;
  double cold_first = 0.0;
  for (std::size_t e = 0; e < first; ++e) {
    warm_first += warm[e] / static_cast<double>(first);
    cold_first += cold_rewards[e] / static_cast<double>(first);
  }
  std::printf("\nFirst-%zu-episode mean reward: warm %.2f vs cold %.2f\n", first, warm_first,
              cold_first);
  std::printf("Paper shape: the warm curve starts clearly above the cold one.\n");
  return 0;
}
