// Figures 11-13 — weight heat-maps from three similarity mechanisms over
// four clients C1, C1', C2, C3 (C1' trains in C1's environment):
//   Fig. 11  multi-head attention  -> C1 and C1' attend to each other
//   Fig. 12  KL-divergence weights -> fails to isolate the pair
//   Fig. 13  cosine-similarity weights -> fails to isolate the pair
#include "bench_common.hpp"
#include "nn/attention.hpp"
#include "nn/similarity.hpp"
#include "rl/dual_critic_ppo.hpp"

using namespace pfrl;

namespace {

void print_heatmap(const char* title, const nn::Matrix& w,
                   const std::vector<std::string>& names) {
  std::printf("\n%s\n", title);
  std::vector<std::string> header{""};
  for (const auto& n : names) header.push_back(n);
  util::TablePrinter table(std::move(header));
  for (std::size_t i = 0; i < w.rows(); ++i) {
    std::vector<std::string> row{names[i]};
    for (std::size_t j = 0; j < w.cols(); ++j)
      row.push_back(util::TablePrinter::num(w(i, j), 3));
    table.row(std::move(row));
  }
  table.print();
}

/// Twin-focus score: mean of W(0,1) and W(1,0) minus the mean weight the
/// pair assigns to the unrelated clients. Positive = pair detected.
double twin_focus(const nn::Matrix& w) {
  const double pair = (w(0, 1) + w(1, 0)) / 2.0;
  const double strangers = (w(0, 2) + w(0, 3) + w(1, 2) + w(1, 3)) / 4.0;
  return pair - strangers;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "fig11_13_weight_heatmaps");
  bench::print_banner("Figs. 11-13: similarity-weight heat-maps",
                      "Paper: §3.3 — attention finds the similar pair; KL/cosine do not", opt);

  const auto base = core::table2_clients();
  // C1, C1' share an environment (preset + trace seed); C2, C3 differ.
  const std::vector<core::ClientPreset> presets{base[0], base[0], base[1], base[2]};
  const std::vector<std::uint64_t> trace_seeds{opt.seed + 1, opt.seed + 1, opt.seed + 2,
                                               opt.seed + 3};
  const std::vector<std::string> names{"C1", "C1'", "C2", "C3"};
  const core::FederationLayout layout = core::layout_for(presets, opt.scale);

  // Train one dual-critic PPO per client from a shared initialization
  // (standard FL practice; also what makes parameter-space similarity
  // measurable at all), then compare the critics.
  std::vector<std::vector<float>> critics;
  std::vector<float> shared_init;
  for (std::size_t i = 0; i < presets.size(); ++i) {
    auto [train, test] = workload::split_train_test(
        core::make_trace(presets[i], opt.scale, trace_seeds[i]), opt.scale.train_fraction);
    (void)test;
    env::SchedulingEnv environment(core::make_env_config(presets[i], layout, opt.scale),
                                   std::move(train));
    rl::PpoConfig ppo;
    ppo.seed = opt.seed + 100 + i;  // different exploration per client
    rl::DualCriticPpoAgent agent(environment.state_dim(), environment.action_count(), ppo);
    if (i == 0) {
      shared_init = agent.public_critic().flatten();
    } else {
      agent.load_public_critic(shared_init);
    }
    for (std::size_t e = 0; e < opt.scale.episodes; ++e) (void)agent.train_episode(environment);
    critics.push_back(agent.public_critic().flatten());
    std::printf("client %s trained\n", names[i].c_str());
  }

  nn::Matrix models(critics.size(), critics[0].size());
  for (std::size_t i = 0; i < critics.size(); ++i)
    std::copy(critics[i].begin(), critics[i].end(), models.row(i).begin());

  const nn::MultiHeadAttention attention(models.cols(), {});
  const nn::Matrix w_attention = attention.weights(models);
  const nn::Matrix w_kl = nn::weights_from_divergence(nn::kl_divergence_matrix(models));
  const nn::Matrix w_cos = nn::weights_from_similarity(nn::cosine_similarity_matrix(models));

  print_heatmap("Fig. 11: multi-head attention weights", w_attention, names);
  print_heatmap("Fig. 12: KL-divergence weights", w_kl, names);
  print_heatmap("Fig. 13: cosine-similarity weights", w_cos, names);

  std::printf("\nTwin-focus score (C1<->C1' weight minus weight on strangers):\n");
  util::TablePrinter table({"mechanism", "twin focus"});
  table.row({"attention (Fig. 11)", util::TablePrinter::num(twin_focus(w_attention), 4)});
  table.row({"KL divergence (Fig. 12)", util::TablePrinter::num(twin_focus(w_kl), 4)});
  table.row({"cosine (Fig. 13)", util::TablePrinter::num(twin_focus(w_cos), 4)});
  table.print();
  std::printf("\nPaper shape: only the attention mechanism shows a clearly positive score.\n");

  if (auto csv = bench::maybe_csv(opt, "fig11_13", {"mechanism", "i", "j", "weight"})) {
    const auto dump = [&](const char* name, const nn::Matrix& w) {
      for (std::size_t i = 0; i < w.rows(); ++i)
        for (std::size_t j = 0; j < w.cols(); ++j)
          csv->row({name, std::to_string(i), std::to_string(j),
                    util::CsvWriter::field(static_cast<double>(w(i, j)))});
    };
    dump("attention", w_attention);
    dump("kl", w_kl);
    dump("cosine", w_cos);
  }
  return 0;
}
