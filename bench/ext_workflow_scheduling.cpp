// Extension: the paper's future work — scheduling workflow (DAG)
// workloads with dependencies. Trains PPO per client on DAG batches from
// its dataset and compares job-level response against the heuristics.
#include <algorithm>

#include "bench_common.hpp"
#include "env/heuristic_policies.hpp"
#include "env/workflow_env.hpp"
#include "rl/ppo.hpp"

using namespace pfrl;

namespace {

workload::WorkflowBatch make_batch(const core::ClientPreset& preset,
                                   const env::SchedulingEnvConfig& env_cfg,
                                   const core::ExperimentScale& scale, std::size_t jobs,
                                   std::uint64_t seed) {
  const workload::WorkloadModel model = workload::calibrate_arrivals(
      workload::dataset_model(preset.dataset),
      sim::total_vcpus(env_cfg.cluster.specs) * scale.cpu_scale, 0.3);
  util::Rng rng(seed);
  workload::DagShape shape;
  shape.min_tasks = 3;
  shape.max_tasks = 8;
  workload::WorkflowBatch batch = workload::sample_workflows(model, jobs, shape, rng);
  int max_vcpus = 1;
  double max_mem = 1.0;
  for (const sim::MachineSpec& s : env_cfg.cluster.specs) {
    max_vcpus = std::max(max_vcpus, s.vcpus);
    max_mem = std::max(max_mem, s.memory_gb);
  }
  for (workload::Workflow& wf : batch)
    for (workload::WorkflowTask& wt : wf.tasks) {
      wt.task.vcpus =
          std::clamp((wt.task.vcpus + scale.cpu_scale - 1) / scale.cpu_scale, 1, max_vcpus);
      wt.task.memory_gb = std::min(wt.task.memory_gb, max_mem);
    }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "ext_workflow_scheduling");
  bench::print_banner("Extension: workflow (DAG) scheduling",
                      "The paper's stated future work, per Table 2 client", opt);
  const std::size_t jobs = opt.full ? 60 : 15;

  util::TablePrinter table({"client", "dataset", "PPO job resp (s)", "first-fit",
                            "best-fit", "random"});
  auto csv = bench::maybe_csv(opt, "ext_workflow",
                              {"client", "scheduler", "job_response"});

  const auto clients = bench::clients_or_default(opt, core::table2_clients());
  const core::FederationLayout layout = core::layout_for(clients, opt.scale);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const env::SchedulingEnvConfig env_cfg = core::make_env_config(clients[i], layout, opt.scale);
    const workload::WorkflowBatch train_jobs =
        make_batch(clients[i], env_cfg, opt.scale, jobs, opt.seed + i * 13);
    const workload::WorkflowBatch test_jobs =
        make_batch(clients[i], env_cfg, opt.scale, jobs, opt.seed + i * 13 + 7);

    env::WorkflowEnv environment(env_cfg, train_jobs);
    rl::PpoConfig ppo;
    ppo.seed = opt.seed + i;
    rl::PpoAgent agent(environment.state_dim(), environment.action_count(), ppo);
    for (std::size_t e = 0; e < opt.scale.episodes; ++e) (void)agent.train_episode(environment);

    env::WorkflowEnv test_env(env_cfg, test_jobs);
    (void)agent.evaluate(test_env);
    const double ppo_resp = test_env.avg_job_response();

    std::vector<std::string> row{"Client " + std::to_string(i + 1),
                                 workload::dataset_name(clients[i].dataset),
                                 util::TablePrinter::num(ppo_resp, 2)};
    if (csv)
      csv->row({std::to_string(i), "ppo", util::CsvWriter::field(ppo_resp)});
    for (const env::HeuristicPolicy policy :
         {env::HeuristicPolicy::kFirstFit, env::HeuristicPolicy::kBestFit,
          env::HeuristicPolicy::kRandom}) {
      env::HeuristicScheduler sched(policy, opt.seed);
      (void)sched.run_episode(test_env);
      row.push_back(util::TablePrinter::num(test_env.avg_job_response(), 2));
      if (csv)
        csv->row({std::to_string(i), heuristic_name(policy),
                  util::CsvWriter::field(test_env.avg_job_response())});
    }
    table.row(std::move(row));
    std::printf("client %zu done\n", i + 1);
  }

  std::printf("\nHeld-out workflow job response times:\n");
  table.print();
  std::printf("\nExpected: PPO at or below the heuristics on most clients — placement "
              "quality now also controls how quickly DAG frontiers unlock.\n");
  return 0;
}
