// Microbenchmarks of the perf-critical primitives: environment stepping,
// NN forward/backward, PPO updates, aggregation, and the wire format.
//
// Unlike the fig/table harnesses this keeps google-benchmark's CLI, but
// the main() below additionally captures every run and writes it through
// the obs perf-record writer to BENCH_micro_primitives.json (override
// with --perf-out FILE, disable with --no-perf) — the perf-trajectory
// seed every later optimization PR is compared against.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "core/presets.hpp"
#include "fed/attention_aggregator.hpp"
#include "fed/fedavg.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "obs/perf_record.hpp"
#include "rl/ppo.hpp"
#include "stats/wilcoxon.hpp"
#include "util/cli.hpp"
#include "util/serialization.hpp"

namespace {

using namespace pfrl;

env::SchedulingEnvConfig bench_env_config() {
  const auto presets = core::table2_clients();
  const core::ExperimentScale scale = core::ExperimentScale::quick();
  return core::make_env_config(presets[0], core::layout_for(presets, scale), scale);
}

workload::Trace bench_trace(std::size_t tasks) {
  core::ExperimentScale scale = core::ExperimentScale::quick();
  scale.tasks_per_client = tasks;
  return core::make_trace(core::table2_clients()[0], scale, 17);
}

void BM_EnvStepRandomPolicy(benchmark::State& state) {
  env::SchedulingEnv environment(bench_env_config(), bench_trace(200));
  util::Rng rng(1);
  for (auto _ : state) {
    const int action = static_cast<int>(rng.uniform_int(0, environment.action_count() - 1));
    const env::StepResult r = environment.step(action);
    if (r.done) environment.reset();
    benchmark::DoNotOptimize(r.reward);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EnvStepRandomPolicy);

void BM_EnvObserve(benchmark::State& state) {
  env::SchedulingEnv environment(bench_env_config(), bench_trace(200));
  std::vector<float> buffer(environment.state_dim());
  for (auto _ : state) {
    environment.observe(buffer);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buffer.size() * sizeof(float)));
}
BENCHMARK(BM_EnvObserve);

void BM_MlpForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  nn::Mlp net(100, {64}, 9, rng);
  nn::Matrix x(batch, 100);
  for (float& v : x.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto _ : state) {
    const nn::Matrix& y = net.forward_batch(x);
    benchmark::DoNotOptimize(y.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(64)->Arg(512);

// The vectorized-rollout inference shape: E sweep lanes packed into one
// (E × state_dim) batch through the paper-scale actor (state 190, 6
// actions). This is the GEMM that replaces E fused GEMVs per sweep step.
void BM_MlpForwardBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  nn::Mlp net(190, {64}, 6, rng);
  nn::Matrix x(batch, 190);
  for (float& v : x.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto _ : state) {
    const nn::Matrix& y = net.forward_batch(x);
    benchmark::DoNotOptimize(y.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MlpForwardBatch)->Arg(4)->Arg(16)->Arg(64);

// The policy-step inference shape (actor of §3.1): fused GEMV chain
// through preallocated scratch, zero heap allocations per call.
void BM_MlpForwardRow(benchmark::State& state) {
  util::Rng rng(2);
  nn::Mlp net(100, {64}, 9, rng);
  std::vector<float> x(100);
  for (float& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> y(9);
  for (auto _ : state) {
    net.forward_row(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MlpForwardRow);

// Full policy step: actor logits + critic value + categorical sample.
void BM_ActStochastic(benchmark::State& state) {
  rl::PpoConfig cfg;
  cfg.seed = 11;
  rl::PpoAgent agent(100, 9, cfg);
  util::Rng rng(12);
  std::vector<float> s(100);
  for (float& v : s) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto _ : state) {
    float log_prob = 0.0F;
    float value = 0.0F;
    const int action = agent.act_stochastic(s, log_prob, value);
    benchmark::DoNotOptimize(action);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ActStochastic);

void BM_MlpForwardBackward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  nn::Mlp net(100, {64}, 9, rng);
  nn::Matrix x(batch, 100);
  for (float& v : x.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  nn::Matrix g(batch, 9, 0.01F);
  for (auto _ : state) {
    net.zero_grad();
    const nn::Matrix& y = net.forward_batch(x);
    benchmark::DoNotOptimize(y.flat().data());
    const nn::Matrix& gi = net.backward_batch(g);
    benchmark::DoNotOptimize(gi.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MlpForwardBackward)->Arg(64)->Arg(512);

void BM_AdamStep(benchmark::State& state) {
  util::Rng rng(4);
  nn::Mlp net(100, {64}, 9, rng);
  nn::Adam opt(net.params(), nn::AdamConfig{});
  for (nn::Param* p : net.params())
    for (float& gval : p->grad.flat()) gval = static_cast<float>(rng.uniform(-0.1, 0.1));
  for (auto _ : state) opt.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.param_count()));
}
BENCHMARK(BM_AdamStep);

void BM_PpoTrainEpisode(benchmark::State& state) {
  env::SchedulingEnv environment(bench_env_config(), bench_trace(60));
  rl::PpoConfig cfg;
  cfg.seed = 5;
  rl::PpoAgent agent(environment.state_dim(), environment.action_count(), cfg);
  for (auto _ : state) {
    const rl::EpisodeStats s = agent.train_episode(environment);
    benchmark::DoNotOptimize(s.total_reward);
  }
}
BENCHMARK(BM_PpoTrainEpisode)->Unit(benchmark::kMillisecond);

void BM_AttentionAggregate(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  const std::size_t p = 64 * 100 + 64 + 64 + 1;  // critic-sized vectors
  fed::AggregationInput input;
  input.models = nn::Matrix(clients, p);
  for (float& v : input.models.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (std::size_t i = 0; i < clients; ++i) input.client_ids.push_back(static_cast<int>(i));
  fed::AttentionAggregator agg;
  for (auto _ : state) {
    fed::AggregationOutput out = agg.aggregate(input);
    benchmark::DoNotOptimize(out.global_model.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(clients));
}
BENCHMARK(BM_AttentionAggregate)->Arg(4)->Arg(10)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_FedAvgAggregate(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  const std::size_t p = 64 * 100 + 64 + 64 + 1;
  fed::AggregationInput input;
  input.models = nn::Matrix(clients, p);
  for (float& v : input.models.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (std::size_t i = 0; i < clients; ++i) input.client_ids.push_back(static_cast<int>(i));
  fed::FedAvgAggregator agg;
  for (auto _ : state) {
    fed::AggregationOutput out = agg.aggregate(input);
    benchmark::DoNotOptimize(out.global_model.data());
  }
}
BENCHMARK(BM_FedAvgAggregate)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_ModelSerializeRoundTrip(benchmark::State& state) {
  util::Rng rng(8);
  nn::Mlp net(100, {64}, 1, rng);
  for (auto _ : state) {
    util::ByteWriter w;
    net.serialize(w);
    util::ByteReader r(w.bytes());
    net.deserialize(r);
    benchmark::DoNotOptimize(w.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.param_count() * sizeof(float)));
}
BENCHMARK(BM_ModelSerializeRoundTrip);

void BM_WilcoxonExact(benchmark::State& state) {
  util::Rng rng(9);
  std::vector<double> a(20);
  std::vector<double> b(20);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.normal(0, 1);
    b[i] = a[i] + rng.normal(0.5, 0.5);
  }
  for (auto _ : state) {
    const stats::WilcoxonResult r = stats::wilcoxon_signed_rank(a, b);
    benchmark::DoNotOptimize(r.p_value);
  }
}
BENCHMARK(BM_WilcoxonExact);

void BM_TraceSampling(benchmark::State& state) {
  const workload::WorkloadModel& model = workload::dataset_model(workload::DatasetId::kGoogle);
  util::Rng rng(10);
  for (auto _ : state) {
    workload::Trace t = workload::sample_trace(model, 3500, rng);
    benchmark::DoNotOptimize(t.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3500);
}
BENCHMARK(BM_TraceSampling)->Unit(benchmark::kMillisecond);

/// Console output as usual, plus a copy of every iteration run for the
/// perf record.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs)
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) captured_.push_back(run);
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Run>& captured() const { return captured_; }

 private:
  std::vector<Run> captured_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // consumes --benchmark_* flags
  const util::Cli cli(argc, argv);     // what's left: --perf-out / --no-perf

  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (cli.get_bool("no-perf", false)) return 0;
  obs::PerfRecord record("micro_primitives");
  for (const auto& run : reporter.captured()) {
    const double iterations = std::max<double>(1.0, static_cast<double>(run.iterations));
    obs::PerfMetric m;
    m.name = run.benchmark_name();
    m.value = run.cpu_accumulated_time / iterations * 1e9;
    m.unit = "ns";
    m.extra.emplace_back("real_ns", run.real_accumulated_time / iterations * 1e9);
    m.extra.emplace_back("iterations", static_cast<double>(run.iterations));
    for (const auto& [name, counter] : run.counters)
      m.extra.emplace_back(name, static_cast<double>(counter.value));
    record.add(std::move(m));
  }
  try {
    record.write(cli.get("perf-out", ""));
    std::printf("perf record: %zu metrics -> %s\n", record.metric_count(),
                cli.get("perf-out", record.default_path()).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_primitives: perf record write failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
