// Ablation of PFRL-DM's two mechanisms on the Table 2 setup:
//   full            dual-critic clients + attention aggregator (the paper)
//   no-attention    dual-critic clients + plain FedAvg on the public critic
//   no-dual-critic  plain FedAvg clients + attention-personalized models
//   fedavg          neither mechanism (plain FedAvg)
// plus attention-internals sweeps (heads, tied Q/K, model centering).
#include "bench_common.hpp"
#include "fed/trainer.hpp"

using namespace pfrl;

namespace {

std::vector<std::unique_ptr<fed::FedClient>> build_clients(
    const std::vector<core::ClientPreset>& presets, fed::FedAlgorithm algorithm,
    const bench::Options& opt, const core::FederationLayout& layout) {
  std::vector<std::unique_ptr<fed::FedClient>> clients;
  for (std::size_t i = 0; i < presets.size(); ++i) {
    fed::FedClientConfig cfg;
    cfg.id = static_cast<int>(i);
    cfg.algorithm = algorithm;
    cfg.ppo.seed = opt.seed + 900 + i;
    auto [train, test] = workload::split_train_test(
        core::make_trace(presets[i], opt.scale, opt.seed + 31 * i), opt.scale.train_fraction);
    (void)test;
    clients.push_back(std::make_unique<fed::FedClient>(
        cfg, core::make_env_config(presets[i], layout, opt.scale), std::move(train)));
  }
  return clients;
}

double final_mean_reward(const fed::TrainingHistory& history, std::size_t window = 5) {
  const auto curve = history.mean_reward_curve();
  double acc = 0.0;
  const std::size_t n = std::min(window, curve.size());
  for (std::size_t i = curve.size() - n; i < curve.size(); ++i)
    acc += curve[i] / static_cast<double>(n);
  return acc;
}

fed::TrainingHistory run_combo(fed::FedAlgorithm algorithm,
                               std::unique_ptr<fed::Aggregator> aggregator,
                               const std::vector<core::ClientPreset>& presets,
                               const bench::Options& opt,
                               const core::FederationLayout& layout) {
  fed::FedTrainerConfig tcfg;
  tcfg.total_episodes = opt.scale.episodes;
  tcfg.comm_every = opt.scale.comm_every;
  // Full participation: with the paper's K = N/2 only two clients upload
  // per round here, and a 2-row attention matrix saturates toward the
  // identity — the aggregation mechanism under ablation would never fire.
  tcfg.participants_per_round = 0;
  tcfg.seed = opt.seed;
  tcfg.threads = opt.threads;
  fed::FedTrainer trainer(tcfg, std::move(aggregator),
                          build_clients(presets, algorithm, opt, layout));
  return trainer.run();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "ablation_pfrl_dm");
  bench::print_banner("Ablation: PFRL-DM components",
                      "Which mechanism buys what (not a paper figure)", opt);

  const auto presets = core::table2_clients();
  const core::FederationLayout layout = core::layout_for(presets, opt.scale);

  std::vector<bench::Series> curves;
  util::TablePrinter table({"variant", "final mean reward (last 5 ep.)"});
  const auto record = [&](const std::string& name, const fed::TrainingHistory& history) {
    curves.emplace_back(name, history.mean_reward_curve());
    table.row({name, util::TablePrinter::num(final_mean_reward(history), 2)});
    std::printf("%s trained\n", name.c_str());
  };

  record("full (PFRL-DM)",
         run_combo(fed::FedAlgorithm::kPfrlDm, std::make_unique<fed::AttentionAggregator>(),
                   presets, opt, layout));
  record("no-attention (dual critic + FedAvg)",
         run_combo(fed::FedAlgorithm::kPfrlDm, std::make_unique<fed::FedAvgAggregator>(),
                   presets, opt, layout));
  record("no-dual-critic (FedAvg nets + attention)",
         run_combo(fed::FedAlgorithm::kFedAvg, std::make_unique<fed::AttentionAggregator>(),
                   presets, opt, layout));
  record("fedavg (neither)",
         run_combo(fed::FedAlgorithm::kFedAvg, std::make_unique<fed::FedAvgAggregator>(),
                   presets, opt, layout));

  // Attention-internal knobs on the full variant.
  for (const std::size_t heads : {1u, 8u}) {
    nn::MultiHeadAttentionConfig acfg;
    acfg.num_heads = heads;
    record("full, " + std::to_string(heads) + " head(s)",
           run_combo(fed::FedAlgorithm::kPfrlDm,
                     std::make_unique<fed::AttentionAggregator>(acfg), presets, opt, layout));
  }
  {
    nn::MultiHeadAttentionConfig acfg;
    acfg.tie_query_key = false;  // the literal untrained Eq. 20
    record("full, untied Q/K",
           run_combo(fed::FedAlgorithm::kPfrlDm,
                     std::make_unique<fed::AttentionAggregator>(acfg), presets, opt, layout));
  }
  {
    nn::MultiHeadAttentionConfig acfg;
    acfg.center_models = false;
    record("full, uncentered models",
           run_combo(fed::FedAlgorithm::kPfrlDm,
                     std::make_unique<fed::AttentionAggregator>(acfg), presets, opt, layout));
  }

  std::printf("\nConvergence (EMA-smoothed mean reward):\n");
  bench::print_series_table(curves, 8);
  std::printf("\n");
  table.print();
  bench::dump_series_csv(opt, "ablation_pfrl_dm", curves);
  std::printf("\nExpected: 'full' at or near the top; removing either mechanism costs "
              "reward; untied Q/K and uncentered models degrade the aggregator toward "
              "uniform averaging.\n");
  return 0;
}
