// Figure 15 — the headline convergence comparison on the Table 3
// ten-client setup: PFRL-DM vs FedAvg vs MFPO vs independent PPO, plus
// the communication-cost note of §5.2 (PFRL-DM ships only the public
// critic; FedAvg/MFPO ship actor + critic).
#include "bench_common.hpp"

using namespace pfrl;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "fig15_convergence");
  bench::print_banner("Fig. 15: convergence of the four algorithms",
                      "Paper: §5.2 — PFRL-DM converges fastest and highest", opt);

  const auto clients = bench::clients_or_default(opt, core::table3_clients());
  std::printf("clients: %zu\n\n", clients.size());

  std::vector<bench::Series> curves;
  util::TablePrinter comm({"algorithm", "rounds", "uplink KiB", "downlink KiB",
                           "final mean reward"});
  for (const fed::FedAlgorithm alg :
       {fed::FedAlgorithm::kPfrlDm, fed::FedAlgorithm::kFedAvg, fed::FedAlgorithm::kMfpo,
        fed::FedAlgorithm::kIndependent}) {
    util::Stopwatch watch;
    core::Federation federation(clients, bench::fed_config(opt, alg));
    const fed::TrainingHistory history = federation.train();
    const std::vector<double> curve = history.mean_reward_curve();
    std::printf("%s trained in %.1fs\n", fed::algorithm_name(alg).c_str(), watch.seconds());
    comm.row({fed::algorithm_name(alg), std::to_string(history.rounds),
              util::TablePrinter::num(static_cast<double>(history.uplink_bytes) / 1024.0, 1),
              util::TablePrinter::num(static_cast<double>(history.downlink_bytes) / 1024.0, 1),
              util::TablePrinter::num(curve.empty() ? 0.0 : curve.back(), 2)});
    curves.emplace_back(fed::algorithm_name(alg), curve);
  }

  std::printf("\nMean reward across clients (EMA-smoothed):\n");
  bench::print_series_table(curves);
  std::printf("\nCommunication and final performance:\n");
  comm.print();
  bench::dump_series_csv(opt, "fig15", curves);
  std::printf("\nPaper shape: PFRL-DM above MFPO above FedAvg; PFRL-DM's uplink is a "
              "fraction of FedAvg's (critic-only payloads).\n");
  return 0;
}
