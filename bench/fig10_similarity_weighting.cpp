// Figure 10 — focusing aggregation weight on *similar* clients speeds a
// client up. Four FedAvg-style configurations on the Table 2 setup:
//   Fed-Diff          C1..C4, uniform weights
//   Fed-Diff-weight   C1..C4, C1's row tilted toward (dissimilar) C2
//   Fed-Same2         C1, C1' (same env), C3, C4, uniform weights
//   Fed-Same2-weight  same clients, C1's row tilted toward its twin C1'
// Reported: client C1's reward curve under each configuration.
#include "bench_common.hpp"
#include "fed/trainer.hpp"

using namespace pfrl;

namespace {

std::vector<std::unique_ptr<fed::FedClient>> build_clients(
    const std::vector<core::ClientPreset>& presets, const bench::Options& opt,
    const core::FederationLayout& layout, const std::vector<std::uint64_t>& trace_seeds) {
  std::vector<std::unique_ptr<fed::FedClient>> clients;
  for (std::size_t i = 0; i < presets.size(); ++i) {
    fed::FedClientConfig cfg;
    cfg.id = static_cast<int>(i);
    cfg.algorithm = fed::FedAlgorithm::kFedAvg;  // actor+critic travel
    cfg.ppo.seed = opt.seed + 1000 + i;
    auto [train, test] = workload::split_train_test(
        core::make_trace(presets[i], opt.scale, trace_seeds[i]), opt.scale.train_fraction);
    (void)test;
    clients.push_back(std::make_unique<fed::FedClient>(
        cfg, core::make_env_config(presets[i], layout, opt.scale), std::move(train)));
  }
  return clients;
}

std::vector<double> run_config(const std::string& label,
                               const std::vector<core::ClientPreset>& presets,
                               nn::Matrix weights, const bench::Options& opt,
                               const core::FederationLayout& layout,
                               const std::vector<std::uint64_t>& trace_seeds) {
  fed::FedTrainerConfig tcfg;
  tcfg.total_episodes = opt.scale.episodes;
  tcfg.comm_every = opt.scale.comm_every;
  tcfg.participants_per_round = 0;  // all four upload: the fixed 4x4 needs K = 4
  tcfg.seed = opt.seed;
  tcfg.threads = opt.threads;
  fed::FedTrainer trainer(tcfg,
                          std::make_unique<fed::FixedWeightAggregator>(std::move(weights), label),
                          build_clients(presets, opt, layout, trace_seeds));
  const fed::TrainingHistory history = trainer.run();
  std::printf("%s trained\n", label.c_str());
  return history.clients[0].episode_rewards;  // client C1
}

nn::Matrix uniform4() { return nn::Matrix(4, 4, 0.25F); }

nn::Matrix tilted4(std::size_t favored, float weight_on_favored) {
  nn::Matrix w = uniform4();
  // Row 0 (client C1) concentrates on `favored`; rest spread evenly.
  const float rest = (1.0F - weight_on_favored - 0.35F) / 2.0F;
  for (std::size_t j = 0; j < 4; ++j) w(0, j) = rest;
  w(0, 0) = 0.35F;  // keep a solid share of itself
  w(0, favored) = weight_on_favored;
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "fig10_similarity_weighting");
  bench::print_banner("Fig. 10: weighting similar clients",
                      "Paper: §3.3 — attention to similar clients accelerates convergence", opt);

  const auto base = core::table2_clients();
  const core::FederationLayout layout = core::layout_for(base, opt.scale);

  // C1..C4 with distinct datasets/traces.
  const std::vector<std::uint64_t> diff_seeds{opt.seed + 11, opt.seed + 22, opt.seed + 33,
                                              opt.seed + 44};
  // C1, C1' (same preset AND same trace seed -> statistically identical
  // environment), C3, C4.
  const std::vector<core::ClientPreset> same2{base[0], base[0], base[2], base[3]};
  const std::vector<std::uint64_t> same_seeds{opt.seed + 11, opt.seed + 11, opt.seed + 33,
                                              opt.seed + 44};

  std::vector<bench::Series> curves;
  curves.emplace_back("Fed-Diff",
                      run_config("Fed-Diff", base, uniform4(), opt, layout, diff_seeds));
  curves.emplace_back("Fed-Diff-weight", run_config("Fed-Diff-weight", base, tilted4(1, 0.45F),
                                                    opt, layout, diff_seeds));
  curves.emplace_back("Fed-Same2",
                      run_config("Fed-Same2", same2, uniform4(), opt, layout, same_seeds));
  curves.emplace_back("Fed-Same2-weight", run_config("Fed-Same2-weight", same2,
                                                     tilted4(1, 0.45F), opt, layout, same_seeds));

  std::printf("\nClient C1's reward curve per configuration (EMA-smoothed):\n");
  bench::print_series_table(curves);
  bench::dump_series_csv(opt, "fig10", curves);
  std::printf("\nPaper shape: Fed-Same2-weight converges best — extra weight helps when (and "
              "only when) it lands on a similar client.\n");
  return 0;
}
