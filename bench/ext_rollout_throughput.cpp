// Extension: rollout-collection throughput of the vectorized engine.
// Sweeps the envs-per-sweep width E over the paper's scheduling
// environment and measures aggregate env-steps/sec of pure collection
// (no PPO update): E replica environments stepped in lockstep, one
// forward_batch GEMM per step producing every logit/value row. E = 1 is
// the serial reference — collect_sweep routes a single active row through
// the exact forward_row path train_episode uses, so the speedup column is
// "vectorized vs serial", not "vectorized vs strawman".
//
// The check_perf gate tracks steps/sec at each width (rate metrics, so
// only drops regress) plus the E=16 speedup as an info metric; the ≥3x
// acceptance line is printed at the bottom.
//
//   ext_rollout_throughput [--max-envs N] [--min-time-ms MS]
//                          [--tasks N] [--seed S]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/presets.hpp"
#include "env/scheduling_env.hpp"
#include "rl/ppo.hpp"
#include "rl/vec_env.hpp"

using namespace pfrl;

namespace {

struct WidthResult {
  std::size_t width = 0;
  double steps_per_sec = 0.0;
  double ns_per_step = 0.0;
  std::size_t steps_measured = 0;
};

/// Best-of-`trials` collection throughput at sweep width `width`: repeat
/// full sweeps until `min_time_s` elapses, count transitions, keep the
/// fastest trial (the one least disturbed by the machine).
WidthResult measure(rl::PpoAgent& agent, rl::VecEnv& vec, std::size_t width, double min_time_s,
                    int trials) {
  rl::RolloutBuffer buffer;
  std::vector<double> rewards;
  agent.collect_sweep(vec, width, buffer, rewards);  // warm every workspace

  WidthResult result;
  result.width = width;
  for (int t = 0; t < trials; ++t) {
    util::Stopwatch clock;
    std::size_t steps = 0;
    do {
      buffer.clear();
      rewards.clear();
      agent.collect_sweep(vec, width, buffer, rewards);
      steps += buffer.size();
    } while (clock.seconds() < min_time_s);
    const double rate = static_cast<double>(steps) / clock.seconds();
    if (rate > result.steps_per_sec) {
      result.steps_per_sec = rate;
      result.ns_per_step = 1e9 / rate;
      result.steps_measured = steps;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  const util::Cli cli(argc, argv);
  bench::Session session(opt, "ext_rollout_throughput");
  bench::print_banner("Extension: vectorized rollout throughput",
                      "env-steps/sec vs envs-per-sweep on the GEMM collection path", opt);

  // Client 1 of Table 2 under the bench scale; every replica shares the
  // same config and trace, so widths differ only in batching.
  const core::ClientPreset preset = core::table2_clients().front();
  const core::FederationLayout layout = core::layout_for({&preset, 1}, opt.scale);
  const env::SchedulingEnvConfig env_cfg = core::make_env_config(preset, layout, opt.scale);
  const workload::Trace trace = core::make_trace(preset, opt.scale, opt.seed);

  const auto max_envs = static_cast<std::size_t>(cli.get_int("max-envs", 64));
  const double min_time_s = static_cast<double>(cli.get_int("min-time-ms", 300)) / 1000.0;
  std::vector<std::unique_ptr<env::Env>> replicas;
  replicas.reserve(max_envs);
  for (std::size_t i = 0; i < max_envs; ++i)
    replicas.push_back(std::make_unique<env::SchedulingEnv>(env_cfg, trace));
  rl::VecEnv vec(std::move(replicas));

  rl::PpoConfig ppo;
  ppo.seed = opt.seed;
  rl::PpoAgent agent(vec.state_dim(), vec.action_count(), ppo);
  std::printf("env: %zu tasks/episode trace, state dim %zu, %d actions; policy %zu x %zu\n\n",
              trace.size(), vec.state_dim(), vec.action_count(), vec.state_dim(),
              static_cast<std::size_t>(vec.action_count()));

  std::vector<std::size_t> widths{1, 4, 16};
  if (max_envs >= 64) widths.push_back(64);
  util::TablePrinter table({"envs/sweep", "steps/s", "ns/step", "speedup vs E=1", "steps timed"});
  std::vector<WidthResult> results;
  for (const std::size_t width : widths) {
    results.push_back(measure(agent, vec, width, min_time_s, 3));
    const WidthResult& r = results.back();
    const double speedup = r.steps_per_sec / results.front().steps_per_sec;
    table.row({std::to_string(width), util::TablePrinter::num(r.steps_per_sec, 0),
               util::TablePrinter::num(r.ns_per_step, 1), util::TablePrinter::num(speedup, 2),
               std::to_string(r.steps_measured)});
    session.record().add("rollout.steps_per_sec_e" + std::to_string(width), r.steps_per_sec,
                         "steps/s");
  }
  table.print();

  const auto at = [&](std::size_t width) -> const WidthResult* {
    for (const WidthResult& r : results)
      if (r.width == width) return &r;
    return nullptr;
  };
  if (const WidthResult* e16 = at(16)) {
    const double speedup = e16->steps_per_sec / results.front().steps_per_sec;
    session.record().add("rollout.speedup_e16", speedup, "x");
    std::printf("\ngated: %.0f steps/s serial, %.0f steps/s at E=16 (%.2fx, target >= 3x %s)\n",
                results.front().steps_per_sec, e16->steps_per_sec, speedup,
                speedup >= 3.0 ? "met" : "NOT met");
  }
  return 0;
}
