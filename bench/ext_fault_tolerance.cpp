// Extension: fault tolerance of the federation. Sweeps uplink loss rate
// (drop + corruption + delayed deliveries) with and without a mid-training
// crash/rejoin window, and reports how gracefully PFRL-DM degrades: final
// reward, convergence episode, and the server's reject/quorum accounting.
// The paper assumes a perfect network; this harness measures how far from
// perfect the network can get before convergence suffers (§ DESIGN.md
// "Fault model & degradation behaviour").
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <numeric>
#include <span>
#include <thread>

#include <unistd.h>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "fed/socket_transport.hpp"
#include "util/serialization.hpp"
#include "util/stopwatch.hpp"

using namespace pfrl;

namespace {

double tail_mean(const std::vector<double>& curve) {
  if (curve.empty()) return 0.0;
  const std::size_t k = std::max<std::size_t>(1, curve.size() / 4);
  double sum = 0.0;
  for (std::size_t i = curve.size() - k; i < curve.size(); ++i) sum += curve[i];
  return sum / static_cast<double>(k);
}

// First episode whose EMA-smoothed reward is within 5% of the curve's
// range from the final value (robust to negative-reward scales).
std::size_t convergence_episode(const std::vector<double>& curve) {
  if (curve.empty()) return 0;
  const std::vector<double> smooth = stats::ema_smooth(curve, 0.25);
  const auto [lo, hi] = std::minmax_element(smooth.begin(), smooth.end());
  const double threshold = smooth.back() - 0.05 * (*hi - *lo);
  for (std::size_t e = 0; e < smooth.size(); ++e)
    if (smooth[e] >= threshold) return e;
  return smooth.size() - 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "ext_fault_tolerance");
  bench::print_banner("Extension: fault-tolerant federation",
                      "PFRL-DM under message loss, corruption and client crash/rejoin", opt);

  const auto clients = bench::clients_or_default(opt, core::table2_clients());
  const std::size_t rounds =
      std::max<std::size_t>(1, opt.scale.episodes / std::max<std::size_t>(1, opt.scale.comm_every));

  std::vector<bench::Series> curves;
  util::TablePrinter table({"loss rate", "crash", "final reward", "conv. episode", "dropped",
                            "rejected", "quorum misses", "max staleness"});
  auto csv = bench::maybe_csv(opt, "ext_fault_tolerance",
                              {"loss_rate", "crash", "final_reward", "convergence_episode",
                               "dropped", "rejected", "quorum_failures", "max_staleness"});

  for (const double loss : {0.0, 0.1, 0.25, 0.4}) {
    for (const bool crash : {false, true}) {
      core::FederationConfig cfg = bench::fed_config(opt, fed::FedAlgorithm::kPfrlDm);
      cfg.min_participants = 2;
      cfg.faults.uplink_drop = loss;
      cfg.faults.downlink_drop = loss / 2.0;
      cfg.faults.uplink_corrupt = loss / 2.0;
      cfg.faults.uplink_delay = loss / 2.0;
      cfg.faults.seed = opt.seed ^ 0xFA17ULL;
      if (crash)  // one client down for the middle third of the rounds
        cfg.faults.crashes.push_back(
            {1, static_cast<std::uint64_t>(rounds / 3), static_cast<std::uint64_t>(2 * rounds / 3)});

      core::Federation federation(clients, cfg);
      const fed::TrainingHistory history = federation.train();
      const auto curve = history.mean_reward_curve();

      std::size_t max_staleness = 0;
      for (const fed::ClientHistory& c : history.clients)
        max_staleness = std::max(max_staleness, c.max_staleness);
      const std::size_t dropped = history.faults.uplink_dropped + history.faults.downlink_dropped +
                                  history.faults.crash_suppressed;
      const double final_reward = tail_mean(curve);
      const std::size_t conv = convergence_episode(curve);

      char label[48];
      std::snprintf(label, sizeof(label), "loss=%.2f%s", loss, crash ? "+crash" : "");
      curves.emplace_back(label, curve);
      // Headline numbers per sweep point go into the perf record; the
      // registry-exported fed/* reject and quorum counters ride along via
      // the Session's end-of-run snapshot.
      session.record().add(std::string(label) + ".final_reward", final_reward, "reward");
      session.record().add(std::string(label) + ".rejected",
                           static_cast<double>(history.server.total_rejected()), "count");
      session.record().add(std::string(label) + ".quorum_failures",
                           static_cast<double>(history.server.quorum_failures), "count");
      session.record().add(std::string(label) + ".max_staleness",
                           static_cast<double>(max_staleness), "count");
      table.row({util::TablePrinter::num(loss, 2), crash ? "yes" : "no",
                 util::TablePrinter::num(final_reward, 2), std::to_string(conv),
                 std::to_string(dropped), std::to_string(history.server.total_rejected()),
                 std::to_string(history.server.quorum_failures), std::to_string(max_staleness)});
      if (csv)
        csv->row({util::CsvWriter::field(loss), crash ? "1" : "0",
                  util::CsvWriter::field(final_reward), std::to_string(conv),
                  std::to_string(dropped), std::to_string(history.server.total_rejected()),
                  std::to_string(history.server.quorum_failures), std::to_string(max_staleness)});
      std::printf("%s done (%zu/%zu uploads rejected)\n", label, history.server.total_rejected(),
                  history.server.total_rejected() + history.server.accepted);
    }
  }

  // Byzantine scenario: adversarial clients poison their uploads (valid
  // on the wire — correct CRC, right round, finite floats — so transport
  // validation cannot catch them) and the defense sweep measures what
  // each robust-aggregation mode buys: mean-reward degradation versus
  // that defense's own attack-free baseline, rounds until the first
  // anomaly was flagged, and how many attackers ended up quarantined.
  {
    struct AttackPoint {
      const char* mode;
      double fraction;
    };
    const std::vector<AttackPoint> core_attacks = {{"sign-flip", 0.25}};
    const std::vector<AttackPoint> extra_attacks = {
        {"scale", 0.25}, {"gaussian", 0.25}, {"stale-replay", 0.25}};
    const std::vector<AttackPoint> fraction_sweep = {{"sign-flip", 0.125}, {"sign-flip", 0.5}};

    util::TablePrinter atk_table({"defense", "attack", "fraction", "final reward", "degrade %",
                                  "detect round", "quarantined", "anomalies"});
    auto atk_csv = bench::maybe_csv(opt, "ext_fault_tolerance_attacks",
                                    {"defense", "attack", "fraction", "final_reward",
                                     "degradation_pct", "detection_round", "quarantined",
                                     "anomalies"});

    const auto run_point = [&](const char* defense, const char* attack_mode, double fraction) {
      core::FederationConfig cfg = bench::fed_config(opt, fed::FedAlgorithm::kPfrlDm);
      cfg.min_participants = 2;
      cfg.defense.mode = fed::parse_defense_mode(defense);
      cfg.faults.attack_mode = fed::parse_attack_mode(attack_mode);
      cfg.faults.attack_fraction = fraction;
      cfg.faults.seed = opt.seed ^ 0xA77AULL;
      core::Federation federation(clients, cfg);
      return federation.train();
    };

    double undefended_degradation = 0.0;
    double trimmed_degradation = 0.0;
    for (const char* defense : {"off", "clip", "trimmed", "median"}) {
      const fed::TrainingHistory baseline = run_point(defense, "none", 0.0);
      const double baseline_reward = tail_mean(baseline.mean_reward_curve());
      session.record().add("attack." + std::string(defense) + ".baseline_reward",
                           baseline_reward, "reward");

      std::vector<AttackPoint> attacks = core_attacks;
      if (std::string(defense) == "off" || std::string(defense) == "trimmed") {
        attacks.insert(attacks.end(), extra_attacks.begin(), extra_attacks.end());
        if (opt.full)
          attacks.insert(attacks.end(), fraction_sweep.begin(), fraction_sweep.end());
      }
      for (const AttackPoint& atk : attacks) {
        const fed::TrainingHistory h = run_point(defense, atk.mode, atk.fraction);
        const double reward = tail_mean(h.mean_reward_curve());
        // Reward scales are negative; degradation = how much worse than
        // this defense's attack-free run, as a % of its magnitude.
        const double degradation_pct =
            baseline_reward != 0.0
                ? 100.0 * (baseline_reward - reward) / std::abs(baseline_reward)
                : 0.0;
        char label[96];
        std::snprintf(label, sizeof(label), "attack.%s.%s@%.3f", defense, atk.mode, atk.fraction);
        session.record().add(std::string(label) + ".final_reward", reward, "reward");
        session.record().add(std::string(label) + ".degradation_pct", degradation_pct, "%");
        session.record().add(std::string(label) + ".detection_round",
                             static_cast<double>(h.defense.first_anomaly_round), "round");
        session.record().add(std::string(label) + ".quarantined",
                             static_cast<double>(h.defense.quarantine_events), "count");
        atk_table.row({defense, atk.mode, util::TablePrinter::num(atk.fraction, 3),
                       util::TablePrinter::num(reward, 2),
                       util::TablePrinter::num(degradation_pct, 1),
                       std::to_string(h.defense.first_anomaly_round),
                       std::to_string(h.defense.quarantine_events),
                       std::to_string(h.defense.anomalies)});
        if (atk_csv)
          atk_csv->row({defense, atk.mode, util::CsvWriter::field(atk.fraction),
                        util::CsvWriter::field(reward), util::CsvWriter::field(degradation_pct),
                        std::to_string(h.defense.first_anomaly_round),
                        std::to_string(h.defense.quarantine_events),
                        std::to_string(h.defense.anomalies)});
        std::printf("attack %s vs %s@%.3f done (degradation %.1f%%, detected round %lld)\n",
                    defense, atk.mode, atk.fraction, degradation_pct,
                    static_cast<long long>(h.defense.first_anomaly_round));
        if (std::string(atk.mode) == "sign-flip" && atk.fraction == 0.25) {
          if (std::string(defense) == "off") undefended_degradation = degradation_pct;
          if (std::string(defense) == "trimmed") trimmed_degradation = degradation_pct;
        }
      }
    }
    // The acceptance headline: trimmed-mean holds a 25% sign-flip fleet
    // near its attack-free baseline while the undefended run pays full
    // price.
    session.record().add("attack.headline.undefended_signflip_degradation_pct",
                         undefended_degradation, "%");
    session.record().add("attack.headline.trimmed_signflip_degradation_pct",
                         trimmed_degradation, "%");
    std::printf("\nByzantine defense sweep (25%% sign-flip headline): undefended %.1f%% vs "
                "trimmed %.1f%% degradation\n",
                undefended_degradation, trimmed_degradation);
    atk_table.print();
  }

  // Second scenario: the whole *process* dies mid-run (inside the crash
  // window, faults active) and a fresh process resumes from the last
  // full-state checkpoint. Degradation is measured in the strictest way
  // possible: the resumed run must be byte-identical to a run that was
  // never interrupted.
  {
    const std::size_t half_rounds = std::max<std::size_t>(1, rounds / 2);
    const std::size_t half_episodes = half_rounds * std::max<std::size_t>(1, opt.scale.comm_every);
    core::FederationConfig cfg = bench::fed_config(opt, fed::FedAlgorithm::kPfrlDm);
    cfg.min_participants = 2;
    cfg.faults.uplink_drop = 0.1;
    cfg.faults.downlink_drop = 0.05;
    cfg.faults.seed = opt.seed ^ 0xFA17ULL;
    cfg.faults.crashes.push_back(
        {1, static_cast<std::uint64_t>(rounds / 3), static_cast<std::uint64_t>(2 * rounds / 3)});

    const auto state_bytes = [](const fed::FedTrainer& trainer) {
      util::ByteWriter writer;
      trainer.serialize_state(writer);
      return writer.take();
    };
    const std::string ckpt_dir =
        (std::filesystem::temp_directory_path() / "pfrl_ext_fault_resume").string();
    std::filesystem::remove_all(ckpt_dir);

    core::Federation straight(clients, cfg);
    const fed::TrainingHistory full = straight.train();

    core::FederationConfig half_cfg = cfg;
    half_cfg.scale.episodes = half_episodes;
    {
      core::Federation interrupted(clients, half_cfg);
      const core::CheckpointManager manager(ckpt_dir);
      interrupted.trainer().set_checkpoint_every(1);
      manager.attach(interrupted.trainer());
      (void)interrupted.train();
      // Process "dies" here: everything in memory is discarded.
    }

    core::Federation resumed(clients, cfg);
    const core::CheckpointManager manager(ckpt_dir);
    const auto info = manager.try_resume(resumed.trainer());
    const fed::TrainingHistory cont = resumed.train();

    const bool identical = state_bytes(resumed.trainer()) == state_bytes(straight.trainer());
    const double delta = tail_mean(cont.mean_reward_curve()) - tail_mean(full.mean_reward_curve());
    std::printf("\nKill + resume from checkpoint (faults on, killed at round %llu/%zu):\n"
                "  bit-identical continuation: %s   final-reward delta: %+.4f\n",
                info ? static_cast<unsigned long long>(info->round) : 0ULL, rounds,
                identical ? "yes" : "NO", delta);
    session.record().add("crash_resume.bit_identical", identical ? 1.0 : 0.0, "bool");
    session.record().add("crash_resume.final_reward_delta", delta, "reward");
    std::filesystem::remove_all(ckpt_dir);
  }

  // Third scenario: the socket transport itself under fire. A 12-client
  // Unix-domain federation pushes fixed-size uploads through injected
  // drop/duplicate/delay faults and forced disconnects, across retry
  // budgets, and we measure the throughput cost of resilience: rounds/sec,
  // bytes moved per round, reconnect count, and the fraction of uploads
  // that arrived too late for their round (the staleness path).
  {
    constexpr std::size_t kNetClients = 12;
    constexpr std::size_t kNetRounds = 6;
    constexpr std::size_t kUploadBytes = 32 * 1024;
    const std::string sock_path =
        (std::filesystem::temp_directory_path() /
         ("pfrl_ext_fault_net_" + std::to_string(::getpid()) + ".sock"))
            .string();

    struct FaultLevel {
      const char* name;
      double drop, duplicate, delay;
      bool crashes;  // forced disconnects mid-run (reconnect + re-handshake)
    };
    const FaultLevel levels[] = {
        {"clean", 0.0, 0.0, 0.0, false},
        {"lossy", 0.15, 0.10, 0.15, false},
        {"harsh", 0.30, 0.15, 0.25, true},
    };

    util::TablePrinter net_table({"faults", "retries", "rounds/s", "KiB/round", "reconnects",
                                  "stale frac", "give-ups"});
    auto net_csv = bench::maybe_csv(opt, "ext_fault_tolerance_transport",
                                    {"faults", "retry_budget", "rounds_per_sec", "bytes_per_round",
                                     "reconnects", "stale_fraction", "give_ups"});

    std::vector<std::uint8_t> upload(kUploadBytes);
    util::Rng payload_rng(opt.seed ^ 0x7E57ULL);
    for (auto& b : upload) b = static_cast<std::uint8_t>(payload_rng.next_u64());

    for (const FaultLevel& level : levels) {
      for (const std::uint32_t retry_budget : {1U, 3U, 6U}) {
        fed::TransportConfig server_tc;  // server side stays clean
        server_tc.send_deadline = std::chrono::milliseconds(1000);
        fed::HandshakeValidator accept_all = [](const fed::HelloPayload&, std::string&,
                                                fed::WelcomePayload& welcome) {
          welcome.client_count = kNetClients;
          return true;
        };
        fed::SocketServerTransport server(util::parse_endpoint("unix:" + sock_path), kNetClients,
                                          server_tc, accept_all);

        std::vector<std::size_t> expected(kNetClients);
        std::iota(expected.begin(), expected.end(), std::size_t{0});

        std::vector<std::thread> workers;
        std::vector<fed::TransportStats> client_stats(kNetClients);
        for (std::size_t id = 0; id < kNetClients; ++id)
          workers.emplace_back([&, id] {
            fed::TransportConfig tc;
            tc.retry.max_attempts = retry_budget;
            tc.retry.base_backoff = std::chrono::milliseconds(5);
            tc.send_deadline = std::chrono::milliseconds(500);
            tc.inject_drop_prob = level.drop;
            tc.inject_duplicate_prob = level.duplicate;
            tc.inject_delay_prob = level.delay;
            tc.inject_seed = opt.seed ^ (0xFA17ULL + id);
            fed::HelloPayload hello;
            hello.client_id = static_cast<std::int64_t>(id);
            fed::SocketClientTransport transport(util::parse_endpoint("unix:" + sock_path), hello,
                                                 tc);
            if (!transport.connect()) return;
            bool done = false;
            int idle_polls = 0;
            while (!done) {
              const auto m = transport.poll(std::chrono::milliseconds(100));
              // A disconnected client never sees the (single-attempt)
              // Goodbye; 5 s of silence means the run is over.
              if (!m) {
                if (++idle_polls > 50) break;
                continue;
              }
              idle_polls = 0;
              if (m->type == fed::MessageType::kGoodbye) {
                done = true;
              } else if (m->type == fed::MessageType::kRoundBegin) {
                const auto begin = fed::decode_round_begin(m->payload);
                // The harsh tier yanks connections mid-run so the sweep
                // also pays for reconnect + re-handshake on the next send.
                if (level.crashes && begin.round > 0 && (begin.round + id) % 5 == 0)
                  transport.debug_drop_connection();
                transport.send(fed::make_message(fed::MessageType::kModelUpload,
                                                 static_cast<int>(id), begin.round, upload));
              }
            }
            client_stats[id] = transport.stats();
            transport.close();
          });

        // Join barrier: server -> client sends are single-attempt by
        // design, so broadcasting round 0 before the whole fleet has
        // handshaked would silently drop the kRoundBegin for the not-yet-
        // connected clients. Handshakes surface as kHello through poll().
        std::size_t joined = 0;
        const auto join_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (joined < kNetClients && std::chrono::steady_clock::now() < join_deadline)
          if (const auto m = server.poll(std::chrono::milliseconds(100));
              m && m->type == fed::MessageType::kHello)
            ++joined;

        std::uint64_t stale_uploads = 0;
        std::uint64_t on_time_uploads = 0;
        const util::Stopwatch clock;
        for (std::uint64_t round = 0; round < kNetRounds; ++round) {
          fed::RoundBeginPayload begin;
          begin.round = round;
          for (std::size_t id = 0; id < kNetClients; ++id)
            server.send(id, fed::make_message(fed::MessageType::kRoundBegin, -1, round,
                                              fed::encode_round_begin(begin)));
          // Quorum 1: a round always closes at the deadline even when a
          // retry-budget-1 client dropped its only attempt, so the sweep
          // is hang-free by construction; laggards land in `late`/missing.
          const fed::RoundCollection collection = fed::collect_round(
              server, round, expected, /*quorum=*/1, std::chrono::milliseconds(1500));
          on_time_uploads += collection.uploads.size();
          for (const fed::Message& m : collection.late)
            if (m.type == fed::MessageType::kModelUpload) ++stale_uploads;
        }
        const double elapsed = clock.seconds();
        for (std::size_t id = 0; id < kNetClients; ++id)
          server.send(id, fed::make_message(fed::MessageType::kGoodbye, -1, kNetRounds, {}));
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        const fed::TransportStats server_stats = server.stats();
        server.stop();
        for (std::thread& t : workers) t.join();

        std::uint64_t reconnects = 0;
        std::uint64_t give_ups = 0;
        std::uint64_t client_bytes = 0;
        for (const fed::TransportStats& s : client_stats) {
          reconnects += s.reconnects;
          give_ups += s.give_ups;
          client_bytes += s.bytes_sent + s.bytes_received;
        }
        const double rounds_per_sec = elapsed > 0.0 ? kNetRounds / elapsed : 0.0;
        const double bytes_per_round =
            static_cast<double>(server_stats.bytes_sent + server_stats.bytes_received) /
            static_cast<double>(kNetRounds);
        const std::uint64_t total_uploads = on_time_uploads + stale_uploads;
        const double stale_fraction =
            total_uploads > 0 ? static_cast<double>(stale_uploads) /
                                    static_cast<double>(total_uploads)
                              : 0.0;

        char label[64];
        std::snprintf(label, sizeof(label), "transport.%s.retry=%u", level.name, retry_budget);
        session.record().add(std::string(label) + ".rounds_per_sec", rounds_per_sec, "rounds/s");
        session.record().add(std::string(label) + ".bytes_per_round", bytes_per_round, "bytes");
        session.record().add(std::string(label) + ".reconnects",
                             static_cast<double>(reconnects), "count");
        session.record().add(std::string(label) + ".stale_fraction", stale_fraction, "fraction");
        session.record().add(std::string(label) + ".give_ups", static_cast<double>(give_ups),
                             "count");
        net_table.row({level.name, std::to_string(retry_budget),
                       util::TablePrinter::num(rounds_per_sec, 2),
                       util::TablePrinter::num(bytes_per_round / 1024.0, 1),
                       std::to_string(reconnects), util::TablePrinter::num(stale_fraction, 3),
                       std::to_string(give_ups)});
        if (net_csv)
          net_csv->row({level.name, std::to_string(retry_budget),
                        util::CsvWriter::field(rounds_per_sec),
                        util::CsvWriter::field(bytes_per_round), std::to_string(reconnects),
                        util::CsvWriter::field(stale_fraction), std::to_string(give_ups)});
        std::printf("transport %s retry=%u done (%.2f rounds/s, %llu reconnects)\n", level.name,
                    retry_budget, rounds_per_sec,
                    static_cast<unsigned long long>(reconnects));
        (void)client_bytes;
      }
    }
    std::printf("\nSocket transport under injected faults (%zu clients, UDS, %zu KiB uploads):\n",
                kNetClients, kUploadBytes / 1024);
    net_table.print();
    std::filesystem::remove(sock_path);
  }

  std::printf("\nMean reward across clients (EMA-smoothed):\n");
  bench::print_series_table(curves);
  std::printf("\n");
  table.print();
  bench::dump_series_csv(opt, "ext_fault_tolerance_curves", curves);
  std::printf("\nExpected: up to ~25%% loss the dual-critic design degrades gracefully — a\n"
              "client that misses a download keeps its previous public critic and Eq. 15's\n"
              "adaptive alpha down-weights it, so final reward stays within ~10%% of the\n"
              "fault-free run. Crash windows cost the crashed client episodes but the\n"
              "quorum rule keeps the survivors' aggregation unpoisoned.\n");
  return 0;
}
