// Extension: fault tolerance of the federation. Sweeps uplink loss rate
// (drop + corruption + delayed deliveries) with and without a mid-training
// crash/rejoin window, and reports how gracefully PFRL-DM degrades: final
// reward, convergence episode, and the server's reject/quorum accounting.
// The paper assumes a perfect network; this harness measures how far from
// perfect the network can get before convergence suffers (§ DESIGN.md
// "Fault model & degradation behaviour").
#include <algorithm>
#include <filesystem>
#include <span>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "util/serialization.hpp"

using namespace pfrl;

namespace {

double tail_mean(const std::vector<double>& curve) {
  if (curve.empty()) return 0.0;
  const std::size_t k = std::max<std::size_t>(1, curve.size() / 4);
  double sum = 0.0;
  for (std::size_t i = curve.size() - k; i < curve.size(); ++i) sum += curve[i];
  return sum / static_cast<double>(k);
}

// First episode whose EMA-smoothed reward is within 5% of the curve's
// range from the final value (robust to negative-reward scales).
std::size_t convergence_episode(const std::vector<double>& curve) {
  if (curve.empty()) return 0;
  const std::vector<double> smooth = stats::ema_smooth(curve, 0.25);
  const auto [lo, hi] = std::minmax_element(smooth.begin(), smooth.end());
  const double threshold = smooth.back() - 0.05 * (*hi - *lo);
  for (std::size_t e = 0; e < smooth.size(); ++e)
    if (smooth[e] >= threshold) return e;
  return smooth.size() - 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "ext_fault_tolerance");
  bench::print_banner("Extension: fault-tolerant federation",
                      "PFRL-DM under message loss, corruption and client crash/rejoin", opt);

  const auto clients = bench::clients_or_default(opt, core::table2_clients());
  const std::size_t rounds =
      std::max<std::size_t>(1, opt.scale.episodes / std::max<std::size_t>(1, opt.scale.comm_every));

  std::vector<bench::Series> curves;
  util::TablePrinter table({"loss rate", "crash", "final reward", "conv. episode", "dropped",
                            "rejected", "quorum misses", "max staleness"});
  auto csv = bench::maybe_csv(opt, "ext_fault_tolerance",
                              {"loss_rate", "crash", "final_reward", "convergence_episode",
                               "dropped", "rejected", "quorum_failures", "max_staleness"});

  for (const double loss : {0.0, 0.1, 0.25, 0.4}) {
    for (const bool crash : {false, true}) {
      core::FederationConfig cfg = bench::fed_config(opt, fed::FedAlgorithm::kPfrlDm);
      cfg.min_participants = 2;
      cfg.faults.uplink_drop = loss;
      cfg.faults.downlink_drop = loss / 2.0;
      cfg.faults.uplink_corrupt = loss / 2.0;
      cfg.faults.uplink_delay = loss / 2.0;
      cfg.faults.seed = opt.seed ^ 0xFA17ULL;
      if (crash)  // one client down for the middle third of the rounds
        cfg.faults.crashes.push_back(
            {1, static_cast<std::uint64_t>(rounds / 3), static_cast<std::uint64_t>(2 * rounds / 3)});

      core::Federation federation(clients, cfg);
      const fed::TrainingHistory history = federation.train();
      const auto curve = history.mean_reward_curve();

      std::size_t max_staleness = 0;
      for (const fed::ClientHistory& c : history.clients)
        max_staleness = std::max(max_staleness, c.max_staleness);
      const std::size_t dropped = history.faults.uplink_dropped + history.faults.downlink_dropped +
                                  history.faults.crash_suppressed;
      const double final_reward = tail_mean(curve);
      const std::size_t conv = convergence_episode(curve);

      char label[48];
      std::snprintf(label, sizeof(label), "loss=%.2f%s", loss, crash ? "+crash" : "");
      curves.emplace_back(label, curve);
      // Headline numbers per sweep point go into the perf record; the
      // registry-exported fed/* reject and quorum counters ride along via
      // the Session's end-of-run snapshot.
      session.record().add(std::string(label) + ".final_reward", final_reward, "reward");
      session.record().add(std::string(label) + ".rejected",
                           static_cast<double>(history.server.total_rejected()), "count");
      session.record().add(std::string(label) + ".quorum_failures",
                           static_cast<double>(history.server.quorum_failures), "count");
      session.record().add(std::string(label) + ".max_staleness",
                           static_cast<double>(max_staleness), "count");
      table.row({util::TablePrinter::num(loss, 2), crash ? "yes" : "no",
                 util::TablePrinter::num(final_reward, 2), std::to_string(conv),
                 std::to_string(dropped), std::to_string(history.server.total_rejected()),
                 std::to_string(history.server.quorum_failures), std::to_string(max_staleness)});
      if (csv)
        csv->row({util::CsvWriter::field(loss), crash ? "1" : "0",
                  util::CsvWriter::field(final_reward), std::to_string(conv),
                  std::to_string(dropped), std::to_string(history.server.total_rejected()),
                  std::to_string(history.server.quorum_failures), std::to_string(max_staleness)});
      std::printf("%s done (%zu/%zu uploads rejected)\n", label, history.server.total_rejected(),
                  history.server.total_rejected() + history.server.accepted);
    }
  }

  // Second scenario: the whole *process* dies mid-run (inside the crash
  // window, faults active) and a fresh process resumes from the last
  // full-state checkpoint. Degradation is measured in the strictest way
  // possible: the resumed run must be byte-identical to a run that was
  // never interrupted.
  {
    const std::size_t half_rounds = std::max<std::size_t>(1, rounds / 2);
    const std::size_t half_episodes = half_rounds * std::max<std::size_t>(1, opt.scale.comm_every);
    core::FederationConfig cfg = bench::fed_config(opt, fed::FedAlgorithm::kPfrlDm);
    cfg.min_participants = 2;
    cfg.faults.uplink_drop = 0.1;
    cfg.faults.downlink_drop = 0.05;
    cfg.faults.seed = opt.seed ^ 0xFA17ULL;
    cfg.faults.crashes.push_back(
        {1, static_cast<std::uint64_t>(rounds / 3), static_cast<std::uint64_t>(2 * rounds / 3)});

    const auto state_bytes = [](const fed::FedTrainer& trainer) {
      util::ByteWriter writer;
      trainer.serialize_state(writer);
      return writer.take();
    };
    const std::string ckpt_dir =
        (std::filesystem::temp_directory_path() / "pfrl_ext_fault_resume").string();
    std::filesystem::remove_all(ckpt_dir);

    core::Federation straight(clients, cfg);
    const fed::TrainingHistory full = straight.train();

    core::FederationConfig half_cfg = cfg;
    half_cfg.scale.episodes = half_episodes;
    {
      core::Federation interrupted(clients, half_cfg);
      const core::CheckpointManager manager(ckpt_dir);
      interrupted.trainer().set_checkpoint_every(1);
      manager.attach(interrupted.trainer());
      (void)interrupted.train();
      // Process "dies" here: everything in memory is discarded.
    }

    core::Federation resumed(clients, cfg);
    const core::CheckpointManager manager(ckpt_dir);
    const auto info = manager.try_resume(resumed.trainer());
    const fed::TrainingHistory cont = resumed.train();

    const bool identical = state_bytes(resumed.trainer()) == state_bytes(straight.trainer());
    const double delta = tail_mean(cont.mean_reward_curve()) - tail_mean(full.mean_reward_curve());
    std::printf("\nKill + resume from checkpoint (faults on, killed at round %llu/%zu):\n"
                "  bit-identical continuation: %s   final-reward delta: %+.4f\n",
                info ? static_cast<unsigned long long>(info->round) : 0ULL, rounds,
                identical ? "yes" : "NO", delta);
    session.record().add("crash_resume.bit_identical", identical ? 1.0 : 0.0, "bool");
    session.record().add("crash_resume.final_reward_delta", delta, "reward");
    std::filesystem::remove_all(ckpt_dir);
  }

  std::printf("\nMean reward across clients (EMA-smoothed):\n");
  bench::print_series_table(curves);
  std::printf("\n");
  table.print();
  bench::dump_series_csv(opt, "ext_fault_tolerance_curves", curves);
  std::printf("\nExpected: up to ~25%% loss the dual-critic design degrades gracefully — a\n"
              "client that misses a download keeps its previous public critic and Eq. 15's\n"
              "adaptive alpha down-weights it, so final reward stays within ~10%% of the\n"
              "fault-free run. Crash windows cost the crashed client episodes but the\n"
              "quorum rule keeps the survivors' aggregation unpoisoned.\n");
  return 0;
}
