// Figures 2-5 — heterogeneity of the ten workloads: requested CPU and
// memory distributions (Figs. 2-3), hourly task arrival rates (Fig. 4),
// and execution-time CDFs (Fig. 5).
#include <array>

#include "bench_common.hpp"
#include "stats/ecdf.hpp"
#include "workload/catalog.hpp"

int main(int argc, char** argv) {
  using namespace pfrl;
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "fig02_05_workload_heterogeneity");
  bench::print_banner("Figs. 2-5: workload heterogeneity",
                      "Paper: request distributions, arrival rates, runtime CDFs", opt);
  const std::size_t n = opt.full ? 20000 : 5000;

  struct DatasetSample {
    std::string name;
    std::vector<double> cpus, mem, durations;
    std::array<double, 24> hourly{};
  };
  std::vector<DatasetSample> samples;

  util::Rng rng(opt.seed);
  for (const workload::WorkloadModel& model : workload::dataset_catalog()) {
    const workload::Trace trace = workload::sample_trace(model, n, rng);
    DatasetSample s;
    s.name = model.name;
    std::array<std::size_t, 24> counts{};
    for (const workload::Task& t : trace) {
      s.cpus.push_back(t.vcpus);
      s.mem.push_back(t.memory_gb);
      s.durations.push_back(t.duration);
      const auto hour = static_cast<std::size_t>(t.arrival_time / model.seconds_per_hour);
      ++counts[hour % 24];
    }
    const double hours_simulated =
        trace.empty() ? 1.0 : trace.back().arrival_time / model.seconds_per_hour;
    const double days = std::max(1.0, hours_simulated / 24.0);
    for (std::size_t h = 0; h < 24; ++h) s.hourly[h] = static_cast<double>(counts[h]) / days;
    samples.push_back(std::move(s));
  }

  std::printf("Figs. 2-3: requested resources per dataset (quartiles):\n");
  {
    util::TablePrinter table({"dataset", "cpu p25", "cpu p50", "cpu p95", "mem p25 (GB)",
                              "mem p50 (GB)", "mem p95 (GB)"});
    for (const DatasetSample& s : samples) {
      std::vector<double> cpu = s.cpus, mem = s.mem;
      std::sort(cpu.begin(), cpu.end());
      std::sort(mem.begin(), mem.end());
      table.row({s.name, util::TablePrinter::num(stats::quantile_sorted(cpu, 0.25), 1),
                 util::TablePrinter::num(stats::quantile_sorted(cpu, 0.50), 1),
                 util::TablePrinter::num(stats::quantile_sorted(cpu, 0.95), 1),
                 util::TablePrinter::num(stats::quantile_sorted(mem, 0.25), 1),
                 util::TablePrinter::num(stats::quantile_sorted(mem, 0.50), 1),
                 util::TablePrinter::num(stats::quantile_sorted(mem, 0.95), 1)});
    }
    table.print();
  }

  std::printf("\nFig. 4: mean hourly arrival rates (tasks/hour at hours 0/6/12/14/18/22):\n");
  {
    util::TablePrinter table({"dataset", "h0", "h6", "h12", "h14", "h18", "h22"});
    for (const DatasetSample& s : samples)
      table.row({s.name, util::TablePrinter::num(s.hourly[0], 1),
                 util::TablePrinter::num(s.hourly[6], 1),
                 util::TablePrinter::num(s.hourly[12], 1),
                 util::TablePrinter::num(s.hourly[14], 1),
                 util::TablePrinter::num(s.hourly[18], 1),
                 util::TablePrinter::num(s.hourly[22], 1)});
    table.print();
  }

  std::printf("\nFig. 5: execution-time CDF — duration (s) reached at F(x):\n");
  {
    util::TablePrinter table({"dataset", "F=0.25", "F=0.5", "F=0.75", "F=0.9", "F=0.99"});
    for (const DatasetSample& s : samples) {
      std::vector<double> d = s.durations;
      std::sort(d.begin(), d.end());
      table.row({s.name, util::TablePrinter::num(stats::quantile_sorted(d, 0.25), 0),
                 util::TablePrinter::num(stats::quantile_sorted(d, 0.50), 0),
                 util::TablePrinter::num(stats::quantile_sorted(d, 0.75), 0),
                 util::TablePrinter::num(stats::quantile_sorted(d, 0.90), 0),
                 util::TablePrinter::num(stats::quantile_sorted(d, 0.99), 0)});
    }
    table.print();
  }

  if (auto csv = bench::maybe_csv(opt, "fig02_05_durations", {"dataset", "duration"})) {
    for (const DatasetSample& s : samples)
      for (const double d : s.durations) csv->row({s.name, util::CsvWriter::field(d)});
  }
  return 0;
}
