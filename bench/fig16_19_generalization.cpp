// Figures 16-19 + Table 4 — generalization to hybrid workloads: every
// client keeps 20% of its own test tasks and receives 80% drawn from the
// other clients' datasets; the four §5.1 metrics are reported per
// algorithm (distribution across clients), followed by the pair-wise
// Wilcoxon signed-rank tests of Table 4.
#include <map>

#include "bench_common.hpp"
#include "stats/wilcoxon.hpp"

using namespace pfrl;

namespace {

struct MetricVectors {
  std::vector<double> response, makespan, utilization, load_balance;
};

constexpr std::array<fed::FedAlgorithm, 4> kAlgorithms{
    fed::FedAlgorithm::kPfrlDm, fed::FedAlgorithm::kFedAvg, fed::FedAlgorithm::kMfpo,
    fed::FedAlgorithm::kIndependent};

void print_metric_figure(const char* title, const char* metric_key,
                         const std::map<fed::FedAlgorithm, MetricVectors>& results,
                         std::vector<double> MetricVectors::*member, int precision,
                         util::CsvWriter* csv) {
  std::printf("\n%s\n", title);
  util::TablePrinter table({"algorithm", "mean", "median", "q25", "q75", "min", "max"});
  for (const fed::FedAlgorithm alg : kAlgorithms) {
    const std::vector<double>& v = results.at(alg).*member;
    const stats::Summary s = stats::summarize(v);
    table.row({fed::algorithm_name(alg), util::TablePrinter::num(s.mean, precision),
               util::TablePrinter::num(s.median, precision),
               util::TablePrinter::num(s.q25, precision),
               util::TablePrinter::num(s.q75, precision),
               util::TablePrinter::num(s.min, precision),
               util::TablePrinter::num(s.max, precision)});
    if (csv)
      for (std::size_t i = 0; i < v.size(); ++i)
        csv->row({metric_key, fed::algorithm_name(alg), std::to_string(i),
                  util::CsvWriter::field(v[i])});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::Session session(opt, "fig16_19_generalization");
  bench::print_banner("Figs. 16-19 + Table 4: hybrid-workload generalization",
                      "Paper: §5.3 — per-client metric distributions + Wilcoxon tests", opt);

  const auto clients = bench::clients_or_default(opt, core::table3_clients());
  std::map<fed::FedAlgorithm, MetricVectors> results;

  for (const fed::FedAlgorithm alg : kAlgorithms) {
    core::Federation federation(clients, bench::fed_config(opt, alg));
    (void)federation.train();
    MetricVectors v;
    for (const core::EvalResult& r : federation.evaluate_on_hybrid(0.2)) {
      v.response.push_back(r.metrics.avg_response_time);
      v.makespan.push_back(r.metrics.makespan);
      v.utilization.push_back(r.metrics.avg_utilization);
      v.load_balance.push_back(r.metrics.avg_load_balance);
    }
    results.emplace(alg, std::move(v));
    std::printf("%s trained + evaluated\n", fed::algorithm_name(alg).c_str());
  }

  auto csv = bench::maybe_csv(opt, "fig16_19", {"metric", "algorithm", "client", "value"});
  print_metric_figure("Fig. 16: average response time (s) across clients", "response",
                      results, &MetricVectors::response, 2, csv.get());
  print_metric_figure("Fig. 17: average makespan (s) across clients", "makespan", results,
                      &MetricVectors::makespan, 2, csv.get());
  print_metric_figure("Fig. 18: average resource utilization across clients", "utilization",
                      results, &MetricVectors::utilization, 3, csv.get());
  print_metric_figure("Fig. 19: average load balancing across clients (lower = better)",
                      "load_balance", results, &MetricVectors::load_balance, 3, csv.get());

  std::printf("\nTable 4: pair-wise Wilcoxon signed-rank p-values, PFRL-DM vs others:\n");
  util::TablePrinter table4({"metric", "vs FedAvg", "vs MFPO", "vs PPO"});
  const auto row_for = [&](const char* name, std::vector<double> MetricVectors::*member) {
    std::vector<std::string> row{name};
    for (const fed::FedAlgorithm other :
         {fed::FedAlgorithm::kFedAvg, fed::FedAlgorithm::kMfpo,
          fed::FedAlgorithm::kIndependent}) {
      const stats::WilcoxonResult r = stats::wilcoxon_signed_rank(
          results.at(fed::FedAlgorithm::kPfrlDm).*member, results.at(other).*member);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3g", r.p_value);
      row.push_back(buf);
    }
    table4.row(std::move(row));
  };
  row_for("Average response", &MetricVectors::response);
  row_for("Average makespan", &MetricVectors::makespan);
  row_for("Average resource utilization", &MetricVectors::utilization);
  row_for("Average load balancing", &MetricVectors::load_balance);
  table4.print();
  std::printf("\nPaper shape: PFRL-DM leads the response/makespan/load-balance "
              "distributions and the utilization; p-values small (the paper reports "
              "1.93e-3 uniformly for its 10 clients).\n");
  return 0;
}
