file(REMOVE_RECURSE
  "CMakeFiles/fig08_fedavg_vs_ppo.dir/fig08_fedavg_vs_ppo.cpp.o"
  "CMakeFiles/fig08_fedavg_vs_ppo.dir/fig08_fedavg_vs_ppo.cpp.o.d"
  "fig08_fedavg_vs_ppo"
  "fig08_fedavg_vs_ppo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fedavg_vs_ppo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
