# Empty dependencies file for fig08_fedavg_vs_ppo.
# This may be replaced when dependencies are built.
