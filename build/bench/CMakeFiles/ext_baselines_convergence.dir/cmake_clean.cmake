file(REMOVE_RECURSE
  "CMakeFiles/ext_baselines_convergence.dir/ext_baselines_convergence.cpp.o"
  "CMakeFiles/ext_baselines_convergence.dir/ext_baselines_convergence.cpp.o.d"
  "ext_baselines_convergence"
  "ext_baselines_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_baselines_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
