file(REMOVE_RECURSE
  "CMakeFiles/fig16_19_generalization.dir/fig16_19_generalization.cpp.o"
  "CMakeFiles/fig16_19_generalization.dir/fig16_19_generalization.cpp.o.d"
  "fig16_19_generalization"
  "fig16_19_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_19_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
