# Empty compiler generated dependencies file for fig16_19_generalization.
# This may be replaced when dependencies are built.
