file(REMOVE_RECURSE
  "CMakeFiles/ext_workflow_scheduling.dir/ext_workflow_scheduling.cpp.o"
  "CMakeFiles/ext_workflow_scheduling.dir/ext_workflow_scheduling.cpp.o.d"
  "ext_workflow_scheduling"
  "ext_workflow_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_workflow_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
