# Empty dependencies file for ext_workflow_scheduling.
# This may be replaced when dependencies are built.
