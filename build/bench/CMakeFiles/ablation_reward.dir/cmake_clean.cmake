file(REMOVE_RECURSE
  "CMakeFiles/ablation_reward.dir/ablation_reward.cpp.o"
  "CMakeFiles/ablation_reward.dir/ablation_reward.cpp.o.d"
  "ablation_reward"
  "ablation_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
