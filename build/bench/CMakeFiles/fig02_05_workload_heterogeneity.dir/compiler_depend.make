# Empty compiler generated dependencies file for fig02_05_workload_heterogeneity.
# This may be replaced when dependencies are built.
