file(REMOVE_RECURSE
  "CMakeFiles/fig02_05_workload_heterogeneity.dir/fig02_05_workload_heterogeneity.cpp.o"
  "CMakeFiles/fig02_05_workload_heterogeneity.dir/fig02_05_workload_heterogeneity.cpp.o.d"
  "fig02_05_workload_heterogeneity"
  "fig02_05_workload_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_05_workload_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
