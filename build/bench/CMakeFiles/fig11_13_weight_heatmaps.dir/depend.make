# Empty dependencies file for fig11_13_weight_heatmaps.
# This may be replaced when dependencies are built.
