file(REMOVE_RECURSE
  "CMakeFiles/fig11_13_weight_heatmaps.dir/fig11_13_weight_heatmaps.cpp.o"
  "CMakeFiles/fig11_13_weight_heatmaps.dir/fig11_13_weight_heatmaps.cpp.o.d"
  "fig11_13_weight_heatmaps"
  "fig11_13_weight_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_13_weight_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
