file(REMOVE_RECURSE
  "CMakeFiles/fig07_iso_vs_heter.dir/fig07_iso_vs_heter.cpp.o"
  "CMakeFiles/fig07_iso_vs_heter.dir/fig07_iso_vs_heter.cpp.o.d"
  "fig07_iso_vs_heter"
  "fig07_iso_vs_heter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_iso_vs_heter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
