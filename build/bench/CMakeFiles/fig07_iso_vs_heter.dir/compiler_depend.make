# Empty compiler generated dependencies file for fig07_iso_vs_heter.
# This may be replaced when dependencies are built.
