# Empty compiler generated dependencies file for ablation_pfrl_dm.
# This may be replaced when dependencies are built.
