file(REMOVE_RECURSE
  "CMakeFiles/ablation_pfrl_dm.dir/ablation_pfrl_dm.cpp.o"
  "CMakeFiles/ablation_pfrl_dm.dir/ablation_pfrl_dm.cpp.o.d"
  "ablation_pfrl_dm"
  "ablation_pfrl_dm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pfrl_dm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
