file(REMOVE_RECURSE
  "CMakeFiles/fig21_comm_frequency.dir/fig21_comm_frequency.cpp.o"
  "CMakeFiles/fig21_comm_frequency.dir/fig21_comm_frequency.cpp.o.d"
  "fig21_comm_frequency"
  "fig21_comm_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_comm_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
