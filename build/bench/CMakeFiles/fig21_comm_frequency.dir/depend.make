# Empty dependencies file for fig21_comm_frequency.
# This may be replaced when dependencies are built.
