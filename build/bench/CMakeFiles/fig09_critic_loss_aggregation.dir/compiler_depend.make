# Empty compiler generated dependencies file for fig09_critic_loss_aggregation.
# This may be replaced when dependencies are built.
