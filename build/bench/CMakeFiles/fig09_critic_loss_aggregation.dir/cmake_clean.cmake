file(REMOVE_RECURSE
  "CMakeFiles/fig09_critic_loss_aggregation.dir/fig09_critic_loss_aggregation.cpp.o"
  "CMakeFiles/fig09_critic_loss_aggregation.dir/fig09_critic_loss_aggregation.cpp.o.d"
  "fig09_critic_loss_aggregation"
  "fig09_critic_loss_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_critic_loss_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
