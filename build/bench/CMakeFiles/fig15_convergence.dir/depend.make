# Empty dependencies file for fig15_convergence.
# This may be replaced when dependencies are built.
