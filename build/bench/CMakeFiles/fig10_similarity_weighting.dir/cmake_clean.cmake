file(REMOVE_RECURSE
  "CMakeFiles/fig10_similarity_weighting.dir/fig10_similarity_weighting.cpp.o"
  "CMakeFiles/fig10_similarity_weighting.dir/fig10_similarity_weighting.cpp.o.d"
  "fig10_similarity_weighting"
  "fig10_similarity_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_similarity_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
