# Empty compiler generated dependencies file for fig10_similarity_weighting.
# This may be replaced when dependencies are built.
