# Empty compiler generated dependencies file for fig20_new_agent.
# This may be replaced when dependencies are built.
