file(REMOVE_RECURSE
  "CMakeFiles/fig20_new_agent.dir/fig20_new_agent.cpp.o"
  "CMakeFiles/fig20_new_agent.dir/fig20_new_agent.cpp.o.d"
  "fig20_new_agent"
  "fig20_new_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_new_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
