
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/pfrl_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/pfrl_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/pfrl_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/pfrl_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/pfrl_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/pfrl_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/pfrl_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/pfrl_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/nn/CMakeFiles/pfrl_nn.dir/matrix.cpp.o" "gcc" "src/nn/CMakeFiles/pfrl_nn.dir/matrix.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/nn/CMakeFiles/pfrl_nn.dir/mlp.cpp.o" "gcc" "src/nn/CMakeFiles/pfrl_nn.dir/mlp.cpp.o.d"
  "/root/repo/src/nn/similarity.cpp" "src/nn/CMakeFiles/pfrl_nn.dir/similarity.cpp.o" "gcc" "src/nn/CMakeFiles/pfrl_nn.dir/similarity.cpp.o.d"
  "/root/repo/src/nn/softmax.cpp" "src/nn/CMakeFiles/pfrl_nn.dir/softmax.cpp.o" "gcc" "src/nn/CMakeFiles/pfrl_nn.dir/softmax.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pfrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
