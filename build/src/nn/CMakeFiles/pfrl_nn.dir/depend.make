# Empty dependencies file for pfrl_nn.
# This may be replaced when dependencies are built.
