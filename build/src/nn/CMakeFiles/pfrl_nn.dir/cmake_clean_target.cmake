file(REMOVE_RECURSE
  "libpfrl_nn.a"
)
