# Empty compiler generated dependencies file for pfrl_nn.
# This may be replaced when dependencies are built.
