file(REMOVE_RECURSE
  "CMakeFiles/pfrl_nn.dir/activations.cpp.o"
  "CMakeFiles/pfrl_nn.dir/activations.cpp.o.d"
  "CMakeFiles/pfrl_nn.dir/adam.cpp.o"
  "CMakeFiles/pfrl_nn.dir/adam.cpp.o.d"
  "CMakeFiles/pfrl_nn.dir/attention.cpp.o"
  "CMakeFiles/pfrl_nn.dir/attention.cpp.o.d"
  "CMakeFiles/pfrl_nn.dir/linear.cpp.o"
  "CMakeFiles/pfrl_nn.dir/linear.cpp.o.d"
  "CMakeFiles/pfrl_nn.dir/matrix.cpp.o"
  "CMakeFiles/pfrl_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/pfrl_nn.dir/mlp.cpp.o"
  "CMakeFiles/pfrl_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/pfrl_nn.dir/similarity.cpp.o"
  "CMakeFiles/pfrl_nn.dir/similarity.cpp.o.d"
  "CMakeFiles/pfrl_nn.dir/softmax.cpp.o"
  "CMakeFiles/pfrl_nn.dir/softmax.cpp.o.d"
  "libpfrl_nn.a"
  "libpfrl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfrl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
