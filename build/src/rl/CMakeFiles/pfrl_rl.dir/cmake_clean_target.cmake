file(REMOVE_RECURSE
  "libpfrl_rl.a"
)
