# Empty dependencies file for pfrl_rl.
# This may be replaced when dependencies are built.
