
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/agent.cpp" "src/rl/CMakeFiles/pfrl_rl.dir/agent.cpp.o" "gcc" "src/rl/CMakeFiles/pfrl_rl.dir/agent.cpp.o.d"
  "/root/repo/src/rl/dual_critic_ppo.cpp" "src/rl/CMakeFiles/pfrl_rl.dir/dual_critic_ppo.cpp.o" "gcc" "src/rl/CMakeFiles/pfrl_rl.dir/dual_critic_ppo.cpp.o.d"
  "/root/repo/src/rl/ppo.cpp" "src/rl/CMakeFiles/pfrl_rl.dir/ppo.cpp.o" "gcc" "src/rl/CMakeFiles/pfrl_rl.dir/ppo.cpp.o.d"
  "/root/repo/src/rl/rollout.cpp" "src/rl/CMakeFiles/pfrl_rl.dir/rollout.cpp.o" "gcc" "src/rl/CMakeFiles/pfrl_rl.dir/rollout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/env/CMakeFiles/pfrl_env.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pfrl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pfrl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pfrl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
