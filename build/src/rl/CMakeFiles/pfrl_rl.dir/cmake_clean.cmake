file(REMOVE_RECURSE
  "CMakeFiles/pfrl_rl.dir/agent.cpp.o"
  "CMakeFiles/pfrl_rl.dir/agent.cpp.o.d"
  "CMakeFiles/pfrl_rl.dir/dual_critic_ppo.cpp.o"
  "CMakeFiles/pfrl_rl.dir/dual_critic_ppo.cpp.o.d"
  "CMakeFiles/pfrl_rl.dir/ppo.cpp.o"
  "CMakeFiles/pfrl_rl.dir/ppo.cpp.o.d"
  "CMakeFiles/pfrl_rl.dir/rollout.cpp.o"
  "CMakeFiles/pfrl_rl.dir/rollout.cpp.o.d"
  "libpfrl_rl.a"
  "libpfrl_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfrl_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
