
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalog.cpp" "src/workload/CMakeFiles/pfrl_workload.dir/catalog.cpp.o" "gcc" "src/workload/CMakeFiles/pfrl_workload.dir/catalog.cpp.o.d"
  "/root/repo/src/workload/dag.cpp" "src/workload/CMakeFiles/pfrl_workload.dir/dag.cpp.o" "gcc" "src/workload/CMakeFiles/pfrl_workload.dir/dag.cpp.o.d"
  "/root/repo/src/workload/distribution.cpp" "src/workload/CMakeFiles/pfrl_workload.dir/distribution.cpp.o" "gcc" "src/workload/CMakeFiles/pfrl_workload.dir/distribution.cpp.o.d"
  "/root/repo/src/workload/model.cpp" "src/workload/CMakeFiles/pfrl_workload.dir/model.cpp.o" "gcc" "src/workload/CMakeFiles/pfrl_workload.dir/model.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/pfrl_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/pfrl_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/pfrl_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/pfrl_workload.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pfrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
