file(REMOVE_RECURSE
  "libpfrl_workload.a"
)
