file(REMOVE_RECURSE
  "CMakeFiles/pfrl_workload.dir/catalog.cpp.o"
  "CMakeFiles/pfrl_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/pfrl_workload.dir/dag.cpp.o"
  "CMakeFiles/pfrl_workload.dir/dag.cpp.o.d"
  "CMakeFiles/pfrl_workload.dir/distribution.cpp.o"
  "CMakeFiles/pfrl_workload.dir/distribution.cpp.o.d"
  "CMakeFiles/pfrl_workload.dir/model.cpp.o"
  "CMakeFiles/pfrl_workload.dir/model.cpp.o.d"
  "CMakeFiles/pfrl_workload.dir/trace.cpp.o"
  "CMakeFiles/pfrl_workload.dir/trace.cpp.o.d"
  "CMakeFiles/pfrl_workload.dir/trace_io.cpp.o"
  "CMakeFiles/pfrl_workload.dir/trace_io.cpp.o.d"
  "libpfrl_workload.a"
  "libpfrl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfrl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
