# Empty compiler generated dependencies file for pfrl_workload.
# This may be replaced when dependencies are built.
