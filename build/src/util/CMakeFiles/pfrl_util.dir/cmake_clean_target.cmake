file(REMOVE_RECURSE
  "libpfrl_util.a"
)
