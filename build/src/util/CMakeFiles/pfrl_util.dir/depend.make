# Empty dependencies file for pfrl_util.
# This may be replaced when dependencies are built.
