file(REMOVE_RECURSE
  "CMakeFiles/pfrl_util.dir/cli.cpp.o"
  "CMakeFiles/pfrl_util.dir/cli.cpp.o.d"
  "CMakeFiles/pfrl_util.dir/csv.cpp.o"
  "CMakeFiles/pfrl_util.dir/csv.cpp.o.d"
  "CMakeFiles/pfrl_util.dir/logging.cpp.o"
  "CMakeFiles/pfrl_util.dir/logging.cpp.o.d"
  "CMakeFiles/pfrl_util.dir/rng.cpp.o"
  "CMakeFiles/pfrl_util.dir/rng.cpp.o.d"
  "CMakeFiles/pfrl_util.dir/serialization.cpp.o"
  "CMakeFiles/pfrl_util.dir/serialization.cpp.o.d"
  "CMakeFiles/pfrl_util.dir/table.cpp.o"
  "CMakeFiles/pfrl_util.dir/table.cpp.o.d"
  "CMakeFiles/pfrl_util.dir/thread_pool.cpp.o"
  "CMakeFiles/pfrl_util.dir/thread_pool.cpp.o.d"
  "libpfrl_util.a"
  "libpfrl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfrl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
