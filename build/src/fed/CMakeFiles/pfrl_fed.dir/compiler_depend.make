# Empty compiler generated dependencies file for pfrl_fed.
# This may be replaced when dependencies are built.
