file(REMOVE_RECURSE
  "CMakeFiles/pfrl_fed.dir/aggregator.cpp.o"
  "CMakeFiles/pfrl_fed.dir/aggregator.cpp.o.d"
  "CMakeFiles/pfrl_fed.dir/attention_aggregator.cpp.o"
  "CMakeFiles/pfrl_fed.dir/attention_aggregator.cpp.o.d"
  "CMakeFiles/pfrl_fed.dir/bus.cpp.o"
  "CMakeFiles/pfrl_fed.dir/bus.cpp.o.d"
  "CMakeFiles/pfrl_fed.dir/client.cpp.o"
  "CMakeFiles/pfrl_fed.dir/client.cpp.o.d"
  "CMakeFiles/pfrl_fed.dir/fedavg.cpp.o"
  "CMakeFiles/pfrl_fed.dir/fedavg.cpp.o.d"
  "CMakeFiles/pfrl_fed.dir/mfpo.cpp.o"
  "CMakeFiles/pfrl_fed.dir/mfpo.cpp.o.d"
  "CMakeFiles/pfrl_fed.dir/server.cpp.o"
  "CMakeFiles/pfrl_fed.dir/server.cpp.o.d"
  "CMakeFiles/pfrl_fed.dir/trainer.cpp.o"
  "CMakeFiles/pfrl_fed.dir/trainer.cpp.o.d"
  "libpfrl_fed.a"
  "libpfrl_fed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfrl_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
