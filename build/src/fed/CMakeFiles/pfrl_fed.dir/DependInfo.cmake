
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fed/aggregator.cpp" "src/fed/CMakeFiles/pfrl_fed.dir/aggregator.cpp.o" "gcc" "src/fed/CMakeFiles/pfrl_fed.dir/aggregator.cpp.o.d"
  "/root/repo/src/fed/attention_aggregator.cpp" "src/fed/CMakeFiles/pfrl_fed.dir/attention_aggregator.cpp.o" "gcc" "src/fed/CMakeFiles/pfrl_fed.dir/attention_aggregator.cpp.o.d"
  "/root/repo/src/fed/bus.cpp" "src/fed/CMakeFiles/pfrl_fed.dir/bus.cpp.o" "gcc" "src/fed/CMakeFiles/pfrl_fed.dir/bus.cpp.o.d"
  "/root/repo/src/fed/client.cpp" "src/fed/CMakeFiles/pfrl_fed.dir/client.cpp.o" "gcc" "src/fed/CMakeFiles/pfrl_fed.dir/client.cpp.o.d"
  "/root/repo/src/fed/fedavg.cpp" "src/fed/CMakeFiles/pfrl_fed.dir/fedavg.cpp.o" "gcc" "src/fed/CMakeFiles/pfrl_fed.dir/fedavg.cpp.o.d"
  "/root/repo/src/fed/mfpo.cpp" "src/fed/CMakeFiles/pfrl_fed.dir/mfpo.cpp.o" "gcc" "src/fed/CMakeFiles/pfrl_fed.dir/mfpo.cpp.o.d"
  "/root/repo/src/fed/server.cpp" "src/fed/CMakeFiles/pfrl_fed.dir/server.cpp.o" "gcc" "src/fed/CMakeFiles/pfrl_fed.dir/server.cpp.o.d"
  "/root/repo/src/fed/trainer.cpp" "src/fed/CMakeFiles/pfrl_fed.dir/trainer.cpp.o" "gcc" "src/fed/CMakeFiles/pfrl_fed.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rl/CMakeFiles/pfrl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pfrl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfrl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/pfrl_env.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pfrl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pfrl_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
