file(REMOVE_RECURSE
  "libpfrl_fed.a"
)
