# Empty dependencies file for pfrl_stats.
# This may be replaced when dependencies are built.
