file(REMOVE_RECURSE
  "libpfrl_stats.a"
)
