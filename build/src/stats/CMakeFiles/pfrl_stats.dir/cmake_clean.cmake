file(REMOVE_RECURSE
  "CMakeFiles/pfrl_stats.dir/ecdf.cpp.o"
  "CMakeFiles/pfrl_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/pfrl_stats.dir/summary.cpp.o"
  "CMakeFiles/pfrl_stats.dir/summary.cpp.o.d"
  "CMakeFiles/pfrl_stats.dir/wilcoxon.cpp.o"
  "CMakeFiles/pfrl_stats.dir/wilcoxon.cpp.o.d"
  "libpfrl_stats.a"
  "libpfrl_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfrl_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
