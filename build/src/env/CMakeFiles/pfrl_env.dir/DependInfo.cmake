
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/heuristic_policies.cpp" "src/env/CMakeFiles/pfrl_env.dir/heuristic_policies.cpp.o" "gcc" "src/env/CMakeFiles/pfrl_env.dir/heuristic_policies.cpp.o.d"
  "/root/repo/src/env/observation.cpp" "src/env/CMakeFiles/pfrl_env.dir/observation.cpp.o" "gcc" "src/env/CMakeFiles/pfrl_env.dir/observation.cpp.o.d"
  "/root/repo/src/env/reward.cpp" "src/env/CMakeFiles/pfrl_env.dir/reward.cpp.o" "gcc" "src/env/CMakeFiles/pfrl_env.dir/reward.cpp.o.d"
  "/root/repo/src/env/scheduling_env.cpp" "src/env/CMakeFiles/pfrl_env.dir/scheduling_env.cpp.o" "gcc" "src/env/CMakeFiles/pfrl_env.dir/scheduling_env.cpp.o.d"
  "/root/repo/src/env/workflow_env.cpp" "src/env/CMakeFiles/pfrl_env.dir/workflow_env.cpp.o" "gcc" "src/env/CMakeFiles/pfrl_env.dir/workflow_env.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pfrl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pfrl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
