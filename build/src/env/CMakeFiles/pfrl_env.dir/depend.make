# Empty dependencies file for pfrl_env.
# This may be replaced when dependencies are built.
