file(REMOVE_RECURSE
  "CMakeFiles/pfrl_env.dir/heuristic_policies.cpp.o"
  "CMakeFiles/pfrl_env.dir/heuristic_policies.cpp.o.d"
  "CMakeFiles/pfrl_env.dir/observation.cpp.o"
  "CMakeFiles/pfrl_env.dir/observation.cpp.o.d"
  "CMakeFiles/pfrl_env.dir/reward.cpp.o"
  "CMakeFiles/pfrl_env.dir/reward.cpp.o.d"
  "CMakeFiles/pfrl_env.dir/scheduling_env.cpp.o"
  "CMakeFiles/pfrl_env.dir/scheduling_env.cpp.o.d"
  "CMakeFiles/pfrl_env.dir/workflow_env.cpp.o"
  "CMakeFiles/pfrl_env.dir/workflow_env.cpp.o.d"
  "libpfrl_env.a"
  "libpfrl_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfrl_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
