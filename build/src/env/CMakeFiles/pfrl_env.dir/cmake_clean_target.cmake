file(REMOVE_RECURSE
  "libpfrl_env.a"
)
