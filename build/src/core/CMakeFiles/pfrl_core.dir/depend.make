# Empty dependencies file for pfrl_core.
# This may be replaced when dependencies are built.
