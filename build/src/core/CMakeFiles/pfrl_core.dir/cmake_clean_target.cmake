file(REMOVE_RECURSE
  "libpfrl_core.a"
)
