file(REMOVE_RECURSE
  "CMakeFiles/pfrl_core.dir/checkpoint.cpp.o"
  "CMakeFiles/pfrl_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/pfrl_core.dir/federation.cpp.o"
  "CMakeFiles/pfrl_core.dir/federation.cpp.o.d"
  "CMakeFiles/pfrl_core.dir/presets.cpp.o"
  "CMakeFiles/pfrl_core.dir/presets.cpp.o.d"
  "libpfrl_core.a"
  "libpfrl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfrl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
