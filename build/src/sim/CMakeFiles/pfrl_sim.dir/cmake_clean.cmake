file(REMOVE_RECURSE
  "CMakeFiles/pfrl_sim.dir/cluster.cpp.o"
  "CMakeFiles/pfrl_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/pfrl_sim.dir/metrics.cpp.o"
  "CMakeFiles/pfrl_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/pfrl_sim.dir/vm.cpp.o"
  "CMakeFiles/pfrl_sim.dir/vm.cpp.o.d"
  "libpfrl_sim.a"
  "libpfrl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfrl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
