# Empty compiler generated dependencies file for pfrl_sim.
# This may be replaced when dependencies are built.
