file(REMOVE_RECURSE
  "libpfrl_sim.a"
)
