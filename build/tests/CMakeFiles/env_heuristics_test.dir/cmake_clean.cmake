file(REMOVE_RECURSE
  "CMakeFiles/env_heuristics_test.dir/env_heuristics_test.cpp.o"
  "CMakeFiles/env_heuristics_test.dir/env_heuristics_test.cpp.o.d"
  "env_heuristics_test"
  "env_heuristics_test.pdb"
  "env_heuristics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_heuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
