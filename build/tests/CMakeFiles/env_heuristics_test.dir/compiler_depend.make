# Empty compiler generated dependencies file for env_heuristics_test.
# This may be replaced when dependencies are built.
