file(REMOVE_RECURSE
  "CMakeFiles/fed_trainer_test.dir/fed_trainer_test.cpp.o"
  "CMakeFiles/fed_trainer_test.dir/fed_trainer_test.cpp.o.d"
  "fed_trainer_test"
  "fed_trainer_test.pdb"
  "fed_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
