# Empty dependencies file for fed_trainer_test.
# This may be replaced when dependencies are built.
