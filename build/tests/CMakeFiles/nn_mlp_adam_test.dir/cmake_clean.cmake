file(REMOVE_RECURSE
  "CMakeFiles/nn_mlp_adam_test.dir/nn_mlp_adam_test.cpp.o"
  "CMakeFiles/nn_mlp_adam_test.dir/nn_mlp_adam_test.cpp.o.d"
  "nn_mlp_adam_test"
  "nn_mlp_adam_test.pdb"
  "nn_mlp_adam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_mlp_adam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
