file(REMOVE_RECURSE
  "CMakeFiles/fed_extended_test.dir/fed_extended_test.cpp.o"
  "CMakeFiles/fed_extended_test.dir/fed_extended_test.cpp.o.d"
  "fed_extended_test"
  "fed_extended_test.pdb"
  "fed_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
