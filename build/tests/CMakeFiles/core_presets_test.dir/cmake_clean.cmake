file(REMOVE_RECURSE
  "CMakeFiles/core_presets_test.dir/core_presets_test.cpp.o"
  "CMakeFiles/core_presets_test.dir/core_presets_test.cpp.o.d"
  "core_presets_test"
  "core_presets_test.pdb"
  "core_presets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_presets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
