file(REMOVE_RECURSE
  "CMakeFiles/fed_bus_test.dir/fed_bus_test.cpp.o"
  "CMakeFiles/fed_bus_test.dir/fed_bus_test.cpp.o.d"
  "fed_bus_test"
  "fed_bus_test.pdb"
  "fed_bus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
