file(REMOVE_RECURSE
  "CMakeFiles/rl_rollout_test.dir/rl_rollout_test.cpp.o"
  "CMakeFiles/rl_rollout_test.dir/rl_rollout_test.cpp.o.d"
  "rl_rollout_test"
  "rl_rollout_test.pdb"
  "rl_rollout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_rollout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
