# Empty compiler generated dependencies file for rl_rollout_test.
# This may be replaced when dependencies are built.
