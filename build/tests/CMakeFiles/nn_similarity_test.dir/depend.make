# Empty dependencies file for nn_similarity_test.
# This may be replaced when dependencies are built.
