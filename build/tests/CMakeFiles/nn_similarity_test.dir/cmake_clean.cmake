file(REMOVE_RECURSE
  "CMakeFiles/nn_similarity_test.dir/nn_similarity_test.cpp.o"
  "CMakeFiles/nn_similarity_test.dir/nn_similarity_test.cpp.o.d"
  "nn_similarity_test"
  "nn_similarity_test.pdb"
  "nn_similarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
