file(REMOVE_RECURSE
  "CMakeFiles/rl_ppo_test.dir/rl_ppo_test.cpp.o"
  "CMakeFiles/rl_ppo_test.dir/rl_ppo_test.cpp.o.d"
  "rl_ppo_test"
  "rl_ppo_test.pdb"
  "rl_ppo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_ppo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
