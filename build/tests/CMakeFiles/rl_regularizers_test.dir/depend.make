# Empty dependencies file for rl_regularizers_test.
# This may be replaced when dependencies are built.
