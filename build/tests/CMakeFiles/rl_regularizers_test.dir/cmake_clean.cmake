file(REMOVE_RECURSE
  "CMakeFiles/rl_regularizers_test.dir/rl_regularizers_test.cpp.o"
  "CMakeFiles/rl_regularizers_test.dir/rl_regularizers_test.cpp.o.d"
  "rl_regularizers_test"
  "rl_regularizers_test.pdb"
  "rl_regularizers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_regularizers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
