# Empty dependencies file for fed_protocol_test.
# This may be replaced when dependencies are built.
