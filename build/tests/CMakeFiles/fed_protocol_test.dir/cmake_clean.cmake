file(REMOVE_RECURSE
  "CMakeFiles/fed_protocol_test.dir/fed_protocol_test.cpp.o"
  "CMakeFiles/fed_protocol_test.dir/fed_protocol_test.cpp.o.d"
  "fed_protocol_test"
  "fed_protocol_test.pdb"
  "fed_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
