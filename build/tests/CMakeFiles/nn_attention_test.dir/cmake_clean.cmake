file(REMOVE_RECURSE
  "CMakeFiles/nn_attention_test.dir/nn_attention_test.cpp.o"
  "CMakeFiles/nn_attention_test.dir/nn_attention_test.cpp.o.d"
  "nn_attention_test"
  "nn_attention_test.pdb"
  "nn_attention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_attention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
