# Empty compiler generated dependencies file for util_serialization_test.
# This may be replaced when dependencies are built.
