file(REMOVE_RECURSE
  "CMakeFiles/util_serialization_test.dir/util_serialization_test.cpp.o"
  "CMakeFiles/util_serialization_test.dir/util_serialization_test.cpp.o.d"
  "util_serialization_test"
  "util_serialization_test.pdb"
  "util_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
