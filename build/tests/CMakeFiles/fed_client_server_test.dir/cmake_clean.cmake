file(REMOVE_RECURSE
  "CMakeFiles/fed_client_server_test.dir/fed_client_server_test.cpp.o"
  "CMakeFiles/fed_client_server_test.dir/fed_client_server_test.cpp.o.d"
  "fed_client_server_test"
  "fed_client_server_test.pdb"
  "fed_client_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_client_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
