# Empty dependencies file for env_workflow_test.
# This may be replaced when dependencies are built.
