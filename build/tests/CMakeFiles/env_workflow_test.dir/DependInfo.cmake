
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/env_workflow_test.cpp" "tests/CMakeFiles/env_workflow_test.dir/env_workflow_test.cpp.o" "gcc" "tests/CMakeFiles/env_workflow_test.dir/env_workflow_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pfrl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fed/CMakeFiles/pfrl_fed.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/pfrl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/pfrl_env.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pfrl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pfrl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pfrl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pfrl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
