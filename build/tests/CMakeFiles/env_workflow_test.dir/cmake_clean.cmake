file(REMOVE_RECURSE
  "CMakeFiles/env_workflow_test.dir/env_workflow_test.cpp.o"
  "CMakeFiles/env_workflow_test.dir/env_workflow_test.cpp.o.d"
  "env_workflow_test"
  "env_workflow_test.pdb"
  "env_workflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_workflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
