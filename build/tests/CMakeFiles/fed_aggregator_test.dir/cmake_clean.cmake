file(REMOVE_RECURSE
  "CMakeFiles/fed_aggregator_test.dir/fed_aggregator_test.cpp.o"
  "CMakeFiles/fed_aggregator_test.dir/fed_aggregator_test.cpp.o.d"
  "fed_aggregator_test"
  "fed_aggregator_test.pdb"
  "fed_aggregator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_aggregator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
