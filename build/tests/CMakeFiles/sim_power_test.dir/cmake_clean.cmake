file(REMOVE_RECURSE
  "CMakeFiles/sim_power_test.dir/sim_power_test.cpp.o"
  "CMakeFiles/sim_power_test.dir/sim_power_test.cpp.o.d"
  "sim_power_test"
  "sim_power_test.pdb"
  "sim_power_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
