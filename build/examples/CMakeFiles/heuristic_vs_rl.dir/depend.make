# Empty dependencies file for heuristic_vs_rl.
# This may be replaced when dependencies are built.
