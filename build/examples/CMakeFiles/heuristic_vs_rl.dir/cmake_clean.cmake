file(REMOVE_RECURSE
  "CMakeFiles/heuristic_vs_rl.dir/heuristic_vs_rl.cpp.o"
  "CMakeFiles/heuristic_vs_rl.dir/heuristic_vs_rl.cpp.o.d"
  "heuristic_vs_rl"
  "heuristic_vs_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_vs_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
