file(REMOVE_RECURSE
  "CMakeFiles/hybrid_workload_eval.dir/hybrid_workload_eval.cpp.o"
  "CMakeFiles/hybrid_workload_eval.dir/hybrid_workload_eval.cpp.o.d"
  "hybrid_workload_eval"
  "hybrid_workload_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_workload_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
