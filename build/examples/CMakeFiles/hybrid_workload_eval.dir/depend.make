# Empty dependencies file for hybrid_workload_eval.
# This may be replaced when dependencies are built.
