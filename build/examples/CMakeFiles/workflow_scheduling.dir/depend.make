# Empty dependencies file for workflow_scheduling.
# This may be replaced when dependencies are built.
