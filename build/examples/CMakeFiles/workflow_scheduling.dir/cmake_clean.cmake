file(REMOVE_RECURSE
  "CMakeFiles/workflow_scheduling.dir/workflow_scheduling.cpp.o"
  "CMakeFiles/workflow_scheduling.dir/workflow_scheduling.cpp.o.d"
  "workflow_scheduling"
  "workflow_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
