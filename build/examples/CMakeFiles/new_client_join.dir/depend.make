# Empty dependencies file for new_client_join.
# This may be replaced when dependencies are built.
