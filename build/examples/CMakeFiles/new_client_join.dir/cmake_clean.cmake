file(REMOVE_RECURSE
  "CMakeFiles/new_client_join.dir/new_client_join.cpp.o"
  "CMakeFiles/new_client_join.dir/new_client_join.cpp.o.d"
  "new_client_join"
  "new_client_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/new_client_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
