# Empty dependencies file for heterogeneous_federation.
# This may be replaced when dependencies are built.
