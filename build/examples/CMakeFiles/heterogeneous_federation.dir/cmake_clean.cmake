file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_federation.dir/heterogeneous_federation.cpp.o"
  "CMakeFiles/heterogeneous_federation.dir/heterogeneous_federation.cpp.o.d"
  "heterogeneous_federation"
  "heterogeneous_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
