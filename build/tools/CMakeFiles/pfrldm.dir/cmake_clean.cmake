file(REMOVE_RECURSE
  "CMakeFiles/pfrldm.dir/pfrldm_cli.cpp.o"
  "CMakeFiles/pfrldm.dir/pfrldm_cli.cpp.o.d"
  "pfrldm"
  "pfrldm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfrldm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
