# Empty dependencies file for pfrldm.
# This may be replaced when dependencies are built.
