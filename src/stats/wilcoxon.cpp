#include "stats/wilcoxon.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pfrl::stats {

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

namespace {

struct RankedDiffs {
  std::vector<double> ranks;     // average ranks of |d|
  std::vector<bool> positive;    // sign of d
  double tie_correction = 0.0;   // sum over tie groups of (t^3 - t)
  bool has_ties = false;
};

RankedDiffs rank_differences(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("wilcoxon_signed_rank: unequal sample sizes");
  std::vector<double> diffs;
  diffs.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back(d);
  }
  RankedDiffs out;
  const std::size_t n = diffs.size();
  if (n == 0) return out;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return std::fabs(diffs[i]) < std::fabs(diffs[j]); });

  out.ranks.resize(n);
  out.positive.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.positive[i] = diffs[i] > 0.0;

  // Average ranks over groups of tied |d|.
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && std::fabs(diffs[order[j + 1]]) == std::fabs(diffs[order[i]])) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    const auto tie_size = static_cast<double>(j - i + 1);
    if (j > i) {
      out.has_ties = true;
      out.tie_correction += tie_size * tie_size * tie_size - tie_size;
    }
    for (std::size_t k = i; k <= j; ++k) out.ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return out;
}

/// Exact two-sided p-value by dynamic programming over the distribution of
/// W+ under H0 (each rank independently + or - with probability 1/2).
/// Requires integer ranks (no ties).
double exact_p_value(double w_plus, std::size_t n) {
  const std::size_t max_sum = n * (n + 1) / 2;
  // count[s] = number of sign assignments with W+ == s.
  std::vector<double> count(max_sum + 1, 0.0);
  count[0] = 1.0;
  for (std::size_t rank = 1; rank <= n; ++rank)
    for (std::size_t s = max_sum + 1; s-- > rank;) count[s] += count[s - rank];

  const double total = std::pow(2.0, static_cast<double>(n));
  // Two-sided: P(W+ <= w) + P(W+ >= max_sum - w) using symmetry.
  const auto w = static_cast<std::size_t>(w_plus + 0.5);
  double tail = 0.0;
  for (std::size_t s = 0; s <= std::min(w, max_sum); ++s) tail += count[s];
  double p = 2.0 * tail / total;
  return std::min(p, 1.0);
}

}  // namespace

WilcoxonResult wilcoxon_signed_rank(std::span<const double> a, std::span<const double> b) {
  const RankedDiffs ranked = rank_differences(a, b);
  WilcoxonResult result;
  result.n = ranked.ranks.size();
  if (result.n == 0) return result;  // all pairs equal -> p = 1

  double w_plus = 0.0;
  double w_minus = 0.0;
  for (std::size_t i = 0; i < ranked.ranks.size(); ++i)
    (ranked.positive[i] ? w_plus : w_minus) += ranked.ranks[i];
  result.statistic = std::min(w_plus, w_minus);

  const auto n = static_cast<double>(result.n);
  if (result.n <= 25 && !ranked.has_ties) {
    result.exact = true;
    result.p_value = exact_p_value(result.statistic, result.n);
    return result;
  }

  // Normal approximation with continuity and tie corrections.
  const double mean_w = n * (n + 1.0) / 4.0;
  const double var_w = n * (n + 1.0) * (2.0 * n + 1.0) / 24.0 - ranked.tie_correction / 48.0;
  if (var_w <= 0.0) {
    result.p_value = 1.0;
    return result;
  }
  const double z = (result.statistic - mean_w + 0.5) / std::sqrt(var_w);
  result.p_value = std::min(1.0, 2.0 * normal_cdf(z));
  return result;
}

}  // namespace pfrl::stats
