#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

namespace pfrl::stats {

Ecdf::Ecdf(std::span<const double> samples) : sorted_(samples.begin(), samples.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1 ? hi : lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

std::vector<HistogramBin> histogram(std::span<const double> samples, std::size_t bins) {
  std::vector<HistogramBin> out;
  if (samples.empty() || bins == 0) return out;
  const auto [min_it, max_it] = std::minmax_element(samples.begin(), samples.end());
  const double lo = *min_it;
  double hi = *max_it;
  if (hi == lo) hi = lo + 1.0;  // degenerate: everything in one bin
  const double width = (hi - lo) / static_cast<double>(bins);
  out.resize(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    out[b].lo = lo + width * static_cast<double>(b);
    out[b].hi = out[b].lo + width;
  }
  for (const double v : samples) {
    auto idx = static_cast<std::size_t>((v - lo) / width);
    if (idx >= bins) idx = bins - 1;  // max value lands in the last bin
    ++out[idx].count;
  }
  for (auto& bin : out)
    bin.fraction = static_cast<double>(bin.count) / static_cast<double>(samples.size());
  return out;
}

}  // namespace pfrl::stats
