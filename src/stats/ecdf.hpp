// Empirical CDF and fixed-width histograms — used to print the workload
// heterogeneity panels (Figs. 2–5: request distributions, arrival rates,
// execution-time CDFs).
#pragma once

#include <span>
#include <vector>

namespace pfrl::stats {

/// Immutable empirical distribution over a sample set.
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> samples);

  /// P(X <= x).
  double at(double x) const;

  /// Evaluates the ECDF at `points` evenly spaced values spanning
  /// [min, max]; returns {x, F(x)} pairs — one printable CDF curve.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

  std::size_t sample_count() const { return sorted_.size(); }
  double min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
  double max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }

 private:
  std::vector<double> sorted_;
};

struct HistogramBin {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t count = 0;
  double fraction = 0.0;
};

/// Fixed-width histogram over [min, max] of the samples.
std::vector<HistogramBin> histogram(std::span<const double> samples, std::size_t bins);

}  // namespace pfrl::stats
