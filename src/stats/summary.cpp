#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace pfrl::stats {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (const double v : samples) acc += v;
  return acc / static_cast<double>(samples.size());
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  s.mean = mean(samples);
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile_sorted(sorted, 0.5);
  s.q25 = quantile_sorted(sorted, 0.25);
  s.q75 = quantile_sorted(sorted, 0.75);

  if (samples.size() > 1) {
    double acc = 0.0;
    for (const double v : samples) acc += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(samples.size() - 1));
  }
  return s;
}

std::vector<double> ema_smooth(std::span<const double> series, double alpha) {
  std::vector<double> out;
  out.reserve(series.size());
  double state = series.empty() ? 0.0 : series.front();
  for (const double v : series) {
    state = alpha * v + (1.0 - alpha) * state;
    out.push_back(state);
  }
  return out;
}

}  // namespace pfrl::stats
