// Wilcoxon signed-rank test (paired, two-sided) — Table 4 of the paper
// reports pair-wise p-values between PFRL-DM and each baseline across the
// ten clients' metric results.
#pragma once

#include <span>

namespace pfrl::stats {

struct WilcoxonResult {
  double statistic = 0.0;   // W = min(W+, W-)
  double p_value = 1.0;     // two-sided
  std::size_t n = 0;        // effective pairs (zero differences dropped)
  bool exact = false;       // exact enumeration vs normal approximation
};

/// Paired two-sided test of H0: median difference == 0.
/// Zero differences are dropped (standard practice); ties get average
/// ranks. n <= 25 uses exact enumeration of the W+ distribution (valid
/// only without ties — falls back to the normal approximation with tie
/// correction otherwise); larger n uses the normal approximation with
/// continuity correction.
WilcoxonResult wilcoxon_signed_rank(std::span<const double> a, std::span<const double> b);

/// Standard normal CDF.
double normal_cdf(double z);

}  // namespace pfrl::stats
