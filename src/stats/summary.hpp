// Summary statistics over metric samples (means across clients/episodes,
// quantiles for the Figs. 16–19 box-style distributions).
#pragma once

#include <span>
#include <vector>

namespace pfrl::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;
};

/// Computes all fields in one pass over a copy (needs sorting for the
/// quantiles). Empty input yields an all-zero summary with count == 0.
Summary summarize(std::span<const double> samples);

/// Linear-interpolation quantile of *sorted* samples, q in [0, 1].
double quantile_sorted(std::span<const double> sorted, double q);

double mean(std::span<const double> samples);

/// Exponential moving average smoothing used when printing convergence
/// curves (the paper's reward plots are visibly smoothed).
std::vector<double> ema_smooth(std::span<const double> series, double alpha);

}  // namespace pfrl::stats
