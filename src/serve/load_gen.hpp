// In-process load generator for the policy-serving engine: simulated
// tenants driving a PolicyServer closed-loop, each keeping a bounded
// window of requests in flight. Shared by `pfrldm serve-policy` and
// bench/ext_serving_throughput, so the CLI demo and the perf gate
// measure the same traffic shape.
#pragma once

#include <cstddef>
#include <cstdint>

#include "serve/policy_server.hpp"

namespace pfrl::serve {

struct LoadGenConfig {
  /// Concurrent tenant threads, each its own closed loop.
  std::size_t tenants = 8;
  std::size_t requests_per_tenant = 10000;
  /// Max requests one tenant keeps in flight. Larger windows let the
  /// shard workers form bigger batches.
  std::size_t window = 32;
  /// Seeds the per-tenant state generators (tenant t uses seed + t).
  std::uint64_t seed = 42;
};

/// What one load run measured. Latency percentiles come from the
/// server's enqueue→decision histogram over this run (the caller resets
/// the histogram via obs::metrics().reset_values() if isolation across
/// runs matters — run_load does not, so back-to-back runs accumulate).
struct LoadGenReport {
  std::uint64_t decisions = 0;
  /// submit() rejections (ring full) that tenants retried — backpressure
  /// events, not lost requests; the closed loop retries until accepted.
  std::uint64_t retries = 0;
  double wall_seconds = 0.0;
  double decisions_per_sec = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  /// forward calls the server issued during the run, and the resulting
  /// mean coalesced batch size (decisions / batches).
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  /// Per-shard hot swaps that happened mid-run.
  std::uint64_t swaps = 0;
};

/// Drives `server` (already start()ed) with config.tenants closed-loop
/// threads and blocks until every request has a decision. Thread-safe
/// with a concurrent snapshot writer — that is the serve-while-training
/// demo. Throws std::invalid_argument on a zero-tenant/zero-request
/// config.
LoadGenReport run_load(PolicyServer& server, const LoadGenConfig& config);

}  // namespace pfrl::serve
