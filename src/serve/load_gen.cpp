#include "serve/load_gen.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace pfrl::serve {

namespace {

/// Counts decisions for one tenant. Per-tenant request FIFO (same shard,
/// same ring, in-order drain) means decision k completing implies all
/// requests < k completed, which is what makes window-slot reuse safe.
class CountingSink final : public DecisionSink {
 public:
  void on_decision(std::uint64_t /*request_id*/, int /*action*/) override {
    completed_.fetch_add(1, std::memory_order_release);
  }
  std::uint64_t completed() const { return completed_.load(std::memory_order_acquire); }

 private:
  std::atomic<std::uint64_t> completed_{0};
};

}  // namespace

LoadGenReport run_load(PolicyServer& server, const LoadGenConfig& config) {
  if (config.tenants == 0 || config.requests_per_tenant == 0)
    throw std::invalid_argument("run_load: tenants and requests_per_tenant must be > 0");
  const std::size_t window = std::max<std::size_t>(1, config.window);
  const std::size_t dim = server.state_dim();

  const std::uint64_t decisions_before = server.decisions();
  const std::uint64_t batches_before = server.batches();
  const std::uint64_t swaps_before = server.swap_count();

  std::atomic<std::uint64_t> retries{0};
  std::vector<std::thread> tenants;
  tenants.reserve(config.tenants);
  const auto started = std::chrono::steady_clock::now();

  for (std::size_t t = 0; t < config.tenants; ++t) {
    tenants.emplace_back([&, t] {
      util::Rng rng(config.seed + t);
      // One state row per window slot; slot seq % window is only reused
      // after its previous request's decision fired (FIFO + window gate),
      // so rows stay valid for the whole in-flight lifetime.
      std::vector<float> pool(window * dim);
      for (float& v : pool) v = static_cast<float>(rng.uniform());
      CountingSink sink;
      const auto tenant = static_cast<std::uint32_t>(t);

      for (std::size_t seq = 0; seq < config.requests_per_tenant; ++seq) {
        while (seq - sink.completed() >= window) std::this_thread::yield();
        const std::span<const float> state(pool.data() + (seq % window) * dim, dim);
        while (!server.submit(tenant, state, seq, sink)) {
          retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      }
      while (sink.completed() < config.requests_per_tenant) std::this_thread::yield();
    });
  }
  for (std::thread& tenant : tenants) tenant.join();
  const auto finished = std::chrono::steady_clock::now();

  LoadGenReport report;
  report.decisions = server.decisions() - decisions_before;
  report.retries = retries.load(std::memory_order_relaxed);
  report.wall_seconds = std::chrono::duration<double>(finished - started).count();
  report.decisions_per_sec =
      report.wall_seconds > 0.0 ? static_cast<double>(report.decisions) / report.wall_seconds : 0.0;
  const obs::Histogram& latency = server.latency_histogram();
  report.p50_us = latency.quantile(0.50);
  report.p95_us = latency.quantile(0.95);
  report.p99_us = latency.quantile(0.99);
  report.batches = server.batches() - batches_before;
  report.mean_batch =
      report.batches > 0 ? static_cast<double>(report.decisions) / static_cast<double>(report.batches)
                         : 0.0;
  report.swaps = server.swap_count() - swaps_before;
  return report;
}

}  // namespace pfrl::serve
