// The policy-serving engine: a long-lived scheduler that answers
// placement requests from many concurrent tenants with a trained policy
// (ROADMAP item 2, grounded in "Scalable Reinforcement Learning for
// Virtual Machine Scheduling").
//
// Architecture (DESIGN.md "Policy-serving engine"):
//
//   tenants ──submit──▶ per-shard bounded MPSC ring ──▶ shard worker
//                                                        │  drain ≤ max_batch
//                                                        │  1 row  → fused GEMV row plan
//                                                        │  n rows → forward_batch GEMM
//                                                        ▼
//                                                   DecisionSink callback
//
//  - Sharding: tenant id hashes to a shard, so each tenant's requests are
//    answered in order by one worker. Each shard owns a private model
//    replica — no lock is ever taken on the decision path.
//  - Adaptive micro-batching: a worker drains whatever is queued (up to
//    max_batch) into one forward_batch call; batch size grows with load
//    and collapses to the allocation-free single-row plan when traffic is
//    light. coalesce_wait_us optionally trades a bounded wait for fuller
//    batches.
//  - Load shedding: the rings are bounded; submit() returns false instead
//    of queueing unboundedly when a shard is saturated.
//  - Hot swap: a poller watches a core::SnapshotDir for new policy
//    generations (written by a concurrently-running trainer). A validated
//    generation is published as (epoch, flat params); workers adopt it at
//    a batch boundary, so an in-flight batch always runs on a complete,
//    CRC-validated model — never a torn one. Snapshot decode runs on the
//    pool's spare thread via try_submit, so a slow disk sheds poll ticks
//    instead of stacking them.
//
// Latency accounting: enqueue→decision histograms (fine sub-microsecond
// buckets), batch-size distribution, queue depth, and swap counters all
// land in the obs metrics registry under serve/*.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "nn/mlp.hpp"
#include "obs/metrics.hpp"
#include "serve/request_queue.hpp"
#include "util/thread_pool.hpp"

namespace pfrl::serve {

struct PolicyServerConfig {
  /// Worker shards, each with a private model replica. 0 picks
  /// max(1, hardware_concurrency / 2).
  std::size_t shards = 2;
  /// Per-shard ring capacity (rounded up to a power of two). Requests
  /// beyond it are shed at submit().
  std::size_t queue_capacity = 4096;
  /// Most requests coalesced into one forward_batch call.
  std::size_t max_batch = 64;
  /// When > 0 and a drained batch is smaller than max_batch, the worker
  /// keeps draining for up to this long before deciding — trades a
  /// bounded latency add for fuller batches under moderate load.
  std::uint32_t coalesce_wait_us = 0;
  /// How often the snapshot poller looks for a new policy generation.
  std::chrono::milliseconds snapshot_poll{25};
  /// Generation stem inside the watched SnapshotDir (`<stem>-<n>.pfc`).
  std::string snapshot_stem = "policy";
};

/// Where decisions are delivered. Called on a shard worker thread, once
/// per submitted request; implementations synchronize their own state.
class DecisionSink {
 public:
  virtual ~DecisionSink() = default;
  virtual void on_decision(std::uint64_t request_id, int action) = 0;
};

/// What a placement request carries through the ring. POD so the ring
/// never allocates; the state floats stay caller-owned.
struct Request {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  const float* state = nullptr;
  DecisionSink* sink = nullptr;
  std::chrono::steady_clock::time_point enqueued{};
};

class PolicyServer {
 public:
  /// Serves greedy decisions from `actor` (logit argmax — the same
  /// deterministic policy evaluation uses). The actor is copied into one
  /// replica per shard.
  explicit PolicyServer(nn::Mlp actor, PolicyServerConfig config = {});
  ~PolicyServer();

  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  /// Arms hot swap: watch `directory` for kAgent policy generations
  /// (written with write_policy_snapshot / core::SnapshotDir). Loads the
  /// newest valid generation synchronously if one exists, so start()
  /// serves the latest checkpoint. Must be called before start().
  void watch_snapshots(const std::string& directory);

  void start();
  /// Drains every queued request to a decision, then joins all workers
  /// and the poller. Idempotent; the destructor calls it.
  void stop();

  /// Enqueues one placement request. `state` must hold state_dim()
  /// floats and stay valid until `sink.on_decision(request_id, ...)`
  /// fires. Returns false — shedding the request — when the tenant's
  /// shard ring is full or the server is stopping; the sink is then
  /// never called for this request.
  bool submit(std::uint32_t tenant, std::span<const float> state, std::uint64_t request_id,
              DecisionSink& sink);

  std::size_t state_dim() const { return actor_.input_dim(); }
  int action_count() const { return static_cast<int>(actor_.output_dim()); }
  std::size_t shard_count() const { return shards_.size(); }

  /// Decisions delivered so far.
  std::uint64_t decisions() const { return decisions_.load(std::memory_order_relaxed); }
  /// Requests rejected at submit() (ring full / stopping).
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  /// forward calls issued (batched or singleton).
  std::uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  /// Per-shard replica adoptions of a published generation (a single
  /// published snapshot counts once per shard).
  std::uint64_t swap_count() const { return swaps_.load(std::memory_order_relaxed); }
  /// Snapshot generations that failed to decode (serving continues on
  /// the previous model).
  std::uint64_t swap_errors() const { return swap_errors_.load(std::memory_order_relaxed); }
  /// Ordinal of the newest published generation (0 = construction-time
  /// actor, nothing swapped in yet).
  std::uint64_t model_epoch() const { return published_epoch_.load(std::memory_order_acquire); }

  /// The enqueue→decision latency histogram (microseconds, fine
  /// sub-microsecond buckets) — always recorded, a serving product
  /// metric rather than optional instrumentation.
  const obs::Histogram& latency_histogram() const { return latency_hist_; }

 private:
  struct Shard {
    explicit Shard(std::size_t capacity) : queue(capacity) {}
    BoundedMpscQueue<Request> queue;
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<bool> asleep{false};
  };

  void shard_loop(std::size_t index);
  void decide_batch(nn::Mlp& replica, std::vector<Request>& batch, nn::Matrix& states_ws,
                    std::vector<float>& row_logits);
  /// Adopts the newest published generation into `replica` if it is
  /// newer than `local_epoch` (called only at batch boundaries).
  void maybe_adopt(nn::Mlp& replica, std::uint64_t& local_epoch);
  /// Loads + validates + publishes the newest snapshot generation (runs
  /// on the pool's maintenance thread).
  void load_snapshot_once();
  void poller_loop();

  nn::Mlp actor_;  // prototype: architecture + construction-time params
  PolicyServerConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  util::ThreadPool pool_;  // shard workers + one maintenance thread
  std::thread poller_;

  std::optional<core::SnapshotDir> snapshots_;
  std::mutex swap_mutex_;  // guards published_flat_ (cold path only)
  std::shared_ptr<const std::vector<float>> published_flat_;
  std::atomic<std::uint64_t> published_epoch_{0};

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> swap_errors_{0};

  obs::Histogram& latency_hist_;
  obs::Histogram& batch_hist_;
};

/// Writes `agent`'s parameters as policy generation `ordinal` of `store`
/// (atomic write + rotation) — the producer side of the hot-swap
/// protocol, callable from a training loop between rounds.
void write_policy_snapshot(const core::SnapshotDir& store, std::uint64_t ordinal,
                           const rl::PpoAgent& agent);

/// The SnapshotDir a PolicyServer with `stem` watches under `directory` —
/// writer and server must agree on kind (kAgent) and stem.
core::SnapshotDir policy_snapshot_dir(const std::string& directory,
                                      const std::string& stem = "policy",
                                      std::size_t keep = 2);

}  // namespace pfrl::serve
