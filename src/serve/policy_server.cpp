#include "serve/policy_server.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace pfrl::serve {

namespace {

std::size_t resolve_shards(std::size_t requested) {
  if (requested > 0) return requested;
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(1, hw / 2);
}

std::vector<double> batch_size_bounds(std::size_t max_batch) {
  std::vector<double> bounds;
  for (std::size_t b = 1; b < max_batch; b <<= 1) bounds.push_back(static_cast<double>(b));
  bounds.push_back(static_cast<double>(max_batch));
  return bounds;
}

}  // namespace

PolicyServer::PolicyServer(nn::Mlp actor, PolicyServerConfig config)
    : actor_(std::move(actor)),
      config_(std::move(config)),
      // One spare thread beyond the shards: snapshot decode runs there,
      // off every decision path.
      pool_(resolve_shards(config_.shards) + 1),
      latency_hist_(obs::metrics().histogram("serve/latency_us",
                                             obs::Histogram::fine_time_bounds_us())),
      batch_hist_(obs::metrics().histogram(
          "serve/batch_size", batch_size_bounds(std::max<std::size_t>(1, config_.max_batch)))) {
  if (actor_.input_dim() == 0 || actor_.output_dim() == 0)
    throw std::invalid_argument("PolicyServer: actor has no parameters");
  config_.shards = resolve_shards(config_.shards);
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s)
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity));
}

PolicyServer::~PolicyServer() { stop(); }

void PolicyServer::watch_snapshots(const std::string& directory) {
  if (started_.load(std::memory_order_relaxed))
    throw std::logic_error("PolicyServer: watch_snapshots must precede start()");
  snapshots_.emplace(directory, core::ContentKind::kAgent, config_.snapshot_stem);
  // Serve the newest checkpoint from the first decision on, when one
  // already exists.
  load_snapshot_once();
}

void PolicyServer::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  stopping_.store(false, std::memory_order_relaxed);
  for (std::size_t s = 0; s < shards_.size(); ++s) pool_.submit([this, s] { shard_loop(s); });
  if (snapshots_) poller_ = std::thread([this] { poller_loop(); });
  PFRL_GAUGE_SET("serve/shards", shards_.size());
}

void PolicyServer::stop() {
  if (!started_.load(std::memory_order_relaxed)) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    shard->cv.notify_all();
  }
  if (poller_.joinable()) poller_.join();
  pool_.shutdown();  // workers drain their rings, then exit
  started_.store(false, std::memory_order_relaxed);
}

bool PolicyServer::submit(std::uint32_t tenant, std::span<const float> state,
                          std::uint64_t request_id, DecisionSink& sink) {
  if (state.size() != actor_.input_dim())
    throw std::invalid_argument("PolicyServer::submit: state has wrong dimension");
  if (stopping_.load(std::memory_order_relaxed)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = *shards_[tenant % shards_.size()];
  Request request;
  request.id = request_id;
  request.tenant = tenant;
  request.state = state.data();
  request.sink = &sink;
  request.enqueued = std::chrono::steady_clock::now();
  if (!shard.queue.try_push(request)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    PFRL_COUNT("serve/shed", 1);
    return false;
  }
  if (shard.asleep.load(std::memory_order_acquire)) {
    const std::scoped_lock lock(shard.mutex);
    shard.cv.notify_one();
  }
  return true;
}

void PolicyServer::maybe_adopt(nn::Mlp& replica, std::uint64_t& local_epoch) {
  if (published_epoch_.load(std::memory_order_acquire) == local_epoch) return;
  std::shared_ptr<const std::vector<float>> flat;
  std::uint64_t epoch = 0;
  {
    const std::scoped_lock lock(swap_mutex_);
    flat = published_flat_;
    epoch = published_epoch_.load(std::memory_order_relaxed);
  }
  if (!flat || epoch == local_epoch) return;
  PFRL_SPAN("serve/swap");
  replica.unflatten(*flat);
  local_epoch = epoch;
  swaps_.fetch_add(1, std::memory_order_relaxed);
  PFRL_COUNT("serve/swaps", 1);
}

void PolicyServer::decide_batch(nn::Mlp& replica, std::vector<Request>& batch,
                                nn::Matrix& states_ws, std::vector<float>& row_logits) {
  PFRL_SPAN("serve/batch");
  const std::size_t dim = actor_.input_dim();
  const std::size_t actions = actor_.output_dim();
  const auto argmax = [actions](std::span<const float> logits) {
    std::size_t best = 0;
    for (std::size_t a = 1; a < actions; ++a)
      if (logits[a] > logits[best]) best = a;
    return static_cast<int>(best);
  };

  if (batch.size() == 1) {
    // Singleton: the allocation-free fused GEMV row plan.
    replica.forward_row(std::span<const float>(batch[0].state, dim), row_logits);
  } else {
    states_ws.resize(batch.size(), dim);
    for (std::size_t r = 0; r < batch.size(); ++r)
      std::copy_n(batch[r].state, dim, states_ws.row(r).data());
  }
  const nn::Matrix* logits =
      batch.size() == 1 ? nullptr : &replica.forward_batch(states_ws);

  const auto now = std::chrono::steady_clock::now();
  batch_hist_.record(static_cast<double>(batch.size()));
  batches_.fetch_add(1, std::memory_order_relaxed);
  PFRL_COUNT("serve/batches", 1);
  for (std::size_t r = 0; r < batch.size(); ++r) {
    const Request& request = batch[r];
    const int action = argmax(logits ? logits->row(r) : std::span<const float>(row_logits));
    const double wait_us =
        std::chrono::duration<double, std::micro>(now - request.enqueued).count();
    latency_hist_.record(wait_us);
    decisions_.fetch_add(1, std::memory_order_relaxed);
    PFRL_COUNT("serve/decisions", 1);
    request.sink->on_decision(request.id, action);
  }
}

void PolicyServer::shard_loop(std::size_t index) {
  Shard& shard = *shards_[index];
  nn::Mlp replica(actor_);
  std::uint64_t local_epoch = 0;
  maybe_adopt(replica, local_epoch);

  std::vector<Request> batch;
  batch.reserve(config_.max_batch);
  std::vector<float> row_logits(actor_.output_dim());
  nn::Matrix states_ws;

  for (;;) {
    batch.clear();
    Request request;
    while (batch.size() < config_.max_batch && shard.queue.try_pop(request))
      batch.push_back(request);

    if (batch.empty()) {
      if (stopping_.load(std::memory_order_acquire)) break;  // drained; exit
      std::unique_lock lock(shard.mutex);
      shard.asleep.store(true, std::memory_order_release);
      // Bounded wait: also wakes to notice stop() and a published swap.
      shard.cv.wait_for(lock, std::chrono::microseconds(200));
      shard.asleep.store(false, std::memory_order_release);
      continue;
    }

    if (config_.coalesce_wait_us > 0 && batch.size() < config_.max_batch) {
      // Moderate load: lingering briefly turns several singleton GEMVs
      // into one GEMM without unbounded latency.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(config_.coalesce_wait_us);
      while (batch.size() < config_.max_batch &&
             std::chrono::steady_clock::now() < deadline) {
        if (shard.queue.try_pop(request))
          batch.push_back(request);
        else
          std::this_thread::yield();
      }
    }

    maybe_adopt(replica, local_epoch);
    decide_batch(replica, batch, states_ws, row_logits);
    PFRL_GAUGE_SET("serve/queue_depth", shard.queue.approx_size());
  }
}

void PolicyServer::load_snapshot_once() {
  PFRL_SPAN("serve/snapshot_load");
  try {
    const auto loaded = snapshots_->load_newest_valid();
    if (!loaded) return;
    if (loaded->ordinal <= published_epoch_.load(std::memory_order_acquire)) return;
    nn::Mlp fresh(actor_);
    core::decode_agent_actor(loaded->payload, fresh);
    auto flat = std::make_shared<const std::vector<float>>(fresh.flatten());
    {
      const std::scoped_lock lock(swap_mutex_);
      published_flat_ = std::move(flat);
      published_epoch_.store(loaded->ordinal, std::memory_order_release);
    }
    PFRL_COUNT("serve/snapshot_loads", 1);
    PFRL_GAUGE_SET("serve/model_epoch", loaded->ordinal);
    PFRL_LOG_INFO("serve: published policy generation %llu from %s",
                  static_cast<unsigned long long>(loaded->ordinal), loaded->path.c_str());
  } catch (const std::exception& e) {
    swap_errors_.fetch_add(1, std::memory_order_relaxed);
    PFRL_COUNT("serve/swap_errors", 1);
    PFRL_LOG_WARN("serve: snapshot load failed (%s); keeping the current policy", e.what());
  }
}

void PolicyServer::poller_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    // The spare pool thread does the decode; a bound of 1 sheds poll
    // ticks when a load is still pending instead of stacking them.
    if (!pool_.try_submit([this] { load_snapshot_once(); }, 1)) PFRL_COUNT("serve/poll_shed", 1);
    std::this_thread::sleep_for(config_.snapshot_poll);
  }
}

void write_policy_snapshot(const core::SnapshotDir& store, std::uint64_t ordinal,
                           const rl::PpoAgent& agent) {
  store.write(ordinal, core::encode_agent_payload(agent));
}

core::SnapshotDir policy_snapshot_dir(const std::string& directory, const std::string& stem,
                                      std::size_t keep) {
  return core::SnapshotDir(directory, core::ContentKind::kAgent, stem, keep);
}

}  // namespace pfrl::serve
