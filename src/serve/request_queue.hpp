// Bounded lock-free request queue for the serving engine.
//
// Dmitry Vyukov's bounded MPMC ring: each cell carries a sequence number
// whose distance from the producer/consumer cursor says whether the cell
// is free, full, or contended. push and pop are one CAS on the shared
// cursor plus one release store on the cell — no locks, no allocation
// after construction, and a full queue rejects instead of blocking, which
// is exactly the load-shedding contract PolicyServer::submit needs.
//
// The serving engine uses it MPSC (many tenant threads, one shard
// worker), but the algorithm is safely MPMC, so tests can drain from
// several threads too. Per-producer FIFO holds: a producer claims ring
// positions in program order, and the consumer drains positions in order.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace pfrl::serve {

template <typename T>
class BoundedMpscQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2). Memory is
  /// allocated once, here.
  explicit BoundedMpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].sequence.store(i, std::memory_order_relaxed);
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// False when the ring is full (the caller sheds the request).
  bool try_push(const T& item) {
    Cell* cell = nullptr;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
      } else if (diff < 0) {
        return false;  // the cell still holds an unconsumed older item
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost the race; reread
      }
    }
    cell->value = item;
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the ring is empty (or the head cell's producer has
  /// claimed but not yet published — the consumer retries next round).
  bool try_pop(T& out) {
    Cell* cell = nullptr;
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
      } else if (diff < 0) {
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = cell->value;
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Racy instantaneous occupancy — a gauge, not a synchronization tool.
  std::size_t approx_size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return tail > head ? static_cast<std::size_t>(tail - head) : 0;
  }

 private:
  static constexpr std::size_t kCacheLine = 64;

  struct alignas(kCacheLine) Cell {
    std::atomic<std::uint64_t> sequence{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  // producers
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  // consumer
};

}  // namespace pfrl::serve
