// Trajectory storage for on-policy updates.
//
// The paper's advantage (Eq. 13) is A = Q - V with Q estimated from
// samples; we use the standard discounted-return estimate of Q (the
// Monte-Carlo special case) plus optional GAE, with per-buffer advantage
// normalization.
#pragma once

#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace pfrl::rl {

struct Transition {
  std::vector<float> state;
  int action = 0;
  double reward = 0.0;
  float log_prob = 0.0F;  // log π_old(a|s) at collection time
  float value = 0.0F;     // V(s) at collection time (mixed value for dual-critic)
  bool done = false;      // episode terminated after this transition
};

class RolloutBuffer {
 public:
  void add(Transition t) { transitions_.push_back(std::move(t)); }
  void clear() { transitions_.clear(); }
  std::size_t size() const { return transitions_.size(); }
  bool empty() const { return transitions_.empty(); }

  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Discounted returns-to-go, resetting at episode boundaries.
  std::vector<float> compute_returns(double gamma) const;
  /// Workspace form: writes into `out`, reusing its capacity.
  void compute_returns_into(double gamma, std::vector<float>& out) const;

  /// Generalized Advantage Estimation (Schulman et al. 2016):
  ///   δ_t = r_t + γ·V(s_{t+1})·(1-done_t) - V(s_t)
  ///   A_t = δ_t + γλ·(1-done_t)·A_{t+1}
  /// `returns` (critic regression targets) are A_t + V(s_t). λ = 1
  /// recovers the Monte-Carlo advantage of Eq. 13; smaller λ trades bias
  /// for the variance reduction the short scaled-down episodes need.
  struct GaeResult {
    std::vector<float> advantages;
    std::vector<float> returns;
  };
  GaeResult compute_gae(double gamma, double lambda, bool normalize) const;

  /// Advantages A_t = returns_t - value_t, optionally normalized to zero
  /// mean / unit variance within the buffer.
  std::vector<float> compute_advantages(std::span<const float> returns, bool normalize) const;

  /// All states stacked into an N x state_dim matrix.
  nn::Matrix state_matrix() const;
  /// Workspace form: writes into `out`, reusing its capacity.
  void state_matrix_into(nn::Matrix& out) const;

  /// Writes every stored transition. Part of the full-training-state
  /// checkpoint: the retained buffer feeds α refreshes and critic
  /// re-evaluation after a model swap, so resume must restore it.
  void serialize(util::ByteWriter& writer) const;
  /// Replaces the buffer contents with transitions written by serialize().
  void deserialize(util::ByteReader& reader);

 private:
  std::vector<Transition> transitions_;
};

}  // namespace pfrl::rl
