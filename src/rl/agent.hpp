// Agent-facing abstractions shared by PPO variants and the federated layer.
#pragma once

#include <cstdint>
#include <span>

#include "env/env.hpp"
#include "sim/metrics.hpp"
#include "util/rng.hpp"

namespace pfrl::rl {

/// Hyper-parameters (§3.1: Adam, actor lr 3e-4, critic lr 1e-4, one hidden
/// layer of 64 neurons, γ = 0.99, clip ε = 0.2).
struct PpoConfig {
  std::size_t hidden = 64;
  float actor_lr = 3e-4F;
  float critic_lr = 1e-4F;
  double gamma = 0.99;
  /// GAE λ. 1.0 recovers the paper's Monte-Carlo advantage (Eq. 13);
  /// the default trades a little bias for far less variance, which the
  /// scaled-down episodes need to learn within few samples.
  double gae_lambda = 0.95;
  float clip_epsilon = 0.2F;
  std::size_t update_epochs = 4;    // PPO epochs per collected episode
  float entropy_coef = 0.01F;       // exploration bonus (not paper-specified)
  bool normalize_advantages = true;
  float max_grad_norm = 0.5F;
  std::uint64_t seed = 1;
};

/// Outcome of one training or evaluation episode.
struct EpisodeStats {
  double total_reward = 0.0;
  sim::EpisodeMetrics metrics;
};

/// Minimal polymorphic agent interface (the federated client holds
/// concrete PPO types; this interface is for examples/baselines).
class Agent {
 public:
  virtual ~Agent() = default;

  /// Samples an action from the current policy.
  virtual int act(std::span<const float> state) = 0;

  /// Collects one episode in `environment` and performs a policy update.
  virtual EpisodeStats train_episode(env::Env& environment) = 0;

  /// Greedy rollout without learning.
  virtual EpisodeStats evaluate(env::Env& environment) = 0;
};

/// Samples from the categorical distribution softmax(logits); on return
/// `log_prob` holds log π(a). Numerically stable (works on raw logits).
int sample_categorical(std::span<const float> logits, util::Rng& rng, float& log_prob);

/// Index of the largest logit (greedy action).
int argmax_action(std::span<const float> logits);

}  // namespace pfrl::rl
