// Agent-facing abstractions shared by PPO variants and the federated layer.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

#include "env/env.hpp"
#include "sim/metrics.hpp"
#include "util/rng.hpp"

namespace pfrl::rl {

/// Hyper-parameters (§3.1: Adam, actor lr 3e-4, critic lr 1e-4, one hidden
/// layer of 64 neurons, γ = 0.99, clip ε = 0.2).
struct PpoConfig {
  std::size_t hidden = 64;
  float actor_lr = 3e-4F;
  float critic_lr = 1e-4F;
  double gamma = 0.99;
  /// GAE λ. 1.0 recovers the paper's Monte-Carlo advantage (Eq. 13);
  /// the default trades a little bias for far less variance, which the
  /// scaled-down episodes need to learn within few samples.
  double gae_lambda = 0.95;
  float clip_epsilon = 0.2F;
  std::size_t update_epochs = 4;    // PPO epochs per collected episode
  float entropy_coef = 0.01F;       // exploration bonus (not paper-specified)
  bool normalize_advantages = true;
  float max_grad_norm = 0.5F;
  std::uint64_t seed = 1;
};

/// Learning-health signals of one PPO update, computed on the update
/// path's existing workspaces (scalar accumulators only, so enabling them
/// costs no heap allocations). These are the per-update policy statistics
/// that make RL schedulers debuggable at scale (arXiv:2503.00537) and the
/// paper's personalization signals (α of Eq. 15, the dual critic losses
/// of Eqs. 16–17) observable per client.
struct UpdateDiagnostics {
  /// Mean policy entropy (nats) over the batch, measured in the last
  /// update epoch. Collapse toward 0 means a prematurely deterministic
  /// policy; the watchdog flags it.
  double policy_entropy = 0.0;
  /// Mean of log π_old(a|s) − log π(a|s) in the last epoch: the standard
  /// sample estimate of KL(π_old ‖ π) between the collection-time policy
  /// and the updated one. Blowups mean the clipped objective lost control
  /// of the step size.
  double approx_kl = 0.0;
  /// Fraction of samples whose importance ratio left [1−ε, 1+ε] in the
  /// last epoch.
  double clip_fraction = 0.0;
  /// 1 − Var(returns − V)/Var(returns) with the rollout-time value
  /// estimates. 1 = perfect value function, 0 = no better than the mean,
  /// large negative = actively wrong (the cratering the watchdog flags).
  double explained_variance = 0.0;
  /// L2 norms of the accumulated actor / critic gradients right before
  /// the optimizer step of the last epoch (pre-clipping).
  double policy_grad_norm = 0.0;
  double critic_grad_norm = 0.0;
  /// Eq. 15 mixing weight after the update; 1.0 for single-critic agents
  /// (the value function is entirely local).
  double alpha = 1.0;
  /// Buffer MSE of the local critic φ; for single-critic agents this is
  /// the only critic loss.
  double local_critic_loss = 0.0;
  /// Buffer MSE of the public critic ψ; 0 for single-critic agents.
  double public_critic_loss = 0.0;

  bool all_finite() const {
    return std::isfinite(policy_entropy) && std::isfinite(approx_kl) &&
           std::isfinite(clip_fraction) && std::isfinite(explained_variance) &&
           std::isfinite(policy_grad_norm) && std::isfinite(critic_grad_norm) &&
           std::isfinite(alpha) && std::isfinite(local_critic_loss) &&
           std::isfinite(public_critic_loss);
  }

  void serialize(util::ByteWriter& writer) const {
    writer.write_f64(policy_entropy);
    writer.write_f64(approx_kl);
    writer.write_f64(clip_fraction);
    writer.write_f64(explained_variance);
    writer.write_f64(policy_grad_norm);
    writer.write_f64(critic_grad_norm);
    writer.write_f64(alpha);
    writer.write_f64(local_critic_loss);
    writer.write_f64(public_critic_loss);
  }

  static UpdateDiagnostics deserialize(util::ByteReader& reader) {
    UpdateDiagnostics d;
    d.policy_entropy = reader.read_f64();
    d.approx_kl = reader.read_f64();
    d.clip_fraction = reader.read_f64();
    d.explained_variance = reader.read_f64();
    d.policy_grad_norm = reader.read_f64();
    d.critic_grad_norm = reader.read_f64();
    d.alpha = reader.read_f64();
    d.local_critic_loss = reader.read_f64();
    d.public_critic_loss = reader.read_f64();
    return d;
  }
};

/// Outcome of one training or evaluation episode.
struct EpisodeStats {
  double total_reward = 0.0;
  sim::EpisodeMetrics metrics;
  /// Filled by training episodes of PPO agents; default for evaluation
  /// rollouts and non-learning agents.
  UpdateDiagnostics update;
};

/// Minimal polymorphic agent interface (the federated client holds
/// concrete PPO types; this interface is for examples/baselines).
class Agent {
 public:
  virtual ~Agent() = default;

  /// Samples an action from the current policy.
  virtual int act(std::span<const float> state) = 0;

  /// Collects one episode in `environment` and performs a policy update.
  virtual EpisodeStats train_episode(env::Env& environment) = 0;

  /// Greedy rollout without learning.
  virtual EpisodeStats evaluate(env::Env& environment) = 0;
};

/// Samples from the categorical distribution softmax(logits); on return
/// `log_prob` holds log π(a). Numerically stable (works on raw logits).
int sample_categorical(std::span<const float> logits, util::Rng& rng, float& log_prob);

/// Masked variant: samples from softmax(logits) restricted to actions with
/// valid[a] != 0 (indices past valid.size() count as valid, matching the
/// open tail of Env::valid_actions). Allocation-free. Falls back to the
/// unmasked distribution if the mask admits nothing.
int sample_categorical_masked(std::span<const float> logits, std::span<const std::uint8_t> valid,
                              util::Rng& rng, float& log_prob);

/// Index of the largest logit (greedy action).
int argmax_action(std::span<const float> logits);

}  // namespace pfrl::rl
