// Clipped-surrogate PPO with a single critic — the independent baseline
// ("PPO" in Figs. 8, 15–20) and the base class of the dual-critic variant.
#pragma once

#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "rl/agent.hpp"
#include "rl/rollout.hpp"
#include "rl/vec_env.hpp"

namespace pfrl::rl {

class PpoAgent : public Agent {
 public:
  PpoAgent(std::size_t state_dim, int action_count, PpoConfig config);
  ~PpoAgent() override = default;

  int act(std::span<const float> state) override;
  EpisodeStats train_episode(env::Env& environment) override;
  EpisodeStats evaluate(env::Env& environment) override;

  /// Stochastic evaluation: samples from the trained policy. With
  /// `masked` the distribution is restricted to feasible actions (no-op
  /// only when nothing fits); unmasked runs the raw policy exactly as in
  /// training, so infeasible picks cost real waiting time — the mistake
  /// mode the §3.1 generalization comparison measures. Averaging a few
  /// rollouts surfaces differences a deterministic rollout can mask.
  EpisodeStats evaluate_sampled(env::Env& environment, bool masked = false);

  /// Samples an action and reports log π(a|s) and the value estimate used
  /// for the advantage baseline.
  int act_stochastic(std::span<const float> state, float& log_prob, float& value);
  int act_greedy(std::span<const float> state);
  /// Greedy over the valid actions only. Evaluation uses this (standard
  /// practice): training relies on the env's penalties to teach validity,
  /// but a deterministic rollout must not be able to wedge on a VM that
  /// never fits.
  int act_greedy_masked(std::span<const float> state, const std::vector<bool>& valid);
  /// Same, over the allocation-free byte mask of Env::valid_actions_into.
  int act_greedy_masked(std::span<const float> state, std::span<const std::uint8_t> valid);

  /// Rolls one episode into `buffer` (no learning). Returns env reward.
  double collect_episode(env::Env& environment, RolloutBuffer& buffer);

  // === Vectorized rollout (DESIGN.md "Vectorized rollout") ===

  /// Collects one episode from each of the first `count` envs of `envs`,
  /// stepped in lockstep with batched policy GEMMs, then performs ONE
  /// update over the combined buffer. Returns per-env stats (env order);
  /// every entry shares the single update's diagnostics. A 1-env sweep is
  /// bit-identical to train_episode on envs.env(0).
  std::vector<EpisodeStats> train_sweep(VecEnv& envs, std::size_t count);

  /// Rollout-only form of train_sweep: fills `buffer` env by env (each
  /// episode contiguous, terminated by its done flag — the layout
  /// compute_gae expects) and writes per-env episode rewards.
  void collect_sweep(VecEnv& envs, std::size_t count, RolloutBuffer& buffer,
                     std::vector<double>& episode_rewards);

  /// Begins a lockstep sweep: resets the first `count` envs, clears the
  /// persistent staging lanes, and (lazily, deterministically) creates the
  /// per-env RNG streams. Slot 0 always samples from the agent's own
  /// policy stream, so a 1-env sweep consumes rng_ exactly as the serial
  /// collect_episode path does.
  void begin_sweep(VecEnv& envs, std::size_t count);
  /// One observe → forward → sample → step cycle over the active set:
  /// batched (forward_batch GEMM over the packed observation matrix) when
  /// ≥ 2 envs are active; the last surviving env drops to the fused-GEMV
  /// forward_row path — which is also what makes E=1 reproduce the serial
  /// trajectories bit-for-bit. Zero heap allocations in steady state
  /// (after one warmup sweep at the same width). Returns the number of
  /// envs still active after retiring finished episodes.
  std::size_t vec_step(VecEnv& envs);
  /// Flushes the staged trajectories of the current sweep into `buffer`
  /// and reports per-env episode rewards.
  void finish_sweep(RolloutBuffer& buffer, std::vector<double>& episode_rewards);

  /// One PPO update (config.update_epochs passes) from a filled buffer.
  void update(const RolloutBuffer& buffer);

  /// Value estimate V(s) for a batch — overridden by the dual-critic
  /// variant to mix local and public critics (Eq. 14).
  virtual nn::Matrix value_batch(const nn::Matrix& states);

  /// Value estimate V(s) for a single state via the allocation-free
  /// forward_row path (same override semantics as value_batch).
  virtual float value_row(std::span<const float> state);

  /// Value estimates for a packed batch written into a reused vector
  /// (one forward_batch GEMM; no per-call Matrix). The vectorized rollout
  /// hot loop uses this instead of value_batch.
  virtual void value_rows_into(const nn::Matrix& states, std::vector<float>& out);

  nn::Mlp& actor() { return actor_; }
  const nn::Mlp& actor() const { return actor_; }
  nn::Mlp& critic() { return critic_; }
  const nn::Mlp& critic() const { return critic_; }

  /// Replaces network parameters (federated model load). Resets optimizer
  /// moments and lets subclasses react (α refresh, Eq. 15).
  void load_actor(std::span<const float> flat);
  virtual void load_critic(std::span<const float> flat);

  /// MSE of `net` against discounted returns of `buffer` — the critic
  /// evaluation the paper plots in Fig. 9 and uses for α (Eq. 15).
  double critic_loss_on(nn::Mlp& net, const RolloutBuffer& buffer) const;
  /// Same loss when the caller already holds the stacked states and the
  /// Monte-Carlo returns (the update path computes both exactly once).
  double critic_loss_on(nn::Mlp& net, const nn::Matrix& states,
                        std::span<const float> mc_returns) const;

  const PpoConfig& config() const { return config_; }
  std::size_t state_dim() const { return state_dim_; }
  int action_count() const { return action_count_; }

  /// Mean critic loss on the most recently collected episode buffer.
  double last_critic_loss() const { return last_critic_loss_; }

  /// Learning-health signals of the most recent update() call (telemetry
  /// for the run reporter and the divergence watchdog). Value-initialized
  /// until the first update.
  const UpdateDiagnostics& last_update_diagnostics() const { return diagnostics_; }

  /// FedProx-style proximal regularization (Li et al., MLSys'20): adds
  /// μ·(θ − anchor) to actor and critic gradients during updates, pulling
  /// local training toward the last global model. Anchors must match the
  /// networks' architectures.
  void set_proximal_anchor(std::span<const float> actor_anchor,
                           std::span<const float> critic_anchor, float mu);
  void clear_proximal_anchor();
  bool has_proximal_anchor() const { return proximal_mu_ > 0.0F; }

  /// FedKL-style policy constraint (Xie & Song, JSAC'23): adds
  /// β·KL(π_θ ‖ π_anchor) to the actor loss, directly penalizing output
  /// drift from the last global policy.
  void set_kl_anchor(std::span<const float> actor_params, float beta);
  void clear_kl_anchor();
  bool has_kl_anchor() const { return kl_beta_ > 0.0F; }

  /// Serializes the *entire* learning state — network parameters, Adam
  /// moments and step counts, the policy RNG stream, the retained rollout
  /// buffer, cached losses/diagnostics, and federated regularizer anchors
  /// — so a restored agent continues training bit-identically.
  virtual void save_training_state(util::ByteWriter& writer) const;
  /// Restores state written by save_training_state(). Parameters are set
  /// directly: unlike load_actor/load_critic no optimizer moments are
  /// reset and no post-load re-evaluation runs, because the serialized
  /// state already holds the exact post-round values. Throws on
  /// architecture mismatch.
  virtual void load_training_state(util::ByteReader& reader);

 protected:
  /// Called after any external parameter replacement; re-evaluates the
  /// critic on the retained buffer so before/after-aggregation losses
  /// (Fig. 9) are observable.
  virtual void on_model_loaded();

  /// Critic regression step(s) toward the returns (Eq. 16/17 for the dual
  /// variant). Default: single critic, config.update_epochs passes.
  virtual void update_critics(const nn::Matrix& states, std::span<const float> returns);

  /// Keep a copy of the last buffer so critics can be re-evaluated after
  /// a global model arrives (the "evaluated according to the trajectories
  /// in the buffer" step of §4.3).
  const RolloutBuffer& last_buffer() const { return last_buffer_; }

  /// Fills the value-function fields of `diagnostics_` at the end of
  /// update(): α and the per-critic losses (overridden by the dual-critic
  /// variant to report the Eq. 15 mixture).
  virtual void fill_value_diagnostics();

  /// L2 norm of the accumulated gradients across `net`'s parameters.
  static double grad_l2_norm(const nn::Mlp& net);

  PpoConfig config_;
  std::size_t state_dim_;
  int action_count_;
  util::Rng rng_;
  nn::Mlp actor_;
  nn::Mlp critic_;
  nn::Adam actor_opt_;
  nn::Adam critic_opt_;
  RolloutBuffer last_buffer_;
  double last_critic_loss_ = 0.0;
  UpdateDiagnostics diagnostics_;

  // Persistent update-path workspaces (capacity reused across episodes so
  // steady-state training stays off the heap). ws_value_grad_ is shared
  // with the dual-critic update_critics override.
  nn::Matrix ws_states_;
  nn::Matrix ws_value_grad_;
  std::vector<float> ws_mc_returns_;

  /// Adds μ·(θ − anchor) into `net`'s accumulated gradients.
  void apply_proximal_gradient(nn::Mlp& net, const std::vector<float>& anchor) const;

  // Federated regularizers (empty/0 = off).
  std::vector<float> proximal_actor_anchor_;
  std::vector<float> proximal_critic_anchor_;
  float proximal_mu_ = 0.0F;
  std::unique_ptr<nn::Mlp> kl_anchor_actor_;
  float kl_beta_ = 0.0F;

 private:
  void update_actor(const RolloutBuffer& buffer, const nn::Matrix& states,
                    std::span<const float> advantages);

  // --- Vectorized-rollout internals ---

  /// Per-env trajectory staging: SoA columns appended step by step while
  /// the sweep runs, flushed into the RolloutBuffer at finish_sweep so
  /// each episode lands contiguously. clear() keeps capacity, so a warmed
  /// lane never reallocates.
  struct VecLane {
    std::vector<float> states;  // steps × state_dim, flattened row-major
    std::vector<int> actions;
    std::vector<double> rewards;
    std::vector<float> log_probs;
    std::vector<float> values;
    double total_reward = 0.0;

    void clear() {
      states.clear();
      actions.clear();
      rewards.clear();
      log_probs.clear();
      values.clear();
      total_reward = 0.0;
    }
  };

  /// RNG stream for env slot `env_index` of a sweep. Slot 0 is the
  /// agent's own policy stream rng_ (serial-path equivalence); slot e ≥ 1
  /// gets a dedicated stream seeded from (config seed, e) alone, so the
  /// streams are identical whether created lazily, after a resume, or at
  /// a different sweep width.
  util::Rng& env_rng(std::size_t env_index);
  void ensure_env_rngs(std::size_t count);
  void stage_pre(std::size_t env_index, std::span<const float> state, int action,
                 float log_prob);

  /// Deferred critic pass for sweeps of width ≥ 2: values are not needed
  /// until GAE runs at episode end, so the step loop skips the critic
  /// entirely and this fills lane.values from the staged flat states in
  /// fixed-size batched chunks. Row bits are identical to a per-step
  /// critic call because every kernel accumulates a row's outputs on the
  /// same sequential k chain regardless of batch size or position.
  void fill_lane_values(VecLane& lane);

  // Single-row inference scratch (sized action_count at construction) and
  // actor-update workspaces.
  std::vector<float> row_logits_;
  nn::Matrix ws_log_probs_;
  nn::Matrix ws_probs_;
  nn::Matrix ws_actor_grad_;
  nn::Matrix ws_anchor_lp_;

  // Vectorized-rollout state. vec_rngs_[e-1] serves env slot e; the
  // streams are part of the training state (serialized) because sweep
  // trajectories depend on them. The rest is reused scratch.
  std::vector<util::Rng> vec_rngs_;
  std::vector<VecLane> vec_lanes_;
  std::vector<int> vec_actions_;
  std::vector<env::StepResult> vec_results_;
  std::vector<float> vec_values_;
  nn::Matrix vec_state_chunk_;  // fill_lane_values staging (chunk × state_dim)
  std::vector<std::uint8_t> row_mask_;
  std::size_t sweep_count_ = 0;
};

}  // namespace pfrl::rl
