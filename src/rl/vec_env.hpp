// Vectorized environment: E independent env::Env instances stepped in
// lockstep, with observations packed into one persistent (E × state_dim)
// matrix so a single forward_batch GEMM produces every policy row
// (DESIGN.md "Vectorized rollout").
//
// The active set starts as envs [0, count) and only shrinks: as episodes
// finish, their envs are retired and the survivors stay in ascending
// env-id order. Stable ordering is what makes per-env RNG streams
// deterministic — row r of the packed matrix always belongs to
// active_ids()[r], and the agent samples row r from the stream of that
// env id, never from "whatever stream is next".
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "env/env.hpp"
#include "nn/matrix.hpp"

namespace pfrl::rl {

class VecEnv {
 public:
  /// Takes ownership of `envs` (at least one; all must agree on
  /// state_dim/action_count). Throws std::invalid_argument otherwise.
  explicit VecEnv(std::vector<std::unique_ptr<env::Env>> envs);

  std::size_t size() const { return envs_.size(); }
  std::size_t state_dim() const { return state_dim_; }
  int action_count() const { return action_count_; }

  env::Env& env(std::size_t i) { return *envs_[i]; }
  const env::Env& env(std::size_t i) const { return *envs_[i]; }

  /// Resets envs [0, count) and makes them the active set.
  void reset(std::size_t count);

  std::size_t active_count() const { return active_ids_.size(); }
  bool all_done() const { return active_ids_.empty(); }
  /// Env ids backing the packed rows, ascending; row r ↔ active_ids()[r].
  const std::vector<std::size_t>& active_ids() const { return active_ids_; }

  /// Packs the active envs' observations into the persistent matrix
  /// (active_count × state_dim) and returns it. Allocation-free once the
  /// matrix has grown to the sweep's width.
  const nn::Matrix& observe_active();

  /// Steps active env r with actions[r], writing its StepResult into
  /// results[r]. Does NOT retire finished envs — callers stage rewards
  /// and dones against stable row indices first, then call retire_done().
  /// Both spans must be active_count() long.
  void step_active(std::span<const int> actions, std::span<env::StepResult> results);

  /// Removes every env whose results[r].done is set from the active set
  /// (results as returned by the matching step_active call). The
  /// surviving rows keep their relative (ascending) order.
  void retire_done(std::span<const env::StepResult> results);

 private:
  std::vector<std::unique_ptr<env::Env>> envs_;
  std::vector<std::size_t> active_ids_;
  std::size_t state_dim_ = 0;
  int action_count_ = 0;
  nn::Matrix obs_;
};

}  // namespace pfrl::rl
