#include "rl/agent.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace pfrl::rl {

int sample_categorical(std::span<const float> logits, util::Rng& rng, float& log_prob) {
  assert(!logits.empty());
  // Two passes, recomputing exp() instead of storing the weights: this is
  // the policy-step hot path and must not touch the heap. exp() is
  // deterministic, so the second pass sees bit-identical weights.
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (const float l : logits) total += std::exp(static_cast<double>(l - max_logit));
  double target = rng.uniform() * total;
  std::size_t chosen = logits.size() - 1;
  double chosen_weight = std::exp(static_cast<double>(logits.back() - max_logit));
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double w = std::exp(static_cast<double>(logits[i] - max_logit));
    target -= w;
    if (target < 0.0) {
      chosen = i;
      chosen_weight = w;
      break;
    }
  }
  log_prob = static_cast<float>(std::log(chosen_weight / total));
  return static_cast<int>(chosen);
}

int argmax_action(std::span<const float> logits) {
  assert(!logits.empty());
  return static_cast<int>(std::max_element(logits.begin(), logits.end()) - logits.begin());
}

}  // namespace pfrl::rl
