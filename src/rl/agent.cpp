#include "rl/agent.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace pfrl::rl {

int sample_categorical(std::span<const float> logits, util::Rng& rng, float& log_prob) {
  assert(!logits.empty());
  // Two passes, recomputing exp() instead of storing the weights: this is
  // the policy-step hot path and must not touch the heap. exp() is
  // deterministic, so the second pass sees bit-identical weights.
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (const float l : logits) total += std::exp(static_cast<double>(l - max_logit));
  double target = rng.uniform() * total;
  std::size_t chosen = logits.size() - 1;
  double chosen_weight = std::exp(static_cast<double>(logits.back() - max_logit));
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double w = std::exp(static_cast<double>(logits[i] - max_logit));
    target -= w;
    if (target < 0.0) {
      chosen = i;
      chosen_weight = w;
      break;
    }
  }
  log_prob = static_cast<float>(std::log(chosen_weight / total));
  return static_cast<int>(chosen);
}

int sample_categorical_masked(std::span<const float> logits, std::span<const std::uint8_t> valid,
                              util::Rng& rng, float& log_prob) {
  assert(!logits.empty());
  const auto is_valid = [valid](std::size_t a) { return a >= valid.size() || valid[a] != 0; };
  float max_logit = 0.0F;
  bool any_valid = false;
  for (std::size_t a = 0; a < logits.size(); ++a) {
    if (!is_valid(a)) continue;
    if (!any_valid || logits[a] > max_logit) max_logit = logits[a];
    any_valid = true;
  }
  if (!any_valid) return sample_categorical(logits, rng, log_prob);

  // Same two-pass, exp-recomputing structure as the unmasked sampler:
  // the masked policy step stays off the heap too.
  double total = 0.0;
  std::size_t last_valid = 0;
  for (std::size_t a = 0; a < logits.size(); ++a) {
    if (!is_valid(a)) continue;
    total += std::exp(static_cast<double>(logits[a] - max_logit));
    last_valid = a;
  }
  double target = rng.uniform() * total;
  std::size_t chosen = last_valid;
  double chosen_weight = std::exp(static_cast<double>(logits[last_valid] - max_logit));
  for (std::size_t a = 0; a < logits.size(); ++a) {
    if (!is_valid(a)) continue;
    const double w = std::exp(static_cast<double>(logits[a] - max_logit));
    target -= w;
    if (target < 0.0) {
      chosen = a;
      chosen_weight = w;
      break;
    }
  }
  log_prob = static_cast<float>(std::log(chosen_weight / total));
  return static_cast<int>(chosen);
}

int argmax_action(std::span<const float> logits) {
  assert(!logits.empty());
  return static_cast<int>(std::max_element(logits.begin(), logits.end()) - logits.begin());
}

}  // namespace pfrl::rl
