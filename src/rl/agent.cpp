#include "rl/agent.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace pfrl::rl {

int sample_categorical(std::span<const float> logits, util::Rng& rng, float& log_prob) {
  assert(!logits.empty());
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  std::vector<double> weights(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    weights[i] = std::exp(static_cast<double>(logits[i] - max_logit));
    total += weights[i];
  }
  double target = rng.uniform() * total;
  std::size_t chosen = logits.size() - 1;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) {
      chosen = i;
      break;
    }
  }
  log_prob = static_cast<float>(std::log(weights[chosen] / total));
  return static_cast<int>(chosen);
}

int argmax_action(std::span<const float> logits) {
  assert(!logits.empty());
  return static_cast<int>(std::max_element(logits.begin(), logits.end()) - logits.begin());
}

}  // namespace pfrl::rl
