#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "env/scheduling_env.hpp"
#include "nn/softmax.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pfrl::rl {

namespace {
nn::AdamConfig adam_for(float lr, float max_grad_norm) {
  nn::AdamConfig c;
  c.lr = lr;
  c.max_grad_norm = max_grad_norm;
  return c;
}

// Evaluation rollouts must make progress: when any placement is feasible,
// the no-op (last action) is masked out so a policy that drifted toward
// idling cannot livelock the episode; the learned ranking still chooses
// *which* VM.
void forbid_lazy_noop(std::span<std::uint8_t> mask) {
  bool any_placement = false;
  for (std::size_t a = 0; a + 1 < mask.size(); ++a) any_placement |= mask[a] != 0;
  if (any_placement && !mask.empty()) mask.back() = 0;
}

// Seed of the dedicated RNG stream serving env slot `e` (e ≥ 1) of a
// vectorized sweep. Depends only on the agent seed and the slot index, so
// streams are reproducible regardless of when they were first created.
std::uint64_t env_stream_seed(std::uint64_t seed, std::size_t e) {
  return seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(e);
}
}  // namespace

PpoAgent::PpoAgent(std::size_t state_dim, int action_count, PpoConfig config)
    : config_(config),
      state_dim_(state_dim),
      action_count_(action_count),
      rng_(config.seed),
      actor_(state_dim, {config.hidden}, static_cast<std::size_t>(action_count), rng_),
      critic_(state_dim, {config.hidden}, 1, rng_),
      actor_opt_(actor_.params(), adam_for(config.actor_lr, config.max_grad_norm)),
      critic_opt_(critic_.params(), adam_for(config.critic_lr, config.max_grad_norm)) {
  if (action_count <= 0) throw std::invalid_argument("PpoAgent: action_count must be positive");
  row_logits_.assign(static_cast<std::size_t>(action_count), 0.0F);
}

nn::Matrix PpoAgent::value_batch(const nn::Matrix& states) { return critic_.forward(states); }

float PpoAgent::value_row(std::span<const float> state) {
  float v = 0.0F;
  critic_.forward_row(state, std::span<float>(&v, 1));
  return v;
}

void PpoAgent::value_rows_into(const nn::Matrix& states, std::vector<float>& out) {
  const nn::Matrix& v = critic_.forward_batch(states);
  out.resize(v.rows());
  for (std::size_t i = 0; i < v.rows(); ++i) out[i] = v(i, 0);
}

int PpoAgent::act_stochastic(std::span<const float> state, float& log_prob, float& value) {
  // Fused GEMV path through preallocated scratch: a policy step performs
  // zero heap allocations.
  actor_.forward_row(state, row_logits_);
  value = value_row(state);
  return sample_categorical(row_logits_, rng_, log_prob);
}

int PpoAgent::act_greedy(std::span<const float> state) {
  actor_.forward_row(state, row_logits_);
  return argmax_action(row_logits_);
}

int PpoAgent::act_greedy_masked(std::span<const float> state, const std::vector<bool>& valid) {
  actor_.forward_row(state, row_logits_);
  const std::span<const float> row(row_logits_);
  int best = -1;
  for (std::size_t a = 0; a < row.size(); ++a) {
    if (a < valid.size() && !valid[a]) continue;
    if (best < 0 || row[a] > row[static_cast<std::size_t>(best)]) best = static_cast<int>(a);
  }
  return best >= 0 ? best : argmax_action(row);
}

int PpoAgent::act_greedy_masked(std::span<const float> state, std::span<const std::uint8_t> valid) {
  actor_.forward_row(state, row_logits_);
  const std::span<const float> row(row_logits_);
  int best = -1;
  for (std::size_t a = 0; a < row.size(); ++a) {
    if (a < valid.size() && valid[a] == 0) continue;
    if (best < 0 || row[a] > row[static_cast<std::size_t>(best)]) best = static_cast<int>(a);
  }
  return best >= 0 ? best : argmax_action(row);
}

int PpoAgent::act(std::span<const float> state) {
  float log_prob = 0.0F;
  float value = 0.0F;
  return act_stochastic(state, log_prob, value);
}

double PpoAgent::collect_episode(env::Env& environment, RolloutBuffer& buffer) {
  PFRL_SPAN("rl/rollout");
  environment.reset();
  double total_reward = 0.0;
  std::vector<float> state(environment.state_dim());
  bool done = false;
  while (!done) {
    environment.observe(state);
    Transition t;
    t.state = state;
    t.action = act_stochastic(state, t.log_prob, t.value);
    const env::StepResult r = environment.step(t.action);
    t.reward = r.reward;
    t.done = r.done;
    done = r.done;
    total_reward += r.reward;
    buffer.add(std::move(t));
  }
  return total_reward;
}

util::Rng& PpoAgent::env_rng(std::size_t env_index) {
  return env_index == 0 ? rng_ : vec_rngs_[env_index - 1];
}

void PpoAgent::ensure_env_rngs(std::size_t count) {
  while (vec_rngs_.size() + 1 < count)
    vec_rngs_.emplace_back(env_stream_seed(config_.seed, vec_rngs_.size() + 1));
}

void PpoAgent::stage_pre(std::size_t env_index, std::span<const float> state, int action,
                         float log_prob) {
  VecLane& lane = vec_lanes_[env_index];
  lane.states.insert(lane.states.end(), state.begin(), state.end());
  lane.actions.push_back(action);
  lane.log_probs.push_back(log_prob);
}

void PpoAgent::fill_lane_values(VecLane& lane) {
  const std::size_t rows = lane.actions.size();
  lane.values.resize(rows);
  constexpr std::size_t kChunk = 64;
  for (std::size_t done = 0; done < rows; done += kChunk) {
    const std::size_t m = std::min(kChunk, rows - done);
    vec_state_chunk_.resize(m, state_dim_);
    std::copy_n(lane.states.data() + done * state_dim_, m * state_dim_,
                vec_state_chunk_.flat().data());
    value_rows_into(vec_state_chunk_, vec_values_);
    std::copy_n(vec_values_.data(), m, lane.values.data() + done);
  }
}

void PpoAgent::begin_sweep(VecEnv& envs, std::size_t count) {
  if (envs.state_dim() != state_dim_ ||
      envs.action_count() != action_count_)
    throw std::invalid_argument("begin_sweep: env/agent shape mismatch");
  envs.reset(count);  // validates count
  ensure_env_rngs(count);
  if (vec_lanes_.size() < count) vec_lanes_.resize(count);
  for (std::size_t e = 0; e < count; ++e) vec_lanes_[e].clear();
  vec_actions_.reserve(count);
  vec_results_.reserve(count);
  vec_values_.reserve(count);
  sweep_count_ = count;
}

std::size_t PpoAgent::vec_step(VecEnv& envs) {
  const std::size_t k = envs.active_count();
  if (k == 0) return 0;
  const std::vector<std::size_t>& ids = envs.active_ids();
  const nn::Matrix& obs = envs.observe_active();
  vec_actions_.resize(k);
  vec_results_.resize(k);
  if (k == 1) {
    // Serial-path equivalence: exactly the fused-GEMV ops (and RNG draws)
    // of act_stochastic, so an E=1 sweep matches collect_episode
    // bit-for-bit and a wider sweep's last survivor skips the GEMM setup.
    // Values are deferred to finish_sweep for width ≥ 2 sweeps (the
    // critic output is only consumed by GAE after the episode ends), so
    // only a true E=1 sweep pays the per-step critic GEMV.
    const auto state = obs.row(0);
    actor_.forward_row(state, row_logits_);
    float log_prob = 0.0F;
    vec_actions_[0] = sample_categorical(row_logits_, env_rng(ids[0]), log_prob);
    stage_pre(ids[0], state, vec_actions_[0], log_prob);
    if (sweep_count_ == 1) vec_lanes_[ids[0]].values.push_back(value_row(state));
  } else {
    const nn::Matrix& logits = actor_.forward_batch(obs);
    for (std::size_t r = 0; r < k; ++r) {
      float log_prob = 0.0F;
      vec_actions_[r] = sample_categorical(logits.row(r), env_rng(ids[r]), log_prob);
      stage_pre(ids[r], obs.row(r), vec_actions_[r], log_prob);
    }
  }
  envs.step_active(std::span<const int>(vec_actions_.data(), k),
                   std::span<env::StepResult>(vec_results_.data(), k));
  for (std::size_t r = 0; r < k; ++r) {
    VecLane& lane = vec_lanes_[ids[r]];
    lane.rewards.push_back(vec_results_[r].reward);
    lane.total_reward += vec_results_[r].reward;
  }
  envs.retire_done(std::span<const env::StepResult>(vec_results_.data(), k));
  return envs.active_count();
}

void PpoAgent::finish_sweep(RolloutBuffer& buffer, std::vector<double>& episode_rewards) {
  episode_rewards.resize(sweep_count_);
  for (std::size_t e = 0; e < sweep_count_; ++e) {
    VecLane& lane = vec_lanes_[e];
    if (sweep_count_ >= 2) fill_lane_values(lane);
    const std::size_t steps = lane.actions.size();
    for (std::size_t t = 0; t < steps; ++t) {
      Transition tr;
      tr.state.assign(lane.states.begin() + static_cast<std::ptrdiff_t>(t * state_dim_),
                      lane.states.begin() + static_cast<std::ptrdiff_t>((t + 1) * state_dim_));
      tr.action = lane.actions[t];
      tr.reward = lane.rewards[t];
      tr.log_prob = lane.log_probs[t];
      tr.value = lane.values[t];
      tr.done = t + 1 == steps;
      buffer.add(std::move(tr));
    }
    episode_rewards[e] = lane.total_reward;
  }
}

void PpoAgent::collect_sweep(VecEnv& envs, std::size_t count, RolloutBuffer& buffer,
                             std::vector<double>& episode_rewards) {
  PFRL_SPAN("rl/rollout");
  begin_sweep(envs, count);
  while (!envs.all_done()) vec_step(envs);
  finish_sweep(buffer, episode_rewards);
}

std::vector<EpisodeStats> PpoAgent::train_sweep(VecEnv& envs, std::size_t count) {
  PFRL_SPAN("rl/train_sweep");
  PFRL_COUNT("rl/episodes", count);
  RolloutBuffer buffer;
  std::vector<double> rewards;
  collect_sweep(envs, count, buffer, rewards);
  std::vector<EpisodeStats> stats(count);
  for (std::size_t e = 0; e < count; ++e) {
    stats[e].total_reward = rewards[e];
    if (const auto* source = dynamic_cast<const env::MetricsSource*>(&envs.env(e)))
      stats[e].metrics = source->metrics();
  }
  update(buffer);
  for (std::size_t e = 0; e < count; ++e) stats[e].update = diagnostics_;
  return stats;
}

EpisodeStats PpoAgent::train_episode(env::Env& environment) {
  PFRL_SPAN("rl/train_episode");
  PFRL_COUNT("rl/episodes", 1);
  RolloutBuffer buffer;
  EpisodeStats stats;
  stats.total_reward = collect_episode(environment, buffer);
  if (const auto* source = dynamic_cast<const env::MetricsSource*>(&environment))
    stats.metrics = source->metrics();
  update(buffer);
  stats.update = diagnostics_;
  return stats;
}

EpisodeStats PpoAgent::evaluate(env::Env& environment) {
  environment.reset();
  EpisodeStats stats;
  std::vector<float> state(environment.state_dim());
  row_mask_.resize(static_cast<std::size_t>(environment.action_count()));
  bool done = false;
  while (!done) {
    environment.observe(state);
    // Allocation-free feasibility mask (Env::valid_actions_into) with the
    // no-op forbidden whenever a placement is feasible, so a policy that
    // drifted toward idling cannot livelock the rollout.
    environment.valid_actions_into(row_mask_);
    forbid_lazy_noop(row_mask_);
    const env::StepResult r =
        environment.step(act_greedy_masked(state, std::span<const std::uint8_t>(row_mask_)));
    stats.total_reward += r.reward;
    done = r.done;
  }
  if (const auto* source = dynamic_cast<const env::MetricsSource*>(&environment))
    stats.metrics = source->metrics();
  return stats;
}

EpisodeStats PpoAgent::evaluate_sampled(env::Env& environment, bool masked) {
  environment.reset();
  EpisodeStats stats;
  std::vector<float> state(environment.state_dim());
  row_mask_.resize(static_cast<std::size_t>(environment.action_count()));
  bool done = false;
  while (!done) {
    environment.observe(state);
    actor_.forward_row(state, row_logits_);
    const std::span<const float> row(row_logits_);

    int action;
    float log_prob = 0.0F;
    if (masked) {
      environment.valid_actions_into(row_mask_);
      forbid_lazy_noop(row_mask_);
      action = sample_categorical_masked(row, row_mask_, rng_, log_prob);
    } else {
      action = sample_categorical(row, rng_, log_prob);
    }

    const env::StepResult r = environment.step(action);
    stats.total_reward += r.reward;
    done = r.done;
  }
  if (const auto* source = dynamic_cast<const env::MetricsSource*>(&environment))
    stats.metrics = source->metrics();
  return stats;
}

void PpoAgent::update(const RolloutBuffer& buffer) {
  PFRL_SPAN("rl/ppo_update");
  if (buffer.empty()) return;
  buffer.state_matrix_into(ws_states_);
  const RolloutBuffer::GaeResult gae =
      buffer.compute_gae(config_.gamma, config_.gae_lambda, config_.normalize_advantages);

  diagnostics_ = UpdateDiagnostics{};
  // Explained variance of the rollout-time value estimates against the
  // regression targets — how much of the return signal the value function
  // already captured when the advantages were formed.
  {
    const auto& transitions = buffer.transitions();
    const double n = static_cast<double>(buffer.size());
    double ret_mean = 0.0;
    double err_mean = 0.0;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      ret_mean += static_cast<double>(gae.returns[i]);
      err_mean += static_cast<double>(gae.returns[i]) - static_cast<double>(transitions[i].value);
    }
    ret_mean /= n;
    err_mean /= n;
    double ret_var = 0.0;
    double err_var = 0.0;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      const double r = static_cast<double>(gae.returns[i]) - ret_mean;
      const double e = static_cast<double>(gae.returns[i]) -
                       static_cast<double>(transitions[i].value) - err_mean;
      ret_var += r * r;
      err_var += e * e;
    }
    diagnostics_.explained_variance = ret_var > 1e-12 ? 1.0 - err_var / ret_var : 0.0;
  }

  // Stash the buffer first: subclasses re-evaluate critics on the current
  // trajectories whenever parameters change (Eq. 15).
  last_buffer_ = buffer;
  update_actor(buffer, ws_states_, gae.advantages);
  update_critics(ws_states_, gae.returns);
  // The loss evaluation reuses the states stacked above and computes the
  // Monte-Carlo returns once, instead of rebuilding both per call.
  buffer.compute_returns_into(config_.gamma, ws_mc_returns_);
  last_critic_loss_ = critic_loss_on(critic_, ws_states_, ws_mc_returns_);
  fill_value_diagnostics();
}

void PpoAgent::update_actor(const RolloutBuffer& buffer, const nn::Matrix& states,
                            std::span<const float> advantages) {
  const auto n = buffer.size();
  const auto& transitions = buffer.transitions();
  const float inv_n = 1.0F / static_cast<float>(n);

  // FedKL: reference log-probabilities of the anchored (global) policy.
  const bool use_kl = kl_beta_ > 0.0F && kl_anchor_actor_ != nullptr;
  if (use_kl)
    nn::log_softmax_rows_into(kl_anchor_actor_->forward_batch(states), ws_anchor_lp_);
  const nn::Matrix& anchor_log_probs = ws_anchor_lp_;

  for (std::size_t epoch = 0; epoch < config_.update_epochs; ++epoch) {
    const nn::Matrix& logits = actor_.forward_batch(states);
    nn::log_softmax_rows_into(logits, ws_log_probs_);
    nn::softmax_rows_into(logits, ws_probs_);
    const nn::Matrix& log_probs = ws_log_probs_;
    const nn::Matrix& probs = ws_probs_;

    // Diagnostics are measured once, in the last epoch, where the policy
    // has drifted furthest from the collection-time snapshot. Scalar
    // accumulators only — the diagnostics add no allocations.
    const bool diag_epoch = epoch + 1 == config_.update_epochs;
    double diag_entropy = 0.0;
    double diag_kl = 0.0;
    std::size_t diag_clipped = 0;

    // dL/dlogits for L = -(1/N) Σ [min(rA, clip(r)A) + c_H H].
    ws_actor_grad_.resize(logits.rows(), logits.cols());
    ws_actor_grad_.zero();
    nn::Matrix& grad = ws_actor_grad_;
    for (std::size_t i = 0; i < n; ++i) {
      const int a = transitions[i].action;
      const float adv = advantages[i];
      const float ratio =
          std::exp(log_probs(i, static_cast<std::size_t>(a)) - transitions[i].log_prob);

      if (diag_epoch) {
        const auto p_row = probs.row(i);
        const auto lp_row = log_probs.row(i);
        double entropy = 0.0;
        for (std::size_t j = 0; j < p_row.size(); ++j)
          entropy -= static_cast<double>(p_row[j]) * static_cast<double>(lp_row[j]);
        diag_entropy += entropy;
        diag_kl += static_cast<double>(transitions[i].log_prob) -
                   static_cast<double>(log_probs(i, static_cast<std::size_t>(a)));
        if (std::abs(ratio - 1.0F) > config_.clip_epsilon) ++diag_clipped;
      }

      // The clipped branch is active (zero gradient) when the ratio moved
      // past the clip boundary in the advantage's direction.
      const bool clipped = (adv > 0.0F && ratio > 1.0F + config_.clip_epsilon) ||
                           (adv < 0.0F && ratio < 1.0F - config_.clip_epsilon);

      auto g = grad.row(i);
      const auto p = probs.row(i);
      if (!clipped) {
        // d(r·A)/dlogit_j = r·A·(1{j==a} - p_j); negated for gradient descent.
        const float coeff = -inv_n * ratio * adv;
        for (std::size_t j = 0; j < g.size(); ++j)
          g[j] += coeff * ((static_cast<int>(j) == a ? 1.0F : 0.0F) - p[j]);
      }
      if (config_.entropy_coef > 0.0F) {
        // dH/dlogit_j = -p_j (log p_j + H); we *add* entropy to the
        // objective, so subtract its gradient from the descent direction.
        double entropy = 0.0;
        const auto lp = log_probs.row(i);
        for (std::size_t j = 0; j < g.size(); ++j)
          entropy -= static_cast<double>(p[j]) * static_cast<double>(lp[j]);
        for (std::size_t j = 0; j < g.size(); ++j)
          g[j] += config_.entropy_coef * inv_n * p[j] *
                  (lp[j] + static_cast<float>(entropy));
      }
      if (use_kl) {
        // + β·KL(π_θ ‖ π_anchor):
        // dKL/dlogit_j = p_j (log p_j - log g_j - KL).
        const auto lp = log_probs.row(i);
        const auto alp = anchor_log_probs.row(i);
        double kl = 0.0;
        for (std::size_t j = 0; j < g.size(); ++j)
          kl += static_cast<double>(p[j]) * (static_cast<double>(lp[j]) - alp[j]);
        for (std::size_t j = 0; j < g.size(); ++j)
          g[j] += kl_beta_ * inv_n * p[j] * (lp[j] - alp[j] - static_cast<float>(kl));
      }
    }

    actor_.zero_grad();
    actor_.backward_batch(grad);
    if (proximal_mu_ > 0.0F && !proximal_actor_anchor_.empty())
      apply_proximal_gradient(actor_, proximal_actor_anchor_);
    if (diag_epoch) {
      diagnostics_.policy_entropy = diag_entropy / static_cast<double>(n);
      diagnostics_.approx_kl = diag_kl / static_cast<double>(n);
      diagnostics_.clip_fraction =
          static_cast<double>(diag_clipped) / static_cast<double>(n);
      diagnostics_.policy_grad_norm = grad_l2_norm(actor_);
    }
    actor_opt_.step();
  }
}

void PpoAgent::update_critics(const nn::Matrix& states, std::span<const float> returns) {
  const float inv_n = 1.0F / static_cast<float>(states.rows());
  for (std::size_t epoch = 0; epoch < config_.update_epochs; ++epoch) {
    const nn::Matrix& v = critic_.forward_batch(states);
    ws_value_grad_.resize(v.rows(), 1);
    for (std::size_t i = 0; i < v.rows(); ++i)
      ws_value_grad_(i, 0) = 2.0F * inv_n * (v(i, 0) - returns[i]);
    critic_.zero_grad();
    critic_.backward_batch(ws_value_grad_);
    if (proximal_mu_ > 0.0F && !proximal_critic_anchor_.empty())
      apply_proximal_gradient(critic_, proximal_critic_anchor_);
    if (epoch + 1 == config_.update_epochs)
      diagnostics_.critic_grad_norm = grad_l2_norm(critic_);
    critic_opt_.step();
  }
}

double PpoAgent::grad_l2_norm(const nn::Mlp& net) {
  double acc = 0.0;
  for (const nn::Param* p : net.params())
    for (const float g : p->grad.flat()) acc += static_cast<double>(g) * g;
  return std::sqrt(acc);
}

void PpoAgent::fill_value_diagnostics() {
  // Single critic: the value function is entirely local (α = 1 in the
  // Eq. 14 reading) and last_critic_loss_ is the only critic loss.
  diagnostics_.alpha = 1.0;
  diagnostics_.local_critic_loss = last_critic_loss_;
  diagnostics_.public_critic_loss = 0.0;
}

void PpoAgent::apply_proximal_gradient(nn::Mlp& net, const std::vector<float>& anchor) const {
  std::size_t offset = 0;
  for (nn::Param* p : net.params()) {
    auto values = p->value.flat();
    auto grads = p->grad.flat();
    for (std::size_t i = 0; i < values.size(); ++i)
      grads[i] += proximal_mu_ * (values[i] - anchor[offset + i]);
    offset += values.size();
  }
}

void PpoAgent::set_proximal_anchor(std::span<const float> actor_anchor,
                                   std::span<const float> critic_anchor, float mu) {
  if (actor_anchor.size() != actor_.param_count() ||
      critic_anchor.size() != critic_.param_count())
    throw std::invalid_argument("set_proximal_anchor: size mismatch");
  proximal_actor_anchor_.assign(actor_anchor.begin(), actor_anchor.end());
  proximal_critic_anchor_.assign(critic_anchor.begin(), critic_anchor.end());
  proximal_mu_ = mu;
}

void PpoAgent::clear_proximal_anchor() {
  proximal_actor_anchor_.clear();
  proximal_critic_anchor_.clear();
  proximal_mu_ = 0.0F;
}

void PpoAgent::set_kl_anchor(std::span<const float> actor_params, float beta) {
  if (actor_params.size() != actor_.param_count())
    throw std::invalid_argument("set_kl_anchor: size mismatch");
  if (!kl_anchor_actor_) kl_anchor_actor_ = std::make_unique<nn::Mlp>(actor_);
  kl_anchor_actor_->unflatten(actor_params);
  kl_beta_ = beta;
}

void PpoAgent::clear_kl_anchor() {
  kl_anchor_actor_.reset();
  kl_beta_ = 0.0F;
}

void PpoAgent::save_training_state(util::ByteWriter& writer) const {
  rng_.state().serialize(writer);
  // Vectorized-rollout RNG streams: sweep trajectories depend on them, so
  // bit-identical resume with envs_per_client > 1 must restore them.
  writer.write_u64(vec_rngs_.size());
  for (const util::Rng& r : vec_rngs_) r.state().serialize(writer);
  actor_.serialize(writer);
  critic_.serialize(writer);
  actor_opt_.serialize(writer);
  critic_opt_.serialize(writer);
  last_buffer_.serialize(writer);
  writer.write_f64(last_critic_loss_);
  diagnostics_.serialize(writer);
  writer.write_f32_span(proximal_actor_anchor_);
  writer.write_f32_span(proximal_critic_anchor_);
  writer.write_f32(proximal_mu_);
  writer.write_bool(kl_anchor_actor_ != nullptr);
  if (kl_anchor_actor_) {
    const std::vector<float> anchor = kl_anchor_actor_->flatten();
    writer.write_f32_span(anchor);
  }
  writer.write_f32(kl_beta_);
}

void PpoAgent::load_training_state(util::ByteReader& reader) {
  rng_.set_state(util::RngState::deserialize(reader));
  const std::uint64_t stream_count = reader.read_u64();
  vec_rngs_.clear();
  for (std::uint64_t i = 0; i < stream_count; ++i) {
    util::Rng stream(0);
    stream.set_state(util::RngState::deserialize(reader));
    vec_rngs_.push_back(stream);
  }
  actor_.deserialize(reader);
  critic_.deserialize(reader);
  actor_opt_.deserialize(reader);
  critic_opt_.deserialize(reader);
  last_buffer_.deserialize(reader);
  last_critic_loss_ = reader.read_f64();
  diagnostics_ = UpdateDiagnostics::deserialize(reader);
  proximal_actor_anchor_ = reader.read_f32_vector();
  proximal_critic_anchor_ = reader.read_f32_vector();
  proximal_mu_ = reader.read_f32();
  const bool has_kl = reader.read_bool();
  if (has_kl) {
    const std::vector<float> anchor = reader.read_f32_vector();
    if (anchor.size() != actor_.param_count())
      throw std::invalid_argument("load_training_state: KL anchor size mismatch");
    if (!kl_anchor_actor_) kl_anchor_actor_ = std::make_unique<nn::Mlp>(actor_);
    kl_anchor_actor_->unflatten(anchor);
  } else {
    kl_anchor_actor_.reset();
  }
  kl_beta_ = reader.read_f32();
}

double PpoAgent::critic_loss_on(nn::Mlp& net, const RolloutBuffer& buffer) const {
  if (buffer.empty()) return 0.0;
  const nn::Matrix states = buffer.state_matrix();
  const std::vector<float> returns = buffer.compute_returns(config_.gamma);
  return critic_loss_on(net, states, returns);
}

double PpoAgent::critic_loss_on(nn::Mlp& net, const nn::Matrix& states,
                                std::span<const float> mc_returns) const {
  if (states.rows() == 0) return 0.0;
  const nn::Matrix& v = net.forward_batch(states);
  double acc = 0.0;
  for (std::size_t i = 0; i < v.rows(); ++i) {
    const double d = static_cast<double>(v(i, 0)) - static_cast<double>(mc_returns[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(v.rows());
}

void PpoAgent::on_model_loaded() {
  if (!last_buffer_.empty()) last_critic_loss_ = critic_loss_on(critic_, last_buffer_);
}

void PpoAgent::load_actor(std::span<const float> flat) {
  actor_.unflatten(flat);
  actor_opt_.reset_moments();
  on_model_loaded();
}

void PpoAgent::load_critic(std::span<const float> flat) {
  critic_.unflatten(flat);
  critic_opt_.reset_moments();
  on_model_loaded();
}

}  // namespace pfrl::rl
