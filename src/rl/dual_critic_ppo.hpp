// The client-side algorithm of PFRL-DM (§4.3): PPO with a *dual critic*.
//
// Each client keeps a local critic φ (never shared) and a public critic ψ
// (the model exchanged with the server). State values mix the two:
//     V(s) = α·V_φ(s) + (1-α)·V_ψ(s)                       (Eq. 14)
// with α chosen adaptively from the critics' buffer losses:
//     α = e^{-L_φ} / (e^{-L_φ} + e^{-L_ψ})                 (Eq. 15)
// recomputed after every parameter change — both local updates and the
// receipt of an aggregated public critic — so a public model that arrives
// poorly matched to this client's environment is automatically
// down-weighted instead of corrupting the policy-update direction
// (the Fig. 9 failure mode of plain FedAvg).
//
// Both critics regress toward the same return targets (Eqs. 16–17); the
// base-class critic_ member serves as the *local* critic φ.
#pragma once

#include "rl/ppo.hpp"

namespace pfrl::rl {

class DualCriticPpoAgent final : public PpoAgent {
 public:
  DualCriticPpoAgent(std::size_t state_dim, int action_count, PpoConfig config);

  /// Mixed value (Eq. 14).
  nn::Matrix value_batch(const nn::Matrix& states) override;

  /// Mixed value for a single state, allocation-free (Eq. 14).
  float value_row(std::span<const float> state) override;

  /// Mixed values for a packed batch, written into a reused vector
  /// (Eq. 14 on the vectorized-rollout hot path).
  void value_rows_into(const nn::Matrix& states, std::vector<float>& out) override;

  nn::Mlp& local_critic() { return critic_; }
  nn::Mlp& public_critic() { return public_critic_; }
  const nn::Mlp& public_critic() const { return public_critic_; }

  /// Loads an aggregated public critic from the server; the local critic
  /// and actor stay untouched (only ψ crosses the wire in PFRL-DM).
  void load_public_critic(std::span<const float> flat);

  /// PpoAgent::load_critic targets the *local* critic; kept for symmetry
  /// with the baselines.
  void load_critic(std::span<const float> flat) override;

  double alpha() const { return alpha_; }
  double last_public_critic_loss() const { return last_public_loss_; }
  double last_local_critic_loss() const { return last_local_loss_; }

  /// Extends the base serialization with the public critic ψ, its Adam
  /// state, and the Eq. 15 mixing state (α + cached losses).
  void save_training_state(util::ByteWriter& writer) const override;
  void load_training_state(util::ByteReader& reader) override;

 protected:
  void on_model_loaded() override {
    PpoAgent::on_model_loaded();
    refresh_alpha();
  }
  void update_critics(const nn::Matrix& states, std::span<const float> returns) override;
  /// Reports the Eq. 15 mixture: α plus both critics' buffer losses.
  void fill_value_diagnostics() override;

 private:
  void refresh_alpha();

  nn::Mlp public_critic_;
  nn::Adam public_critic_opt_;
  // Workspaces for the α refresh (states + MC returns are built once and
  // shared by both critic-loss evaluations).
  nn::Matrix ws_alpha_states_;
  std::vector<float> ws_alpha_returns_;
  double alpha_ = 0.5;
  double last_local_loss_ = 0.0;
  double last_public_loss_ = 0.0;
};

}  // namespace pfrl::rl
