#include "rl/rollout.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pfrl::rl {

std::vector<float> RolloutBuffer::compute_returns(double gamma) const {
  std::vector<float> returns;
  compute_returns_into(gamma, returns);
  return returns;
}

void RolloutBuffer::compute_returns_into(double gamma, std::vector<float>& out) const {
  out.resize(transitions_.size());
  double running = 0.0;
  for (std::size_t i = transitions_.size(); i-- > 0;) {
    if (transitions_[i].done) running = 0.0;
    running = transitions_[i].reward + gamma * running;
    out[i] = static_cast<float>(running);
  }
}

std::vector<float> RolloutBuffer::compute_advantages(std::span<const float> returns,
                                                     bool normalize) const {
  if (returns.size() != transitions_.size())
    throw std::invalid_argument("compute_advantages: size mismatch");
  std::vector<float> adv(returns.size());
  for (std::size_t i = 0; i < adv.size(); ++i) adv[i] = returns[i] - transitions_[i].value;
  if (normalize && adv.size() > 1) {
    double mean = 0.0;
    for (const float a : adv) mean += static_cast<double>(a);
    mean /= static_cast<double>(adv.size());
    double var = 0.0;
    for (const float a : adv) var += (static_cast<double>(a) - mean) * (static_cast<double>(a) - mean);
    var /= static_cast<double>(adv.size());
    const double inv_std = 1.0 / (std::sqrt(var) + 1e-8);
    for (float& a : adv) a = static_cast<float>((static_cast<double>(a) - mean) * inv_std);
  }
  return adv;
}

RolloutBuffer::GaeResult RolloutBuffer::compute_gae(double gamma, double lambda,
                                                    bool normalize) const {
  GaeResult out;
  const std::size_t n = transitions_.size();
  out.advantages.resize(n);
  out.returns.resize(n);
  double running_adv = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    const Transition& t = transitions_[i];
    const double next_value =
        (t.done || i + 1 == n) ? 0.0 : static_cast<double>(transitions_[i + 1].value);
    const double not_done = t.done ? 0.0 : 1.0;
    const double delta = t.reward + gamma * next_value * not_done - static_cast<double>(t.value);
    // not_done zeroes both the bootstrap and the accumulation at episode
    // boundaries, restarting GAE cleanly.
    running_adv = delta + gamma * lambda * not_done * running_adv;
    out.advantages[i] = static_cast<float>(running_adv);
    out.returns[i] = static_cast<float>(running_adv + static_cast<double>(t.value));
  }
  if (normalize && n > 1) {
    double mean = 0.0;
    for (const float a : out.advantages) mean += static_cast<double>(a);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (const float a : out.advantages)
      var += (static_cast<double>(a) - mean) * (static_cast<double>(a) - mean);
    var /= static_cast<double>(n);
    const double inv_std = 1.0 / (std::sqrt(var) + 1e-8);
    for (float& a : out.advantages)
      a = static_cast<float>((static_cast<double>(a) - mean) * inv_std);
  }
  return out;
}

nn::Matrix RolloutBuffer::state_matrix() const {
  nn::Matrix states;
  state_matrix_into(states);
  return states;
}

void RolloutBuffer::state_matrix_into(nn::Matrix& out) const {
  if (transitions_.empty()) {
    out.resize(0, 0);
    return;
  }
  const std::size_t dim = transitions_.front().state.size();
  out.resize(transitions_.size(), dim);
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    if (transitions_[i].state.size() != dim)
      throw std::invalid_argument("state_matrix: inconsistent state dims");
    auto row = out.row(i);
    std::copy(transitions_[i].state.begin(), transitions_[i].state.end(), row.begin());
  }
}

void RolloutBuffer::serialize(util::ByteWriter& writer) const {
  writer.write_u64(transitions_.size());
  for (const Transition& t : transitions_) {
    writer.write_f32_span(t.state);
    writer.write_i64(t.action);
    writer.write_f64(t.reward);
    writer.write_f32(t.log_prob);
    writer.write_f32(t.value);
    writer.write_bool(t.done);
  }
}

void RolloutBuffer::deserialize(util::ByteReader& reader) {
  const std::uint64_t n = reader.read_u64();
  std::vector<Transition> transitions;
  transitions.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Transition t;
    t.state = reader.read_f32_vector();
    t.action = static_cast<int>(reader.read_i64());
    t.reward = reader.read_f64();
    t.log_prob = reader.read_f32();
    t.value = reader.read_f32();
    t.done = reader.read_bool();
    transitions.push_back(std::move(t));
  }
  transitions_ = std::move(transitions);
}

}  // namespace pfrl::rl
