#include "rl/vec_env.hpp"

#include <stdexcept>

namespace pfrl::rl {

VecEnv::VecEnv(std::vector<std::unique_ptr<env::Env>> envs) : envs_(std::move(envs)) {
  if (envs_.empty()) throw std::invalid_argument("VecEnv: no environments");
  for (const auto& e : envs_)
    if (e == nullptr) throw std::invalid_argument("VecEnv: null environment");
  state_dim_ = envs_.front()->state_dim();
  action_count_ = envs_.front()->action_count();
  for (const auto& e : envs_)
    if (e->state_dim() != state_dim_ || e->action_count() != action_count_)
      throw std::invalid_argument("VecEnv: heterogeneous state/action dimensions");
  active_ids_.reserve(envs_.size());
}

void VecEnv::reset(std::size_t count) {
  if (count == 0 || count > envs_.size())
    throw std::invalid_argument("VecEnv::reset: count out of range");
  active_ids_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    envs_[i]->reset();
    active_ids_.push_back(i);
  }
}

const nn::Matrix& VecEnv::observe_active() {
  obs_.resize(active_ids_.size(), state_dim_);
  for (std::size_t r = 0; r < active_ids_.size(); ++r)
    envs_[active_ids_[r]]->observe(obs_.row(r));
  return obs_;
}

void VecEnv::step_active(std::span<const int> actions, std::span<env::StepResult> results) {
  if (actions.size() != active_ids_.size() || results.size() != active_ids_.size())
    throw std::invalid_argument("VecEnv::step_active: span size mismatch");
  for (std::size_t r = 0; r < active_ids_.size(); ++r)
    results[r] = envs_[active_ids_[r]]->step(actions[r]);
}

void VecEnv::retire_done(std::span<const env::StepResult> results) {
  if (results.size() != active_ids_.size())
    throw std::invalid_argument("VecEnv::retire_done: span size mismatch");
  std::size_t w = 0;
  for (std::size_t r = 0; r < active_ids_.size(); ++r)
    if (!results[r].done) active_ids_[w++] = active_ids_[r];
  active_ids_.resize(w);
}

}  // namespace pfrl::rl
