#include "rl/dual_critic_ppo.hpp"

#include <cmath>

namespace pfrl::rl {

namespace {
nn::AdamConfig adam_for(float lr, float max_grad_norm) {
  nn::AdamConfig c;
  c.lr = lr;
  c.max_grad_norm = max_grad_norm;
  return c;
}
}  // namespace

DualCriticPpoAgent::DualCriticPpoAgent(std::size_t state_dim, int action_count, PpoConfig config)
    : PpoAgent(state_dim, action_count, config),
      public_critic_(state_dim, {config.hidden}, 1, rng_),
      public_critic_opt_(public_critic_.params(),
                         adam_for(config.critic_lr, config.max_grad_norm)) {}

nn::Matrix DualCriticPpoAgent::value_batch(const nn::Matrix& states) {
  nn::Matrix local = critic_.forward(states);
  const nn::Matrix pub = public_critic_.forward(states);
  const auto a = static_cast<float>(alpha_);
  for (std::size_t i = 0; i < local.rows(); ++i)
    local(i, 0) = a * local(i, 0) + (1.0F - a) * pub(i, 0);
  return local;
}

void DualCriticPpoAgent::update_critics(const nn::Matrix& states,
                                        std::span<const float> returns) {
  // Eqs. (16) and (17): both critics regress toward the same targets,
  // "optimized synchronously" during the update.
  const float inv_n = 1.0F / static_cast<float>(states.rows());
  for (std::size_t epoch = 0; epoch < config_.update_epochs; ++epoch) {
    for (nn::Mlp* net : {&critic_, &public_critic_}) {
      nn::Matrix v = net->forward(states);
      nn::Matrix grad(v.rows(), 1);
      for (std::size_t i = 0; i < v.rows(); ++i)
        grad(i, 0) = 2.0F * inv_n * (v(i, 0) - returns[i]);
      net->zero_grad();
      net->backward(grad);
      (net == &critic_ ? critic_opt_ : public_critic_opt_).step();
    }
  }
  refresh_alpha();
}

void DualCriticPpoAgent::load_public_critic(std::span<const float> flat) {
  public_critic_.unflatten(flat);
  public_critic_opt_.reset_moments();
  refresh_alpha();
}

void DualCriticPpoAgent::load_critic(std::span<const float> flat) {
  PpoAgent::load_critic(flat);  // targets the local critic; triggers refresh
}

void DualCriticPpoAgent::refresh_alpha() {
  // Eq. (15), evaluated on the trajectories still in the buffer. Before
  // any experience exists the critics are equally trusted.
  if (last_buffer().empty()) {
    alpha_ = 0.5;
    return;
  }
  last_local_loss_ = critic_loss_on(critic_, last_buffer());
  last_public_loss_ = critic_loss_on(public_critic_, last_buffer());
  // Stabilize the softmax for large losses by shifting both exponents.
  const double shift = std::min(last_local_loss_, last_public_loss_);
  const double e_local = std::exp(-(last_local_loss_ - shift));
  const double e_public = std::exp(-(last_public_loss_ - shift));
  alpha_ = e_local / (e_local + e_public);
}

}  // namespace pfrl::rl
