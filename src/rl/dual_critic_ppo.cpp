#include "rl/dual_critic_ppo.hpp"

#include <cmath>

namespace pfrl::rl {

namespace {
nn::AdamConfig adam_for(float lr, float max_grad_norm) {
  nn::AdamConfig c;
  c.lr = lr;
  c.max_grad_norm = max_grad_norm;
  return c;
}
}  // namespace

DualCriticPpoAgent::DualCriticPpoAgent(std::size_t state_dim, int action_count, PpoConfig config)
    : PpoAgent(state_dim, action_count, config),
      public_critic_(state_dim, {config.hidden}, 1, rng_),
      public_critic_opt_(public_critic_.params(),
                         adam_for(config.critic_lr, config.max_grad_norm)) {}

nn::Matrix DualCriticPpoAgent::value_batch(const nn::Matrix& states) {
  nn::Matrix local = critic_.forward(states);
  const nn::Matrix pub = public_critic_.forward(states);
  const auto a = static_cast<float>(alpha_);
  for (std::size_t i = 0; i < local.rows(); ++i)
    local(i, 0) = a * local(i, 0) + (1.0F - a) * pub(i, 0);
  return local;
}

float DualCriticPpoAgent::value_row(std::span<const float> state) {
  float local = 0.0F;
  float pub = 0.0F;
  critic_.forward_row(state, std::span<float>(&local, 1));
  public_critic_.forward_row(state, std::span<float>(&pub, 1));
  const auto a = static_cast<float>(alpha_);
  return a * local + (1.0F - a) * pub;
}

void DualCriticPpoAgent::value_rows_into(const nn::Matrix& states, std::vector<float>& out) {
  const nn::Matrix& local = critic_.forward_batch(states);
  out.resize(local.rows());
  for (std::size_t i = 0; i < local.rows(); ++i) out[i] = local(i, 0);
  const nn::Matrix& pub = public_critic_.forward_batch(states);
  const auto a = static_cast<float>(alpha_);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a * out[i] + (1.0F - a) * pub(i, 0);
}

void DualCriticPpoAgent::update_critics(const nn::Matrix& states,
                                        std::span<const float> returns) {
  // Eqs. (16) and (17): both critics regress toward the same targets,
  // "optimized synchronously" during the update.
  const float inv_n = 1.0F / static_cast<float>(states.rows());
  for (std::size_t epoch = 0; epoch < config_.update_epochs; ++epoch) {
    for (nn::Mlp* net : {&critic_, &public_critic_}) {
      const nn::Matrix& v = net->forward_batch(states);
      ws_value_grad_.resize(v.rows(), 1);
      for (std::size_t i = 0; i < v.rows(); ++i)
        ws_value_grad_(i, 0) = 2.0F * inv_n * (v(i, 0) - returns[i]);
      net->zero_grad();
      net->backward_batch(ws_value_grad_);
      // Telemetry reports the *local* critic's gradient norm: φ never
      // leaves the client, so its gradients are the per-client learning
      // signal (ψ's direction is dominated by aggregation anyway).
      if (epoch + 1 == config_.update_epochs && net == &critic_)
        diagnostics_.critic_grad_norm = grad_l2_norm(*net);
      (net == &critic_ ? critic_opt_ : public_critic_opt_).step();
    }
  }
  refresh_alpha();
}

void DualCriticPpoAgent::fill_value_diagnostics() {
  diagnostics_.alpha = alpha_;
  diagnostics_.local_critic_loss = last_local_loss_;
  diagnostics_.public_critic_loss = last_public_loss_;
}

void DualCriticPpoAgent::load_public_critic(std::span<const float> flat) {
  public_critic_.unflatten(flat);
  public_critic_opt_.reset_moments();
  refresh_alpha();
}

void DualCriticPpoAgent::load_critic(std::span<const float> flat) {
  PpoAgent::load_critic(flat);  // targets the local critic; triggers refresh
}

void DualCriticPpoAgent::save_training_state(util::ByteWriter& writer) const {
  PpoAgent::save_training_state(writer);
  public_critic_.serialize(writer);
  public_critic_opt_.serialize(writer);
  writer.write_f64(alpha_);
  writer.write_f64(last_local_loss_);
  writer.write_f64(last_public_loss_);
}

void DualCriticPpoAgent::load_training_state(util::ByteReader& reader) {
  PpoAgent::load_training_state(reader);
  public_critic_.deserialize(reader);
  public_critic_opt_.deserialize(reader);
  alpha_ = reader.read_f64();
  last_local_loss_ = reader.read_f64();
  last_public_loss_ = reader.read_f64();
}

void DualCriticPpoAgent::refresh_alpha() {
  // Eq. (15), evaluated on the trajectories still in the buffer. Before
  // any experience exists the critics are equally trusted.
  if (last_buffer().empty()) {
    alpha_ = 0.5;
    return;
  }
  // Build the stacked states and MC returns once; both loss evaluations
  // share them (they used to rebuild the pair from the buffer each).
  last_buffer().state_matrix_into(ws_alpha_states_);
  last_buffer().compute_returns_into(config_.gamma, ws_alpha_returns_);
  last_local_loss_ = critic_loss_on(critic_, ws_alpha_states_, ws_alpha_returns_);
  last_public_loss_ = critic_loss_on(public_critic_, ws_alpha_states_, ws_alpha_returns_);
  // Stabilize the softmax for large losses by shifting both exponents.
  const double shift = std::min(last_local_loss_, last_public_loss_);
  const double e_local = std::exp(-(last_local_loss_ - shift));
  const double e_public = std::exp(-(last_public_loss_ - shift));
  alpha_ = e_local / (e_local + e_public);
}

}  // namespace pfrl::rl
