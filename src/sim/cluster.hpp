// Discrete-time cloud cluster: a set of VMs, a FIFO waiting queue, and a
// task trace replayed against the clock. The RL environment (env/) drives
// this engine; the engine itself is policy-agnostic and is also used
// directly by the heuristic baselines in the examples.
#pragma once

#include <array>
#include <deque>
#include <optional>
#include <vector>

#include "sim/machine.hpp"
#include "sim/power.hpp"
#include "sim/vm.hpp"
#include "workload/trace.hpp"

namespace pfrl::sim {

/// Number of resource dimensions (d in the paper): vCPU and memory.
constexpr int kResourceTypes = 2;

struct ClusterConfig {
  MachineSpecs specs;
  double tick_seconds = 1.0;
  /// w_i in Eqs. (4), (9), (24) — relative importance of vCPU vs memory.
  std::array<double, kResourceTypes> resource_weights{0.5, 0.5};
  /// Per-VM power model for the energy-objective extension.
  PowerModel power;
};

/// A finished task with its timing milestones.
struct Completion {
  workload::Task task;
  double start_time = 0.0;
  double finish_time = 0.0;

  double wait_time() const { return start_time - task.arrival_time; }
  double response_time() const { return finish_time - task.arrival_time; }
};

class Cluster {
 public:
  Cluster(ClusterConfig config, workload::Trace trace);

  double now() const { return now_; }
  const std::vector<Vm>& vms() const { return vms_; }
  std::size_t vm_count() const { return vms_.size(); }
  const std::deque<workload::Task>& queue() const { return queue_; }
  const ClusterConfig& config() const { return config_; }

  /// Tasks not yet arrived + queued + running.
  std::size_t outstanding_tasks() const;
  bool all_done() const { return outstanding_tasks() == 0; }

  bool any_vm_fits(const workload::Task& task) const;
  bool vm_fits_head(std::size_t vm_index) const;

  /// Places the queue head on `vm_index` at the current time. The caller
  /// must have checked fit. Returns the resulting Completion milestones
  /// (finish time is determined at placement since the simulator knows
  /// the duration; the completion is *recorded* when the clock reaches it).
  Completion schedule_head(std::size_t vm_index);

  /// Advances the clock by one tick: completes finished tasks, admits new
  /// arrivals. Returns the tasks that completed during the tick.
  std::vector<Completion> tick();

  /// Advances the clock directly to the next interesting instant (next
  /// arrival or next completion) when the queue is empty; no-op otherwise.
  /// Returns completions that fired. Keeps tick alignment by rounding the
  /// jump up to whole ticks.
  std::vector<Completion> fast_forward();

  /// Advances the clock to at least `t` (tick-aligned), completing and
  /// admitting along the way. Used by drivers with external event sources
  /// (the workflow env's job arrivals). No-op when t <= now.
  std::vector<Completion> advance_until(double t);

  /// LoadBal(t) per Eq. (4) — weighted stddev of per-VM remaining load.
  double load_balance() const;

  /// Mean utilization of resource r across VMs at the current instant.
  double mean_utilization(int resource) const;

  /// Weighted (w_i) mean utilization across resources and VMs.
  double weighted_utilization() const;

  /// Instantaneous power draw (watts) under the linear model: every VM
  /// pays its idle cost plus a per-used-vCPU increment.
  double power_draw() const;
  /// Draw if every vCPU in the cluster were busy (normalizer).
  double max_power_draw() const;

  /// Appends a task to the waiting queue at the current time — used by
  /// the workflow extension, which releases DAG tasks as their
  /// predecessors complete rather than from a fixed arrival trace.
  void inject_task(const workload::Task& task);

 private:
  void admit_arrivals();
  std::vector<Completion> complete_until(double t);

  ClusterConfig config_;
  workload::Trace trace_;     // sorted by arrival
  std::size_t next_arrival_ = 0;
  std::deque<workload::Task> queue_;
  std::vector<Vm> vms_;
  double now_ = 0.0;
};

}  // namespace pfrl::sim
