#include "sim/metrics.hpp"

#include <algorithm>

namespace pfrl::sim {

EpisodeMetrics average_metrics(std::span<const EpisodeMetrics> runs) {
  EpisodeMetrics avg;
  if (runs.empty()) return avg;
  const auto n = static_cast<double>(runs.size());
  for (const EpisodeMetrics& m : runs) {
    avg.avg_response_time += m.avg_response_time / n;
    avg.avg_wait_time += m.avg_wait_time / n;
    avg.makespan += m.makespan / n;
    avg.avg_utilization += m.avg_utilization / n;
    avg.avg_load_balance += m.avg_load_balance / n;
    avg.total_reward += m.total_reward / n;
    avg.completed_tasks += m.completed_tasks;
    avg.steps += m.steps;
    avg.invalid_actions += m.invalid_actions;
    avg.lazy_noops += m.lazy_noops;
  }
  avg.completed_tasks /= runs.size();
  avg.steps /= runs.size();
  avg.invalid_actions /= runs.size();
  avg.lazy_noops /= runs.size();
  return avg;
}

void MetricsCollector::record_completion(const Completion& completion) {
  response_times_.push_back(completion.response_time());
  wait_times_.push_back(completion.wait_time());
  last_finish_ = std::max(last_finish_, completion.finish_time);
}

void MetricsCollector::record_tick(const Cluster& cluster) {
  record_period(cluster.weighted_utilization(), cluster.load_balance(), 1.0);
}

void MetricsCollector::record_period(double weighted_utilization, double load_balance,
                                     double ticks) {
  util_sum_ += weighted_utilization * ticks;
  loadbal_sum_ += load_balance * ticks;
  tick_samples_ += ticks;
}

EpisodeMetrics MetricsCollector::finalize() const {
  EpisodeMetrics m;
  m.completed_tasks = response_times_.size();
  if (!response_times_.empty()) {
    double acc = 0.0;
    for (const double r : response_times_) acc += r;
    m.avg_response_time = acc / static_cast<double>(response_times_.size());
    acc = 0.0;
    for (const double w : wait_times_) acc += w;
    m.avg_wait_time = acc / static_cast<double>(wait_times_.size());
  }
  m.makespan = last_finish_;
  if (tick_samples_ > 0.0) {
    m.avg_utilization = util_sum_ / tick_samples_;
    m.avg_load_balance = loadbal_sum_ / tick_samples_;
  }
  return m;
}

}  // namespace pfrl::sim
