// Machine (VM) specifications — the (CPU, Memory, Count) triples of the
// paper's Tables 2 and 3.
#pragma once

#include <vector>

namespace pfrl::sim {

struct MachineSpec {
  int vcpus = 1;
  double memory_gb = 1.0;
  int count = 1;
};

using MachineSpecs = std::vector<MachineSpec>;

inline int total_vms(const MachineSpecs& specs) {
  int n = 0;
  for (const auto& s : specs) n += s.count;
  return n;
}

inline double total_vcpus(const MachineSpecs& specs) {
  double n = 0;
  for (const auto& s : specs) n += static_cast<double>(s.vcpus) * s.count;
  return n;
}

inline double total_memory_gb(const MachineSpecs& specs) {
  double n = 0;
  for (const auto& s : specs) n += s.memory_gb * s.count;
  return n;
}

/// Divides every machine's vCPU count by `factor` (>= 1, rounding up to at
/// least 1). Used to shrink paper-scale clusters for the 1-core default
/// runs; task vCPU requests are scaled by the same factor at env setup so
/// relative pressure is preserved.
inline MachineSpecs scale_vcpus(MachineSpecs specs, int factor) {
  if (factor <= 1) return specs;
  for (auto& s : specs) s.vcpus = (s.vcpus + factor - 1) / factor;
  return specs;
}

}  // namespace pfrl::sim
