// Linear VM power model — the paper notes the reward "can be easily
// extended to accommodate other optimization objectives, such as ...
// energy consumption"; this is that extension's substrate.
//
// P(vm) = idle_watts + watts_per_vcpu * used_vcpus, the standard linear
// utilization model (Fan et al., "Power provisioning for a
// warehouse-sized computer").
#pragma once

namespace pfrl::sim {

struct PowerModel {
  double idle_watts = 100.0;
  double watts_per_vcpu = 12.5;
  /// A VM running nothing can be parked at this fraction of idle_watts —
  /// what makes consolidation (vs load-spreading) save energy at all.
  double sleeping_fraction = 0.3;
};

}  // namespace pfrl::sim
