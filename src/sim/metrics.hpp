// Episode metric accumulation — the four evaluation metrics of §5.1:
// average response time (Eq. 23), makespan, average resource utilization
// (Eq. 24), and average load balancing (Eq. 25).
#pragma once

#include <span>
#include <vector>

#include "sim/cluster.hpp"
#include "util/serialization.hpp"

namespace pfrl::sim {

/// Final metrics of one scheduling episode.
struct EpisodeMetrics {
  double avg_response_time = 0.0;   // Eq. 23
  double avg_wait_time = 0.0;
  double makespan = 0.0;            // finish of the last task
  double avg_utilization = 0.0;     // Eq. 24 (weighted, time-averaged)
  double avg_load_balance = 0.0;    // Eq. 25 (lower = more balanced)
  std::size_t completed_tasks = 0;

  // Filled by the RL environment:
  double total_reward = 0.0;
  std::size_t steps = 0;
  std::size_t invalid_actions = 0;
  std::size_t lazy_noops = 0;  // no-op while some VM fit the head task

  void serialize(util::ByteWriter& writer) const {
    writer.write_f64(avg_response_time);
    writer.write_f64(avg_wait_time);
    writer.write_f64(makespan);
    writer.write_f64(avg_utilization);
    writer.write_f64(avg_load_balance);
    writer.write_u64(completed_tasks);
    writer.write_f64(total_reward);
    writer.write_u64(steps);
    writer.write_u64(invalid_actions);
    writer.write_u64(lazy_noops);
  }

  static EpisodeMetrics deserialize(util::ByteReader& reader) {
    EpisodeMetrics m;
    m.avg_response_time = reader.read_f64();
    m.avg_wait_time = reader.read_f64();
    m.makespan = reader.read_f64();
    m.avg_utilization = reader.read_f64();
    m.avg_load_balance = reader.read_f64();
    m.completed_tasks = static_cast<std::size_t>(reader.read_u64());
    m.total_reward = reader.read_f64();
    m.steps = static_cast<std::size_t>(reader.read_u64());
    m.invalid_actions = static_cast<std::size_t>(reader.read_u64());
    m.lazy_noops = static_cast<std::size_t>(reader.read_u64());
    return m;
  }
};

/// Field-wise mean over several episodes (multi-rollout evaluation).
EpisodeMetrics average_metrics(std::span<const EpisodeMetrics> runs);

/// Streams observations during an episode and finalizes EpisodeMetrics.
class MetricsCollector {
 public:
  void record_completion(const Completion& completion);

  /// Sample utilization/load-balance once per simulated tick.
  void record_tick(const Cluster& cluster);

  /// Time-weighted sample covering `ticks` simulated ticks during which
  /// the given readings were constant (fast-forwarded idle stretches —
  /// without this, Eq. 24/25 averages would ignore exactly the periods a
  /// consolidating scheduler keeps machines empty).
  void record_period(double weighted_utilization, double load_balance, double ticks);

  EpisodeMetrics finalize() const;

  const std::vector<double>& response_times() const { return response_times_; }

 private:
  std::vector<double> response_times_;
  std::vector<double> wait_times_;
  double last_finish_ = 0.0;
  double util_sum_ = 0.0;
  double loadbal_sum_ = 0.0;
  double tick_samples_ = 0.0;
};

}  // namespace pfrl::sim
