#include "sim/vm.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pfrl::sim {

Vm::Vm(int id, int vcpus, double memory_gb)
    : id_(id), vcpu_capacity_(vcpus), memory_capacity_(memory_gb),
      slot_busy_(static_cast<std::size_t>(vcpus), 0) {
  if (vcpus <= 0 || memory_gb <= 0.0)
    throw std::invalid_argument("Vm: non-positive capacity");
}

bool Vm::can_fit(const workload::Task& task) const {
  return task.vcpus <= free_vcpus() && task.memory_gb <= free_memory() + 1e-9;
}

void Vm::place(const workload::Task& task, double now) {
  if (!can_fit(task)) throw std::logic_error("Vm::place: task does not fit");
  RunningTask rt;
  rt.task = task;
  rt.start_time = now;
  rt.slots.reserve(static_cast<std::size_t>(task.vcpus));
  for (int k = 0; k < vcpu_capacity_ && static_cast<int>(rt.slots.size()) < task.vcpus; ++k) {
    if (!slot_busy_[static_cast<std::size_t>(k)]) {
      slot_busy_[static_cast<std::size_t>(k)] = 1;
      rt.slots.push_back(k);
    }
  }
  assert(static_cast<int>(rt.slots.size()) == task.vcpus);
  used_vcpus_ += task.vcpus;
  used_memory_ += task.memory_gb;
  running_.push_back(std::move(rt));
}

std::vector<RunningTask> Vm::advance(double now) {
  std::vector<RunningTask> done;
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->finish_time() <= now + 1e-9) {
      for (const int k : it->slots) slot_busy_[static_cast<std::size_t>(k)] = 0;
      used_vcpus_ -= it->task.vcpus;
      used_memory_ -= it->task.memory_gb;
      done.push_back(std::move(*it));
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(done.begin(), done.end(),
            [](const RunningTask& a, const RunningTask& b) {
              return a.finish_time() < b.finish_time();
            });
  return done;
}

std::optional<double> Vm::next_completion() const {
  std::optional<double> next;
  for (const auto& rt : running_)
    if (!next || rt.finish_time() < *next) next = rt.finish_time();
  return next;
}

double Vm::slot_progress(int slot, double now) const {
  assert(slot >= 0 && slot < vcpu_capacity_);
  if (!slot_busy_[static_cast<std::size_t>(slot)]) return 0.0;
  for (const auto& rt : running_)
    if (std::find(rt.slots.begin(), rt.slots.end(), slot) != rt.slots.end())
      return rt.progress(now);
  return 0.0;  // unreachable if invariants hold
}

void Vm::slot_progress_into(std::span<float> out, double now) const {
  std::fill(out.begin(), out.end(), 0.0F);
  for (const auto& rt : running_) {
    const auto p = static_cast<float>(rt.progress(now));
    for (const int k : rt.slots)
      if (static_cast<std::size_t>(k) < out.size()) out[static_cast<std::size_t>(k)] = p;
  }
}

double Vm::utilization(int resource) const {
  switch (resource) {
    case 0: return static_cast<double>(used_vcpus_) / static_cast<double>(vcpu_capacity_);
    case 1: return used_memory_ / memory_capacity_;
    default: throw std::out_of_range("Vm::utilization: resource index");
  }
}

}  // namespace pfrl::sim
