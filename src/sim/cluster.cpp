#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace pfrl::sim {

Cluster::Cluster(ClusterConfig config, workload::Trace trace)
    : config_(std::move(config)), trace_(std::move(trace)) {
  if (config_.specs.empty()) throw std::invalid_argument("Cluster: no machine specs");
  if (config_.tick_seconds <= 0.0) throw std::invalid_argument("Cluster: non-positive tick");
  if (!workload::is_sorted_by_arrival(trace_)) workload::normalize(trace_);
  int id = 0;
  for (const MachineSpec& spec : config_.specs)
    for (int i = 0; i < spec.count; ++i) vms_.emplace_back(id++, spec.vcpus, spec.memory_gb);
  admit_arrivals();
}

std::size_t Cluster::outstanding_tasks() const {
  std::size_t running = 0;
  for (const Vm& vm : vms_) running += vm.running_count();
  return (trace_.size() - next_arrival_) + queue_.size() + running;
}

bool Cluster::any_vm_fits(const workload::Task& task) const {
  return std::any_of(vms_.begin(), vms_.end(), [&](const Vm& vm) { return vm.can_fit(task); });
}

bool Cluster::vm_fits_head(std::size_t vm_index) const {
  if (queue_.empty() || vm_index >= vms_.size()) return false;
  return vms_[vm_index].can_fit(queue_.front());
}

Completion Cluster::schedule_head(std::size_t vm_index) {
  if (queue_.empty()) throw std::logic_error("schedule_head: empty queue");
  if (vm_index >= vms_.size()) throw std::out_of_range("schedule_head: bad VM index");
  const workload::Task task = queue_.front();
  if (!vms_[vm_index].can_fit(task)) throw std::logic_error("schedule_head: task does not fit");
  queue_.pop_front();
  vms_[vm_index].place(task, now_);
  Completion c;
  c.task = task;
  c.start_time = now_;
  c.finish_time = now_ + task.duration;
  return c;
}

void Cluster::admit_arrivals() {
  while (next_arrival_ < trace_.size() && trace_[next_arrival_].arrival_time <= now_ + 1e-9)
    queue_.push_back(trace_[next_arrival_++]);
}

std::vector<Completion> Cluster::complete_until(double t) {
  std::vector<Completion> done;
  for (Vm& vm : vms_) {
    for (RunningTask& rt : vm.advance(t)) {
      Completion c;
      c.start_time = rt.start_time;
      c.finish_time = rt.finish_time();
      c.task = std::move(rt.task);
      done.push_back(std::move(c));
    }
  }
  std::sort(done.begin(), done.end(),
            [](const Completion& a, const Completion& b) { return a.finish_time < b.finish_time; });
  if (!done.empty()) PFRL_COUNT("sim/task_completions", done.size());
  return done;
}

std::vector<Completion> Cluster::tick() {
  now_ += config_.tick_seconds;
  auto done = complete_until(now_);
  admit_arrivals();
  return done;
}

std::vector<Completion> Cluster::fast_forward() {
  if (!queue_.empty()) return {};
  std::optional<double> next_event;
  if (next_arrival_ < trace_.size()) next_event = trace_[next_arrival_].arrival_time;
  for (const Vm& vm : vms_) {
    const auto completion = vm.next_completion();
    if (completion && (!next_event || *completion < *next_event)) next_event = completion;
  }
  if (!next_event || *next_event <= now_) return {};
  // Round the jump up to whole ticks so the clock stays tick-aligned.
  const double delta = *next_event - now_;
  const double ticks = std::ceil(delta / config_.tick_seconds - 1e-9);
  now_ += ticks * config_.tick_seconds;
  auto done = complete_until(now_);
  admit_arrivals();
  return done;
}

std::vector<Completion> Cluster::advance_until(double t) {
  if (t <= now_) return {};
  const double ticks = std::ceil((t - now_) / config_.tick_seconds - 1e-9);
  now_ += ticks * config_.tick_seconds;
  auto done = complete_until(now_);
  admit_arrivals();
  return done;
}

double Cluster::load_balance() const {
  double total = 0.0;
  const auto vm_count_d = static_cast<double>(vms_.size());
  for (int r = 0; r < kResourceTypes; ++r) {
    double mean_load = 0.0;
    for (const Vm& vm : vms_) mean_load += vm.load_remaining(r);
    mean_load /= vm_count_d;
    double var = 0.0;
    for (const Vm& vm : vms_) {
      const double d = vm.load_remaining(r) - mean_load;
      var += d * d;
    }
    total += config_.resource_weights[static_cast<std::size_t>(r)] * std::sqrt(var / vm_count_d);
  }
  return total;
}

double Cluster::mean_utilization(int resource) const {
  double acc = 0.0;
  for (const Vm& vm : vms_) acc += vm.utilization(resource);
  return acc / static_cast<double>(vms_.size());
}

double Cluster::power_draw() const {
  double watts = 0.0;
  for (const Vm& vm : vms_) {
    if (vm.running_count() == 0) {
      watts += config_.power.idle_watts * config_.power.sleeping_fraction;
    } else {
      watts += config_.power.idle_watts +
               config_.power.watts_per_vcpu *
                   static_cast<double>(vm.vcpu_capacity() - vm.free_vcpus());
    }
  }
  return watts;
}

double Cluster::max_power_draw() const {
  double watts = 0.0;
  for (const Vm& vm : vms_)
    watts += config_.power.idle_watts +
             config_.power.watts_per_vcpu * static_cast<double>(vm.vcpu_capacity());
  return watts;
}

void Cluster::inject_task(const workload::Task& task) { queue_.push_back(task); }

double Cluster::weighted_utilization() const {
  double acc = 0.0;
  for (int r = 0; r < kResourceTypes; ++r)
    acc += config_.resource_weights[static_cast<std::size_t>(r)] * mean_utilization(r);
  return acc;
}

}  // namespace pfrl::sim
