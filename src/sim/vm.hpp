// A virtual machine with per-vCPU slot tracking.
//
// The paper's state (Fig. 6) exposes, per VM, the remaining capacity and
// the *completion progress* of the task running on each vCPU — the agent
// never sees a task's total duration, only how far along each slot is.
// The Vm therefore tracks which task occupies which slots and when it
// started, and reports slot progress as elapsed/duration.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "workload/trace.hpp"

namespace pfrl::sim {

/// A task currently executing on a VM.
struct RunningTask {
  workload::Task task;
  double start_time = 0.0;
  std::vector<int> slots;  // occupied vCPU indices

  double finish_time() const { return start_time + task.duration; }
  double progress(double now) const {
    if (task.duration <= 0.0) return 1.0;
    const double p = (now - start_time) / task.duration;
    return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  }
};

class Vm {
 public:
  Vm(int id, int vcpus, double memory_gb);

  int id() const { return id_; }
  int vcpu_capacity() const { return vcpu_capacity_; }
  double memory_capacity() const { return memory_capacity_; }

  int free_vcpus() const { return vcpu_capacity_ - used_vcpus_; }
  double free_memory() const { return memory_capacity_ - used_memory_; }

  /// Both resource demands fit right now.
  bool can_fit(const workload::Task& task) const;

  /// Places the task (must fit), occupying the lowest free slots.
  void place(const workload::Task& task, double now);

  /// Completes every task whose finish_time <= now; returns them (for
  /// response-time accounting), ordered by finish time.
  std::vector<RunningTask> advance(double now);

  /// Next finish time among running tasks (nullopt if idle).
  std::optional<double> next_completion() const;

  /// Progress of the task on slot k at `now`; 0 for a free slot.
  double slot_progress(int slot, double now) const;

  /// Writes progress for slots [0, out.size()) in ONE pass over the
  /// running tasks — the observation encoder calls this once per VM
  /// instead of `slot_progress` per slot, which re-scans every running
  /// task's slot list per query (O(slots × tasks) per observation vs
  /// O(slots + tasks) here). Values are identical: each busy slot gets
  /// its task's progress(now), free slots get 0.
  void slot_progress_into(std::span<float> out, double now) const;

  /// Fraction of resource used: index 0 = vCPU, 1 = memory.
  double utilization(int resource) const;
  /// Fraction of resource *remaining* (the paper's m^load, Eq. 4).
  double load_remaining(int resource) const { return 1.0 - utilization(resource); }

  const std::vector<RunningTask>& running() const { return running_; }
  std::size_t running_count() const { return running_.size(); }

 private:
  int id_;
  int vcpu_capacity_;
  double memory_capacity_;
  int used_vcpus_ = 0;
  double used_memory_ = 0.0;
  std::vector<RunningTask> running_;
  std::vector<std::int8_t> slot_busy_;  // per-vCPU occupancy flag
};

}  // namespace pfrl::sim
