#include "core/net_federation.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/serialization.hpp"

namespace pfrl::core {

namespace {

constexpr std::chrono::milliseconds kPollTick{100};

std::string hex_u64(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t rounds_for(const ExperimentScale& scale) {
  if (scale.comm_every == 0) throw std::invalid_argument("net federation: comm_every must be > 0");
  return (scale.episodes + scale.comm_every - 1) / scale.comm_every;
}

/// Minimal manifest so a restarted server (or a later client) can detect
/// topology drift before any round runs. Same spirit as the checkpoint
/// layer's federation.json, keyed on the per-client arch hash every Hello
/// must present.
void write_or_validate_manifest(const std::string& dir, std::size_t clients,
                                const std::string& algorithm, std::uint64_t arch_hash,
                                std::uint64_t total_rounds) {
  const std::string path = (std::filesystem::path(dir) / "federation.json").string();
  if (std::filesystem::exists(path)) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    const auto expect = [&](const std::string& fragment, const char* what) {
      if (text.find(fragment) == std::string::npos)
        throw std::invalid_argument("net federation manifest mismatch in " + path + ": " + what +
                                    " differs from this configuration (expected " + fragment + ")");
    };
    expect("\"arch_hash\":\"" + hex_u64(arch_hash) + "\"", "arch_hash");
    expect("\"clients\":" + std::to_string(clients), "client count");
    expect("\"algorithm\":\"" + algorithm + "\"", "algorithm");
    return;
  }
  std::filesystem::create_directories(dir);
  std::ofstream out(path);
  out << "{\"schema\":\"pfrl-netfed/1\""
      << ",\"clients\":" << clients << ",\"algorithm\":\"" << algorithm << "\""
      << ",\"arch_hash\":\"" << hex_u64(arch_hash) << "\""
      << ",\"total_rounds\":" << total_rounds << "}\n";
  if (!out) throw std::runtime_error("net federation: cannot write " + path);
}

}  // namespace

// --- NetFedServer ------------------------------------------------------

NetFedServer::NetFedServer(NetFedServerConfig config)
    : config_(std::move(config)),
      client_count_(config_.presets.size()),
      participants_per_round_(resolved_participants(config_.federation, client_count_)),
      total_rounds_(rounds_for(config_.federation.scale)),
      participant_rng_(config_.federation.seed ^ 0xFEDFEDFEDULL) {
  if (config_.presets.empty()) throw std::invalid_argument("NetFedServer: no presets");
  if (config_.federation.algorithm == fed::FedAlgorithm::kIndependent)
    throw std::invalid_argument("NetFedServer: independent PPO has nothing to federate");

  {
    // One throwaway client pins the architecture every Hello must match.
    const SingleClientBuild reference = build_single_client(config_.presets, config_.federation, 0);
    expected_arch_hash_ = fed::client_arch_hash(*reference.client);
  }
  if (!config_.manifest_dir.empty())
    write_or_validate_manifest(config_.manifest_dir, client_count_,
                               fed::algorithm_name(config_.federation.algorithm),
                               expected_arch_hash_, total_rounds_);

  server_ = std::make_unique<fed::FedServer>(make_aggregator(config_.federation));
  server_->set_min_participants(config_.federation.min_participants);
  bus_ = std::make_unique<fed::Bus>(client_count_);
  joins_.resize(client_count_);

  const std::string algorithm = fed::algorithm_name(config_.federation.algorithm);
  fed::HandshakeValidator validator = [this, algorithm](const fed::HelloPayload& hello,
                                                        std::string& reason,
                                                        fed::WelcomePayload& welcome) {
    if (hello.protocol < fed::kMinTransportProtocolVersion ||
        hello.protocol > fed::kTransportProtocolVersion) {
      reason = "unsupported protocol version (server speaks " +
               std::to_string(fed::kMinTransportProtocolVersion) + ".." +
               std::to_string(fed::kTransportProtocolVersion) + ", client " +
               std::to_string(hello.protocol) + ")";
      return false;
    }
    if (hello.algorithm != algorithm) {
      reason = "algorithm mismatch (server " + algorithm + ", client " + hello.algorithm + ")";
      return false;
    }
    if (hello.arch_hash != expected_arch_hash_) {
      reason = "arch hash mismatch (manifest expects " + hex_u64(expected_arch_hash_) + ", got " +
               hex_u64(hello.arch_hash) + ")";
      return false;
    }
    const std::scoped_lock lock(state_mutex_);
    welcome.client_count = client_count_;
    welcome.total_rounds = total_rounds_;
    welcome.comm_every = config_.federation.scale.comm_every;
    welcome.participants_per_round = participants_per_round_;
    welcome.current_round = round_index_;
    if (server_->has_global_model()) welcome.global_model = server_->global_payload();
    return true;
  };
  transport_ = std::make_unique<fed::SocketServerTransport>(config_.listen, client_count_,
                                                            config_.transport, validator);
}

NetFedServer::~NetFedServer() {
  if (transport_) transport_->stop();
}

bool NetFedServer::stopping() const {
  return stop_flag_ != nullptr && stop_flag_->load(std::memory_order_relaxed);
}

void NetFedServer::handle_hello(const fed::Message& message, bool initial_phase) {
  fed::HelloPayload hello;
  try {
    hello = fed::decode_hello(message.payload);
  } catch (const std::exception& e) {
    PFRL_LOG_WARN("NetFedServer: undecodable hello from %d: %s", message.sender, e.what());
    return;
  }
  if (message.sender < 0 || static_cast<std::size_t>(message.sender) >= client_count_) return;
  JoinState& join = joins_[static_cast<std::size_t>(message.sender)];
  if (join.joined) {
    ++summary_.rejoins;
    PFRL_COUNT("net/rejoins", 1);
    PFRL_LOG_INFO("NetFedServer: client %d rejoined (resume round %llu)", message.sender,
                  static_cast<unsigned long long>(hello.resume_round));
  } else {
    join.joined = true;
    PFRL_LOG_INFO("NetFedServer: client %d joined%s", message.sender,
                  initial_phase ? "" : " late");
  }
  join.resume_round = hello.resume_round;
  if (join.init_upload.empty()) join.init_upload = hello.init_upload;
}

std::vector<std::size_t> NetFedServer::pick_participants() {
  // Mirrors FedTrainer::pick_participants draw for draw: the same seed
  // (config.seed ^ 0xFEDFEDFED), a shuffle only when 0 < K < N, and a
  // sorted result — so the networked run selects the in-process run's
  // participant sets.
  std::vector<std::size_t> all(client_count_);
  std::iota(all.begin(), all.end(), std::size_t{0});
  const std::size_t k = participants_per_round_;
  if (k == 0 || k >= client_count_) return all;
  participant_rng_.shuffle(all);
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

NetFedServer::Summary NetFedServer::run() {
  PFRL_SPAN("net/server_run");
  using Clock = std::chrono::steady_clock;

  // --- Join phase: wait for the whole fleet to handshake. ---
  const auto join_deadline = Clock::now() + config_.join_timeout;
  const auto joined_count = [this] {
    std::size_t n = 0;
    for (const JoinState& j : joins_)
      if (j.joined) ++n;
    return n;
  };
  while (joined_count() < client_count_) {
    if (stopping()) {
      summary_.error = "stopped before the fleet joined";
      break;
    }
    if (Clock::now() >= join_deadline) {
      summary_.error = "join timeout: " + std::to_string(joined_count()) + "/" +
                       std::to_string(client_count_) + " clients joined";
      break;
    }
    const std::optional<fed::Message> m = transport_->poll(kPollTick);
    if (m && m->type == fed::MessageType::kHello) handle_hello(*m, /*initial_phase=*/true);
  }

  std::uint64_t round = 0;
  if (summary_.error.empty()) {
    // A whole-fleet restart presents resume_rounds > 0; pick up where the
    // most advanced client left off (fresh fleets all say 0).
    for (const JoinState& j : joins_) round = std::max(round, j.resume_round);
    round = std::min<std::uint64_t>(round, total_rounds_);
    {
      const std::scoped_lock lock(state_mutex_);
      round_index_ = round;
    }
    // Keep the participant RNG stream aligned with the skipped rounds.
    for (std::uint64_t r = 0; r < round; ++r) (void)pick_participants();

    // --- Initial model sync (the networked sync_initial_model): the
    // lowest-id client's upload seeds ψ_G and everyone else applies it
    // before round 0 trains. A whole-fleet restart skips this — the
    // clients resumed their own models and the first aggregation rebuilds
    // ψ_G; re-broadcasting client 0's weights would clobber them. ---
    if (round == 0 && !server_->has_global_model()) {
      std::size_t origin = 0;
      const std::vector<std::uint8_t>& init = joins_[origin].init_upload;
      if (!init.empty()) {
        {
          const std::scoped_lock lock(state_mutex_);
          util::ByteReader reader(init);
          server_->set_global_model(reader.read_f32_vector());
          // Pin the architecture's parameter count: a mis-sized upload is
          // now rejected even before the first aggregation round.
          server_->set_expected_params(server_->global_model().size());
        }
        for (std::size_t id = 0; id < client_count_; ++id) {
          if (id == origin) continue;
          transport_->send(id, fed::make_message(fed::MessageType::kModelInit, -1, round, init));
        }
      }
    }
  }

  // --- Rounds. ---
  std::vector<std::size_t> all(client_count_);
  std::iota(all.begin(), all.end(), std::size_t{0});
  for (; summary_.error.empty() && round < total_rounds_; ++round) {
    if (stopping()) break;
    // The round span's context rides on every frame sent inside it
    // (RoundBegin, downloads), so client-side round spans across the
    // fleet all join this span's trace.
    PFRL_SPAN("fed/round");
    const std::vector<std::size_t> participants = pick_participants();

    for (std::size_t id = 0; id < client_count_; ++id) {
      fed::RoundBeginPayload begin;
      begin.round = round;
      begin.participate =
          std::find(participants.begin(), participants.end(), id) != participants.end();
      begin.episodes = config_.federation.scale.comm_every;
      transport_->send(id, fed::make_message(fed::MessageType::kRoundBegin, -1, round,
                                             fed::encode_round_begin(begin)));
    }

    const std::size_t quorum = std::clamp<std::size_t>(config_.federation.min_participants,
                                                       std::size_t{1}, participants.size());
    fed::RoundCollection collection =
        fed::collect_round(*transport_, round, participants, quorum, config_.round_deadline);

    // Joins/rejoins observed mid-round surface as kHello; everything else
    // late is a straggler upload the server's staleness counters should
    // see. Collected on-round uploads go in already sorted by client id.
    for (fed::Message& m : collection.uploads) bus_->send_to_server(std::move(m));
    for (fed::Message& m : collection.late) {
      if (m.type == fed::MessageType::kHello)
        handle_hello(m, /*initial_phase=*/false);
      else
        bus_->send_to_server(std::move(m));
    }

    {
      const std::scoped_lock lock(state_mutex_);
      server_->run_round(*bus_, round, all);
      round_index_ = round + 1;
    }
    for (std::size_t id = 0; id < client_count_; ++id)
      for (fed::Message& m : bus_->drain_client(id)) transport_->send(id, std::move(m));

    ++summary_.rounds;
    PFRL_COUNT("fed/rounds", 1);
    if (collection.closed_at_deadline) ++summary_.rounds_closed_at_deadline;
    summary_.laggard_rounds += collection.missing.size();
    PFRL_LOG_INFO("NetFedServer: round %llu done (%zu/%zu uploads%s)",
                  static_cast<unsigned long long>(round), collection.uploads.size(),
                  participants.size(), collection.closed_at_deadline ? ", quorum deadline" : "");
  }

  summary_.completed = summary_.error.empty() && round == total_rounds_;
  std::uint64_t final_round = 0;
  {
    const std::scoped_lock lock(state_mutex_);
    final_round = round_index_;
  }
  for (std::size_t id = 0; id < client_count_; ++id)
    transport_->send(id, fed::make_message(fed::MessageType::kGoodbye, -1, final_round, {}));
  // Give in-flight goodbyes a moment to land before tearing sockets down.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  summary_.server = server_->stats();
  if (const fed::RobustAggregator* defense = server_->defense()) {
    summary_.defense_active = true;
    summary_.defense = defense->stats();
  }
  summary_.transport = transport_->stats();
  transport_->stop();
  return summary_;
}

std::string NetFedServer::summary_json(const Summary& s) {
  std::string out = "{\"rounds\":" + std::to_string(s.rounds);
  out += ",\"rounds_closed_at_deadline\":" + std::to_string(s.rounds_closed_at_deadline);
  out += ",\"laggard_rounds\":" + std::to_string(s.laggard_rounds);
  out += ",\"rejoins\":" + std::to_string(s.rejoins);
  out += ",\"completed\":" + std::string(s.completed ? "true" : "false");
  out += ",\"error\":\"" + s.error + "\"";
  out += ",\"server\":{\"accepted\":" + std::to_string(s.server.accepted);
  out += ",\"rejected\":" + std::to_string(s.server.total_rejected());
  out += ",\"rejected_stale\":" + std::to_string(s.server.rejected_stale);
  out += ",\"quorum_failures\":" + std::to_string(s.server.quorum_failures) + "}";
  out += ",\"defense\":{\"active\":" + std::string(s.defense_active ? "true" : "false");
  out += ",\"anomalies\":" + std::to_string(s.defense.anomalies);
  out += ",\"clipped\":" + std::to_string(s.defense.clipped);
  out += ",\"excluded\":" + std::to_string(s.defense.excluded);
  out += ",\"quarantine_events\":" + std::to_string(s.defense.quarantine_events);
  out += ",\"readmissions\":" + std::to_string(s.defense.readmissions);
  out += ",\"first_anomaly_round\":" + std::to_string(s.defense.first_anomaly_round) + "}";
  out += ",\"transport\":{\"sends\":" + std::to_string(s.transport.sends);
  out += ",\"send_failures\":" + std::to_string(s.transport.send_failures);
  out += ",\"reconnects\":" + std::to_string(s.transport.reconnects);
  out += ",\"handshakes\":" + std::to_string(s.transport.handshakes);
  out += ",\"heartbeats_seen\":" + std::to_string(s.transport.heartbeats_seen);
  out += ",\"duplicates_dropped\":" + std::to_string(s.transport.duplicates_dropped);
  out += ",\"crc_dropped\":" + std::to_string(s.transport.crc_dropped);
  out += ",\"bytes_received\":" + std::to_string(s.transport.bytes_received);
  out += ",\"bytes_sent\":" + std::to_string(s.transport.bytes_sent) + "}}";
  return out;
}

// --- NetFedClient ------------------------------------------------------

NetFedClient::NetFedClient(NetFedClientConfig config) : config_(std::move(config)) {
  if (config_.index >= config_.presets.size())
    throw std::invalid_argument("NetFedClient: index out of range");
  if (config_.federation.algorithm == fed::FedAlgorithm::kIndependent)
    throw std::invalid_argument("NetFedClient: independent PPO has nothing to federate");
  if (config_.resume && config_.checkpoint_dir.empty())
    throw std::invalid_argument("NetFedClient: resume requires a checkpoint dir");
}

NetFedClient::Result NetFedClient::run() {
  PFRL_SPAN("net/client_run");
  using Clock = std::chrono::steady_clock;
  Result result;

  SingleClientBuild build = build_single_client(config_.presets, config_.federation, config_.index);
  fed::FedClient& client = *build.client;

  std::optional<SnapshotDir> store;
  if (!config_.checkpoint_dir.empty())
    store.emplace(config_.checkpoint_dir, ContentKind::kNetClientState, "client");

  fed::ClientHistory history;
  std::uint64_t next_round = 0;
  std::size_t episodes_done = 0;
  // A Byzantine client poisons its own round uploads before they hit the
  // wire — the same attack_payload the in-process FaultyBus applies, and
  // deterministic in (seed, client, round), so both runtimes agree. The
  // Hello's init_upload stays honest, matching in-process semantics where
  // attacks only touch round uploads. The stale-replay cache rides in the
  // checkpoint so a resumed attacker replays identically.
  const bool attacker =
      config_.federation.faults.attacker(config_.index, config_.presets.size());
  std::vector<std::uint8_t> attack_replay;
  if (config_.resume && store) {
    if (const auto loaded = store->load_newest_valid()) {
      util::ByteReader reader(loaded->payload);
      next_round = reader.read_u64();
      episodes_done = static_cast<std::size_t>(reader.read_u64());
      client.load_state(reader);
      history = fed::deserialize_client_history(reader);
      if (attacker) attack_replay = reader.read_bytes();
      result.resumed = true;
      PFRL_LOG_INFO("NetFedClient %zu: resumed from %s at round %llu", config_.index,
                    loaded->path.c_str(), static_cast<unsigned long long>(next_round));
    } else {
      PFRL_LOG_INFO("NetFedClient %zu: no snapshot in %s yet; starting fresh", config_.index,
                    config_.checkpoint_dir.c_str());
    }
  }

  fed::HelloPayload hello;
  hello.client_id = static_cast<std::int64_t>(config_.index);
  hello.arch_hash = fed::client_arch_hash(client);
  hello.algorithm = fed::algorithm_name(config_.federation.algorithm);
  hello.resume_round = next_round;
  hello.init_upload = client.make_upload();

  std::optional<fed::WelcomePayload> welcome;
  fed::SocketClientTransport transport(
      config_.endpoint, hello, config_.transport,
      [&welcome](const fed::WelcomePayload& w) { welcome = w; });

  const auto save_checkpoint = [&] {
    if (!store) return;
    util::ByteWriter writer;
    writer.write_u64(next_round);
    writer.write_u64(episodes_done);
    client.save_state(writer);
    fed::serialize_client_history(history, writer);
    // Honest clients keep the pre-attack snapshot layout byte for byte.
    if (attacker) writer.write_bytes(attack_replay);
    store->write(next_round, writer.take());
  };
  const auto finish = [&](bool completed) {
    result.history = std::move(history);
    result.transport = transport.stats();
    result.next_round = next_round;
    result.episodes_done = episodes_done;
    result.completed = completed;
    transport.close();
    return result;
  };

  // --- Join (keep dialing until the server is up or the deadline hits). ---
  const auto connect_deadline = Clock::now() + config_.connect_deadline;
  while (!transport.connect()) {
    if (transport.rejected()) {
      result.error = "handshake rejected: " + transport.reject_reason();
      return finish(false);
    }
    if (stop_flag_ != nullptr && stop_flag_->load(std::memory_order_relaxed)) {
      result.error = "stopped before joining";
      return finish(false);
    }
    if (Clock::now() >= connect_deadline) {
      result.error = "could not reach the server at " + config_.endpoint.describe();
      return finish(false);
    }
    std::this_thread::sleep_for(kPollTick);
  }
  // A rejoiner's Welcome carries the current ψ_G; applying it replaces the
  // downloads missed while down (a fresh fleet's Welcome is empty — the
  // initial model arrives as kModelInit so round 0 matches in-process).
  if (welcome && !welcome->global_model.empty()) {
    try {
      client.apply_download(welcome->global_model);
    } catch (const std::exception& e) {
      PFRL_LOG_WARN("NetFedClient %zu: welcome model rejected: %s", config_.index, e.what());
    }
  }

  std::deque<fed::Message> pending;
  const auto next_message = [&](std::chrono::milliseconds timeout) -> std::optional<fed::Message> {
    if (!pending.empty()) {
      fed::Message m = std::move(pending.front());
      pending.pop_front();
      return m;
    }
    return transport.poll(timeout);
  };

  auto last_traffic = Clock::now();
  std::uint64_t rounds_this_life = 0;
  bool done = false;
  bool saw_goodbye = false;
  while (!done) {
    if (stop_flag_ != nullptr && stop_flag_->load(std::memory_order_relaxed)) {
      result.error = "stopped";
      break;
    }
    std::optional<fed::Message> m = next_message(kPollTick);
    if (!m) {
      if (Clock::now() - last_traffic > config_.idle_timeout) {
        result.error = "no server traffic for " + std::to_string(config_.idle_timeout.count()) +
                       " ms; giving up";
        break;
      }
      continue;
    }
    last_traffic = Clock::now();

    switch (m->type) {
      case fed::MessageType::kModelInit: {
        if (!fed::checksum_ok(*m)) break;
        try {
          client.apply_download(m->payload);
        } catch (const std::exception& e) {
          PFRL_LOG_WARN("NetFedClient %zu: initial model rejected: %s", config_.index, e.what());
        }
        break;
      }
      case fed::MessageType::kGoodbye:
        saw_goodbye = true;
        done = true;
        break;
      case fed::MessageType::kRoundBegin: {
        fed::RoundBeginPayload begin;
        try {
          begin = fed::decode_round_begin(m->payload);
        } catch (const std::exception&) {
          break;
        }
        // Rounds missed while down (server moved on) are recorded exactly
        // like the in-process crash windows: a default diagnostics entry,
        // stale critic-loss samples, growing staleness.
        while (next_round < begin.round) {
          ++history.rounds_crashed;
          history.round_diagnostics.emplace_back();
          history.critic_loss_before.push_back(client.shared_critic_loss());
          ++history.staleness;
          history.max_staleness = std::max(history.max_staleness, history.staleness);
          history.critic_loss_after.push_back(client.shared_critic_loss());
          ++next_round;
        }
        if (begin.round < next_round) break;  // duplicate / stale begin

        {
          // Adopt the trace context stamped on the RoundBegin frame by a
          // protocol-v2 server: this client's round span (train + upload +
          // download) becomes a child of the server's fed/round span, so
          // merged traces show one causally-linked round across processes.
          obs::RemoteSpanScope remote_scope({m->trace_id, m->span_id});
          PFRL_SPAN("fed/round");
          fed::record_training_round(history, client.train_episodes(begin.episodes));
          episodes_done += begin.episodes;
          if (begin.participate) {
            std::vector<std::uint8_t> upload = client.make_upload();
            if (attacker) {
              upload = fed::attack_payload(upload, config_.federation.faults, config_.index,
                                           begin.round, &attack_replay);
              PFRL_COUNT("fed/attacked", 1);
            }
            if (transport.send(fed::make_message(fed::MessageType::kModelUpload, client.id(),
                                                 begin.round, std::move(upload))))
              ++history.uploads_sent;
          }
          history.critic_loss_before.push_back(client.shared_critic_loss());

          // Await this round's download; the server always answers every
          // client it can reach, so a timeout here means we go stale.
          bool applied = false;
          const auto download_deadline = Clock::now() + config_.download_deadline;
          while (Clock::now() < download_deadline) {
            std::optional<fed::Message> d = next_message(kPollTick);
            if (!d) continue;
            last_traffic = Clock::now();
            if (d->type == fed::MessageType::kModelPersonalized ||
                d->type == fed::MessageType::kModelGlobal) {
              if (d->round != begin.round) continue;  // leftover from an old round
              std::string reason;
              if (client.try_apply_download(*d, &reason)) {
                applied = true;
                ++history.downloads_applied;
                PFRL_COUNT("fed/downloads_applied", 1);
              } else {
                ++history.downloads_rejected;
                PFRL_COUNT("fed/downloads_rejected", 1);
                PFRL_LOG_WARN("NetFedClient %zu: rejected download (round %llu): %s", config_.index,
                              static_cast<unsigned long long>(begin.round), reason.c_str());
              }
              break;
            }
            // The server moved on (or is closing): finish this round's
            // accounting first, then let the main loop handle it.
            pending.push_back(std::move(*d));
            break;
          }
          if (applied) {
            history.staleness = 0;
          } else {
            ++history.staleness;
            history.max_staleness = std::max(history.max_staleness, history.staleness);
          }
          history.critic_loss_after.push_back(client.shared_critic_loss());
        }

        ++next_round;
        ++rounds_this_life;
        ++result.rounds_done;
        transport.set_resume_round(next_round);
        if (store && config_.checkpoint_every > 0 && next_round % config_.checkpoint_every == 0)
          save_checkpoint();
        if (config_.exit_after_rounds > 0 && rounds_this_life >= config_.exit_after_rounds) {
          // Simulated crash for tests: no Goodbye, just vanish (the
          // snapshot above is what the next life rejoins from).
          save_checkpoint();
          result.error = "exited after " + std::to_string(rounds_this_life) + " rounds (test hook)";
          done = true;
        }
        break;
      }
      default:
        break;  // stray duplicate downloads etc.
    }
  }

  if (store) save_checkpoint();
  return finish(saw_goodbye);
}

std::string NetFedClient::result_json(const Result& r) {
  std::string out = "{\"completed\":" + std::string(r.completed ? "true" : "false");
  out += ",\"resumed\":" + std::string(r.resumed ? "true" : "false");
  out += ",\"rounds_done\":" + std::to_string(r.rounds_done);
  out += ",\"next_round\":" + std::to_string(r.next_round);
  out += ",\"episodes_done\":" + std::to_string(r.episodes_done);
  out += ",\"error\":\"" + r.error + "\"";
  out += ",\"transport\":{\"sends\":" + std::to_string(r.transport.sends);
  out += ",\"retries\":" + std::to_string(r.transport.retries);
  out += ",\"send_failures\":" + std::to_string(r.transport.send_failures);
  out += ",\"give_ups\":" + std::to_string(r.transport.give_ups);
  out += ",\"reconnects\":" + std::to_string(r.transport.reconnects);
  out += ",\"handshakes\":" + std::to_string(r.transport.handshakes);
  out += ",\"heartbeats_sent\":" + std::to_string(r.transport.heartbeats_sent);
  out += ",\"bytes_sent\":" + std::to_string(r.transport.bytes_sent);
  out += ",\"bytes_received\":" + std::to_string(r.transport.bytes_received) + "}";
  out += ",\"history\":" + fed::client_history_json(r.history) + "}";
  return out;
}

}  // namespace pfrl::core
