// Crash-safe persistence: agents, federations, and full training state.
//
// Checkpoint v2 on-disk container (little-endian):
//
//   header : magic 'PFC2' (u32) · version (u32) · content kind (u32)
//   payload: content-defined bytes
//   footer : payload length (u64) · CRC-32 over header+payload (u32)
//            · end magic 'PFC2' (u32)
//
// Every file is written atomically — serialized to `<path>.tmp`, fsync'd,
// then rename(2)'d over the final name, with the directory fsync'd after —
// so a crash mid-write can never tear an existing checkpoint. A torn or
// bit-flipped file is detected by magic/length/CRC validation on read.
//
// SnapshotDir layers generation rotation on top: each write lands as
// `<stem>-<ordinal>.pfc`, the last `keep` generations are retained, and
// loading walks generations newest-first past corrupt files (with a logged
// warning) to the last good one — the "fall back one generation instead of
// failing the run" contract.
//
// CheckpointManager binds SnapshotDir to FedTrainer::serialize_state for
// full-state checkpoints whose restore continues training bit-identically
// (parameters, Adam moments, RNG streams, α state, history, the works).
// A `federation.json` manifest (client count, algorithm, architecture
// hash) is written beside the snapshots; restoring into a trainer whose
// topology hashes differently fails with a clear error instead of loading
// weights into the wrong slots.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fed/trainer.hpp"
#include "rl/dual_critic_ppo.hpp"

namespace pfrl::core {

/// What a v2 container holds; validated on read so an agent checkpoint
/// can never be fed to the federation-state loader (or vice versa).
enum class ContentKind : std::uint32_t {
  kAgent = 1,            // actor/critic(/public critic) parameters
  kGlobalModel = 2,      // the server's flattened ψ_G
  kFederationState = 3,  // FedTrainer::serialize_state payload
  kSingleAgentRun = 4,   // quickstart's agent + episode-loop state
  kNetClientState = 5,   // one networked client's round/agent/history state
};

/// Atomically writes `payload` wrapped in the v2 container.
/// Throws std::runtime_error on I/O failure.
void write_container(const std::string& path, ContentKind kind,
                     std::span<const std::uint8_t> payload);

/// Reads and validates a v2 container, returning the payload. Throws
/// std::runtime_error when the file cannot be read and
/// std::invalid_argument when validation fails (bad magic, wrong or
/// unsupported version, wrong content kind, truncation, CRC mismatch).
std::vector<std::uint8_t> read_container(const std::string& path, ContentKind kind);

/// Rotating store of checkpoint generations under one directory.
class SnapshotDir {
 public:
  /// `keep` >= 2 preserves a last-good generation behind the newest.
  explicit SnapshotDir(std::string directory, ContentKind kind,
                       std::string stem = "snapshot", std::size_t keep = 2);

  /// Atomically writes `payload` as generation `ordinal`
  /// (`<stem>-<ordinal>.pfc`), then prunes generations beyond `keep`.
  void write(std::uint64_t ordinal, std::span<const std::uint8_t> payload) const;

  struct Loaded {
    std::uint64_t ordinal = 0;
    std::string path;
    std::vector<std::uint8_t> payload;
  };

  /// Loads the newest generation that validates, skipping corrupt or torn
  /// files with a logged warning (never a crash, never a partial load).
  /// Returns nullopt when the directory holds no valid generation.
  std::optional<Loaded> load_newest_valid() const;

  /// Generations on disk, ascending by ordinal (validity not checked).
  std::vector<std::uint64_t> list_generations() const;

  const std::string& directory() const { return directory_; }

 private:
  std::string generation_path(std::uint64_t ordinal) const;

  std::string directory_;
  ContentKind kind_;
  std::string stem_;
  std::size_t keep_;
};

/// Writes the agent's parameters to `path` (v2 container, atomic).
void save_agent(rl::PpoAgent& agent, const std::string& path);

/// The bytes save_agent wraps in its kAgent container (agent kind tag +
/// serialized networks). Exposed so policy snapshots can be written
/// through a SnapshotDir — the serving engine's hot-swap source — with
/// the exact on-disk payload a save_agent file carries.
std::vector<std::uint8_t> encode_agent_payload(const rl::PpoAgent& agent);

/// Extracts just the actor network from an encode_agent_payload /
/// save_agent payload into `actor` (architecture-validated; the critics
/// are skipped — serving needs only the policy, and the container CRC
/// already vouched for the bytes). Strong exception guarantee: `actor`
/// is untouched unless its parameters decode cleanly. Throws
/// std::invalid_argument on format or architecture mismatch.
void decode_agent_actor(std::span<const std::uint8_t> payload, nn::Mlp& actor);

/// Restores parameters saved by save_agent into an architecture-identical
/// agent, with the strong exception guarantee: the payload is fully
/// validated (kind, shapes, length) against scratch copies before any
/// parameter of the live agent changes, so a corrupt file leaves the
/// in-memory agent untouched. Throws std::runtime_error on I/O failure
/// and std::invalid_argument on format/architecture mismatch.
void load_agent(rl::PpoAgent& agent, const std::string& path);

/// FNV-1a hash over the federation's topology: client count, per-client
/// id/algorithm/state_dim/action_count/parameter counts. Two trainers
/// share a hash iff a checkpoint of one restores cleanly into the other.
std::uint64_t federation_arch_hash(const fed::FedTrainer& trainer);

/// Writes `directory`/federation.json describing the trainer's topology
/// (schema pfrl-federation/1: client count, algorithm, arch hash,
/// per-agent dims).
void write_federation_manifest(const fed::FedTrainer& trainer, const std::string& directory);

/// Validates `directory`/federation.json against `trainer`. Throws
/// std::invalid_argument with a clear message when the manifest is
/// missing/unparseable or the topology hash differs.
void validate_federation_manifest(const fed::FedTrainer& trainer, const std::string& directory);

/// Saves every client's agent (client_<i>.ckpt), the server's global
/// model (server.ckpt, if any), and the federation.json topology manifest
/// under `directory` (created if missing).
void save_federation(fed::FedTrainer& trainer, const std::string& directory);

/// Restores a federation previously saved with save_federation. The
/// directory's federation.json is validated first: loading into a trainer
/// with a different client count, algorithm, or architecture fails with a
/// clear error before any weight is touched.
void load_federation(fed::FedTrainer& trainer, const std::string& directory);

/// What a resumed trainer continues from.
struct ResumeInfo {
  std::uint64_t round = 0;        // rounds already completed
  std::size_t episodes_done = 0;  // per-client episodes already trained
};

/// Full-training-state checkpointing for FedTrainer: rotated v2 snapshot
/// generations plus the federation.json topology manifest. Attach via
///   manager.attach(trainer);          // sink for periodic/stop/abort saves
///   auto resumed = manager.try_resume(trainer);  // before run()
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string directory, std::size_t keep = 2);

  /// Serializes the trainer's complete state as generation `round`
  /// (atomic write + rotation) and refreshes the topology manifest.
  void save(const fed::FedTrainer& trainer, std::uint64_t round) const;

  /// Installs this manager as the trainer's checkpoint sink.
  void attach(fed::FedTrainer& trainer) const;

  /// Restores the newest valid snapshot into `trainer` (corrupt newest
  /// generations fall back to the previous one with a logged warning).
  /// Validates federation.json first. Returns nullopt when the directory
  /// holds no snapshot at all; throws std::invalid_argument when a
  /// manifest/topology mismatch or an all-generations-corrupt state makes
  /// resuming impossible.
  std::optional<ResumeInfo> try_resume(fed::FedTrainer& trainer) const;

  const std::string& directory() const { return store_.directory(); }

 private:
  SnapshotDir store_;
};

}  // namespace pfrl::core
