// Model persistence: save/restore trained agents and whole federations.
//
// Format: little-endian magic 'PFRL' + version + agent kind tag +
// the networks' serialized parameters (actor, critic, and — for the
// dual-critic agent — the public critic). Architecture is validated on
// load: a checkpoint only restores into an identically shaped agent.
#pragma once

#include <string>

#include "fed/trainer.hpp"
#include "rl/dual_critic_ppo.hpp"

namespace pfrl::core {

/// Writes the agent's parameters to `path` (overwrites).
void save_agent(rl::PpoAgent& agent, const std::string& path);

/// Restores parameters saved by save_agent into an architecture-identical
/// agent. Throws std::runtime_error on I/O failure and
/// std::invalid_argument on format/architecture mismatch.
void load_agent(rl::PpoAgent& agent, const std::string& path);

/// Saves every client's agent (client_<i>.ckpt) plus the server's global
/// model (server.ckpt, if any) under `directory` (created if missing).
void save_federation(fed::FedTrainer& trainer, const std::string& directory);

/// Restores a federation previously saved with save_federation. The
/// trainer must have been constructed with the same clients/algorithm.
void load_federation(fed::FedTrainer& trainer, const std::string& directory);

}  // namespace pfrl::core
