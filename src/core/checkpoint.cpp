#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/serialization.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PFRL_CHECKPOINT_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#else
#define PFRL_CHECKPOINT_POSIX 0
#endif

namespace pfrl::core {

namespace {

constexpr std::uint32_t kMagic = 0x32434650;  // "PFC2"
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kHeaderSize = 12;  // magic + version + content kind
constexpr std::size_t kFooterSize = 16;  // payload len + CRC + end magic

enum class AgentKind : std::uint8_t { kPpo = 0, kDualCritic = 1 };

const char* content_kind_name(ContentKind kind) {
  switch (kind) {
    case ContentKind::kAgent: return "agent";
    case ContentKind::kGlobalModel: return "global-model";
    case ContentKind::kFederationState: return "federation-state";
    case ContentKind::kSingleAgentRun: return "single-agent-run";
    case ContentKind::kNetClientState: return "net-client-state";
  }
  return "?";
}

#if PFRL_CHECKPOINT_POSIX
/// write + fsync + close a whole buffer through a POSIX fd; throws on any
/// short write so a silently truncated checkpoint cannot be renamed live.
void write_fd_fully(int fd, const std::uint8_t* data, std::size_t size, const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      ::close(fd);
      throw std::runtime_error("checkpoint: write failed: " + path);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw std::runtime_error("checkpoint: fsync failed: " + path);
  }
  if (::close(fd) != 0) throw std::runtime_error("checkpoint: close failed: " + path);
}

void fsync_directory(const std::string& directory) {
  const int fd = ::open(directory.empty() ? "." : directory.c_str(), O_RDONLY);
  if (fd < 0) return;  // best-effort: some filesystems refuse directory fds
  ::fsync(fd);
  ::close(fd);
}
#endif

/// tmp + fsync + rename + directory fsync. After this returns, `path`
/// holds either its previous contents or the full new bytes — never a
/// prefix of them.
void atomic_write_file(const std::string& path, std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
#if PFRL_CHECKPOINT_POSIX
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw std::runtime_error("checkpoint: cannot open for writing: " + tmp);
  write_fd_fully(fd, bytes.data(), bytes.size(), tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("checkpoint: rename failed: " + tmp + " -> " + path);
  fsync_directory(std::filesystem::path(path).parent_path().string());
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot open for writing: " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) throw std::runtime_error("checkpoint: write failed: " + tmp);
  }
  std::filesystem::rename(tmp, path);
#endif
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("checkpoint: cannot open for reading: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("checkpoint: read failed: " + path);
  return bytes;
}

std::string hex_u64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

void fnv_mix(std::uint64_t& hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xFF;
    hash *= 0x100000001B3ULL;
  }
}

}  // namespace

void write_container(const std::string& path, ContentKind kind,
                     std::span<const std::uint8_t> payload) {
  util::ByteWriter w;
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  w.write_u32(static_cast<std::uint32_t>(kind));
  w.write_raw_span(payload);
  const std::uint32_t crc = util::crc32(w.bytes());
  w.write_u64(payload.size());
  w.write_u32(crc);
  w.write_u32(kMagic);
  atomic_write_file(path, w.bytes());
}

std::vector<std::uint8_t> read_container(const std::string& path, ContentKind kind) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  if (bytes.size() < kHeaderSize + kFooterSize)
    throw std::invalid_argument("checkpoint: truncated container (" +
                                std::to_string(bytes.size()) + " bytes): " + path);

  util::ByteReader header(std::span<const std::uint8_t>(bytes).first(kHeaderSize));
  if (header.read_u32() != kMagic)
    throw std::invalid_argument("checkpoint: bad magic in " + path);
  if (header.read_u32() != kVersion)
    throw std::invalid_argument("checkpoint: unsupported container version in " + path);
  const auto stored_kind = static_cast<ContentKind>(header.read_u32());

  util::ByteReader footer(std::span<const std::uint8_t>(bytes).last(kFooterSize));
  const std::uint64_t payload_len = footer.read_u64();
  const std::uint32_t stored_crc = footer.read_u32();
  if (footer.read_u32() != kMagic)
    throw std::invalid_argument("checkpoint: bad end magic (torn write?) in " + path);
  if (kHeaderSize + payload_len + kFooterSize != bytes.size())
    throw std::invalid_argument("checkpoint: payload length mismatch in " + path);
  const std::uint32_t actual_crc =
      util::crc32(std::span<const std::uint8_t>(bytes).first(kHeaderSize + payload_len));
  if (actual_crc != stored_crc)
    throw std::invalid_argument("checkpoint: CRC mismatch (corrupted) in " + path);
  // Kind is checked after the CRC: a mismatch on intact bytes is a real
  // "wrong file" error, not corruption.
  if (stored_kind != kind)
    throw std::invalid_argument(std::string("checkpoint: wrong content kind in ") + path +
                                " (found " + content_kind_name(stored_kind) + ", expected " +
                                content_kind_name(kind) + ")");

  return {bytes.begin() + static_cast<std::ptrdiff_t>(kHeaderSize),
          bytes.begin() + static_cast<std::ptrdiff_t>(kHeaderSize + payload_len)};
}

SnapshotDir::SnapshotDir(std::string directory, ContentKind kind, std::string stem,
                         std::size_t keep)
    : directory_(std::move(directory)), kind_(kind), stem_(std::move(stem)),
      keep_(std::max<std::size_t>(keep, 1)) {}

std::string SnapshotDir::generation_path(std::uint64_t ordinal) const {
  return directory_ + "/" + stem_ + "-" + std::to_string(ordinal) + ".pfc";
}

std::vector<std::uint64_t> SnapshotDir::list_generations() const {
  std::vector<std::uint64_t> ordinals;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const std::string prefix = stem_ + "-";
    if (name.size() <= prefix.size() + 4 || name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - 4, 4, ".pfc") != 0)
      continue;
    const std::string digits = name.substr(prefix.size(), name.size() - prefix.size() - 4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    ordinals.push_back(std::stoull(digits));
  }
  std::sort(ordinals.begin(), ordinals.end());
  return ordinals;
}

void SnapshotDir::write(std::uint64_t ordinal, std::span<const std::uint8_t> payload) const {
  std::filesystem::create_directories(directory_);
  write_container(generation_path(ordinal), kind_, payload);
  const std::vector<std::uint64_t> generations = list_generations();
  if (generations.size() > keep_) {
    for (std::size_t i = 0; i + keep_ < generations.size(); ++i) {
      std::error_code ec;
      std::filesystem::remove(generation_path(generations[i]), ec);
    }
  }
}

std::optional<SnapshotDir::Loaded> SnapshotDir::load_newest_valid() const {
  std::vector<std::uint64_t> generations = list_generations();
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string path = generation_path(*it);
    try {
      Loaded loaded;
      loaded.ordinal = *it;
      loaded.path = path;
      loaded.payload = read_container(path, kind_);
      return loaded;
    } catch (const std::exception& e) {
      PFRL_LOG_WARN("checkpoint: generation %llu unusable (%s); falling back to previous",
                    static_cast<unsigned long long>(*it), e.what());
    }
  }
  return std::nullopt;
}

std::vector<std::uint8_t> encode_agent_payload(const rl::PpoAgent& agent) {
  util::ByteWriter w;
  const auto* dual = dynamic_cast<const rl::DualCriticPpoAgent*>(&agent);
  w.write_u8(static_cast<std::uint8_t>(dual ? AgentKind::kDualCritic : AgentKind::kPpo));
  agent.actor().serialize(w);
  agent.critic().serialize(w);
  if (dual) dual->public_critic().serialize(w);
  return w.bytes();
}

void save_agent(rl::PpoAgent& agent, const std::string& path) {
  write_container(path, ContentKind::kAgent, encode_agent_payload(agent));
}

void decode_agent_actor(std::span<const std::uint8_t> payload, nn::Mlp& actor) {
  util::ByteReader r(payload);
  const auto kind = static_cast<AgentKind>(r.read_u8());
  if (kind != AgentKind::kPpo && kind != AgentKind::kDualCritic)
    throw std::invalid_argument("checkpoint: unknown agent kind in policy payload");
  nn::Mlp scratch(actor);
  scratch.deserialize(r);
  actor = std::move(scratch);
}

void load_agent(rl::PpoAgent& agent, const std::string& path) {
  const std::vector<std::uint8_t> payload = read_container(path, ContentKind::kAgent);
  util::ByteReader r(payload);
  const auto kind = static_cast<AgentKind>(r.read_u8());
  auto* dual = dynamic_cast<rl::DualCriticPpoAgent*>(&agent);
  if ((kind == AgentKind::kDualCritic) != (dual != nullptr))
    throw std::invalid_argument("checkpoint: agent kind mismatch in " + path);

  // Strong exception guarantee: deserialize into scratch copies (which
  // validate architecture) and check the payload is fully consumed before
  // a single live parameter changes.
  nn::Mlp actor_scratch(agent.actor());
  nn::Mlp critic_scratch(agent.critic());
  actor_scratch.deserialize(r);
  critic_scratch.deserialize(r);
  std::optional<nn::Mlp> public_scratch;
  if (dual) {
    public_scratch.emplace(dual->public_critic());
    public_scratch->deserialize(r);
  }
  if (!r.exhausted()) throw std::invalid_argument("checkpoint: trailing bytes in " + path);

  agent.load_actor(actor_scratch.flatten());
  agent.load_critic(critic_scratch.flatten());
  if (dual) dual->load_public_critic(public_scratch->flatten());
}

std::uint64_t federation_arch_hash(const fed::FedTrainer& trainer) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  fnv_mix(hash, trainer.client_count());
  for (std::size_t i = 0; i < trainer.client_count(); ++i) {
    const fed::FedClient& client = trainer.client(i);
    const rl::PpoAgent& agent = client.agent();
    const auto* dual = dynamic_cast<const rl::DualCriticPpoAgent*>(&agent);
    fnv_mix(hash, static_cast<std::uint64_t>(client.id()));
    fnv_mix(hash, static_cast<std::uint64_t>(client.algorithm()));
    fnv_mix(hash, agent.state_dim());
    fnv_mix(hash, static_cast<std::uint64_t>(agent.action_count()));
    fnv_mix(hash, agent.actor().param_count());
    fnv_mix(hash, agent.critic().param_count());
    fnv_mix(hash, dual ? dual->public_critic().param_count() : 0);
  }
  return hash;
}

void write_federation_manifest(const fed::FedTrainer& trainer, const std::string& directory) {
  std::filesystem::create_directories(directory);
  std::string json = "{\"schema\":\"pfrl-federation/1\"";
  json += ",\"clients\":" + std::to_string(trainer.client_count());
  json += ",\"algorithm\":\"" + fed::algorithm_name(trainer.client(0).algorithm()) + "\"";
  json += ",\"arch_hash\":\"" + hex_u64(federation_arch_hash(trainer)) + "\"";
  json += ",\"agents\":[";
  for (std::size_t i = 0; i < trainer.client_count(); ++i) {
    const fed::FedClient& client = trainer.client(i);
    const rl::PpoAgent& agent = client.agent();
    const bool dual = dynamic_cast<const rl::DualCriticPpoAgent*>(&agent) != nullptr;
    json += i == 0 ? "{" : ",{";
    json += "\"id\":" + std::to_string(client.id());
    json += ",\"dual_critic\":" + std::string(dual ? "true" : "false");
    json += ",\"state_dim\":" + std::to_string(agent.state_dim());
    json += ",\"action_count\":" + std::to_string(agent.action_count());
    json += ",\"actor_params\":" + std::to_string(agent.actor().param_count());
    json += ",\"critic_params\":" + std::to_string(agent.critic().param_count());
    json += "}";
  }
  json += "]}\n";
  atomic_write_file(directory + "/federation.json",
                    std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(json.data()), json.size()));
}

namespace {

/// Pulls the string/number after `"key":` out of a flat JSON object. Good
/// enough for the manifest this module itself writes.
std::string extract_json_field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return {};
  std::size_t begin = at + needle.size();
  if (begin < json.size() && json[begin] == '"') {
    ++begin;
    const std::size_t end = json.find('"', begin);
    if (end == std::string::npos) return {};
    return json.substr(begin, end - begin);
  }
  std::size_t end = begin;
  while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
  return json.substr(begin, end - begin);
}

}  // namespace

void validate_federation_manifest(const fed::FedTrainer& trainer, const std::string& directory) {
  const std::string path = directory + "/federation.json";
  if (!std::filesystem::exists(path))
    throw std::invalid_argument("checkpoint: " + path +
                                " is missing — not a federation checkpoint directory, or one "
                                "written before the topology manifest existed");
  const std::vector<std::uint8_t> bytes = read_file(path);
  const std::string json(bytes.begin(), bytes.end());

  const std::string stored_clients = extract_json_field(json, "clients");
  const std::string stored_algorithm = extract_json_field(json, "algorithm");
  const std::string stored_hash = extract_json_field(json, "arch_hash");
  if (stored_clients.empty() || stored_hash.empty())
    throw std::invalid_argument("checkpoint: unparseable federation manifest: " + path);

  if (stored_clients != std::to_string(trainer.client_count()))
    throw std::invalid_argument("checkpoint: federation has " + stored_clients +
                                " clients but the trainer has " +
                                std::to_string(trainer.client_count()) + " (" + path + ")");
  const std::string algorithm = fed::algorithm_name(trainer.client(0).algorithm());
  if (!stored_algorithm.empty() && stored_algorithm != algorithm)
    throw std::invalid_argument("checkpoint: federation was trained with " + stored_algorithm +
                                " but the trainer runs " + algorithm + " (" + path + ")");
  const std::string hash = hex_u64(federation_arch_hash(trainer));
  if (stored_hash != hash)
    throw std::invalid_argument(
        "checkpoint: federation architecture hash mismatch (checkpoint " + stored_hash +
        ", trainer " + hash + ") — client ids, dims, or algorithms differ (" + path + ")");
}

void save_federation(fed::FedTrainer& trainer, const std::string& directory) {
  std::filesystem::create_directories(directory);
  write_federation_manifest(trainer, directory);
  for (std::size_t i = 0; i < trainer.client_count(); ++i)
    save_agent(trainer.client(i).agent(),
               directory + "/client_" + std::to_string(i) + ".ckpt");
  if (fed::FedServer* server = trainer.server(); server && server->has_global_model()) {
    util::ByteWriter w;
    w.write_f32_span(server->global_model());
    write_container(directory + "/server.ckpt", ContentKind::kGlobalModel, w.bytes());
  }
}

void load_federation(fed::FedTrainer& trainer, const std::string& directory) {
  validate_federation_manifest(trainer, directory);
  for (std::size_t i = 0; i < trainer.client_count(); ++i)
    load_agent(trainer.client(i).agent(),
               directory + "/client_" + std::to_string(i) + ".ckpt");
  const std::string server_path = directory + "/server.ckpt";
  if (fed::FedServer* server = trainer.server();
      server && std::filesystem::exists(server_path)) {
    const std::vector<std::uint8_t> payload =
        read_container(server_path, ContentKind::kGlobalModel);
    util::ByteReader r(payload);
    server->set_global_model(r.read_f32_vector());
  }
}

CheckpointManager::CheckpointManager(std::string directory, std::size_t keep)
    : store_(std::move(directory), ContentKind::kFederationState, "state", keep) {}

void CheckpointManager::save(const fed::FedTrainer& trainer, std::uint64_t round) const {
  util::ByteWriter w;
  trainer.serialize_state(w);
  store_.write(round, w.bytes());
  write_federation_manifest(trainer, store_.directory());
  PFRL_LOG_INFO("checkpoint: wrote round-%llu snapshot to %s",
                static_cast<unsigned long long>(round), store_.directory().c_str());
}

void CheckpointManager::attach(fed::FedTrainer& trainer) const {
  trainer.set_checkpoint_sink(
      [manager = *this](const fed::FedTrainer& t, std::uint64_t round) {
        manager.save(t, round);
      });
}

std::optional<ResumeInfo> CheckpointManager::try_resume(fed::FedTrainer& trainer) const {
  const std::vector<std::uint64_t> generations = store_.list_generations();
  if (generations.empty()) return std::nullopt;
  validate_federation_manifest(trainer, store_.directory());
  const std::optional<SnapshotDir::Loaded> loaded = store_.load_newest_valid();
  if (!loaded)
    throw std::invalid_argument("checkpoint: all " + std::to_string(generations.size()) +
                                " snapshot generations in " + store_.directory() +
                                " are corrupt; cannot resume");
  util::ByteReader r(loaded->payload);
  trainer.deserialize_state(r);
  if (!r.exhausted())
    throw std::invalid_argument("checkpoint: trailing bytes in " + loaded->path);
  PFRL_LOG_INFO("checkpoint: resumed from %s (round %llu, %zu episodes/client)",
                loaded->path.c_str(), static_cast<unsigned long long>(loaded->ordinal),
                trainer.episodes_done());
  return ResumeInfo{loaded->ordinal, trainer.episodes_done()};
}

}  // namespace pfrl::core
