#include "core/checkpoint.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/serialization.hpp"

namespace pfrl::core {

namespace {

constexpr std::uint32_t kMagic = 0x4C524650;  // "PFRL"
constexpr std::uint32_t kVersion = 1;

enum class AgentKind : std::uint8_t { kPpo = 0, kDualCritic = 1 };

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("checkpoint: write failed: " + path);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("checkpoint: cannot open for reading: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("checkpoint: read failed: " + path);
  return bytes;
}

}  // namespace

void save_agent(rl::PpoAgent& agent, const std::string& path) {
  util::ByteWriter w;
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  auto* dual = dynamic_cast<rl::DualCriticPpoAgent*>(&agent);
  w.write_u8(static_cast<std::uint8_t>(dual ? AgentKind::kDualCritic : AgentKind::kPpo));
  agent.actor().serialize(w);
  agent.critic().serialize(w);
  if (dual) dual->public_critic().serialize(w);
  write_file(path, w.bytes());
}

void load_agent(rl::PpoAgent& agent, const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  util::ByteReader r(bytes);
  if (r.read_u32() != kMagic) throw std::invalid_argument("checkpoint: bad magic in " + path);
  if (r.read_u32() != kVersion)
    throw std::invalid_argument("checkpoint: unsupported version in " + path);
  const auto kind = static_cast<AgentKind>(r.read_u8());
  auto* dual = dynamic_cast<rl::DualCriticPpoAgent*>(&agent);
  if ((kind == AgentKind::kDualCritic) != (dual != nullptr))
    throw std::invalid_argument("checkpoint: agent kind mismatch in " + path);
  agent.actor().deserialize(r);
  agent.critic().deserialize(r);
  if (dual) dual->public_critic().deserialize(r);
  if (!r.exhausted()) throw std::invalid_argument("checkpoint: trailing bytes in " + path);
}

void save_federation(fed::FedTrainer& trainer, const std::string& directory) {
  std::filesystem::create_directories(directory);
  for (std::size_t i = 0; i < trainer.client_count(); ++i)
    save_agent(trainer.client(i).agent(),
               directory + "/client_" + std::to_string(i) + ".ckpt");
  if (fed::FedServer* server = trainer.server(); server && server->has_global_model()) {
    util::ByteWriter w;
    w.write_u32(kMagic);
    w.write_u32(kVersion);
    w.write_f32_span(server->global_model());
    write_file(directory + "/server.ckpt", w.bytes());
  }
}

void load_federation(fed::FedTrainer& trainer, const std::string& directory) {
  for (std::size_t i = 0; i < trainer.client_count(); ++i)
    load_agent(trainer.client(i).agent(),
               directory + "/client_" + std::to_string(i) + ".ckpt");
  const std::string server_path = directory + "/server.ckpt";
  if (fed::FedServer* server = trainer.server();
      server && std::filesystem::exists(server_path)) {
    const std::vector<std::uint8_t> bytes = read_file(server_path);
    util::ByteReader r(bytes);
    if (r.read_u32() != kMagic || r.read_u32() != kVersion)
      throw std::invalid_argument("checkpoint: bad server checkpoint");
    server->set_global_model(r.read_f32_vector());
  }
}

}  // namespace pfrl::core
