// The top-level public API: build a federation of cloud-scheduling
// clients from presets and train it with PFRL-DM or any baseline.
//
//   using namespace pfrl;
//   core::FederationConfig cfg;
//   cfg.algorithm = fed::FedAlgorithm::kPfrlDm;
//   core::Federation federation(core::table3_clients(), cfg);
//   fed::TrainingHistory history = federation.train();
//
#pragma once

#include <memory>
#include <vector>

#include "core/presets.hpp"
#include "fed/attention_aggregator.hpp"
#include "fed/fedavg.hpp"
#include "fed/mfpo.hpp"
#include "fed/trainer.hpp"
#include "stats/summary.hpp"

namespace pfrl::core {

struct FederationConfig {
  fed::FedAlgorithm algorithm = fed::FedAlgorithm::kPfrlDm;
  ExperimentScale scale = ExperimentScale::quick();
  rl::PpoConfig ppo;
  /// Participants per round; 0 = N/2 rounded up (the paper's K = N/2).
  std::size_t participants_per_round = 0;
  std::uint64_t seed = 42;
  std::size_t threads = 0;
  nn::MultiHeadAttentionConfig attention;
  fed::MfpoConfig mfpo;
  float fedprox_mu = 0.01F;  // kFedProx proximal strength
  float fedkl_beta = 0.5F;   // kFedKl KL-penalty strength
  /// Environments each client steps in lockstep per training sweep
  /// (rl::VecEnv). 1 = serial rollouts (bit-identical to earlier
  /// versions); E > 1 batches policy inference across E episodes.
  std::size_t envs_per_client = 1;
  double rho = 0.5;                  // reward mix (Eq. 6)
  bool strict_paper_reward = false;  // Eq. 8 literal sign
  double energy_weight = 0.0;        // energy-objective extension (0 = paper)
  /// Fault model for the bus (fed/fault.hpp); all-zero = perfect network.
  /// Also carries the Byzantine attack plan (attack_mode/attack_fraction).
  fed::FaultPlan faults;
  /// Valid uploads the server requires before aggregating (quorum).
  std::size_t min_participants = 1;
  /// Byzantine defense (fed/robust_aggregator.hpp). mode == kOff leaves
  /// the aggregator unwrapped; anything else decorates it with scoring,
  /// clipping/robust reduction, and client quarantine.
  fed::DefenseConfig defense{.mode = fed::DefenseMode::kOff};
};

/// Builds the aggregator matching `algorithm` (null for independent PPO).
std::unique_ptr<fed::Aggregator> make_aggregator(const FederationConfig& config);

/// Participants per round after resolving the config's 0 = "the paper's
/// K = N/2 (rounded up)" default — the same resolution the Federation
/// constructor applies before handing the value to FedTrainer.
std::size_t resolved_participants(const FederationConfig& config, std::size_t client_count);

/// One client of a federation, built in isolation.
struct SingleClientBuild {
  std::unique_ptr<fed::FedClient> client;
  workload::Trace test_trace;  // the client's held-out split
  FederationLayout layout;
};

/// Builds client `index` exactly as the Federation constructor would —
/// same shared layout, same per-client trace-seed chain, same PPO seed —
/// without instantiating the other N-1 clients. The networked runtime
/// (core/net_federation.hpp) runs one process per client through this, so
/// a multi-process federation reproduces the in-process one bit for bit.
SingleClientBuild build_single_client(std::span<const ClientPreset> presets,
                                      const FederationConfig& config, std::size_t index);

/// Per-client evaluation outcome on a test trace.
struct EvalResult {
  int client_id = 0;
  sim::EpisodeMetrics metrics;
};

/// How test traces are rolled out.
struct EvalOptions {
  /// Sampled = run the raw stochastic policy (deployment-faithful; the
  /// §5.3 comparisons use this). False = deterministic greedy restricted
  /// to feasible actions.
  bool sampled = true;
  std::size_t rollouts = 3;  // averaged when sampled
};

class Federation {
 public:
  Federation(std::vector<ClientPreset> presets, FederationConfig config);

  /// Trains to config.scale.episodes and returns the full history.
  fed::TrainingHistory train();

  /// Evaluates every client on its own held-out test split.
  std::vector<EvalResult> evaluate_on_test_splits(const EvalOptions& options = {});

  /// §5.3 hybrid evaluation: each client keeps `keep_fraction` of its own
  /// test tasks, the rest drawn from the other clients' datasets.
  std::vector<EvalResult> evaluate_on_hybrid(double keep_fraction,
                                             const EvalOptions& options = {});

  /// Adds a new client with `preset` (Fig. 20); returns its index.
  std::size_t add_client(const ClientPreset& preset);

  fed::FedTrainer& trainer() { return *trainer_; }
  std::size_t client_count() const { return presets_.size(); }
  const ClientPreset& preset(std::size_t i) const { return presets_[i]; }
  const FederationLayout& layout() const { return layout_; }
  const FederationConfig& config() const { return config_; }

  /// The held-out (40%) test trace of client i.
  const workload::Trace& test_trace(std::size_t i) const { return test_traces_[i]; }

 private:
  std::unique_ptr<fed::FedClient> build_client(int id, const ClientPreset& preset,
                                               workload::Trace train_trace);

  FederationConfig config_;
  std::vector<ClientPreset> presets_;
  FederationLayout layout_;
  std::vector<workload::Trace> test_traces_;
  std::unique_ptr<fed::FedTrainer> trainer_;
};

}  // namespace pfrl::core
