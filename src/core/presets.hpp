// Experiment presets: the client environments of Tables 2 and 3 and the
// scale knobs that shrink paper-scale runs onto small machines.
#pragma once

#include <span>
#include <vector>

#include "env/scheduling_env.hpp"
#include "sim/machine.hpp"
#include "workload/catalog.hpp"

namespace pfrl::core {

/// One cloud provider: its machines and the workload dataset it serves.
struct ClientPreset {
  sim::MachineSpecs specs;
  workload::DatasetId dataset = workload::DatasetId::kGoogle;
};

/// Table 2 — the 4-client setup of the §3 observation experiments.
std::vector<ClientPreset> table2_clients();

/// Table 3 — the 10-client setup of the §5 evaluation.
std::vector<ClientPreset> table3_clients();

/// Scale knobs. The paper trains 3500-task traces for 300–500 episodes on
/// an A100 server; `quick()` shrinks tasks/episodes and divides vCPU
/// counts (machines *and* requests) so the full pipeline runs on one core
/// while preserving relative load; `paper()` restores the published
/// parameters.
struct ExperimentScale {
  std::size_t tasks_per_client = 120;
  std::size_t episodes = 60;
  std::size_t comm_every = 5;
  /// Divide all vCPU counts by this. 4 keeps enough request-size
  /// diversity for packing decisions to matter (8 would round most
  /// requests down to one slot and make every placement equivalent).
  int cpu_scale = 4;
  std::size_t queue_window = 5;
  double train_fraction = 0.6;
  /// Offered load as a fraction of cluster vCPU capacity (arrival-rate
  /// calibration; the paper sets VM counts and rates jointly by hand).
  /// High enough that queueing and placement order drive response times.
  double target_utilization = 0.75;
  double tick_seconds = 1.0;

  static ExperimentScale quick();
  static ExperimentScale paper();
  /// Reduced further for unit tests.
  static ExperimentScale tiny();
};

/// The shared observation layout of a federation — every client must pad
/// to the same L / U^vcpu / U^mem / Q for its networks to be aggregable.
struct FederationLayout {
  std::size_t max_vms = 8;
  int max_vcpus_per_vm = 8;
  double max_memory_gb = 512.0;
  std::size_t queue_window = 5;
};

FederationLayout layout_for(std::span<const ClientPreset> clients, const ExperimentScale& scale);

/// Environment config for one client under a shared layout.
env::SchedulingEnvConfig make_env_config(const ClientPreset& client,
                                         const FederationLayout& layout,
                                         const ExperimentScale& scale);

/// Samples this client's task trace: request sizes/durations from the
/// dataset model, arrival rate calibrated to the (scaled) cluster
/// capacity, vCPU requests scaled by the same cpu_scale as the machines.
workload::Trace make_trace(const ClientPreset& client, const ExperimentScale& scale,
                           std::uint64_t seed);

}  // namespace pfrl::core
