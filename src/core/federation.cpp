#include "core/federation.hpp"

#include <algorithm>

#include <stdexcept>

namespace pfrl::core {

std::unique_ptr<fed::Aggregator> make_aggregator(const FederationConfig& config) {
  std::unique_ptr<fed::Aggregator> inner;
  switch (config.algorithm) {
    case fed::FedAlgorithm::kIndependent: return nullptr;
    case fed::FedAlgorithm::kFedAvg:
    case fed::FedAlgorithm::kFedProx:  // regularization happens client-side
    case fed::FedAlgorithm::kFedKl: inner = std::make_unique<fed::FedAvgAggregator>(); break;
    case fed::FedAlgorithm::kMfpo: inner = std::make_unique<fed::MfpoAggregator>(config.mfpo); break;
    case fed::FedAlgorithm::kPfrlDm:
      inner = std::make_unique<fed::AttentionAggregator>(config.attention);
      break;
  }
  if (!inner) throw std::invalid_argument("make_aggregator: unknown algorithm");
  // The defense decorates whatever strategy was picked, so FedAvg, MFPO
  // and attention all share one Byzantine-robust implementation — and so
  // the in-process trainer and the networked server (both of which build
  // their FedServer through here) behave identically under attack.
  if (config.defense.mode != fed::DefenseMode::kOff)
    return std::make_unique<fed::RobustAggregator>(std::move(inner), config.defense);
  return inner;
}

std::size_t resolved_participants(const FederationConfig& config, std::size_t client_count) {
  return config.participants_per_round == 0 ? (client_count + 1) / 2
                                            : config.participants_per_round;
}

namespace {

std::unique_ptr<fed::FedClient> make_fed_client(const FederationConfig& config,
                                                const FederationLayout& layout, int id,
                                                const ClientPreset& preset,
                                                workload::Trace train_trace) {
  env::SchedulingEnvConfig env_cfg = make_env_config(preset, layout, config.scale);
  env_cfg.reward.rho = config.rho;
  env_cfg.reward.strict_paper_reward = config.strict_paper_reward;
  env_cfg.reward.energy_weight = config.energy_weight;

  fed::FedClientConfig client_cfg;
  client_cfg.id = id;
  client_cfg.algorithm = config.algorithm;
  client_cfg.ppo = config.ppo;
  client_cfg.fedprox_mu = config.fedprox_mu;
  client_cfg.fedkl_beta = config.fedkl_beta;
  client_cfg.envs_per_client = config.envs_per_client;
  client_cfg.ppo.seed = config.seed + static_cast<std::uint64_t>(id) * 0x9E3779B9ULL + 1;
  return std::make_unique<fed::FedClient>(client_cfg, std::move(env_cfg), std::move(train_trace));
}

}  // namespace

SingleClientBuild build_single_client(std::span<const ClientPreset> presets,
                                      const FederationConfig& config, std::size_t index) {
  if (index >= presets.size())
    throw std::invalid_argument("build_single_client: index out of range");
  SingleClientBuild out;
  out.layout = layout_for(presets, config.scale);
  // Burn the trace-seed chain exactly as the Federation constructor does,
  // so client `index` samples the same trace it would get in-process.
  util::Rng seed_rng(config.seed);
  std::uint64_t trace_seed = 0;
  for (std::size_t i = 0; i <= index; ++i) trace_seed = seed_rng.next_u64();
  const workload::Trace full = make_trace(presets[index], config.scale, trace_seed);
  auto [train, test] = workload::split_train_test(full, config.scale.train_fraction);
  out.test_trace = std::move(test);
  out.client =
      make_fed_client(config, out.layout, static_cast<int>(index), presets[index], std::move(train));
  return out;
}

Federation::Federation(std::vector<ClientPreset> presets, FederationConfig config)
    : config_(std::move(config)), presets_(std::move(presets)) {
  if (presets_.empty()) throw std::invalid_argument("Federation: no clients");
  layout_ = layout_for(presets_, config_.scale);

  std::vector<std::unique_ptr<fed::FedClient>> clients;
  clients.reserve(presets_.size());
  test_traces_.reserve(presets_.size());
  util::Rng seed_rng(config_.seed);
  for (std::size_t i = 0; i < presets_.size(); ++i) {
    const workload::Trace full =
        make_trace(presets_[i], config_.scale, seed_rng.next_u64());
    auto [train, test] = workload::split_train_test(full, config_.scale.train_fraction);
    test_traces_.push_back(std::move(test));
    clients.push_back(build_client(static_cast<int>(i), presets_[i], std::move(train)));
  }

  fed::FedTrainerConfig trainer_cfg;
  trainer_cfg.total_episodes = config_.scale.episodes;
  trainer_cfg.comm_every = config_.scale.comm_every;
  trainer_cfg.participants_per_round = resolved_participants(config_, presets_.size());
  trainer_cfg.seed = config_.seed ^ 0xFEDFEDFEDULL;
  trainer_cfg.threads = config_.threads;
  trainer_cfg.faults = config_.faults;
  trainer_cfg.min_participants = config_.min_participants;
  trainer_ = std::make_unique<fed::FedTrainer>(trainer_cfg, make_aggregator(config_),
                                               std::move(clients));
}

std::unique_ptr<fed::FedClient> Federation::build_client(int id, const ClientPreset& preset,
                                                         workload::Trace train_trace) {
  return make_fed_client(config_, layout_, id, preset, std::move(train_trace));
}

fed::TrainingHistory Federation::train() { return trainer_->run(); }

namespace {
sim::EpisodeMetrics run_eval(fed::FedClient& client, workload::Trace trace,
                             const EvalOptions& options) {
  if (options.sampled)
    return client.evaluate_on_sampled(std::move(trace), std::max<std::size_t>(1, options.rollouts));
  return client.evaluate_on(std::move(trace)).metrics;
}
}  // namespace

std::vector<EvalResult> Federation::evaluate_on_test_splits(const EvalOptions& options) {
  std::vector<EvalResult> results;
  results.reserve(presets_.size());
  for (std::size_t i = 0; i < presets_.size(); ++i) {
    EvalResult r;
    r.client_id = static_cast<int>(i);
    r.metrics = run_eval(trainer_->client(i), test_traces_[i], options);
    results.push_back(r);
  }
  return results;
}

std::vector<EvalResult> Federation::evaluate_on_hybrid(double keep_fraction,
                                                       const EvalOptions& options) {
  util::Rng rng(config_.seed ^ 0xA5A5A5A5ULL);
  std::vector<EvalResult> results;
  results.reserve(presets_.size());
  for (std::size_t i = 0; i < presets_.size(); ++i) {
    std::vector<workload::Trace> others;
    others.reserve(presets_.size() - 1);
    for (std::size_t j = 0; j < presets_.size(); ++j)
      if (j != i) others.push_back(test_traces_[j]);
    workload::Trace mixed =
        workload::hybrid_mix(test_traces_[i], others, keep_fraction, rng);
    // Donated tasks were sized for *their* cluster; clamp them to this
    // client's machines (as admission control would), or the FIFO head
    // could block on a request no local VM can ever satisfy.
    const sim::MachineSpecs scaled =
        sim::scale_vcpus(presets_[i].specs, config_.scale.cpu_scale);
    int max_vcpus = 1;
    double max_mem = 1.0;
    for (const sim::MachineSpec& s : scaled) {
      max_vcpus = std::max(max_vcpus, s.vcpus);
      max_mem = std::max(max_mem, s.memory_gb);
    }
    for (workload::Task& t : mixed) {
      t.vcpus = std::min(t.vcpus, max_vcpus);
      t.memory_gb = std::min(t.memory_gb, max_mem);
    }
    EvalResult r;
    r.client_id = static_cast<int>(i);
    r.metrics = run_eval(trainer_->client(i), std::move(mixed), options);
    results.push_back(r);
  }
  return results;
}

std::size_t Federation::add_client(const ClientPreset& preset) {
  // Task requests are clamped to this client's machines, but the shared
  // observation layout must already cover it.
  const sim::MachineSpecs scaled = sim::scale_vcpus(preset.specs, config_.scale.cpu_scale);
  if (static_cast<std::size_t>(sim::total_vms(scaled)) > layout_.max_vms)
    throw std::invalid_argument("add_client: preset exceeds federation layout");
  util::Rng rng(config_.seed + presets_.size() * 7919 + 13);
  const workload::Trace full = make_trace(preset, config_.scale, rng.next_u64());
  auto [train, test] = workload::split_train_test(full, config_.scale.train_fraction);
  test_traces_.push_back(std::move(test));
  presets_.push_back(preset);
  return trainer_->add_client(
      build_client(static_cast<int>(presets_.size()) - 1, preset, std::move(train)));
}

}  // namespace pfrl::core
