#include "core/presets.hpp"

#include <algorithm>
#include <cmath>

namespace pfrl::core {

using workload::DatasetId;

std::vector<ClientPreset> table2_clients() {
  // Table 2: machine specifications (CPU, Memory, Count) + dataset.
  return {
      {{{16, 128, 4}, {32, 256, 1}}, DatasetId::kGoogle},
      {{{32, 256, 3}}, DatasetId::kAlibaba2017},
      {{{16, 128, 2}, {32, 256, 2}}, DatasetId::kHpcHf},
      {{{16, 128, 3}, {32, 256, 2}}, DatasetId::kKvm2019},
  };
}

std::vector<ClientPreset> table3_clients() {
  // Table 3: the 10-client evaluation setup.
  return {
      {{{8, 64, 1}, {16, 128, 4}, {64, 512, 2}}, DatasetId::kGoogle},
      {{{8, 64, 3}, {32, 128, 3}, {64, 512, 1}}, DatasetId::kAlibaba2017},
      {{{8, 64, 3}, {32, 256, 2}, {64, 512, 2}}, DatasetId::kAlibaba2018},
      {{{8, 64, 2}, {32, 256, 3}, {40, 256, 2}}, DatasetId::kHpcKs},
      {{{8, 64, 1}, {48, 256, 2}, {64, 512, 3}}, DatasetId::kHpcHf},
      {{{16, 128, 1}, {32, 256, 3}, {40, 256, 3}}, DatasetId::kHpcWz},
      {{{16, 128, 1}, {40, 256, 3}, {32, 200, 3}}, DatasetId::kKvm2019},
      {{{16, 128, 4}, {64, 512, 1}}, DatasetId::kKvm2020},
      {{{8, 64, 2}, {16, 128, 2}, {64, 512, 1}}, DatasetId::kCeritSc},
      {{{8, 128, 2}, {16, 128, 4}}, DatasetId::kK8s},
  };
}

ExperimentScale ExperimentScale::quick() { return {}; }

ExperimentScale ExperimentScale::paper() {
  ExperimentScale s;
  s.tasks_per_client = 3500;
  s.episodes = 500;
  s.comm_every = 25;
  s.cpu_scale = 1;
  s.queue_window = 10;
  return s;
}

ExperimentScale ExperimentScale::tiny() {
  ExperimentScale s;
  s.tasks_per_client = 40;
  s.episodes = 6;
  s.comm_every = 2;
  s.cpu_scale = 16;
  s.queue_window = 3;
  return s;
}

FederationLayout layout_for(std::span<const ClientPreset> clients, const ExperimentScale& scale) {
  FederationLayout layout;
  layout.queue_window = scale.queue_window;
  layout.max_vms = 0;
  layout.max_vcpus_per_vm = 1;
  layout.max_memory_gb = 1.0;
  for (const ClientPreset& c : clients) {
    const sim::MachineSpecs scaled = sim::scale_vcpus(c.specs, scale.cpu_scale);
    layout.max_vms = std::max(layout.max_vms, static_cast<std::size_t>(sim::total_vms(scaled)));
    for (const sim::MachineSpec& s : scaled) {
      layout.max_vcpus_per_vm = std::max(layout.max_vcpus_per_vm, s.vcpus);
      layout.max_memory_gb = std::max(layout.max_memory_gb, s.memory_gb);
    }
  }
  return layout;
}

env::SchedulingEnvConfig make_env_config(const ClientPreset& client,
                                         const FederationLayout& layout,
                                         const ExperimentScale& scale) {
  env::SchedulingEnvConfig cfg;
  cfg.cluster.specs = sim::scale_vcpus(client.specs, scale.cpu_scale);
  cfg.cluster.tick_seconds = scale.tick_seconds;
  cfg.max_vms = layout.max_vms;
  cfg.max_vcpus_per_vm = layout.max_vcpus_per_vm;
  cfg.max_memory_gb = layout.max_memory_gb;
  cfg.queue_window = layout.queue_window;
  return cfg;
}

workload::Trace make_trace(const ClientPreset& client, const ExperimentScale& scale,
                           std::uint64_t seed) {
  const sim::MachineSpecs scaled = sim::scale_vcpus(client.specs, scale.cpu_scale);
  // Cap a task's request at the largest (scaled) machine so every task is
  // schedulable somewhere; then calibrate arrivals to the scaled capacity.
  int max_vcpus = 1;
  double max_mem = 1.0;
  for (const sim::MachineSpec& s : scaled) {
    max_vcpus = std::max(max_vcpus, s.vcpus);
    max_mem = std::max(max_mem, s.memory_gb);
  }

  workload::WorkloadModel model = workload::dataset_model(client.dataset);
  const workload::WorkloadModel calibrated = workload::calibrate_arrivals(
      model, sim::total_vcpus(scaled) * scale.cpu_scale, scale.target_utilization);

  util::Rng rng(seed);
  workload::Trace trace =
      workload::sample_trace(calibrated, scale.tasks_per_client, rng);
  for (workload::Task& t : trace) {
    t.vcpus = std::clamp((t.vcpus + scale.cpu_scale - 1) / scale.cpu_scale, 1, max_vcpus);
    t.memory_gb = std::min(t.memory_gb, max_mem);
  }
  return trace;
}

}  // namespace pfrl::core
