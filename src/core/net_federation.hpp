// Networked federation runtime: one server process plus one process per
// client, speaking the socket transport (fed/socket_transport.hpp) over
// TCP or a Unix-domain socket.
//
// The round protocol mirrors FedTrainer::step_round message for message:
//
//   join     every client Hello-handshakes (arch hash validated against
//            the server's expected topology); once the fleet is complete
//            the lowest-id client's init_upload seeds ψ_G and is
//            broadcast as kModelInit to everyone else — the networked
//            twin of sync_initial_model.
//   round r  server → all:  kRoundBegin{r, participate, Ω}
//            client: train Ω episodes → (participants) upload →
//                    critic_loss_before → await download →
//                    try_apply_download / staleness → critic_loss_after
//            server: collect_round (straggler-tolerant: closes at the
//                    quorum deadline, laggards feed the staleness path)
//                    → FedServer::run_round → downloads out.
//   end      server → all: kGoodbye.
//
// With a fault-free transport and the same FederationConfig/seed, each
// client process produces a ClientHistory identical to the in-process
// trainer's: clients are built through build_single_client (same seed
// chain), participants are drawn from the same RNG stream
// (seed ^ 0xFEDFEDFED), and uploads are aggregated in client-id order.
//
// Crash recovery: clients checkpoint {next_round, episodes_done, agent
// state, history} into a SnapshotDir (ContentKind::kNetClientState) and
// rejoin from the newest valid generation with Hello.resume_round set.
// The Welcome returns the current round and ψ_G, missed rounds are
// recorded like crash windows (rounds_crashed / staleness), and the rest
// of the fleet never waits: the quorum deadline closes rounds without
// the crashed client until it returns.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/federation.hpp"
#include "fed/socket_transport.hpp"
#include "util/net.hpp"

namespace pfrl::core {

struct NetFedServerConfig {
  FederationConfig federation;
  std::vector<ClientPreset> presets;
  util::Endpoint listen;  // "unix:/path" or "host:port" (port 0 = ephemeral)
  fed::TransportConfig transport;
  /// Quorum deadline per round: once elapsed, the round closes as soon as
  /// min_participants uploads arrived and laggards go down the staleness
  /// path. Fault-free fleets close early (everyone reports).
  std::chrono::milliseconds round_deadline{30000};
  /// How long to wait for the initial fleet before giving up.
  std::chrono::milliseconds join_timeout{60000};
  /// When set, federation.json is written here (or validated against an
  /// existing one) so restarts reject topology drift before training.
  std::string manifest_dir;
};

class NetFedServer {
 public:
  /// Binds and starts accepting. Throws on bind failure, on an
  /// independent-PPO config (nothing to federate), or when manifest_dir
  /// holds a manifest for a different topology.
  explicit NetFedServer(NetFedServerConfig config);
  ~NetFedServer();

  /// The bound endpoint (TCP port 0 resolved to the kernel's choice).
  const util::Endpoint& endpoint() const { return transport_->endpoint(); }

  struct Summary {
    std::uint64_t rounds = 0;
    std::uint64_t rounds_closed_at_deadline = 0;
    std::uint64_t laggard_rounds = 0;  // (round, missing-client) pairs
    std::uint64_t rejoins = 0;         // re-handshakes after the initial join
    bool completed = false;            // ran every round and said goodbye
    std::string error;                 // non-empty on join timeout etc.
    fed::ServerStats server;
    fed::TransportStats transport;
    /// Byzantine-defense outcomes (inactive without a RobustAggregator).
    bool defense_active = false;
    fed::DefenseStats defense;
  };

  /// Drives the whole run: join phase, all rounds, goodbye. Blocking.
  Summary run();

  /// Cooperative shutdown from a signal handler (checked each poll tick).
  void set_stop_flag(const std::atomic<bool>* flag) { stop_flag_ = flag; }

  /// The arch hash every Hello must present (exposed for tests).
  std::uint64_t expected_arch_hash() const { return expected_arch_hash_; }

  static std::string summary_json(const Summary& summary);

 private:
  struct JoinState {
    bool joined = false;
    std::uint64_t resume_round = 0;
    std::vector<std::uint8_t> init_upload;
  };

  bool stopping() const;
  void handle_hello(const fed::Message& message, bool initial_phase);
  std::vector<std::size_t> pick_participants();

  NetFedServerConfig config_;
  std::size_t client_count_;
  std::size_t participants_per_round_;
  std::uint64_t total_rounds_;
  std::uint64_t expected_arch_hash_ = 0;

  std::unique_ptr<fed::FedServer> server_;
  std::unique_ptr<fed::Bus> bus_;  // internal staging for FedServer::run_round
  std::unique_ptr<fed::SocketServerTransport> transport_;
  util::Rng participant_rng_;

  mutable std::mutex state_mutex_;  // guards server_/round_index_ (validator
                                    // callbacks run on connection threads)
  std::uint64_t round_index_ = 0;

  std::vector<JoinState> joins_;
  Summary summary_;
  const std::atomic<bool>* stop_flag_ = nullptr;
};

struct NetFedClientConfig {
  FederationConfig federation;
  std::vector<ClientPreset> presets;
  std::size_t index = 0;  // which preset/client this process embodies
  util::Endpoint endpoint;
  fed::TransportConfig transport;
  /// Rotated kNetClientState snapshots land here ("" = no checkpointing).
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 1;  // rounds between snapshots
  bool resume = false;               // restore the newest valid snapshot first
  /// Keep re-dialing the server for this long before giving up.
  std::chrono::milliseconds connect_deadline{30000};
  /// Max wait for a round's download before going stale.
  std::chrono::milliseconds download_deadline{30000};
  /// No server traffic for this long = the run is dead; return what we have.
  std::chrono::milliseconds idle_timeout{120000};
  /// Test hook: exit (as if crashed — no Goodbye, no close handshake)
  /// after completing this many rounds. 0 = run to Goodbye.
  std::uint64_t exit_after_rounds = 0;
};

class NetFedClient {
 public:
  explicit NetFedClient(NetFedClientConfig config);

  struct Result {
    fed::ClientHistory history;
    fed::TransportStats transport;
    std::uint64_t rounds_done = 0;      // rounds completed this process
    std::uint64_t next_round = 0;       // first round still owed
    std::size_t episodes_done = 0;      // local episodes across all lives
    bool completed = false;             // saw the server's Goodbye
    bool resumed = false;               // restarted from a snapshot
    std::string error;                  // rejection reason / timeout note
  };

  /// Builds the client (optionally from a checkpoint), joins the
  /// federation, and runs rounds until Goodbye. Blocking.
  Result run();

  void set_stop_flag(const std::atomic<bool>* flag) { stop_flag_ = flag; }

  static std::string result_json(const Result& result);

 private:
  NetFedClientConfig config_;
  const std::atomic<bool>* stop_flag_ = nullptr;
};

}  // namespace pfrl::core
