#include "env/reward.hpp"

#include <algorithm>
#include <cmath>

namespace pfrl::env {

double placement_reward(const sim::Cluster& cluster, const sim::Completion& placed,
                        double loadbal_before, double power_before,
                        const RewardConfig& config) {
  // Eq. (7): both run and response are known at placement time (the task
  // starts immediately, so response = wait + run).
  const double run = placed.task.duration;
  const double response = placed.response_time();
  const double r_res = std::exp(run / std::max(response, 1e-9));

  // Eq. (8): Load_c = LoadBal(after) - LoadBal(before).
  const double load_c = cluster.load_balance() - loadbal_before;
  double r_load;
  if (load_c <= 0.0) {
    r_load = 1.0;
  } else {
    r_load = config.strict_paper_reward ? load_c : -load_c;
  }

  const double base = config.rho * r_res + (1.0 - config.rho) * r_load;
  if (config.energy_weight <= 0.0) return base;

  // Extension: reward placements whose power increment is close to the
  // minimum this task could cost (vCPU draw only, no wake-up premium).
  const double delta = std::max(cluster.power_draw() - power_before, 1e-9);
  const double min_delta =
      cluster.config().power.watts_per_vcpu * static_cast<double>(placed.task.vcpus);
  const double r_energy = std::min(1.0, min_delta / delta);
  return (1.0 - config.energy_weight) * base + config.energy_weight * r_energy;
}

double invalid_action_penalty(const sim::Cluster& cluster,
                              std::optional<std::size_t> vm_index) {
  double weighted_util = 1.0;
  if (vm_index && *vm_index < cluster.vm_count()) {
    const sim::Vm& vm = cluster.vms()[*vm_index];
    weighted_util = 0.0;
    for (int r = 0; r < sim::kResourceTypes; ++r)
      weighted_util +=
          cluster.config().resource_weights[static_cast<std::size_t>(r)] * vm.utilization(r);
  }
  return -std::exp(weighted_util);
}

}  // namespace pfrl::env
