#include "env/scheduling_env.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "env/observation.hpp"
#include "obs/metrics.hpp"

namespace pfrl::env {

SchedulingEnv::SchedulingEnv(SchedulingEnvConfig config, workload::Trace trace)
    : config_(std::move(config)), trace_(std::move(trace)) {
  if (config_.max_vms == 0 || config_.max_vcpus_per_vm <= 0 || config_.queue_window == 0)
    throw std::invalid_argument("SchedulingEnv: zero-sized observation layout");
  if (static_cast<std::size_t>(sim::total_vms(config_.cluster.specs)) > config_.max_vms)
    throw std::invalid_argument("SchedulingEnv: cluster has more VMs than max_vms");
  for (const sim::MachineSpec& s : config_.cluster.specs) {
    if (s.vcpus > config_.max_vcpus_per_vm)
      throw std::invalid_argument("SchedulingEnv: VM exceeds max_vcpus_per_vm");
    if (s.memory_gb > config_.max_memory_gb)
      throw std::invalid_argument("SchedulingEnv: VM exceeds max_memory_gb");
  }
  reset();
}

void SchedulingEnv::reset() {
  cluster_ = std::make_unique<sim::Cluster>(config_.cluster, trace_);
  collector_ = sim::MetricsCollector();
  total_reward_ = 0.0;
  steps_ = 0;
  invalid_actions_ = 0;
  lazy_noops_ = 0;
  // An episode begins at the first arrival, not at t=0 with an empty queue.
  fast_forward_idle_gaps();
}

void SchedulingEnv::fast_forward_idle_gaps() {
  if (!config_.fast_forward_idle) return;
  // Jump event-to-event until a task is waiting (or nothing remains);
  // the skipped interval still contributes (time-weighted) to the
  // utilization/load-balance averages, with the pre-jump readings that
  // hold until the jump's target event.
  while (cluster_->queue().empty() && !cluster_->all_done()) {
    const double before = cluster_->now();
    const double util = cluster_->weighted_utilization();
    const double loadbal = cluster_->load_balance();
    for (const sim::Completion& c : cluster_->fast_forward()) collector_.record_completion(c);
    if (cluster_->now() == before) break;  // no future event to jump to
    collector_.record_period(util, loadbal,
                             (cluster_->now() - before) / config_.cluster.tick_seconds);
  }
}

std::size_t SchedulingEnv::state_dim() const { return observation_dim(config_); }

int SchedulingEnv::action_count() const { return static_cast<int>(config_.max_vms) + 1; }

void SchedulingEnv::observe(std::span<float> out) const {
  encode_observation(*cluster_, config_, out);
}

std::vector<bool> SchedulingEnv::valid_actions() const {
  return action_validity(*cluster_, config_);
}

void SchedulingEnv::valid_actions_into(std::span<std::uint8_t> out) const {
  action_validity_into(*cluster_, config_, out);
}

void SchedulingEnv::advance_clock() {
  for (const sim::Completion& c : cluster_->tick()) collector_.record_completion(c);
  collector_.record_tick(*cluster_);
  fast_forward_idle_gaps();
}

StepResult SchedulingEnv::step(int action) {
  if (action < 0 || action >= action_count())
    throw std::out_of_range("SchedulingEnv::step: action out of range");
  StepResult result;
  ++steps_;
  PFRL_COUNT("env/steps", 1);

  const bool is_noop = action == noop_action();
  const auto vm_index = static_cast<std::size_t>(action);

  if (is_noop) {
    if (!cluster_->queue().empty() && cluster_->any_vm_fits(cluster_->queue().front())) {
      // Lazy no-op: a feasible VM existed ("inertia policies" penalty).
      result.reward = config_.reward.lazy_noop_penalty;
      ++lazy_noops_;
    }
    advance_clock();
  } else if (!cluster_->queue().empty() && vm_index < cluster_->vm_count() &&
             cluster_->vm_fits_head(vm_index)) {
    const double loadbal_before = cluster_->load_balance();
    const double power_before = cluster_->power_draw();
    const sim::Completion placed = cluster_->schedule_head(vm_index);
    result.reward =
        placement_reward(*cluster_, placed, loadbal_before, power_before, config_.reward);
    // Valid placement keeps the clock still: the agent may immediately
    // schedule the next queued task at the same instant.
  } else {
    result.reward = invalid_action_penalty(*cluster_, vm_index);
    ++invalid_actions_;
    advance_clock();
  }

  total_reward_ += result.reward;
  result.done = cluster_->all_done() || steps_ >= config_.max_steps;
  return result;
}

void SchedulingEnv::set_trace(workload::Trace trace) {
  trace_ = std::move(trace);
  reset();
}

sim::EpisodeMetrics SchedulingEnv::metrics() const {
  sim::EpisodeMetrics m = collector_.finalize();
  m.total_reward = total_reward_;
  m.steps = steps_;
  m.invalid_actions = invalid_actions_;
  m.lazy_noops = lazy_noops_;
  return m;
}

}  // namespace pfrl::env
