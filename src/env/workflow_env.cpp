#include "env/workflow_env.hpp"

#include <algorithm>
#include <stdexcept>

#include "env/observation.hpp"
#include "env/reward.hpp"
#include "obs/metrics.hpp"

namespace pfrl::env {

WorkflowEnv::WorkflowEnv(SchedulingEnvConfig config, workload::WorkflowBatch batch)
    : config_(std::move(config)), batch_(std::move(batch)) {
  if (config_.max_vms == 0 || config_.max_vcpus_per_vm <= 0 || config_.queue_window == 0)
    throw std::invalid_argument("WorkflowEnv: zero-sized observation layout");
  std::sort(batch_.begin(), batch_.end(),
            [](const workload::Workflow& a, const workload::Workflow& b) {
              return a.arrival_time < b.arrival_time;
            });
  job_offsets_.reserve(batch_.size());
  for (const workload::Workflow& wf : batch_) {
    if (!workload::is_topologically_ordered(wf))
      throw std::invalid_argument("WorkflowEnv: workflow has forward dependencies");
    job_offsets_.push_back(total_tasks_);
    total_tasks_ += wf.task_count();
  }
  reset();
}

void WorkflowEnv::reset() {
  cluster_ = std::make_unique<sim::Cluster>(config_.cluster, workload::Trace{});
  collector_ = sim::MetricsCollector();
  task_states_.assign(total_tasks_, {});
  dependents_.assign(total_tasks_, {});
  remaining_in_job_.assign(batch_.size(), 0);
  job_finish_.assign(batch_.size(), 0.0);
  next_job_ = 0;
  completed_ = 0;
  completed_jobs_ = 0;
  total_reward_ = 0.0;
  steps_ = 0;
  invalid_actions_ = 0;
  lazy_noops_ = 0;

  for (std::size_t j = 0; j < batch_.size(); ++j) {
    remaining_in_job_[j] = batch_[j].task_count();
    for (std::size_t t = 0; t < batch_[j].task_count(); ++t) {
      const std::size_t uid = job_offsets_[j] + t;
      task_states_[uid].pending_deps = batch_[j].tasks[t].deps.size();
      for (const std::size_t dep : batch_[j].tasks[t].deps)
        dependents_[job_offsets_[j] + dep].push_back(uid);
    }
  }
  fast_forward_idle_gaps();
}

std::size_t WorkflowEnv::state_dim() const { return observation_dim(config_); }
int WorkflowEnv::action_count() const { return static_cast<int>(config_.max_vms) + 1; }
void WorkflowEnv::observe(std::span<float> out) const {
  encode_observation(*cluster_, config_, out);
}
std::vector<bool> WorkflowEnv::valid_actions() const {
  return action_validity(*cluster_, config_);
}
void WorkflowEnv::valid_actions_into(std::span<std::uint8_t> out) const {
  action_validity_into(*cluster_, config_, out);
}

void WorkflowEnv::admit_arrived_jobs() {
  while (next_job_ < batch_.size() &&
         batch_[next_job_].arrival_time <= cluster_->now() + 1e-9) {
    const std::size_t j = next_job_++;
    for (std::size_t t = 0; t < batch_[j].task_count(); ++t) {
      const std::size_t uid = job_offsets_[j] + t;
      if (task_states_[uid].pending_deps == 0 && !task_states_[uid].released) {
        task_states_[uid].released = true;
        workload::Task task = batch_[j].tasks[t].task;
        task.id = uid;
        // Waiting time is measured from the moment the task became
        // schedulable — for a root, the job's arrival.
        task.arrival_time = batch_[j].arrival_time;
        cluster_->inject_task(task);
      }
    }
  }
}

void WorkflowEnv::handle_completions(const std::vector<sim::Completion>& completions) {
  for (const sim::Completion& c : completions) {
    collector_.record_completion(c);
    const std::size_t uid = c.task.id;
    task_states_[uid].completed = true;
    ++completed_;

    // Which job does this uid belong to?
    const auto job_it = std::upper_bound(job_offsets_.begin(), job_offsets_.end(), uid);
    const auto j = static_cast<std::size_t>(job_it - job_offsets_.begin()) - 1;
    if (--remaining_in_job_[j] == 0) {
      job_finish_[j] = c.finish_time;
      ++completed_jobs_;
    }

    // Unlock dependents whose every predecessor has now finished.
    for (const std::size_t dep_uid : dependents_[uid]) {
      if (--task_states_[dep_uid].pending_deps == 0 && !task_states_[dep_uid].released) {
        task_states_[dep_uid].released = true;
        workload::Task task = batch_[j].tasks[dep_uid - job_offsets_[j]].task;
        task.id = dep_uid;
        task.arrival_time = c.finish_time;  // became schedulable now
        cluster_->inject_task(task);
      }
    }
  }
}

std::optional<double> WorkflowEnv::next_external_event() const {
  std::optional<double> next;
  if (next_job_ < batch_.size()) next = batch_[next_job_].arrival_time;
  for (const sim::Vm& vm : cluster_->vms()) {
    const auto completion = vm.next_completion();
    if (completion && (!next || *completion < *next)) next = completion;
  }
  return next;
}

void WorkflowEnv::fast_forward_idle_gaps() {
  if (!config_.fast_forward_idle) {
    admit_arrived_jobs();
    return;
  }
  admit_arrived_jobs();
  while (cluster_->queue().empty() && completed_ < total_tasks_) {
    const auto next = next_external_event();
    if (!next || *next <= cluster_->now()) break;
    const double before = cluster_->now();
    const double util = cluster_->weighted_utilization();
    const double loadbal = cluster_->load_balance();
    handle_completions(cluster_->advance_until(*next));
    collector_.record_period(util, loadbal,
                             (cluster_->now() - before) / config_.cluster.tick_seconds);
    admit_arrived_jobs();
  }
}

void WorkflowEnv::advance_clock() {
  handle_completions(cluster_->tick());
  collector_.record_tick(*cluster_);
  fast_forward_idle_gaps();
}

StepResult WorkflowEnv::step(int action) {
  if (action < 0 || action >= action_count())
    throw std::out_of_range("WorkflowEnv::step: action out of range");
  StepResult result;
  ++steps_;
  PFRL_COUNT("env/workflow_steps", 1);

  const bool is_noop = action == noop_action();
  const auto vm_index = static_cast<std::size_t>(action);

  if (is_noop) {
    if (!cluster_->queue().empty() && cluster_->any_vm_fits(cluster_->queue().front())) {
      result.reward = config_.reward.lazy_noop_penalty;
      ++lazy_noops_;
    }
    advance_clock();
  } else if (!cluster_->queue().empty() && vm_index < cluster_->vm_count() &&
             cluster_->vm_fits_head(vm_index)) {
    const double loadbal_before = cluster_->load_balance();
    const double power_before = cluster_->power_draw();
    const sim::Completion placed = cluster_->schedule_head(vm_index);
    result.reward =
        placement_reward(*cluster_, placed, loadbal_before, power_before, config_.reward);
  } else {
    result.reward = invalid_action_penalty(*cluster_, vm_index);
    ++invalid_actions_;
    advance_clock();
  }

  total_reward_ += result.reward;
  result.done = completed_ >= total_tasks_ || steps_ >= config_.max_steps;
  return result;
}

sim::EpisodeMetrics WorkflowEnv::metrics() const {
  sim::EpisodeMetrics m = collector_.finalize();
  m.total_reward = total_reward_;
  m.steps = steps_;
  m.invalid_actions = invalid_actions_;
  m.lazy_noops = lazy_noops_;
  return m;
}

double WorkflowEnv::avg_job_response() const {
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t j = 0; j < batch_.size(); ++j) {
    if (remaining_in_job_[j] == 0 && !batch_[j].tasks.empty()) {
      acc += job_finish_[j] - batch_[j].arrival_time;
      ++n;
    }
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

std::size_t WorkflowEnv::completed_jobs() const { return completed_jobs_; }

}  // namespace pfrl::env
