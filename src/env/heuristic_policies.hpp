// Classical scheduling heuristics over the same environments the RL
// agents use — baselines for the examples and sanity anchors for the
// benchmarks (an RL policy that loses to Random has not learned).
//
// The scheduler works against the generic Env interface (validity mask +
// no-op-last action convention) and uses the ClusterView side-interface
// for the capacity-aware policies; it drives the trace-driven and the
// workflow environments alike.
#pragma once

#include "env/env.hpp"
#include "util/rng.hpp"

namespace pfrl::env {

enum class HeuristicPolicy {
  kFirstFit,    // lowest-index VM that fits
  kBestFit,     // feasible VM with the least remaining weighted capacity
  kWorstFit,    // feasible VM with the most remaining weighted capacity
  kRoundRobin,  // next feasible VM after the previous placement
  kRandom,      // uniformly random feasible VM
};

const char* heuristic_name(HeuristicPolicy policy);

/// Chooses an action for the current state; no-op when nothing fits.
class HeuristicScheduler {
 public:
  HeuristicScheduler(HeuristicPolicy policy, std::uint64_t seed = 1);

  /// `environment` must implement ClusterView for kBestFit/kWorstFit
  /// (throws std::invalid_argument otherwise).
  int act(const Env& environment);

  /// Runs one full episode; returns the env's metrics (empty metrics if
  /// the environment is not a MetricsSource).
  sim::EpisodeMetrics run_episode(Env& environment);

  HeuristicPolicy policy() const { return policy_; }

 private:
  HeuristicPolicy policy_;
  util::Rng rng_;
  std::size_t round_robin_cursor_ = 0;
  // Per-step scratch (Env::valid_actions_into + feasible VM indices),
  // reused so a decision allocates nothing once warmed.
  std::vector<std::uint8_t> mask_;
  std::vector<std::size_t> feasible_;
};

}  // namespace pfrl::env
