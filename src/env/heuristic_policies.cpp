#include "env/heuristic_policies.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

namespace pfrl::env {

const char* heuristic_name(HeuristicPolicy policy) {
  switch (policy) {
    case HeuristicPolicy::kFirstFit: return "first-fit";
    case HeuristicPolicy::kBestFit: return "best-fit";
    case HeuristicPolicy::kWorstFit: return "worst-fit";
    case HeuristicPolicy::kRoundRobin: return "round-robin";
    case HeuristicPolicy::kRandom: return "random";
  }
  return "?";
}

HeuristicScheduler::HeuristicScheduler(HeuristicPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed) {}

int HeuristicScheduler::act(const Env& environment) {
  mask_.resize(static_cast<std::size_t>(environment.action_count()));
  environment.valid_actions_into(mask_);
  const std::span<const std::uint8_t> mask(mask_);
  const int noop = environment.action_count() - 1;  // no-op is last by convention
  feasible_.clear();
  for (std::size_t a = 0; a + 1 < mask.size(); ++a)
    if (mask[a] != 0) feasible_.push_back(a);
  const std::vector<std::size_t>& feasible = feasible_;
  if (feasible.empty()) return noop;

  switch (policy_) {
    case HeuristicPolicy::kFirstFit:
      return static_cast<int>(feasible.front());
    case HeuristicPolicy::kRandom:
      return static_cast<int>(feasible[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(feasible.size()) - 1))]);
    case HeuristicPolicy::kRoundRobin: {
      const std::size_t vm_actions = mask.size() - 1;
      for (std::size_t offset = 1; offset <= vm_actions; ++offset) {
        const std::size_t candidate = (round_robin_cursor_ + offset) % vm_actions;
        for (const std::size_t a : feasible)
          if (a == candidate) {
            round_robin_cursor_ = candidate;
            return static_cast<int>(candidate);
          }
      }
      return static_cast<int>(feasible.front());
    }
    case HeuristicPolicy::kBestFit:
    case HeuristicPolicy::kWorstFit:
      break;  // handled below — they need the cluster
  }

  const auto* view = dynamic_cast<const ClusterView*>(&environment);
  if (view == nullptr)
    throw std::invalid_argument("HeuristicScheduler: policy needs a ClusterView environment");
  const auto& vms = view->cluster().vms();

  // Absolute remaining capacity, each resource normalized by the largest
  // machine in the cluster so vCPUs and GBs are commensurable (an idle
  // big VM has more slack than an idle small one).
  double max_vcpus = 1.0;
  double max_mem = 1.0;
  for (const sim::Vm& vm : vms) {
    max_vcpus = std::max(max_vcpus, static_cast<double>(vm.vcpu_capacity()));
    max_mem = std::max(max_mem, vm.memory_capacity());
  }
  const auto remaining = [&](std::size_t vm) {
    return static_cast<double>(vms[vm].free_vcpus()) / max_vcpus +
           vms[vm].free_memory() / max_mem;
  };

  std::size_t best = feasible.front();
  double best_rem = policy_ == HeuristicPolicy::kBestFit
                        ? std::numeric_limits<double>::max()
                        : -1.0;
  for (const std::size_t a : feasible) {
    const double rem = remaining(a);
    const bool better =
        policy_ == HeuristicPolicy::kBestFit ? rem < best_rem : rem > best_rem;
    if (better) {
      best_rem = rem;
      best = a;
    }
  }
  return static_cast<int>(best);
}

sim::EpisodeMetrics HeuristicScheduler::run_episode(Env& environment) {
  environment.reset();
  bool done = false;
  while (!done) done = environment.step(act(environment)).done;
  if (const auto* source = dynamic_cast<const MetricsSource*>(&environment))
    return source->metrics();
  return {};
}

}  // namespace pfrl::env
