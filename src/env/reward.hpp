// The reward function of §4.2 (Eqs. 3–9), shared by the trace-driven
// SchedulingEnv and the DAG-driven WorkflowEnv, plus the energy-objective
// extension the paper sketches ("the reward function can be easily
// extended to accommodate ... energy consumption").
#pragma once

#include <optional>

#include "sim/cluster.hpp"

namespace pfrl::env {

struct RewardConfig {
  /// ρ of Eq. (6): response-time vs load-balance weight.
  double rho = 0.5;
  /// "a larger negative constant" for idling while a VM fits (§4.2).
  double lazy_noop_penalty = -5.0;
  /// Eq. (8) literal sign (positive Load_c rewarded) vs the corrected
  /// form (see DESIGN.md).
  bool strict_paper_reward = false;
  /// Extension: fraction of the placement reward allocated to the energy
  /// objective. 0 reproduces the paper's Eq. (6) exactly.
  double energy_weight = 0.0;
};

/// Reward for a *valid* placement: ρ·R_res + (1-ρ)·R_load (Eqs. 6-8),
/// optionally blended with R_energy = min-possible power increment over
/// the actual increment (1.0 when the task lands on an already-awake VM).
/// `loadbal_before` / `power_before` are the cluster readings taken just
/// before the placement.
double placement_reward(const sim::Cluster& cluster, const sim::Completion& placed,
                        double loadbal_before, double power_before,
                        const RewardConfig& config);

/// Eq. (9): -e^{Σ w_i·util_i} of the chosen VM; a nonexistent (padded)
/// VM counts as fully utilized.
double invalid_action_penalty(const sim::Cluster& cluster,
                              std::optional<std::size_t> vm_index);

}  // namespace pfrl::env
