// The cloud task-scheduling environment of §4.1–4.2.
//
// State  S = (S^VM, S^vCPU, S^Queue), Fig. 6:
//   S^VM    — remaining capacity per VM (free vCPUs, free memory),
//             normalized by the padding maxima; missing VMs padded 0.
//   S^vCPU  — per-vCPU running state: completion progress in (0, 1] for a
//             busy slot, 0 for a free or void slot. The agent never sees a
//             task's duration — only observed progress.
//   S^Queue — requested (vCPUs, memory) of the first Q waiting tasks.
//
// Actions: 0..L-1 select a VM for the queue head; action L is the no-op
// ("-1" in the paper).
//
// Reward (Eqs. 3–9): valid placement earns ρ·R_res + (1-ρ)·R_load with
// R_res = e^{run/response}; an infeasible placement is denied and
// penalized by −e^{Σ w_i·util_i} of the chosen VM; a no-op while some VM
// fits the head task costs a larger negative constant; a justified no-op
// is free. Eq. (8)'s literal positive branch (`R_load = Load_c` when
// deployment *worsens* balance) is an evident sign typo; the default is
// the intent-corrected `-Load_c`, and `strict_paper_reward` restores the
// literal form.
//
// Time: a valid placement does not advance the clock (several arrivals
// can be placed in one tick); every other action advances one tick. When
// the queue is empty the clock optionally fast-forwards to the next
// arrival/completion.
#pragma once

#include <memory>
#include <optional>

#include "env/env.hpp"
#include "env/reward.hpp"
#include "sim/cluster.hpp"
#include "sim/metrics.hpp"
#include "workload/trace.hpp"

namespace pfrl::env {

struct SchedulingEnvConfig {
  sim::ClusterConfig cluster;

  /// Padding maxima defining the fixed observation layout. Clients in a
  /// federation must share these so their networks are aggregable
  /// ("clients are expected to have similar definitions of the RL
  /// environments", §4.1).
  std::size_t max_vms = 8;       // L
  int max_vcpus_per_vm = 16;     // U^vcpu
  double max_memory_gb = 512.0;  // U^mem

  std::size_t queue_window = 10;  // Q

  RewardConfig reward;  // Eqs. 6-9 (+ optional energy extension)
  bool fast_forward_idle = true;
  std::size_t max_steps = 200000;  // runaway-episode safety cap
};

class SchedulingEnv final : public Env, public MetricsSource, public ClusterView {
 public:
  SchedulingEnv(SchedulingEnvConfig config, workload::Trace trace);

  void reset() override;
  std::size_t state_dim() const override;
  int action_count() const override;
  void observe(std::span<float> out) const override;
  StepResult step(int action) override;
  std::vector<bool> valid_actions() const override;
  void valid_actions_into(std::span<std::uint8_t> out) const override;

  /// Index of the no-op action (== max_vms).
  int noop_action() const { return static_cast<int>(config_.max_vms); }

  /// Swap the task trace (train -> test); resets the episode.
  void set_trace(workload::Trace trace);

  /// Metrics of the episode so far (final after done).
  sim::EpisodeMetrics metrics() const override;

  const sim::Cluster& cluster() const override { return *cluster_; }
  const SchedulingEnvConfig& config() const { return config_; }
  std::size_t steps_taken() const { return steps_; }

 private:
  void advance_clock();
  void fast_forward_idle_gaps();

  SchedulingEnvConfig config_;
  workload::Trace trace_;
  std::unique_ptr<sim::Cluster> cluster_;
  sim::MetricsCollector collector_;
  double total_reward_ = 0.0;
  std::size_t steps_ = 0;
  std::size_t invalid_actions_ = 0;
  std::size_t lazy_noops_ = 0;
};

}  // namespace pfrl::env
