// Generic episodic RL environment interface (discrete actions).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/metrics.hpp"

namespace pfrl::env {

/// Optional side-interface for environments that can report the §5.1
/// scheduling metrics of the episode in progress. Agents query it via
/// dynamic_cast after rollouts.
class MetricsSource {
 public:
  virtual ~MetricsSource() = default;
  virtual sim::EpisodeMetrics metrics() const = 0;
};

/// Optional side-interface exposing the underlying cluster — what the
/// structured heuristics (best-fit, worst-fit) inspect.
class ClusterView {
 public:
  virtual ~ClusterView() = default;
  virtual const sim::Cluster& cluster() const = 0;
};

struct StepResult {
  double reward = 0.0;
  bool done = false;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual void reset() = 0;

  /// Dimensionality of the observation vector.
  virtual std::size_t state_dim() const = 0;
  /// Number of discrete actions.
  virtual int action_count() const = 0;

  /// Writes the current observation into `out` (size state_dim()).
  virtual void observe(std::span<float> out) const = 0;

  /// Convenience allocation-returning observation.
  std::vector<float> state() const {
    std::vector<float> s(state_dim());
    observe(s);
    return s;
  }

  virtual StepResult step(int action) = 0;

  /// Validity mask over actions in the current state (used by masked
  /// policies and by tests; the paper's agent learns penalties instead).
  virtual std::vector<bool> valid_actions() const = 0;

  /// Allocation-free mask: writes 1 (valid) / 0 (invalid) per action into
  /// `out` (size action_count()). The default shims over valid_actions()
  /// — one allocation — so every Env works; environments on per-step hot
  /// paths (serve, vectorized rollout, masked evaluation) override it.
  virtual void valid_actions_into(std::span<std::uint8_t> out) const {
    const std::vector<bool> mask = valid_actions();
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = (i < mask.size() && mask[i]) ? std::uint8_t{1} : std::uint8_t{0};
  }
};

}  // namespace pfrl::env
