// Generic episodic RL environment interface (discrete actions).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/metrics.hpp"

namespace pfrl::env {

/// Optional side-interface for environments that can report the §5.1
/// scheduling metrics of the episode in progress. Agents query it via
/// dynamic_cast after rollouts.
class MetricsSource {
 public:
  virtual ~MetricsSource() = default;
  virtual sim::EpisodeMetrics metrics() const = 0;
};

/// Optional side-interface exposing the underlying cluster — what the
/// structured heuristics (best-fit, worst-fit) inspect.
class ClusterView {
 public:
  virtual ~ClusterView() = default;
  virtual const sim::Cluster& cluster() const = 0;
};

struct StepResult {
  double reward = 0.0;
  bool done = false;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual void reset() = 0;

  /// Dimensionality of the observation vector.
  virtual std::size_t state_dim() const = 0;
  /// Number of discrete actions.
  virtual int action_count() const = 0;

  /// Writes the current observation into `out` (size state_dim()).
  virtual void observe(std::span<float> out) const = 0;

  /// Convenience allocation-returning observation.
  std::vector<float> state() const {
    std::vector<float> s(state_dim());
    observe(s);
    return s;
  }

  virtual StepResult step(int action) = 0;

  /// Validity mask over actions in the current state (used by masked
  /// policies and by tests; the paper's agent learns penalties instead).
  virtual std::vector<bool> valid_actions() const = 0;
};

}  // namespace pfrl::env
