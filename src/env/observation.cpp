#include "env/observation.hpp"

#include <algorithm>
#include <stdexcept>

#include "env/scheduling_env.hpp"

namespace pfrl::env {

std::size_t observation_dim(const SchedulingEnvConfig& config) {
  const std::size_t l = config.max_vms;
  const auto u = static_cast<std::size_t>(config.max_vcpus_per_vm);
  const std::size_t q = config.queue_window;
  return l * sim::kResourceTypes + l * u + q * sim::kResourceTypes;
}

void encode_observation(const sim::Cluster& cluster, const SchedulingEnvConfig& config,
                        std::span<float> out) {
  if (out.size() != observation_dim(config))
    throw std::invalid_argument("encode_observation: bad buffer size");
  std::fill(out.begin(), out.end(), 0.0F);
  const auto& vms = cluster.vms();
  const auto max_cpu = static_cast<double>(config.max_vcpus_per_vm);
  const double max_mem = config.max_memory_gb;

  // S^VM — remaining capacity, normalized.
  std::size_t pos = 0;
  for (std::size_t i = 0; i < config.max_vms; ++i) {
    if (i < vms.size()) {
      out[pos] = static_cast<float>(vms[i].free_vcpus() / max_cpu);
      out[pos + 1] = static_cast<float>(vms[i].free_memory() / max_mem);
    }
    pos += sim::kResourceTypes;
  }

  // S^vCPU — per-slot completion progress, one pass over each VM's
  // running tasks (slot_progress per slot re-scans the task list).
  const double now = cluster.now();
  for (std::size_t i = 0; i < config.max_vms; ++i) {
    if (i < vms.size()) {
      const auto slots = static_cast<std::size_t>(
          std::min(vms[i].vcpu_capacity(), config.max_vcpus_per_vm));
      vms[i].slot_progress_into(out.subspan(pos, slots), now);
    }
    pos += static_cast<std::size_t>(config.max_vcpus_per_vm);
  }

  // S^Queue — requested resources of the first Q waiting tasks.
  const auto& queue = cluster.queue();
  for (std::size_t q = 0; q < config.queue_window; ++q) {
    if (q < queue.size()) {
      out[pos] = static_cast<float>(queue[q].vcpus / max_cpu);
      out[pos + 1] = static_cast<float>(queue[q].memory_gb / max_mem);
    }
    pos += sim::kResourceTypes;
  }
}

std::vector<bool> action_validity(const sim::Cluster& cluster,
                                  const SchedulingEnvConfig& config) {
  std::vector<bool> mask(config.max_vms + 1, false);
  mask.back() = true;  // no-op is always available
  for (std::size_t i = 0; i < cluster.vm_count() && i < config.max_vms; ++i)
    mask[i] = cluster.vm_fits_head(i);
  return mask;
}

void action_validity_into(const sim::Cluster& cluster, const SchedulingEnvConfig& config,
                          std::span<std::uint8_t> out) {
  if (out.size() != config.max_vms + 1)
    throw std::invalid_argument("action_validity_into: bad buffer size");
  std::fill(out.begin(), out.end(), std::uint8_t{0});
  out.back() = 1;  // no-op is always available
  for (std::size_t i = 0; i < cluster.vm_count() && i < config.max_vms; ++i)
    out[i] = cluster.vm_fits_head(i) ? std::uint8_t{1} : std::uint8_t{0};
}

}  // namespace pfrl::env
