// Observation encoding and action-validity masks shared by the
// trace-driven and workflow environments (both expose the exact state
// layout of §4.1 / Fig. 6).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/cluster.hpp"

namespace pfrl::env {

struct SchedulingEnvConfig;  // scheduling_env.hpp

/// L*d + L*U^vcpu + Q*d.
std::size_t observation_dim(const SchedulingEnvConfig& config);

/// Writes S = (S^VM, S^vCPU, S^Queue) into `out` (size observation_dim).
void encode_observation(const sim::Cluster& cluster, const SchedulingEnvConfig& config,
                        std::span<float> out);

/// Per-action feasibility: VM actions true when the queue head fits,
/// no-op (last) always true.
std::vector<bool> action_validity(const sim::Cluster& cluster,
                                  const SchedulingEnvConfig& config);

/// Workspace form of action_validity: writes 1/0 per action into `out`
/// (size max_vms + 1), performing no allocations. Throws on size mismatch.
void action_validity_into(const sim::Cluster& cluster, const SchedulingEnvConfig& config,
                          std::span<std::uint8_t> out);

}  // namespace pfrl::env
