// Workflow scheduling environment — the paper's future-work extension.
//
// Same observation layout, action space, and reward as SchedulingEnv,
// but tasks carry dependencies: a task enters the waiting queue only when
// its job has arrived AND all of its predecessors have completed. The
// agent therefore schedules the *frontier* of each DAG; placement quality
// now also determines how quickly downstream tasks unlock.
#pragma once

#include <memory>
#include <unordered_map>

#include "env/env.hpp"
#include "env/scheduling_env.hpp"
#include "workload/dag.hpp"

namespace pfrl::env {

class WorkflowEnv final : public Env, public MetricsSource, public ClusterView {
 public:
  /// The trace-related parts of `config` are ignored; everything else
  /// (layout, reward, fast-forward, caps) behaves as in SchedulingEnv.
  WorkflowEnv(SchedulingEnvConfig config, workload::WorkflowBatch batch);

  void reset() override;
  std::size_t state_dim() const override;
  int action_count() const override;
  void observe(std::span<float> out) const override;
  StepResult step(int action) override;
  std::vector<bool> valid_actions() const override;
  void valid_actions_into(std::span<std::uint8_t> out) const override;

  int noop_action() const { return static_cast<int>(config_.max_vms); }

  /// Task-level metrics (response measured from task *release*, i.e. the
  /// moment the task became schedulable) plus reward/step counters.
  sim::EpisodeMetrics metrics() const override;

  /// Mean job response time: last task finish minus job arrival.
  double avg_job_response() const;
  /// Jobs fully completed so far.
  std::size_t completed_jobs() const;

  const sim::Cluster& cluster() const override { return *cluster_; }
  const workload::WorkflowBatch& batch() const { return batch_; }

 private:
  // Global uid for (job, task): uid = job_offsets_[job] + task_index.
  struct TaskState {
    std::size_t pending_deps = 0;
    bool released = false;
    bool completed = false;
  };

  void release_ready_tasks();
  void handle_completions(const std::vector<sim::Completion>& completions);
  void admit_arrived_jobs();
  void advance_clock();
  void fast_forward_idle_gaps();
  std::optional<double> next_external_event() const;

  SchedulingEnvConfig config_;
  workload::WorkflowBatch batch_;
  std::vector<std::size_t> job_offsets_;
  std::size_t total_tasks_ = 0;

  std::unique_ptr<sim::Cluster> cluster_;
  sim::MetricsCollector collector_;
  std::vector<TaskState> task_states_;
  std::vector<std::vector<std::size_t>> dependents_;  // uid -> dependent uids
  std::vector<std::size_t> remaining_in_job_;
  std::vector<double> job_finish_;
  std::size_t next_job_ = 0;       // first not-yet-arrived job
  std::size_t completed_ = 0;
  std::size_t completed_jobs_ = 0;
  double total_reward_ = 0.0;
  std::size_t steps_ = 0;
  std::size_t invalid_actions_ = 0;
  std::size_t lazy_noops_ = 0;
};

}  // namespace pfrl::env
