// Federated wire messages. Model parameters only ever cross the
// client/server boundary inside these payloads (serialized bytes), which
// keeps clients honestly isolated and makes communication costs
// measurable (§5.2 compares PFRL-DM's critic-only traffic against
// FedAvg's actor+critic traffic).
//
// Every message carries a CRC-32 of its payload. Receivers (FedServer for
// uploads, FedClient for downloads) verify it and drop mismatching
// messages instead of deserializing corrupted parameters — the first line
// of defense of the fault-tolerance layer (fed/fault.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "util/serialization.hpp"

namespace pfrl::fed {

enum class MessageType : std::uint8_t {
  kModelUpload = 0,    // client -> server: locally trained parameters
  kModelPersonalized,  // server -> client: the client's personalized model
  kModelGlobal,        // server -> client: ψ_G (non-participants, joiners)

  // Control-plane types for the networked transport (fed/transport.hpp).
  // The in-process trainer never emits these; FedServer::run_round rejects
  // them as malformed if one ever leaks into an upload drain.
  kModelInit = 3,    // server -> client: initial model sync before round 0
  kHello = 4,        // client -> server: handshake (id, arch hash, resume round)
  kWelcome = 5,      // server -> client: handshake accept (+ current ψ_G)
  kHelloReject = 6,  // server -> client: handshake refused (arch mismatch, ...)
  kHeartbeat = 7,    // client -> server: liveness beacon between rounds
  kRoundBegin = 8,   // server -> client: start round r (participant flag)
  kGoodbye = 9,      // server -> client: training finished, disconnect
};

struct Message {
  MessageType type = MessageType::kModelUpload;
  int sender = -1;  // client id, or -1 for the server
  std::uint64_t round = 0;
  std::uint32_t checksum = 0;  // CRC-32 of payload (see make_message)
  std::vector<std::uint8_t> payload;

  // Distributed-trace context, carried at the frame layer by protocol-v2
  // socket transports (socket_transport.hpp) and stamped here on the
  // receive path so handlers can adopt the sender's span. Transient:
  // serialize_message does NOT write these — checkpointed in-flight
  // traffic (FaultyBus delay queues) stays byte-identical across the
  // protocol bump. Zero means "no context".
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// Builds a message with its checksum stamped. All legitimate senders go
/// through this; a zero/default checksum on a non-empty payload is
/// indistinguishable from corruption and will be rejected downstream.
inline Message make_message(MessageType type, int sender, std::uint64_t round,
                            std::vector<std::uint8_t> payload) {
  Message m;
  m.type = type;
  m.sender = sender;
  m.round = round;
  m.payload = std::move(payload);
  m.checksum = util::crc32(m.payload);
  return m;
}

inline bool checksum_ok(const Message& m) { return util::crc32(m.payload) == m.checksum; }

/// Serializes a message verbatim (checksum included, NOT re-stamped) so
/// in-flight traffic — e.g. FaultyBus-delayed uploads — survives a
/// checkpoint/restore without laundering injected corruption.
inline void serialize_message(const Message& m, util::ByteWriter& writer) {
  writer.write_u8(static_cast<std::uint8_t>(m.type));
  writer.write_i64(m.sender);
  writer.write_u64(m.round);
  writer.write_u32(m.checksum);
  writer.write_bytes(m.payload);
}

inline Message deserialize_message(util::ByteReader& reader) {
  Message m;
  m.type = static_cast<MessageType>(reader.read_u8());
  m.sender = static_cast<int>(reader.read_i64());
  m.round = reader.read_u64();
  m.checksum = reader.read_u32();
  m.payload = reader.read_bytes();
  return m;
}

}  // namespace pfrl::fed
