// Federated wire messages. Model parameters only ever cross the
// client/server boundary inside these payloads (serialized bytes), which
// keeps clients honestly isolated and makes communication costs
// measurable (§5.2 compares PFRL-DM's critic-only traffic against
// FedAvg's actor+critic traffic).
#pragma once

#include <cstdint>
#include <vector>

namespace pfrl::fed {

enum class MessageType : std::uint8_t {
  kModelUpload = 0,    // client -> server: locally trained parameters
  kModelPersonalized,  // server -> client: the client's personalized model
  kModelGlobal,        // server -> client: ψ_G (non-participants, joiners)
};

struct Message {
  MessageType type = MessageType::kModelUpload;
  int sender = -1;  // client id, or -1 for the server
  std::uint64_t round = 0;
  std::vector<std::uint8_t> payload;
};

}  // namespace pfrl::fed
