#include "fed/bus.hpp"

#include <stdexcept>

namespace pfrl::fed {

Bus::Bus(std::size_t client_count) : client_boxes_(client_count) {}

void Bus::send_to_server(Message message) {
  {
    const std::scoped_lock lock(mutex_);
    uplink_bytes_ += message.payload.size();
    ++uplink_messages_;
    server_box_.push_back(std::move(message));
  }
  cv_.notify_all();
}

void Bus::send_to_client(std::size_t client, Message message) {
  {
    const std::scoped_lock lock(mutex_);
    if (client >= client_boxes_.size()) throw std::out_of_range("Bus: unknown client");
    downlink_bytes_ += message.payload.size();
    ++downlink_messages_;
    client_boxes_[client].push_back(std::move(message));
  }
  cv_.notify_all();
}

bool Bus::wait_server(std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  return cv_.wait_for(lock, timeout, [this] { return !server_box_.empty(); });
}

bool Bus::wait_client(std::size_t client, std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  if (client >= client_boxes_.size()) throw std::out_of_range("Bus: unknown client");
  return cv_.wait_for(lock, timeout, [this, client] { return !client_boxes_[client].empty(); });
}

std::vector<Message> Bus::drain_server() {
  const std::scoped_lock lock(mutex_);
  std::vector<Message> out(server_box_.begin(), server_box_.end());
  server_box_.clear();
  return out;
}

std::vector<Message> Bus::drain_client(std::size_t client) {
  const std::scoped_lock lock(mutex_);
  if (client >= client_boxes_.size()) throw std::out_of_range("Bus: unknown client");
  std::vector<Message> out(client_boxes_[client].begin(), client_boxes_[client].end());
  client_boxes_[client].clear();
  return out;
}

std::size_t Bus::add_client() {
  const std::scoped_lock lock(mutex_);
  client_boxes_.emplace_back();
  return client_boxes_.size() - 1;
}

std::uint64_t Bus::uplink_bytes() const {
  const std::scoped_lock lock(mutex_);
  return uplink_bytes_;
}

std::uint64_t Bus::downlink_bytes() const {
  const std::scoped_lock lock(mutex_);
  return downlink_bytes_;
}

std::uint64_t Bus::uplink_messages() const {
  const std::scoped_lock lock(mutex_);
  return uplink_messages_;
}

std::uint64_t Bus::downlink_messages() const {
  const std::scoped_lock lock(mutex_);
  return downlink_messages_;
}

void Bus::save_state(util::ByteWriter& writer) const {
  const std::scoped_lock lock(mutex_);
  writer.write_u64(client_boxes_.size());
  writer.write_u64(server_box_.size());
  for (const Message& m : server_box_) serialize_message(m, writer);
  for (const auto& box : client_boxes_) {
    writer.write_u64(box.size());
    for (const Message& m : box) serialize_message(m, writer);
  }
  writer.write_u64(uplink_bytes_);
  writer.write_u64(downlink_bytes_);
  writer.write_u64(uplink_messages_);
  writer.write_u64(downlink_messages_);
}

void Bus::load_state(util::ByteReader& reader) {
  const std::scoped_lock lock(mutex_);
  const std::uint64_t clients = reader.read_u64();
  if (clients != client_boxes_.size())
    throw std::invalid_argument("Bus::load_state: client count mismatch");
  const std::uint64_t server_count = reader.read_u64();
  server_box_.clear();
  for (std::uint64_t i = 0; i < server_count; ++i)
    server_box_.push_back(deserialize_message(reader));
  for (auto& box : client_boxes_) {
    const std::uint64_t n = reader.read_u64();
    box.clear();
    for (std::uint64_t i = 0; i < n; ++i) box.push_back(deserialize_message(reader));
  }
  uplink_bytes_ = reader.read_u64();
  downlink_bytes_ = reader.read_u64();
  uplink_messages_ = reader.read_u64();
  downlink_messages_ = reader.read_u64();
}

}  // namespace pfrl::fed
