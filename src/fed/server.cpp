#include "fed/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/serialization.hpp"

namespace pfrl::fed {

FedServer::FedServer(std::unique_ptr<Aggregator> aggregator)
    : aggregator_(std::move(aggregator)) {
  if (!aggregator_) throw std::invalid_argument("FedServer: null aggregator");
  robust_ = dynamic_cast<RobustAggregator*>(aggregator_.get());
}

namespace {

std::vector<std::uint8_t> encode_model(std::span<const float> model) {
  util::ByteWriter writer;
  writer.write_f32_span(model);
  return writer.take();
}

bool all_finite(std::span<const float> values) {
  for (const float v : values)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace

std::size_t FedServer::run_round(Bus& bus, std::uint64_t round,
                                 std::span<const std::size_t> all_clients) {
  const std::vector<Message> uploads = bus.drain_server();
  if (uploads.empty()) return 0;

  // Validate each upload independently: decode failures, corruption, and
  // stale or duplicated deliveries cost that one message, never the round.
  AggregationInput input;
  input.client_ids.reserve(uploads.size());
  std::vector<std::vector<float>> rows;
  rows.reserve(uploads.size());
  // ψ_G (when it exists) pins the expected parameter count; before the
  // first aggregation the architecture pin (set_expected_params) applies,
  // and only when neither exists does the first valid upload define it.
  std::size_t p = global_model_.empty() ? expected_params_ : global_model_.size();
  for (const Message& m : uploads) {
    if (m.type != MessageType::kModelUpload) {
      ++stats_.rejected_type;
      PFRL_COUNT("fed/rejected_type", 1);
      PFRL_COUNT("fed/reject", 1);
      PFRL_LOG_WARN("FedServer: dropped non-upload message (type %d) from %d",
                    static_cast<int>(m.type), m.sender);
      continue;
    }
    if (!checksum_ok(m)) {
      ++stats_.rejected_checksum;
      PFRL_COUNT("fed/rejected_checksum", 1);
      PFRL_COUNT("fed/reject", 1);
      PFRL_LOG_WARN("FedServer: dropped corrupted upload from client %d (round %llu)", m.sender,
                    static_cast<unsigned long long>(m.round));
      continue;
    }
    if (m.round != round) {
      ++stats_.rejected_stale;
      PFRL_COUNT("fed/rejected_stale", 1);
      PFRL_COUNT("fed/reject", 1);
      PFRL_LOG_WARN("FedServer: dropped stale upload from client %d (round %llu, expected %llu)",
                    m.sender, static_cast<unsigned long long>(m.round),
                    static_cast<unsigned long long>(round));
      continue;
    }
    std::vector<float> row;
    try {
      util::ByteReader reader(m.payload);
      row = reader.read_f32_vector();
      if (!reader.exhausted()) throw std::out_of_range("trailing bytes");
    } catch (const std::exception& e) {
      ++stats_.rejected_malformed;
      PFRL_COUNT("fed/rejected_malformed", 1);
      PFRL_COUNT("fed/reject", 1);
      PFRL_LOG_WARN("FedServer: dropped malformed upload from client %d: %s", m.sender, e.what());
      continue;
    }
    if (row.empty() || (p != 0 && row.size() != p)) {
      ++stats_.rejected_size;
      PFRL_COUNT("fed/rejected_size", 1);
      PFRL_COUNT("fed/reject", 1);
      PFRL_LOG_WARN("FedServer: dropped mis-sized upload from client %d (%zu params, expected %zu)",
                    m.sender, row.size(), p);
      continue;
    }
    if (!all_finite(row)) {
      ++stats_.rejected_nonfinite;
      PFRL_COUNT("fed/rejected_nonfinite", 1);
      PFRL_COUNT("fed/reject", 1);
      PFRL_LOG_WARN("FedServer: dropped non-finite upload from client %d (diverged?)", m.sender);
      continue;
    }
    if (std::find(input.client_ids.begin(), input.client_ids.end(), m.sender) !=
        input.client_ids.end()) {
      ++stats_.rejected_duplicate;
      PFRL_COUNT("fed/rejected_duplicate", 1);
      PFRL_COUNT("fed/reject", 1);
      PFRL_LOG_WARN("FedServer: dropped duplicate upload from client %d (round %llu)", m.sender,
                    static_cast<unsigned long long>(m.round));
      continue;
    }
    if (p == 0) p = row.size();
    ++stats_.accepted;
    PFRL_COUNT("fed/uploads_accepted", 1);
    rows.push_back(std::move(row));
    input.client_ids.push_back(m.sender);
  }

  if (rows.size() < min_participants_) {
    // Quorum not met: skip aggregation, carry ψ_G forward, and answer
    // everyone with it so surviving clients do not go stale needlessly.
    ++stats_.quorum_failures;
    PFRL_COUNT("fed/quorum_failures", 1);
    PFRL_LOG_WARN("FedServer: round %llu below quorum (%zu valid < %zu); carrying psi_G forward",
                  static_cast<unsigned long long>(round), rows.size(), min_participants_);
    if (has_global_model()) {
      for (const std::size_t client : all_clients)
        bus.send_to_client(client, make_message(MessageType::kModelGlobal, -1, round,
                                                encode_model(global_model_)));
    }
    return 0;
  }

  input.models = nn::Matrix(rows.size(), p);
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::copy(rows[i].begin(), rows[i].end(), input.models.row(i).begin());

  AggregationOutput output = [&] {
    PFRL_SPAN("fed/aggregate");
    return aggregator_->aggregate(input);
  }();
  global_model_ = std::move(output.global_model);
  last_weights_ = std::move(output.weights);
  last_participants_ = input.client_ids;

  // Personalized models to participants (Algorithm 1 line 15's first arm).
  for (std::size_t i = 0; i < input.client_ids.size(); ++i)
    bus.send_to_client(static_cast<std::size_t>(input.client_ids[i]),
                       make_message(MessageType::kModelPersonalized, -1, round,
                                    encode_model(output.personalized[i])));

  // ψ_G to everyone else.
  for (const std::size_t client : all_clients) {
    const bool participated =
        std::find(input.client_ids.begin(), input.client_ids.end(), static_cast<int>(client)) !=
        input.client_ids.end();
    if (participated) continue;
    bus.send_to_client(client, make_message(MessageType::kModelGlobal, -1, round,
                                            encode_model(global_model_)));
  }
  return input.client_ids.size();
}

void FedServer::set_global_model(std::vector<float> model) {
  global_model_ = std::move(model);
  // The initial broadcast doubles as the defense's cosine baseline, so a
  // Byzantine upload is scoreable from the very first aggregation.
  if (robust_ != nullptr) robust_->set_reference(global_model_);
}

std::vector<std::uint8_t> FedServer::global_payload() const {
  if (!has_global_model()) throw std::logic_error("FedServer: no global model yet");
  return encode_model(global_model_);
}

void FedServer::save_state(util::ByteWriter& writer) const {
  writer.write_f32_span(global_model_);
  last_weights_.serialize(writer);
  writer.write_u64(last_participants_.size());
  for (const int id : last_participants_) writer.write_i64(id);
  writer.write_u64(stats_.accepted);
  writer.write_u64(stats_.rejected_type);
  writer.write_u64(stats_.rejected_checksum);
  writer.write_u64(stats_.rejected_stale);
  writer.write_u64(stats_.rejected_malformed);
  writer.write_u64(stats_.rejected_size);
  writer.write_u64(stats_.rejected_nonfinite);
  writer.write_u64(stats_.rejected_duplicate);
  writer.write_u64(stats_.quorum_failures);
  writer.write_u64(min_participants_);
  writer.write_u64(expected_params_);
  aggregator_->save_state(writer);
}

void FedServer::load_state(util::ByteReader& reader) {
  global_model_ = reader.read_f32_vector();
  last_weights_ = nn::Matrix::deserialize(reader);
  const std::uint64_t participant_count = reader.read_u64();
  last_participants_.clear();
  last_participants_.reserve(participant_count);
  for (std::uint64_t i = 0; i < participant_count; ++i)
    last_participants_.push_back(static_cast<int>(reader.read_i64()));
  stats_.accepted = reader.read_u64();
  stats_.rejected_type = reader.read_u64();
  stats_.rejected_checksum = reader.read_u64();
  stats_.rejected_stale = reader.read_u64();
  stats_.rejected_malformed = reader.read_u64();
  stats_.rejected_size = reader.read_u64();
  stats_.rejected_nonfinite = reader.read_u64();
  stats_.rejected_duplicate = reader.read_u64();
  stats_.quorum_failures = reader.read_u64();
  min_participants_ = static_cast<std::size_t>(reader.read_u64());
  expected_params_ = static_cast<std::size_t>(reader.read_u64());
  aggregator_->load_state(reader);
}

}  // namespace pfrl::fed
