#include "fed/server.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/serialization.hpp"

namespace pfrl::fed {

FedServer::FedServer(std::unique_ptr<Aggregator> aggregator)
    : aggregator_(std::move(aggregator)) {
  if (!aggregator_) throw std::invalid_argument("FedServer: null aggregator");
}

namespace {
std::vector<std::uint8_t> encode_model(std::span<const float> model) {
  util::ByteWriter writer;
  writer.write_f32_span(model);
  return writer.take();
}
}  // namespace

std::size_t FedServer::run_round(Bus& bus, std::uint64_t round,
                                 std::span<const std::size_t> all_clients) {
  const std::vector<Message> uploads = bus.drain_server();
  if (uploads.empty()) return 0;

  // Decode the K uploads into a K × P matrix (row order = arrival order).
  AggregationInput input;
  input.client_ids.reserve(uploads.size());
  std::vector<std::vector<float>> rows;
  rows.reserve(uploads.size());
  std::size_t p = 0;
  for (const Message& m : uploads) {
    if (m.type != MessageType::kModelUpload)
      throw std::invalid_argument("FedServer: unexpected message type in inbox");
    util::ByteReader reader(m.payload);
    rows.push_back(reader.read_f32_vector());
    if (p == 0) p = rows.back().size();
    if (rows.back().size() != p)
      throw std::invalid_argument("FedServer: clients uploaded differently sized models");
    input.client_ids.push_back(m.sender);
  }
  input.models = nn::Matrix(rows.size(), p);
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::copy(rows[i].begin(), rows[i].end(), input.models.row(i).begin());

  AggregationOutput output = aggregator_->aggregate(input);
  global_model_ = std::move(output.global_model);
  last_weights_ = std::move(output.weights);
  last_participants_ = input.client_ids;

  // Personalized models to participants (Algorithm 1 line 15's first arm).
  for (std::size_t i = 0; i < input.client_ids.size(); ++i) {
    Message reply;
    reply.type = MessageType::kModelPersonalized;
    reply.sender = -1;
    reply.round = round;
    reply.payload = encode_model(output.personalized[i]);
    bus.send_to_client(static_cast<std::size_t>(input.client_ids[i]), std::move(reply));
  }

  // ψ_G to everyone else.
  for (const std::size_t client : all_clients) {
    const bool participated =
        std::find(input.client_ids.begin(), input.client_ids.end(), static_cast<int>(client)) !=
        input.client_ids.end();
    if (participated) continue;
    Message reply;
    reply.type = MessageType::kModelGlobal;
    reply.sender = -1;
    reply.round = round;
    reply.payload = encode_model(global_model_);
    bus.send_to_client(client, std::move(reply));
  }
  return input.client_ids.size();
}

void FedServer::set_global_model(std::vector<float> model) { global_model_ = std::move(model); }

std::vector<std::uint8_t> FedServer::global_payload() const {
  if (!has_global_model()) throw std::logic_error("FedServer: no global model yet");
  return encode_model(global_model_);
}

}  // namespace pfrl::fed
