#include "fed/transport.hpp"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pfrl::fed {

std::chrono::milliseconds backoff_delay(const RetryPolicy& policy, std::uint32_t attempt,
                                        util::Rng& rng) {
  double delay = static_cast<double>(policy.base_backoff.count());
  for (std::uint32_t i = 0; i < attempt && delay < static_cast<double>(policy.max_backoff.count());
       ++i)
    delay *= 2.0;
  delay = std::min(delay, static_cast<double>(policy.max_backoff.count()));
  // Jitter draw happens unconditionally so the RNG stream advances the
  // same way regardless of the jitter amplitude — keeps runs comparable
  // when only the jitter fraction changes.
  const double noise = rng.uniform(-1.0, 1.0);
  delay *= 1.0 + policy.jitter * noise;
  return std::chrono::milliseconds(std::max<std::int64_t>(0, static_cast<std::int64_t>(delay)));
}

// --- Handshake codecs --------------------------------------------------

std::vector<std::uint8_t> encode_hello(const HelloPayload& hello) {
  util::ByteWriter writer;
  writer.write_u32(hello.protocol);
  writer.write_i64(hello.client_id);
  writer.write_u64(hello.arch_hash);
  writer.write_string(hello.algorithm);
  writer.write_u64(hello.resume_round);
  writer.write_bytes(hello.init_upload);
  return std::move(writer).take();
}

HelloPayload decode_hello(const std::vector<std::uint8_t>& payload) {
  util::ByteReader reader(payload);
  HelloPayload hello;
  hello.protocol = reader.read_u32();
  hello.client_id = reader.read_i64();
  hello.arch_hash = reader.read_u64();
  hello.algorithm = reader.read_string();
  hello.resume_round = reader.read_u64();
  hello.init_upload = reader.read_bytes();
  return hello;
}

std::vector<std::uint8_t> encode_welcome(const WelcomePayload& welcome) {
  util::ByteWriter writer;
  writer.write_u32(welcome.protocol);
  writer.write_u64(welcome.client_count);
  writer.write_u64(welcome.total_rounds);
  writer.write_u64(welcome.comm_every);
  writer.write_u64(welcome.participants_per_round);
  writer.write_u64(welcome.current_round);
  writer.write_u64(welcome.last_seq_seen);
  writer.write_bytes(welcome.global_model);
  return std::move(writer).take();
}

WelcomePayload decode_welcome(const std::vector<std::uint8_t>& payload) {
  util::ByteReader reader(payload);
  WelcomePayload welcome;
  welcome.protocol = reader.read_u32();
  welcome.client_count = reader.read_u64();
  welcome.total_rounds = reader.read_u64();
  welcome.comm_every = reader.read_u64();
  welcome.participants_per_round = reader.read_u64();
  welcome.current_round = reader.read_u64();
  welcome.last_seq_seen = reader.read_u64();
  welcome.global_model = reader.read_bytes();
  return welcome;
}

std::vector<std::uint8_t> encode_round_begin(const RoundBeginPayload& begin) {
  util::ByteWriter writer;
  writer.write_u64(begin.round);
  writer.write_bool(begin.participate);
  writer.write_u64(begin.episodes);
  return std::move(writer).take();
}

RoundBeginPayload decode_round_begin(const std::vector<std::uint8_t>& payload) {
  util::ByteReader reader(payload);
  RoundBeginPayload begin;
  begin.round = reader.read_u64();
  begin.participate = reader.read_bool();
  begin.episodes = reader.read_u64();
  return begin;
}

// --- Straggler-tolerant round collection -------------------------------

RoundCollection collect_round(ServerTransport& transport, std::uint64_t round,
                              const std::vector<std::size_t>& expected, std::size_t quorum,
                              std::chrono::milliseconds deadline,
                              std::chrono::milliseconds poll_tick) {
  PFRL_SPAN("net/round_collect");
  const auto started = std::chrono::steady_clock::now();
  const auto quorum_deadline = started + deadline;
  const std::unordered_set<std::size_t> expected_set(expected.begin(), expected.end());

  RoundCollection collection;
  std::unordered_set<std::size_t> arrived;  // distinct on-round senders
  while (true) {
    if (arrived.size() >= expected_set.size()) break;  // everyone reported
    const auto now = std::chrono::steady_clock::now();
    if (now >= quorum_deadline && arrived.size() >= quorum) {
      collection.closed_at_deadline = true;
      break;
    }
    auto message = transport.poll(poll_tick);
    if (!message) continue;
    if (message->type == MessageType::kModelUpload && message->round == round) {
      if (message->sender >= 0) arrived.insert(static_cast<std::size_t>(message->sender));
      collection.uploads.push_back(std::move(*message));
    } else {
      // Stale (laggard from an already-closed round) or otherwise
      // off-round traffic: hand it to the caller so FedServer's existing
      // staleness / reject counters see it.
      collection.late.push_back(std::move(*message));
    }
  }

  for (const std::size_t id : expected)
    if (!arrived.contains(id)) collection.missing.push_back(id);

  // Aggregation order must not depend on network arrival order: the
  // identical-history guarantee vs the in-process trainer needs uploads
  // sorted the way step_round posts them (by client index).
  std::stable_sort(collection.uploads.begin(), collection.uploads.end(),
                   [](const Message& a, const Message& b) { return a.sender < b.sender; });

  PFRL_COUNT("net/round_laggards", collection.missing.size());
  if (collection.closed_at_deadline) PFRL_COUNT("net/rounds_closed_at_deadline", 1);
  PFRL_HISTOGRAM_RECORD("net/round_latency_us",
                        std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - started)
                            .count());
  return collection;
}

// --- In-process Bus backend -------------------------------------------

BusClientTransport::BusClientTransport(Bus& bus, std::size_t client_id, TransportConfig config)
    : bus_(bus),
      client_id_(client_id),
      config_(config),
      jitter_rng_(config.jitter_seed ^ (0x9E3779B97F4A7C15ULL * (client_id + 1))),
      fault_rng_(config.inject_seed ^ (0xC0FFEEULL * (client_id + 1))),
      fail_budget_(config.inject_send_fail_count),
      duplicate_budget_(config.inject_send_duplicate_count) {}

bool BusClientTransport::send(const Message& message) {
  PFRL_SPAN("net/send");
  const std::scoped_lock lock(mutex_);
  ++stats_.sends;
  PFRL_COUNT("net/sends", 1);

  bool posted = false;
  for (std::uint32_t attempt = 0; attempt < config_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      PFRL_COUNT("net/retries", 1);
      std::this_thread::sleep_for(backoff_delay(config_.retry, attempt - 1, jitter_rng_));
    }
    ++stats_.send_attempts;

    if (posted) {
      // The previous attempt did deliver (injected duplicate): the wire
      // would now carry a second copy. Exactly-once for the in-process
      // bus means suppressing the repost here and counting the dedup.
      ++stats_.duplicates_dropped;
      PFRL_COUNT("net/duplicates_dropped", 1);
      return true;
    }

    bool fail_attempt = false;
    bool duplicate_attempt = false;
    if (fail_budget_ > 0) {
      --fail_budget_;
      fail_attempt = true;
    } else if (duplicate_budget_ > 0) {
      --duplicate_budget_;
      duplicate_attempt = true;
    } else if (config_.inject_drop_prob > 0.0 && fault_rng_.bernoulli(config_.inject_drop_prob)) {
      fail_attempt = true;
    } else if (config_.inject_duplicate_prob > 0.0 &&
               fault_rng_.bernoulli(config_.inject_duplicate_prob)) {
      duplicate_attempt = true;
    }
    if (config_.inject_delay_prob > 0.0 && fault_rng_.bernoulli(config_.inject_delay_prob))
      std::this_thread::sleep_for(config_.inject_delay);

    if (fail_attempt) {
      ++stats_.send_failures;
      PFRL_COUNT("net/send_failures", 1);
      continue;
    }

    bus_.send_to_server(message);
    stats_.bytes_sent += message.payload.size();
    posted = true;
    if (duplicate_attempt) {
      // Delivered, but the "ack" was lost: report failure so the retry
      // path runs and exercises the duplicate-suppression branch above.
      ++stats_.send_failures;
      PFRL_COUNT("net/send_failures", 1);
      continue;
    }
    return true;
  }
  if (posted) return true;  // budget ended on a delivered-but-unacked attempt
  ++stats_.give_ups;
  PFRL_COUNT("net/give_ups", 1);
  return false;
}

std::optional<Message> BusClientTransport::poll(std::chrono::milliseconds timeout) {
  {
    const std::scoped_lock lock(mutex_);
    if (!pending_.empty()) {
      Message m = std::move(pending_.front());
      pending_.pop_front();
      ++stats_.recv_messages;
      stats_.bytes_received += m.payload.size();
      return m;
    }
  }
  if (!bus_.wait_client(client_id_, timeout)) {
    const std::scoped_lock lock(mutex_);
    ++stats_.recv_timeouts;
    PFRL_COUNT("net/timeouts", 1);
    return std::nullopt;
  }
  const std::scoped_lock lock(mutex_);
  for (Message& m : bus_.drain_client(client_id_)) pending_.push_back(std::move(m));
  if (pending_.empty()) return std::nullopt;  // another poll won the race
  Message m = std::move(pending_.front());
  pending_.pop_front();
  ++stats_.recv_messages;
  stats_.bytes_received += m.payload.size();
  return m;
}

TransportStats BusClientTransport::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

BusServerTransport::BusServerTransport(Bus& bus, TransportConfig config)
    : bus_(bus), config_(config) {}

bool BusServerTransport::send(std::size_t client, const Message& message) {
  const std::scoped_lock lock(mutex_);
  ++stats_.sends;
  ++stats_.send_attempts;
  bus_.send_to_client(client, message);
  stats_.bytes_sent += message.payload.size();
  return true;
}

std::optional<Message> BusServerTransport::poll(std::chrono::milliseconds timeout) {
  {
    const std::scoped_lock lock(mutex_);
    if (!pending_.empty()) {
      Message m = std::move(pending_.front());
      pending_.pop_front();
      ++stats_.recv_messages;
      stats_.bytes_received += m.payload.size();
      return m;
    }
  }
  if (!bus_.wait_server(timeout)) {
    const std::scoped_lock lock(mutex_);
    ++stats_.recv_timeouts;
    return std::nullopt;
  }
  const std::scoped_lock lock(mutex_);
  for (Message& m : bus_.drain_server()) pending_.push_back(std::move(m));
  if (pending_.empty()) return std::nullopt;
  Message m = std::move(pending_.front());
  pending_.pop_front();
  ++stats_.recv_messages;
  stats_.bytes_received += m.payload.size();
  return m;
}

std::vector<std::size_t> BusServerTransport::live_clients() const {
  std::vector<std::size_t> all(bus_.client_count());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

TransportStats BusServerTransport::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace pfrl::fed
