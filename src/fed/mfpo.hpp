// MFPO-style momentum aggregation (Yue et al., INFOCOM'24) — the
// state-of-the-art FRL comparator in §5.
//
// The server maintains a momentum buffer over the averaged client update
// direction and applies it to the global model:
//     Δ^{(m)} = avg_k(θ_k) − θ_G^{(m)}
//     u^{(m+1)} = β u^{(m)} + (1 − β) Δ^{(m)}
//     θ_G^{(m+1)} = θ_G^{(m)} + η u^{(m+1)}
// Every client receives the same θ_G — there is no personalization, and
// the momentum "preserves the influence of past solutions", which is
// exactly the behaviour the paper observes in Fig. 15 (steady improvement
// that plateaus below PFRL-DM in heterogeneous environments).
#pragma once

#include <vector>

#include "fed/aggregator.hpp"

namespace pfrl::fed {

struct MfpoConfig {
  /// Momentum coefficient. The original paper trains for hundreds of
  /// rounds where a long memory pays off; at this repo's scaled-down
  /// round counts a heavy β lets stale directions dominate, so the
  /// default is moderate (β is not pinned by the paper's text).
  float beta = 0.4F;
  float server_lr = 1.0F;  // η applied to the momentum step
};

class MfpoAggregator final : public Aggregator {
 public:
  explicit MfpoAggregator(MfpoConfig config = {});

  AggregationOutput aggregate(const AggregationInput& input) override;
  std::string name() const override { return "mfpo"; }

  /// θ_G and the momentum buffer u — without them a resumed MFPO run
  /// would re-warm momentum from zero and diverge from the original.
  void save_state(util::ByteWriter& writer) const override {
    writer.write_f32_span(global_);
    writer.write_f32_span(momentum_);
  }
  void load_state(util::ByteReader& reader) override {
    global_ = reader.read_f32_vector();
    momentum_ = reader.read_f32_vector();
  }

  const std::vector<float>& momentum() const { return momentum_; }

 private:
  MfpoConfig config_;
  std::vector<float> global_;    // θ_G (empty until the first round)
  std::vector<float> momentum_;  // u
};

}  // namespace pfrl::fed
