#include "fed/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/logging.hpp"

namespace pfrl::fed {

std::vector<double> TrainingHistory::mean_reward_curve() const {
  std::size_t max_len = 0;
  for (const ClientHistory& c : clients)
    max_len = std::max(max_len, c.joined_at_episode + c.episode_rewards.size());
  std::vector<double> curve(max_len, 0.0);
  std::vector<std::size_t> counts(max_len, 0);
  for (const ClientHistory& c : clients) {
    for (std::size_t e = 0; e < c.episode_rewards.size(); ++e) {
      curve[c.joined_at_episode + e] += c.episode_rewards[e];
      ++counts[c.joined_at_episode + e];
    }
  }
  for (std::size_t e = 0; e < curve.size(); ++e)
    if (counts[e] > 0) curve[e] /= static_cast<double>(counts[e]);
  return curve;
}

FedTrainer::FedTrainer(FedTrainerConfig config, std::unique_ptr<Aggregator> aggregator,
                       std::vector<std::unique_ptr<FedClient>> clients)
    : config_(config),
      server_(aggregator ? std::make_unique<FedServer>(std::move(aggregator)) : nullptr),
      clients_(std::move(clients)),
      bus_(clients_.size()),
      rng_(config.seed),
      pool_(config.threads) {
  if (clients_.empty()) throw std::invalid_argument("FedTrainer: no clients");
  if (config_.comm_every == 0) throw std::invalid_argument("FedTrainer: comm_every must be > 0");
  history_.clients.resize(clients_.size());

  if (communication_enabled() && config_.sync_initial_model) {
    // Every client starts from client 0's shared parameters, which also
    // seeds ψ_G on the server (Algorithm 1's ψ_G^{(0)}).
    const std::vector<std::uint8_t> init = clients_.front()->make_upload();
    util::ByteReader reader(init);
    server_->set_global_model(reader.read_f32_vector());
    for (std::size_t i = 1; i < clients_.size(); ++i) clients_[i]->apply_download(init);
  }
}

bool FedTrainer::communication_enabled() const {
  return server_ != nullptr &&
         clients_.front()->algorithm() != FedAlgorithm::kIndependent;
}

std::vector<std::size_t> FedTrainer::pick_participants() {
  std::vector<std::size_t> all(clients_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const std::size_t k = config_.participants_per_round;
  if (k == 0 || k >= clients_.size()) return all;
  rng_.shuffle(all);
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

void FedTrainer::step_round() {
  // --- Local training: "for each client n in parallel" (Algorithm 1). ---
  const std::size_t episodes = config_.comm_every;
  pool_.parallel_for(clients_.size(), [&](std::size_t i) {
    const std::vector<rl::EpisodeStats> stats = clients_[i]->train_episodes(episodes);
    ClientHistory& h = history_.clients[i];
    for (const rl::EpisodeStats& s : stats) {
      h.episode_rewards.push_back(s.total_reward);
      h.episode_metrics.push_back(s.metrics);
    }
  });
  episodes_done_ += episodes;

  if (!communication_enabled()) return;

  // --- Upload phase (participants only). ---
  const std::vector<std::size_t> participants = pick_participants();
  for (const std::size_t i : participants) {
    Message m;
    m.type = MessageType::kModelUpload;
    m.sender = clients_[i]->id();
    m.round = round_index_;
    m.payload = clients_[i]->make_upload();
    bus_.send_to_server(std::move(m));
  }

  // Critic evaluation before the new model lands (Fig. 9, "before").
  for (std::size_t i = 0; i < clients_.size(); ++i)
    history_.clients[i].critic_loss_before.push_back(clients_[i]->shared_critic_loss());

  // --- Server aggregation + distribution. ---
  std::vector<std::size_t> all(clients_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  server_->run_round(bus_, round_index_, all);

  // --- Download phase. ---
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    for (const Message& m : bus_.drain_client(i)) clients_[i]->apply_download(m.payload);
    history_.clients[i].critic_loss_after.push_back(clients_[i]->shared_critic_loss());
  }

  ++round_index_;
  ++history_.rounds;
}

TrainingHistory FedTrainer::run() {
  while (episodes_done_ < config_.total_episodes) step_round();
  return snapshot_history();
}

std::size_t FedTrainer::add_client(std::unique_ptr<FedClient> client) {
  clients_.push_back(std::move(client));
  bus_.add_client();
  ClientHistory h;
  h.joined_at_episode = episodes_done_;
  history_.clients.push_back(std::move(h));
  const std::size_t index = clients_.size() - 1;
  if (communication_enabled() && server_->has_global_model())
    clients_[index]->apply_download(server_->global_payload());
  return index;
}

TrainingHistory FedTrainer::snapshot_history() const {
  TrainingHistory h = history_;
  h.uplink_bytes = bus_.uplink_bytes();
  h.downlink_bytes = bus_.downlink_bytes();
  return h;
}

}  // namespace pfrl::fed
