#include "fed/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace pfrl::fed {

std::vector<double> TrainingHistory::mean_reward_curve() const {
  std::size_t max_len = 0;
  for (const ClientHistory& c : clients)
    max_len = std::max(max_len, c.joined_at_episode + c.episode_rewards.size());
  std::vector<double> curve(max_len, 0.0);
  std::vector<std::size_t> counts(max_len, 0);
  for (const ClientHistory& c : clients) {
    for (std::size_t e = 0; e < c.episode_rewards.size(); ++e) {
      curve[c.joined_at_episode + e] += c.episode_rewards[e];
      ++counts[c.joined_at_episode + e];
    }
  }
  for (std::size_t e = 0; e < curve.size(); ++e)
    if (counts[e] > 0) curve[e] /= static_cast<double>(counts[e]);
  return curve;
}

namespace {
std::unique_ptr<Bus> make_bus(std::size_t clients, const FaultPlan& plan) {
  if (plan.enabled()) return std::make_unique<FaultyBus>(clients, plan);
  return std::make_unique<Bus>(clients);
}
}  // namespace

FedTrainer::FedTrainer(FedTrainerConfig config, std::unique_ptr<Aggregator> aggregator,
                       std::vector<std::unique_ptr<FedClient>> clients)
    : config_(std::move(config)),
      server_(aggregator ? std::make_unique<FedServer>(std::move(aggregator)) : nullptr),
      clients_(std::move(clients)),
      bus_(make_bus(clients_.size(), config_.faults)),
      rng_(config_.seed),
      pool_(config_.threads) {
  if (clients_.empty()) throw std::invalid_argument("FedTrainer: no clients");
  if (config_.comm_every == 0) throw std::invalid_argument("FedTrainer: comm_every must be > 0");
  faulty_bus_ = dynamic_cast<FaultyBus*>(bus_.get());
  if (server_) server_->set_min_participants(config_.min_participants);
  history_.clients.resize(clients_.size());

  if (communication_enabled() && config_.sync_initial_model) {
    // Every client starts from client 0's shared parameters, which also
    // seeds ψ_G on the server (Algorithm 1's ψ_G^{(0)}).
    const std::vector<std::uint8_t> init = clients_.front()->make_upload();
    util::ByteReader reader(init);
    server_->set_global_model(reader.read_f32_vector());
    for (std::size_t i = 1; i < clients_.size(); ++i) clients_[i]->apply_download(init);
  }
}

bool FedTrainer::communication_enabled() const {
  return server_ != nullptr &&
         clients_.front()->algorithm() != FedAlgorithm::kIndependent;
}

std::vector<std::size_t> FedTrainer::pick_participants() {
  std::vector<std::size_t> all(clients_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const std::size_t k = config_.participants_per_round;
  if (k == 0 || k >= clients_.size()) return all;
  rng_.shuffle(all);
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

void FedTrainer::step_round() {
  PFRL_SPAN("fed/round");
  const util::Stopwatch round_clock;
  if (faulty_bus_) faulty_bus_->begin_round(round_index_);

  // Clients inside a crash window sit the whole round out: no local
  // training, no upload, and FaultyBus blackholes their downloads.
  std::vector<char> crashed(clients_.size(), 0);
  for (std::size_t i = 0; i < clients_.size(); ++i)
    if (config_.faults.crashed(i, round_index_)) {
      crashed[i] = 1;
      ++history_.clients[i].rounds_crashed;
    }

  // --- Local training: "for each client n in parallel" (Algorithm 1). ---
  const std::size_t episodes = config_.comm_every;
  {
    PFRL_SPAN("fed/local_training");
    pool_.parallel_for(clients_.size(), [&](std::size_t i) {
      if (crashed[i]) return;
      const std::vector<rl::EpisodeStats> stats = clients_[i]->train_episodes(episodes);
      ClientHistory& h = history_.clients[i];
      for (const rl::EpisodeStats& s : stats) {
        h.episode_rewards.push_back(s.total_reward);
        h.episode_metrics.push_back(s.metrics);
      }
    });
  }
  episodes_done_ += episodes;
  PFRL_GAUGE_SET("util/pool_peak_queue_depth", pool_.peak_queue_depth());
  PFRL_GAUGE_SET("util/pool_inflight", pool_.inflight());

  if (!communication_enabled()) {
    ++round_index_;
    PFRL_HISTOGRAM_RECORD("fed/round_latency_us", round_clock.seconds() * 1e6);
    return;
  }

  // --- Upload phase (participants only). ---
  const std::vector<std::size_t> participants = pick_participants();
  for (const std::size_t i : participants) {
    if (crashed[i]) continue;
    bus_->send_to_server(make_message(MessageType::kModelUpload, clients_[i]->id(),
                                      round_index_, clients_[i]->make_upload()));
    ++history_.clients[i].uploads_sent;
  }

  // Critic evaluation before the new model lands (Fig. 9, "before").
  for (std::size_t i = 0; i < clients_.size(); ++i)
    history_.clients[i].critic_loss_before.push_back(clients_[i]->shared_critic_loss());

  // --- Server aggregation + distribution. ---
  std::vector<std::size_t> all(clients_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  server_->run_round(*bus_, round_index_, all);

  // --- Download phase. A missing or invalid download leaves the previous
  // model in place; the client keeps training on it (stale) and Eq. 15's
  // α down-weights the public critic as its loss drifts. ---
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    ClientHistory& h = history_.clients[i];
    bool applied = false;
    std::string reason;
    for (const Message& m : bus_->drain_client(i)) {
      if (clients_[i]->try_apply_download(m, &reason)) {
        applied = true;
        ++h.downloads_applied;
        PFRL_COUNT("fed/downloads_applied", 1);
      } else {
        ++h.downloads_rejected;
        PFRL_COUNT("fed/downloads_rejected", 1);
        PFRL_LOG_WARN("FedTrainer: client %zu rejected download (round %llu): %s", i,
                      static_cast<unsigned long long>(round_index_), reason.c_str());
      }
    }
    if (applied) {
      h.staleness = 0;
    } else {
      ++h.staleness;
      h.max_staleness = std::max(h.max_staleness, h.staleness);
    }
    history_.clients[i].critic_loss_after.push_back(clients_[i]->shared_critic_loss());
  }

  ++round_index_;
  ++history_.rounds;

  PFRL_HISTOGRAM_RECORD("fed/round_latency_us", round_clock.seconds() * 1e6);
  if (obs::enabled()) {
    PFRL_GAUGE_SET("fed/uplink_bytes", bus_->uplink_bytes());
    PFRL_GAUGE_SET("fed/downlink_bytes", bus_->downlink_bytes());
    std::size_t max_staleness = 0;
    for (const ClientHistory& h : history_.clients)
      max_staleness = std::max(max_staleness, h.staleness);
    PFRL_GAUGE_SET("fed/client_staleness_max", max_staleness);
  }
}

TrainingHistory FedTrainer::run() {
  while (episodes_done_ < config_.total_episodes) step_round();
  return snapshot_history();
}

std::size_t FedTrainer::add_client(std::unique_ptr<FedClient> client) {
  clients_.push_back(std::move(client));
  bus_->add_client();
  ClientHistory h;
  h.joined_at_episode = episodes_done_;
  history_.clients.push_back(std::move(h));
  const std::size_t index = clients_.size() - 1;
  if (communication_enabled() && server_->has_global_model())
    clients_[index]->apply_download(server_->global_payload());
  return index;
}

TrainingHistory FedTrainer::snapshot_history() const {
  TrainingHistory h = history_;
  h.uplink_bytes = bus_->uplink_bytes();
  h.downlink_bytes = bus_->downlink_bytes();
  if (faulty_bus_) h.faults = faulty_bus_->counters();
  if (server_) h.server = server_->stats();
  return h;
}

}  // namespace pfrl::fed
