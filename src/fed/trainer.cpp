#include "fed/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace pfrl::fed {

std::vector<double> TrainingHistory::mean_reward_curve() const {
  std::size_t max_len = 0;
  for (const ClientHistory& c : clients)
    max_len = std::max(max_len, c.joined_at_episode + c.episode_rewards.size());
  std::vector<double> curve(max_len, 0.0);
  std::vector<std::size_t> counts(max_len, 0);
  for (const ClientHistory& c : clients) {
    for (std::size_t e = 0; e < c.episode_rewards.size(); ++e) {
      curve[c.joined_at_episode + e] += c.episode_rewards[e];
      ++counts[c.joined_at_episode + e];
    }
  }
  for (std::size_t e = 0; e < curve.size(); ++e)
    if (counts[e] > 0) curve[e] /= static_cast<double>(counts[e]);
  return curve;
}

namespace {

std::unique_ptr<Bus> make_bus(std::size_t clients, const FaultPlan& plan) {
  if (plan.enabled()) return std::make_unique<FaultyBus>(clients, plan);
  return std::make_unique<Bus>(clients);
}

void append_double_array(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    obs::json_number_append(out, values[i]);
  }
  out += ']';
}

}  // namespace

std::string client_history_json(const ClientHistory& c) {
  std::string out;
  out.reserve(1024);
  out += "{\"joined_at_episode\":" + std::to_string(c.joined_at_episode);
  out += ",\"uploads_sent\":" + std::to_string(c.uploads_sent);
  out += ",\"downloads_applied\":" + std::to_string(c.downloads_applied);
  out += ",\"downloads_rejected\":" + std::to_string(c.downloads_rejected);
  out += ",\"rounds_crashed\":" + std::to_string(c.rounds_crashed);
  out += ",\"max_staleness\":" + std::to_string(c.max_staleness);
  out += ",\"episode_rewards\":";
  append_double_array(out, c.episode_rewards);
  out += ",\"critic_loss_before\":";
  append_double_array(out, c.critic_loss_before);
  out += ",\"critic_loss_after\":";
  append_double_array(out, c.critic_loss_after);
  out += ",\"round_diagnostics\":[";
  for (std::size_t r = 0; r < c.round_diagnostics.size(); ++r) {
    const rl::UpdateDiagnostics& d = c.round_diagnostics[r];
    out += r == 0 ? "{" : ",{";
    out += "\"entropy\":";
    obs::json_number_append(out, d.policy_entropy);
    out += ",\"approx_kl\":";
    obs::json_number_append(out, d.approx_kl);
    out += ",\"clip_fraction\":";
    obs::json_number_append(out, d.clip_fraction);
    out += ",\"explained_variance\":";
    obs::json_number_append(out, d.explained_variance);
    out += ",\"policy_grad_norm\":";
    obs::json_number_append(out, d.policy_grad_norm);
    out += ",\"critic_grad_norm\":";
    obs::json_number_append(out, d.critic_grad_norm);
    out += ",\"alpha\":";
    obs::json_number_append(out, d.alpha);
    out += ",\"local_critic_loss\":";
    obs::json_number_append(out, d.local_critic_loss);
    out += ",\"public_critic_loss\":";
    obs::json_number_append(out, d.public_critic_loss);
    out += "}";
  }
  out += "]}";
  return out;
}

void record_training_round(ClientHistory& h, const std::vector<rl::EpisodeStats>& stats) {
  rl::UpdateDiagnostics mean;
  mean.alpha = 0.0;  // accumulate from zero (the struct defaults to 1)
  for (const rl::EpisodeStats& s : stats) {
    h.episode_rewards.push_back(s.total_reward);
    h.episode_metrics.push_back(s.metrics);
    mean.policy_entropy += s.update.policy_entropy;
    mean.approx_kl += s.update.approx_kl;
    mean.clip_fraction += s.update.clip_fraction;
    mean.explained_variance += s.update.explained_variance;
    mean.policy_grad_norm += s.update.policy_grad_norm;
    mean.critic_grad_norm += s.update.critic_grad_norm;
    mean.alpha += s.update.alpha;
    mean.local_critic_loss += s.update.local_critic_loss;
    mean.public_critic_loss += s.update.public_critic_loss;
  }
  if (!stats.empty()) {
    const double inv = 1.0 / static_cast<double>(stats.size());
    mean.policy_entropy *= inv;
    mean.approx_kl *= inv;
    mean.clip_fraction *= inv;
    mean.explained_variance *= inv;
    mean.policy_grad_norm *= inv;
    mean.critic_grad_norm *= inv;
    mean.alpha *= inv;
    mean.local_critic_loss *= inv;
    mean.public_critic_loss *= inv;
  }
  h.round_diagnostics.push_back(mean);
}

std::string training_history_json(const TrainingHistory& history) {
  std::string out;
  out.reserve(4096);
  out += "{\"rounds\":" + std::to_string(history.rounds);
  out += ",\"uplink_bytes\":" + std::to_string(history.uplink_bytes);
  out += ",\"downlink_bytes\":" + std::to_string(history.downlink_bytes);
  out += ",\"faults\":{\"uplink_dropped\":" + std::to_string(history.faults.uplink_dropped);
  out += ",\"downlink_dropped\":" + std::to_string(history.faults.downlink_dropped);
  out += ",\"uplink_corrupted\":" + std::to_string(history.faults.uplink_corrupted);
  out += ",\"downlink_corrupted\":" + std::to_string(history.faults.downlink_corrupted);
  out += ",\"duplicated\":" + std::to_string(history.faults.duplicated);
  out += ",\"delayed\":" + std::to_string(history.faults.delayed);
  out += ",\"crash_suppressed\":" + std::to_string(history.faults.crash_suppressed);
  out += ",\"attacked\":" + std::to_string(history.faults.attacked) + "}";
  out += ",\"server\":{\"accepted\":" + std::to_string(history.server.accepted);
  out += ",\"rejected\":" + std::to_string(history.server.total_rejected());
  out += ",\"rejected_nonfinite\":" + std::to_string(history.server.rejected_nonfinite);
  out += ",\"quorum_failures\":" + std::to_string(history.server.quorum_failures) + "}";
  out += ",\"defense\":{\"active\":" + std::string(history.defense_active ? "true" : "false");
  out += ",\"rounds_scored\":" + std::to_string(history.defense.rounds_scored);
  out += ",\"anomalies\":" + std::to_string(history.defense.anomalies);
  out += ",\"clipped\":" + std::to_string(history.defense.clipped);
  out += ",\"excluded\":" + std::to_string(history.defense.excluded);
  out += ",\"quarantine_events\":" + std::to_string(history.defense.quarantine_events);
  out += ",\"readmissions\":" + std::to_string(history.defense.readmissions);
  out += ",\"first_anomaly_round\":" + std::to_string(history.defense.first_anomaly_round);
  out += ",\"reputation\":[";
  for (std::size_t i = 0; i < history.reputation.size(); ++i) {
    const ClientReputation& r = history.reputation[i];
    out += i == 0 ? "{" : ",{";
    out += "\"client\":" + std::to_string(r.client_id);
    out += ",\"score\":";
    obs::json_number_append(out, r.score);
    out += ",\"quarantined\":" + std::string(r.quarantined ? "true" : "false");
    out += ",\"flagged_rounds\":" + std::to_string(r.flagged_rounds) + "}";
  }
  out += "]}";
  out += ",\"mean_reward_curve\":";
  append_double_array(out, history.mean_reward_curve());
  out += ",\"clients\":[";
  for (std::size_t i = 0; i < history.clients.size(); ++i) {
    if (i != 0) out += ',';
    out += client_history_json(history.clients[i]);
  }
  out += "],\"attention_rounds\":[";
  for (std::size_t i = 0; i < history.attention_rounds.size(); ++i) {
    const AttentionRoundRecord& rec = history.attention_rounds[i];
    out += i == 0 ? "{" : ",{";
    out += "\"round\":" + std::to_string(rec.round);
    out += ",\"participants\":[";
    for (std::size_t p = 0; p < rec.participants.size(); ++p) {
      if (p != 0) out += ',';
      out += std::to_string(rec.participants[p]);
    }
    out += "],\"weights\":[";
    for (std::size_t r = 0; r < rec.weights.rows(); ++r) {
      out += r == 0 ? "[" : ",[";
      for (std::size_t col = 0; col < rec.weights.cols(); ++col) {
        if (col != 0) out += ',';
        obs::json_number_append(out, rec.weights(r, col));
      }
      out += "]";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

FedTrainer::FedTrainer(FedTrainerConfig config, std::unique_ptr<Aggregator> aggregator,
                       std::vector<std::unique_ptr<FedClient>> clients)
    : config_(std::move(config)),
      server_(aggregator ? std::make_unique<FedServer>(std::move(aggregator)) : nullptr),
      clients_(std::move(clients)),
      bus_(make_bus(clients_.size(), config_.faults)),
      rng_(config_.seed),
      pool_(config_.threads) {
  if (clients_.empty()) throw std::invalid_argument("FedTrainer: no clients");
  if (config_.comm_every == 0) throw std::invalid_argument("FedTrainer: comm_every must be > 0");
  faulty_bus_ = dynamic_cast<FaultyBus*>(bus_.get());
  if (server_) server_->set_min_participants(config_.min_participants);
  history_.clients.resize(clients_.size());

  if (communication_enabled() && config_.sync_initial_model) {
    // Every client starts from client 0's shared parameters, which also
    // seeds ψ_G on the server (Algorithm 1's ψ_G^{(0)}) and pins the
    // architecture's parameter count for upload validation.
    const std::vector<std::uint8_t> init = clients_.front()->make_upload();
    util::ByteReader reader(init);
    server_->set_global_model(reader.read_f32_vector());
    server_->set_expected_params(server_->global_model().size());
    for (std::size_t i = 1; i < clients_.size(); ++i) clients_[i]->apply_download(init);
  }
}

bool FedTrainer::communication_enabled() const {
  return server_ != nullptr &&
         clients_.front()->algorithm() != FedAlgorithm::kIndependent;
}

std::vector<std::size_t> FedTrainer::pick_participants() {
  std::vector<std::size_t> all(clients_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const std::size_t k = config_.participants_per_round;
  if (k == 0 || k >= clients_.size()) return all;
  rng_.shuffle(all);
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

void FedTrainer::step_round() {
  PFRL_SPAN("fed/round");
  const util::Stopwatch round_clock;
  if (faulty_bus_) faulty_bus_->begin_round(round_index_);

  // Clients inside a crash window sit the whole round out: no local
  // training, no upload, and FaultyBus blackholes their downloads.
  std::vector<char> crashed(clients_.size(), 0);
  for (std::size_t i = 0; i < clients_.size(); ++i)
    if (config_.faults.crashed(i, round_index_)) {
      crashed[i] = 1;
      ++history_.clients[i].rounds_crashed;
      // Keep round_diagnostics aligned with the round counter: a crashed
      // round contributes a default entry (the watchdog skips it).
      history_.clients[i].round_diagnostics.emplace_back();
    }

  // --- Local training: "for each client n in parallel" (Algorithm 1). ---
  const std::size_t episodes = config_.comm_every;
  {
    PFRL_SPAN("fed/local_training");
    pool_.parallel_for(clients_.size(), [&](std::size_t i) {
      if (crashed[i]) return;
      record_training_round(history_.clients[i], clients_[i]->train_episodes(episodes));
    });
  }
  episodes_done_ += episodes;
  PFRL_GAUGE_SET("util/pool_peak_queue_depth", pool_.peak_queue_depth());
  PFRL_GAUGE_SET("util/pool_inflight", pool_.inflight());

  if (!communication_enabled()) {
    emit_round_event(round_index_, crashed, episodes);
    ++round_index_;
    PFRL_HISTOGRAM_RECORD("fed/round_latency_us", round_clock.seconds() * 1e6);
    return;
  }

  // --- Upload phase (participants only). ---
  const std::vector<std::size_t> participants = pick_participants();
  for (const std::size_t i : participants) {
    if (crashed[i]) continue;
    bus_->send_to_server(make_message(MessageType::kModelUpload, clients_[i]->id(),
                                      round_index_, clients_[i]->make_upload()));
    ++history_.clients[i].uploads_sent;
  }

  // Critic evaluation before the new model lands (Fig. 9, "before").
  for (std::size_t i = 0; i < clients_.size(); ++i)
    history_.clients[i].critic_loss_before.push_back(clients_[i]->shared_critic_loss());

  // --- Server aggregation + distribution. ---
  std::vector<std::size_t> all(clients_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  server_->run_round(*bus_, round_index_, all);

  // Attention-based aggregators expose the round's weight matrix; keep it
  // per round so reports can plot attention trajectories (Fig. 10-style).
  if (server_->last_weights().rows() > 0) {
    AttentionRoundRecord rec;
    rec.round = round_index_;
    rec.participants = server_->last_participants();
    rec.weights = server_->last_weights();
    history_.attention_rounds.push_back(std::move(rec));
  }

  // --- Download phase. A missing or invalid download leaves the previous
  // model in place; the client keeps training on it (stale) and Eq. 15's
  // α down-weights the public critic as its loss drifts. ---
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    ClientHistory& h = history_.clients[i];
    bool applied = false;
    std::string reason;
    for (const Message& m : bus_->drain_client(i)) {
      if (clients_[i]->try_apply_download(m, &reason)) {
        applied = true;
        ++h.downloads_applied;
        PFRL_COUNT("fed/downloads_applied", 1);
      } else {
        ++h.downloads_rejected;
        PFRL_COUNT("fed/downloads_rejected", 1);
        PFRL_LOG_WARN("FedTrainer: client %zu rejected download (round %llu): %s", i,
                      static_cast<unsigned long long>(round_index_), reason.c_str());
      }
    }
    if (applied) {
      h.staleness = 0;
    } else {
      ++h.staleness;
      h.max_staleness = std::max(h.max_staleness, h.staleness);
    }
    history_.clients[i].critic_loss_after.push_back(clients_[i]->shared_critic_loss());
  }

  emit_round_event(round_index_, crashed, episodes);
  ++round_index_;
  ++history_.rounds;

  PFRL_HISTOGRAM_RECORD("fed/round_latency_us", round_clock.seconds() * 1e6);
  if (obs::enabled()) {
    PFRL_GAUGE_SET("fed/uplink_bytes", bus_->uplink_bytes());
    PFRL_GAUGE_SET("fed/downlink_bytes", bus_->downlink_bytes());
    std::size_t max_staleness = 0;
    for (const ClientHistory& h : history_.clients)
      max_staleness = std::max(max_staleness, h.staleness);
    PFRL_GAUGE_SET("fed/client_staleness_max", max_staleness);
  }
}

TrainingHistory FedTrainer::run() {
  while (episodes_done_ < config_.total_episodes) {
    step_round();
    const bool finished = episodes_done_ >= config_.total_episodes;
    const bool abort_requested = reporter_ != nullptr && reporter_->abort_requested();
    const bool stop_requested =
        stop_flag_ != nullptr && stop_flag_->load(std::memory_order_relaxed);
    const bool periodic = config_.checkpoint_every_n_rounds > 0 &&
                          round_index_ % config_.checkpoint_every_n_rounds == 0;
    if (checkpoint_sink_ && (periodic || finished || abort_requested || stop_requested))
      checkpoint_sink_(*this, round_index_);
    if (abort_requested) {
      PFRL_LOG_WARN("FedTrainer: watchdog requested abort after round %llu; stopping",
                    static_cast<unsigned long long>(round_index_));
      break;
    }
    if (stop_requested) {
      PFRL_LOG_WARN("FedTrainer: stop requested; checkpointed at round %llu and stopping",
                    static_cast<unsigned long long>(round_index_));
      break;
    }
  }
  return snapshot_history();
}

void FedTrainer::emit_round_event(std::uint64_t round, const std::vector<char>& crashed,
                                  std::size_t episodes_this_round) {
  if (!reporter_) return;
  const bool comm = communication_enabled();
  obs::LearningRoundEvent event;
  event.round = round;
  event.episodes_done = episodes_done_;
  event.clients.reserve(clients_.size());
  const AttentionRoundRecord* attention = nullptr;
  if (comm && !history_.attention_rounds.empty() &&
      history_.attention_rounds.back().round == round)
    attention = &history_.attention_rounds.back();
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const ClientHistory& h = history_.clients[i];
    obs::ClientRoundDiagnostics c;
    c.id = clients_[i]->id();
    c.crashed = crashed[i] != 0;
    c.episodes = c.crashed ? 0 : episodes_this_round;
    if (c.episodes > 0) {
      const std::size_t n = std::min(c.episodes, h.episode_rewards.size());
      double sum = 0.0;
      for (std::size_t e = h.episode_rewards.size() - n; e < h.episode_rewards.size(); ++e)
        sum += h.episode_rewards[e];
      c.mean_reward = n > 0 ? sum / static_cast<double>(n) : 0.0;
    }
    if (!h.round_diagnostics.empty()) {
      const rl::UpdateDiagnostics& d = h.round_diagnostics.back();
      c.policy_entropy = d.policy_entropy;
      c.approx_kl = d.approx_kl;
      c.clip_fraction = d.clip_fraction;
      c.explained_variance = d.explained_variance;
      c.policy_grad_norm = d.policy_grad_norm;
      c.critic_grad_norm = d.critic_grad_norm;
      c.alpha = d.alpha;
      c.local_critic_loss = d.local_critic_loss;
      c.public_critic_loss = d.public_critic_loss;
    }
    if (comm && !h.critic_loss_before.empty()) c.critic_loss_before = h.critic_loss_before.back();
    if (comm && !h.critic_loss_after.empty()) c.critic_loss_after = h.critic_loss_after.back();
    c.staleness = h.staleness;
    if (attention != nullptr) {
      for (std::size_t r = 0; r < attention->participants.size(); ++r) {
        if (attention->participants[r] != c.id) continue;
        c.attention_row.reserve(attention->participants.size());
        for (std::size_t col = 0; col < attention->participants.size(); ++col)
          c.attention_row.push_back(attention->weights(r, col));
        break;
      }
    }
    event.clients.push_back(std::move(c));
  }
  reporter_->record_round(event);
}

std::size_t FedTrainer::add_client(std::unique_ptr<FedClient> client) {
  clients_.push_back(std::move(client));
  bus_->add_client();
  ClientHistory h;
  h.joined_at_episode = episodes_done_;
  history_.clients.push_back(std::move(h));
  const std::size_t index = clients_.size() - 1;
  if (communication_enabled() && server_->has_global_model())
    clients_[index]->apply_download(server_->global_payload());
  return index;
}

void serialize_client_history(const ClientHistory& h, util::ByteWriter& writer) {
  writer.write_f64_span(h.episode_rewards);
  writer.write_u64(h.episode_metrics.size());
  for (const sim::EpisodeMetrics& m : h.episode_metrics) m.serialize(writer);
  writer.write_f64_span(h.critic_loss_before);
  writer.write_f64_span(h.critic_loss_after);
  writer.write_u64(h.round_diagnostics.size());
  for (const rl::UpdateDiagnostics& d : h.round_diagnostics) d.serialize(writer);
  writer.write_u64(h.joined_at_episode);
  writer.write_u64(h.uploads_sent);
  writer.write_u64(h.downloads_applied);
  writer.write_u64(h.downloads_rejected);
  writer.write_u64(h.rounds_crashed);
  writer.write_u64(h.staleness);
  writer.write_u64(h.max_staleness);
}

ClientHistory deserialize_client_history(util::ByteReader& reader) {
  ClientHistory h;
  h.episode_rewards = reader.read_f64_vector();
  const std::uint64_t metric_count = reader.read_u64();
  h.episode_metrics.reserve(metric_count);
  for (std::uint64_t i = 0; i < metric_count; ++i)
    h.episode_metrics.push_back(sim::EpisodeMetrics::deserialize(reader));
  h.critic_loss_before = reader.read_f64_vector();
  h.critic_loss_after = reader.read_f64_vector();
  const std::uint64_t diag_count = reader.read_u64();
  h.round_diagnostics.reserve(diag_count);
  for (std::uint64_t i = 0; i < diag_count; ++i)
    h.round_diagnostics.push_back(rl::UpdateDiagnostics::deserialize(reader));
  h.joined_at_episode = static_cast<std::size_t>(reader.read_u64());
  h.uploads_sent = static_cast<std::size_t>(reader.read_u64());
  h.downloads_applied = static_cast<std::size_t>(reader.read_u64());
  h.downloads_rejected = static_cast<std::size_t>(reader.read_u64());
  h.rounds_crashed = static_cast<std::size_t>(reader.read_u64());
  h.staleness = static_cast<std::size_t>(reader.read_u64());
  h.max_staleness = static_cast<std::size_t>(reader.read_u64());
  return h;
}

void FedTrainer::serialize_state(util::ByteWriter& writer) const {
  writer.write_u64(round_index_);
  writer.write_u64(episodes_done_);
  rng_.state().serialize(writer);

  writer.write_u64(clients_.size());
  for (const auto& client : clients_) client->save_state(writer);

  writer.write_u64(history_.rounds);
  if (history_.clients.size() != clients_.size())
    throw std::logic_error("FedTrainer::serialize_state: history out of sync with clients");
  for (const ClientHistory& h : history_.clients) serialize_client_history(h, writer);
  writer.write_u64(history_.attention_rounds.size());
  for (const AttentionRoundRecord& rec : history_.attention_rounds) {
    writer.write_u64(rec.round);
    writer.write_u64(rec.participants.size());
    for (const int id : rec.participants) writer.write_i64(id);
    rec.weights.serialize(writer);
  }

  bus_->save_state(writer);
  writer.write_bool(server_ != nullptr);
  if (server_) server_->save_state(writer);
}

void FedTrainer::deserialize_state(util::ByteReader& reader) {
  const std::uint64_t round_index = reader.read_u64();
  const std::uint64_t episodes_done = reader.read_u64();
  const util::RngState rng_state = util::RngState::deserialize(reader);

  const std::uint64_t client_count = reader.read_u64();
  if (client_count != clients_.size())
    throw std::invalid_argument("FedTrainer::deserialize_state: checkpoint has " +
                                std::to_string(client_count) + " clients, trainer has " +
                                std::to_string(clients_.size()));
  for (auto& client : clients_) client->load_state(reader);

  history_.rounds = static_cast<std::size_t>(reader.read_u64());
  for (ClientHistory& h : history_.clients) h = deserialize_client_history(reader);
  const std::uint64_t attention_count = reader.read_u64();
  history_.attention_rounds.clear();
  history_.attention_rounds.reserve(attention_count);
  for (std::uint64_t i = 0; i < attention_count; ++i) {
    AttentionRoundRecord rec;
    rec.round = reader.read_u64();
    const std::uint64_t participant_count = reader.read_u64();
    rec.participants.reserve(participant_count);
    for (std::uint64_t p = 0; p < participant_count; ++p)
      rec.participants.push_back(static_cast<int>(reader.read_i64()));
    rec.weights = nn::Matrix::deserialize(reader);
    history_.attention_rounds.push_back(std::move(rec));
  }

  bus_->load_state(reader);
  const bool had_server = reader.read_bool();
  if (had_server != (server_ != nullptr))
    throw std::invalid_argument(
        "FedTrainer::deserialize_state: server presence mismatch (checkpoint and trainer "
        "disagree on whether aggregation is enabled)");
  if (server_) server_->load_state(reader);

  // Counters last: only adopt them once every component restored cleanly.
  round_index_ = round_index;
  episodes_done_ = static_cast<std::size_t>(episodes_done);
  rng_.set_state(rng_state);
}

TrainingHistory FedTrainer::snapshot_history() const {
  TrainingHistory h = history_;
  h.uplink_bytes = bus_->uplink_bytes();
  h.downlink_bytes = bus_->downlink_bytes();
  if (faulty_bus_) h.faults = faulty_bus_->counters();
  if (server_) {
    h.server = server_->stats();
    if (const RobustAggregator* defense = server_->defense()) {
      h.defense_active = true;
      h.defense = defense->stats();
      h.reputation = defense->reputations();
    }
  }
  return h;
}

}  // namespace pfrl::fed
