#include "fed/attention_aggregator.hpp"

#include <stdexcept>

namespace pfrl::fed {

AttentionAggregator::AttentionAggregator(nn::MultiHeadAttentionConfig config)
    : config_(config) {}

AggregationOutput AttentionAggregator::aggregate(const AggregationInput& input) {
  if (input.models.rows() == 0) throw std::invalid_argument("AttentionAggregator: no models");
  // Checked before the attention forward pass: a NaN upload would turn
  // the similarity scores — and thus every weight row — into NaN.
  if (!models_all_finite(input.models))
    throw std::invalid_argument("AttentionAggregator: non-finite model upload");
  if (!attention_) {
    attention_.emplace(input.models.cols(), config_);
  } else if (attention_->input_dim() != input.models.cols()) {
    throw std::invalid_argument("AttentionAggregator: model dimension changed across rounds");
  }
  const nn::Matrix w = attention_->weights(input.models);        // Eq. 18-20
  return weighted_aggregate(input, w, &personalized_scratch_);   // Eq. 21-22
}

void AttentionAggregator::save_state(util::ByteWriter& writer) const {
  writer.write_bool(attention_.has_value());
  writer.write_u64(attention_ ? attention_->input_dim() : 0);
}

void AttentionAggregator::load_state(util::ByteReader& reader) {
  const bool has_attention = reader.read_bool();
  const auto input_dim = static_cast<std::size_t>(reader.read_u64());
  if (has_attention) {
    attention_.emplace(input_dim, config_);
  } else {
    attention_.reset();
  }
}

}  // namespace pfrl::fed
