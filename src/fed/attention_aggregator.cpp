#include "fed/attention_aggregator.hpp"

#include <stdexcept>

namespace pfrl::fed {

AttentionAggregator::AttentionAggregator(nn::MultiHeadAttentionConfig config)
    : config_(config) {}

AggregationOutput AttentionAggregator::aggregate(const AggregationInput& input) {
  if (input.models.rows() == 0) throw std::invalid_argument("AttentionAggregator: no models");
  // Checked before the attention forward pass: a NaN upload would turn
  // the similarity scores — and thus every weight row — into NaN.
  if (!models_all_finite(input.models))
    throw std::invalid_argument("AttentionAggregator: non-finite model upload");
  if (!attention_) {
    attention_.emplace(input.models.cols(), config_);
  } else if (attention_->input_dim() != input.models.cols()) {
    throw std::invalid_argument("AttentionAggregator: model dimension changed across rounds");
  }
  const nn::Matrix w = attention_->weights(input.models);        // Eq. 18-20
  return weighted_aggregate(input, w, &personalized_scratch_);   // Eq. 21-22
}

}  // namespace pfrl::fed
