// Socket-backed federation transport (TCP or Unix-domain stream).
//
// Wire format, reusing the project's CRC-32 + length-framing idiom:
//
//   frame   := header [trace] body
//   header  := magic:u32 ('PFRN' | 'PFRT') | body_len:u32 | seq:u64 | crc:u32
//   trace   := trace_id:u64 | span_id:u64      (only after 'PFRT' magic)
//   body    := serialize_message(Message) bytes   (body_len of them)
//   crc     := CRC-32 of body
//
// 'PFRT' frames (protocol v2) carry the sender's distributed-trace
// context; they are only emitted when the Hello/Welcome negotiation
// landed on v2 AND a span is active, so a run without obs — or against a
// v1 peer — produces byte-identical 'PFRN' traffic.
//
// All integers little-endian via util::ByteWriter. seq == 0 marks a
// control frame (kHello / kWelcome / kHelloReject / kHeartbeat), handled
// inside the transport and never surfaced through poll(). Data frames
// carry a per-client monotonic seq; RETRIES RESEND THE SAME SEQ, and the
// receiver drops seq <= high-water as a duplicate. The server keeps its
// high-water per client id across reconnect generations (so retransmits
// of pre-crash uploads still dedup), and the Welcome tells a restarted
// client where to resume its counter.
//
// Failure semantics: a bad magic or oversized length desyncs the stream
// and tears the connection down; a CRC mismatch drops just that frame
// (the framing is still intact) and counts crc_dropped. The client
// reconnects + re-handshakes between send attempts when auto_reconnect
// is set; the server treats a re-handshake for a live id as a takeover
// (old connection closed, reconnects counter bumped).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>

#include "fed/transport.hpp"
#include "obs/trace.hpp"
#include "util/net.hpp"

namespace pfrl::fed {

inline constexpr std::uint32_t kFrameMagic = 0x5046524E;        // 'PFRN'
inline constexpr std::uint32_t kFrameMagicTraced = 0x50465254;  // 'PFRT'
inline constexpr std::uint32_t kFrameHeaderBytes = 20;
inline constexpr std::uint32_t kTracedFrameExtraBytes = 16;  // trace_id + span_id
inline constexpr std::uint32_t kMaxFrameBody = 64u << 20;  // 64 MiB

struct Frame {
  std::uint64_t seq = 0;  // 0 = control frame
  Message message;        // trace_id/span_id stamped from 'PFRT' headers
};

std::vector<std::uint8_t> encode_frame(std::uint64_t seq, const Message& message);

/// Traced variant: emits a 'PFRT' frame carrying `context`. An invalid
/// context degrades to the plain encoding, byte for byte.
std::vector<std::uint8_t> encode_frame(std::uint64_t seq, const Message& message,
                                       obs::TraceContext context);

enum class FrameResult {
  kOk,
  kTimeout,   // deadline expired (mid-frame timeouts tear the connection)
  kClosed,    // peer closed the stream
  kError,     // I/O error or stream desync (bad magic / oversize)
  kBadCrc,    // this frame dropped, stream still framed — keep reading
};

/// Reads one frame. `idle_timeout` bounds the wait for the first byte
/// (poll-only, nothing consumed, so callers can tick a stop flag);
/// `io_timeout` bounds each transfer once bytes are flowing.
FrameResult read_frame(int fd, Frame& out, std::chrono::milliseconds idle_timeout,
                       std::chrono::milliseconds io_timeout);

/// Decides whether an incoming handshake is accepted. On accept, fill
/// `welcome` (current_round, ψ_G for rejoiners, ...) and return true; on
/// reject, set `reason` and return false. Called with the hello already
/// bounds-checked (0 <= client_id < client_count). last_seq_seen is
/// stamped by the transport after the validator runs.
using HandshakeValidator =
    std::function<bool(const HelloPayload& hello, std::string& reason, WelcomePayload& welcome)>;

/// Server side: accepts connections, runs handshakes, reads frames on one
/// thread per connection, and merges accepted data messages (sender
/// stamped with the handshake-bound id — the wire sender is untrusted)
/// into a single inbox. Successful handshakes also surface as a kHello
/// message through poll() so the runtime sees joins and rejoins.
class SocketServerTransport final : public ServerTransport {
 public:
  /// Binds and starts the accept loop. Throws on bind/listen failure.
  SocketServerTransport(const util::Endpoint& endpoint, std::size_t client_count,
                        TransportConfig config, HandshakeValidator validator);
  ~SocketServerTransport() override;

  /// The bound endpoint (TCP port 0 resolved to the kernel's choice).
  const util::Endpoint& endpoint() const { return endpoint_; }

  std::size_t client_count() const override { return slots_.size(); }
  bool send(std::size_t client, const Message& message) override;
  std::optional<Message> poll(std::chrono::milliseconds timeout) override;
  std::vector<std::size_t> live_clients() const override;
  void stop() override;
  TransportStats stats() const override;

 private:
  struct Slot {
    util::ScopedFd fd;                 // invalid when disconnected
    // On takeover the replaced fd is parked here (shutdown but open) so
    // its number cannot be reused while the old reader thread is still
    // winding down; closed at the next takeover or on stop().
    util::ScopedFd graveyard;
    std::uint64_t generation = 0;      // bumps on every (re)handshake
    std::uint64_t last_seq_in = 0;     // inbound dedup high-water (persists)
    std::uint64_t next_seq_out = 1;    // outbound data seq (persists)
    // Protocol version agreed at the last handshake: min(client, ours).
    // Traced frames are only sent to v2+ peers.
    std::uint32_t negotiated = kMinTransportProtocolVersion;
    std::chrono::steady_clock::time_point last_seen{};
    std::mutex write_mutex;
  };

  void accept_loop();
  void connection_loop(util::ScopedFd fd);
  void push_inbox(Message message);

  util::Endpoint endpoint_;
  TransportConfig config_;
  HandshakeValidator validator_;
  util::ScopedFd listen_fd_;

  std::vector<std::unique_ptr<Slot>> slots_;
  mutable std::mutex slots_mutex_;

  std::deque<Message> inbox_;
  mutable std::mutex inbox_mutex_;
  std::condition_variable inbox_cv_;

  TransportStats stats_;
  mutable std::mutex stats_mutex_;

  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;
  std::mutex threads_mutex_;
};

/// Client side: dials, handshakes, then runs a reader thread (downloads
/// into the inbox, duplicates dropped by seq) and a heartbeat thread.
/// send() retries with seeded exponential backoff, reconnecting and
/// re-handshaking between attempts when the connection died.
class SocketClientTransport final : public ClientTransport {
 public:
  /// `hello` is the handshake this client presents (id, arch hash,
  /// algorithm, init upload); `resume_round` can be refreshed with
  /// set_resume_round before a reconnect. `on_welcome` (optional) runs on
  /// every accepted handshake with the server's Welcome.
  SocketClientTransport(util::Endpoint endpoint, HelloPayload hello, TransportConfig config,
                        std::function<void(const WelcomePayload&)> on_welcome = nullptr);
  ~SocketClientTransport() override;

  bool connect() override;
  bool connected() const override;
  bool send(const Message& message) override;
  std::optional<Message> poll(std::chrono::milliseconds timeout) override;
  void close() override;
  TransportStats stats() const override;

  bool supports_reconnect() const override { return true; }
  void debug_drop_connection() override;

  void set_resume_round(std::uint64_t round);
  /// True once the server rejected our handshake — retrying is pointless.
  bool rejected() const { return rejected_.load(); }
  const std::string& reject_reason() const { return reject_reason_; }

 private:
  bool connect_locked();  // requires conn_mutex_
  void teardown_locked(bool count_reconnect);
  void reader_loop(int fd, std::uint64_t generation);
  void heartbeat_loop();
  bool write_frame_locked(std::uint64_t seq, const Message& message,
                          obs::TraceContext context = {});

  util::Endpoint endpoint_;
  HelloPayload hello_;
  TransportConfig config_;
  std::function<void(const WelcomePayload&)> on_welcome_;

  util::ScopedFd fd_;
  std::atomic<std::uint64_t> generation_{0};  // bumps per successful handshake
  std::atomic<bool> connected_{false};
  std::atomic<bool> rejected_{false};
  std::string reject_reason_;
  bool ever_connected_ = false;
  std::uint32_t negotiated_ = kMinTransportProtocolVersion;  // from the Welcome
  std::uint64_t next_seq_ = 1;      // outbound data seq (same seq on retry)
  std::uint64_t last_seq_in_ = 0;   // inbound dedup high-water
  mutable std::mutex conn_mutex_;   // guards fd_/generation_/handshake state
  std::mutex write_mutex_;          // serializes frame writes (send vs heartbeat)

  util::Rng jitter_rng_;
  util::Rng fault_rng_;
  std::uint32_t fail_budget_;
  std::uint32_t duplicate_budget_;

  std::deque<Message> inbox_;
  mutable std::mutex inbox_mutex_;
  std::condition_variable inbox_cv_;

  TransportStats stats_;
  mutable std::mutex stats_mutex_;

  std::atomic<bool> stop_{false};
  std::thread reader_thread_;
  std::thread heartbeat_thread_;
  std::condition_variable heartbeat_cv_;
  std::mutex heartbeat_mutex_;
};

}  // namespace pfrl::fed
