#include "fed/fedavg.hpp"

#include <stdexcept>

namespace pfrl::fed {

AggregationOutput FedAvgAggregator::aggregate(const AggregationInput& input) {
  const std::size_t k = input.models.rows();
  if (k == 0) throw std::invalid_argument("FedAvg: no models");
  if (!models_all_finite(input.models))
    throw std::invalid_argument("FedAvg: non-finite model upload");
  nn::Matrix uniform(k, k, 1.0F / static_cast<float>(k));
  return weighted_aggregate(input, uniform);
}

}  // namespace pfrl::fed
