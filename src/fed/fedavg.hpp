// FedAvg (McMahan et al.) — the uniform-average baseline the paper shows
// failing under environmental heterogeneity (§3.2, Figs. 8–9, 15).
#pragma once

#include "fed/aggregator.hpp"

namespace pfrl::fed {

class FedAvgAggregator final : public Aggregator {
 public:
  AggregationOutput aggregate(const AggregationInput& input) override;
  std::string name() const override { return "fedavg"; }
};

}  // namespace pfrl::fed
