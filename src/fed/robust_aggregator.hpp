// Byzantine-robust aggregation: a decorator around any Aggregator.
//
// FedServer's validation layer (checksum/round/shape/finite) stops
// transport damage, but a *valid* upload with hostile parameters — a
// sign-flipped vector, a 100×-scaled vector, pure noise — passes every
// check and poisons ψ_G for the whole fleet. RobustAggregator defends
// the aggregation step itself:
//
//   1. Scoring. Each upload gets a cosine similarity against the
//      previous round's ψ_G direction and an L2 norm compared to a
//      rolling median of recent round norms. Low cosine → anomalous
//      (sign-flip ≈ -1, Gaussian noise ≈ 0, honest drift ≈ +1);
//      oversized norm → clipped and noted (scale attacks).
//   2. Reputation & quarantine. Scores feed a per-client reputation
//      (decays on anomalies, recovers on clean rounds). A client whose
//      reputation falls below the quarantine threshold is excluded from
//      aggregation — but its uploads are still *scored*, so after
//      `probation_rounds` consecutive clean uploads it is re-admitted.
//      Quarantined participants are answered with ψ_G, never dropped.
//   3. Reduction. kClip rescales over-norm rows and delegates to the
//      wrapped aggregator (personalization preserved). kTrimmedMean /
//      kMedian replace the reduction with a coordinate-wise robust
//      statistic over the surviving rows — provably bounded by honest
//      extremes once attackers are a minority, at the price of serving
//      every participant the same consensus vector.
//
// All cross-round state (reference ψ_G, norm window, reputations,
// counters) serializes through the standard Aggregator save_state chain,
// so checkpoint resume under attack stays bit-identical.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fed/aggregator.hpp"

namespace pfrl::fed {

enum class DefenseMode : std::uint8_t {
  kOff = 0,      // no wrapper (callers skip construction); monitor-only if wrapped
  kClip,         // norm-clip rows, inner aggregator personalizes as usual
  kTrimmedMean,  // coordinate-wise trimmed mean over surviving rows
  kMedian,       // coordinate-wise median over surviving rows
};

DefenseMode parse_defense_mode(const std::string& name);
std::string defense_mode_name(DefenseMode mode);

struct DefenseConfig {
  DefenseMode mode = DefenseMode::kClip;
  /// Clip threshold = multiplier × rolling median of round-median norms.
  double clip_multiplier = 2.0;
  /// Rounds of history in the rolling norm window.
  std::size_t norm_window = 8;
  /// Fraction trimmed from *each* side per coordinate (kTrimmedMean).
  double trim_fraction = 0.25;
  /// Flag an upload anomalous when cos(upload, previous ψ_G) < threshold.
  double anomaly_threshold = 0.5;
  /// Exclude cosine-flagged rows from the round's reduction.
  bool exclude_flagged = true;
  /// Reputation starts at 1; an anomalous round multiplies it by
  /// (1 - reputation_decay), a clean round adds clean_recovery (cap 1).
  double reputation_decay = 0.5;
  double clean_recovery = 0.1;
  /// Quarantine below this reputation; re-admit (reputation reset to the
  /// threshold) after `probation_rounds` consecutive clean uploads.
  double quarantine_threshold = 0.3;
  std::size_t probation_rounds = 3;
};

/// Cumulative defense outcomes, surfaced in TrainingHistory and the
/// networked server summary; mirrored into fed/anomaly, fed/clipped and
/// fed/quarantined obs counters (and therefore /metrics).
struct DefenseStats {
  std::uint64_t rounds_scored = 0;
  std::uint64_t anomalies = 0;          // cosine- or norm-flagged uploads
  std::uint64_t clipped = 0;            // rows rescaled to the norm threshold
  std::uint64_t excluded = 0;           // rows left out of a reduction
  std::uint64_t quarantine_events = 0;  // healthy -> quarantined transitions
  std::uint64_t readmissions = 0;       // quarantined -> healthy transitions
  /// Round counter (rounds_scored) at the first flagged upload, or -1.
  std::int64_t first_anomaly_round = -1;
};

/// Reputation snapshot for one client (diagnostics / history JSON).
struct ClientReputation {
  int client_id = 0;
  double score = 1.0;
  bool quarantined = false;
  std::uint64_t clean_streak = 0;
  std::uint64_t flagged_rounds = 0;
};

class RobustAggregator final : public Aggregator {
 public:
  RobustAggregator(std::unique_ptr<Aggregator> inner, DefenseConfig config);

  AggregationOutput aggregate(const AggregationInput& input) override;
  std::string name() const override;

  /// Seeds the cosine reference before the first aggregation (FedServer
  /// forwards its initial ψ_G broadcast here), so attacks are scoreable
  /// from round one.
  void set_reference(std::vector<float> reference);

  const DefenseConfig& config() const { return config_; }
  const DefenseStats& stats() const { return stats_; }
  /// Ids currently excluded from aggregation, ascending.
  std::vector<int> quarantined() const;
  /// Every tracked client's reputation, ascending by id.
  std::vector<ClientReputation> reputations() const;

  void save_state(util::ByteWriter& writer) const override;
  void load_state(util::ByteReader& reader) override;

 private:
  struct Reputation {
    double score = 1.0;
    bool quarantined = false;
    std::uint64_t clean_streak = 0;
    std::uint64_t flagged_rounds = 0;
  };

  /// Updates one client's reputation with this round's verdict; returns
  /// true when the client is quarantined *after* the update.
  bool update_reputation(int client_id, bool flagged);

  std::unique_ptr<Aggregator> inner_;
  DefenseConfig config_;
  std::vector<float> reference_;       // previous ψ_G (cosine baseline)
  std::vector<double> norm_window_;    // recent round-median upload norms
  std::map<int, Reputation> reputation_;  // ordered: deterministic bytes
  DefenseStats stats_;
};

}  // namespace pfrl::fed
