#include "fed/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/logging.hpp"

namespace pfrl::fed {

AttackMode parse_attack_mode(const std::string& name) {
  if (name == "none") return AttackMode::kNone;
  if (name == "sign-flip") return AttackMode::kSignFlip;
  if (name == "scale") return AttackMode::kScale;
  if (name == "gaussian") return AttackMode::kGaussianNoise;
  if (name == "stale-replay") return AttackMode::kStaleReplay;
  throw std::invalid_argument("unknown attack mode '" + name +
                              "' (none|sign-flip|scale|gaussian|stale-replay)");
}

std::string attack_mode_name(AttackMode mode) {
  switch (mode) {
    case AttackMode::kNone: return "none";
    case AttackMode::kSignFlip: return "sign-flip";
    case AttackMode::kScale: return "scale";
    case AttackMode::kGaussianNoise: return "gaussian";
    case AttackMode::kStaleReplay: return "stale-replay";
  }
  return "none";
}

bool FaultPlan::enabled() const {
  return uplink_drop > 0.0 || downlink_drop > 0.0 || uplink_corrupt > 0.0 ||
         downlink_corrupt > 0.0 || uplink_duplicate > 0.0 || uplink_delay > 0.0 ||
         !crashes.empty() || attack_enabled();
}

bool FaultPlan::crashed(std::size_t client, std::uint64_t round) const {
  for (const CrashWindow& w : crashes)
    if (w.client == client && round >= w.from_round && round < w.until_round) return true;
  return false;
}

bool FaultPlan::attack_enabled() const {
  return attack_mode != AttackMode::kNone && (attack_fraction > 0.0 || !attackers.empty());
}

bool FaultPlan::attacker(std::size_t client, std::size_t client_count) const {
  if (!attack_enabled()) return false;
  if (!attackers.empty())
    return std::find(attackers.begin(), attackers.end(), client) != attackers.end();
  const auto hostile = static_cast<std::size_t>(
      std::floor(attack_fraction * static_cast<double>(client_count) + 0.5));
  // The highest ids turn hostile, so client 0 (ψ_G's seed) stays honest.
  return hostile > 0 && client_count > 0 && client >= client_count - std::min(hostile, client_count);
}

std::vector<std::uint8_t> attack_payload(const std::vector<std::uint8_t>& payload,
                                         const FaultPlan& plan, std::size_t client,
                                         std::uint64_t round,
                                         std::vector<std::uint8_t>* replay_cache) {
  std::vector<float> params;
  try {
    util::ByteReader reader(payload);
    params = reader.read_f32_vector();
    if (!reader.exhausted()) return payload;
  } catch (const std::exception&) {
    return payload;  // not a parameter vector; nothing to poison
  }
  if (params.empty()) return payload;

  switch (plan.attack_mode) {
    case AttackMode::kNone: return payload;
    case AttackMode::kSignFlip:
      for (float& v : params) v = -v;
      break;
    case AttackMode::kScale:
      for (float& v : params) v = static_cast<float>(v * plan.attack_scale);
      break;
    case AttackMode::kGaussianNoise: {
      // Fresh generator per (seed, client, round): no cross-round stream
      // state, so both runtimes and any checkpoint resume reproduce the
      // identical noise without serializing an engine.
      std::uint64_t mix = plan.seed ^ 0xA77ACC3DULL;
      mix ^= (static_cast<std::uint64_t>(client) + 1) * 0x9E3779B97F4A7C15ULL;
      mix ^= (round + 1) * 0xC2B2AE3D27D4EB4FULL;
      util::Rng rng(mix);
      for (float& v : params) v = static_cast<float>(rng.normal(0.0, plan.attack_noise));
      break;
    }
    case AttackMode::kStaleReplay: {
      if (replay_cache == nullptr) return payload;
      std::vector<std::uint8_t> out = replay_cache->empty() ? payload : *replay_cache;
      *replay_cache = payload;
      return out;
    }
  }
  util::ByteWriter writer;
  writer.write_f32_span(params);
  return writer.take();
}

FaultyBus::FaultyBus(std::size_t client_count, FaultPlan plan)
    : Bus(client_count), plan_(std::move(plan)) {}

util::Rng& FaultyBus::link_rng(bool uplink, std::size_t client) {
  const std::uint64_t key = (static_cast<std::uint64_t>(uplink) << 32) | client;
  auto it = link_rngs_.find(key);
  if (it == link_rngs_.end())
    it = link_rngs_.emplace(key, util::Rng(plan_.seed ^ (key * 0x9E3779B97F4A7C15ULL))).first;
  return it->second;
}

void FaultyBus::corrupt_payload(Message& message, util::Rng& rng) {
  const std::size_t flips = static_cast<std::size_t>(rng.uniform_int(1, 4));
  for (std::size_t f = 0; f < flips; ++f) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(message.payload.size()) - 1));
    message.payload[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
  }
}

void FaultyBus::maybe_attack(Message& message, std::size_t client) {
  if (message.type != MessageType::kModelUpload) return;
  if (!plan_.attacker(client, client_count())) return;
  std::vector<std::uint8_t>& cache = replay_cache_[client];
  Message hostile = make_message(MessageType::kModelUpload, message.sender, message.round,
                                 attack_payload(message.payload, plan_, client, round_, &cache));
  // make_message re-stamps the CRC: a Byzantine upload is *valid* on the
  // wire and must be caught by aggregation-side defenses, not transport
  // checks. Trace context survives so spans still stitch.
  hostile.trace_id = message.trace_id;
  hostile.span_id = message.span_id;
  message = std::move(hostile);
  ++counters_.attacked;
  PFRL_LOG_DEBUG("fault: %s attack on upload from client %zu (round %llu)",
                 attack_mode_name(plan_.attack_mode).c_str(), client,
                 static_cast<unsigned long long>(message.round));
}

void FaultyBus::send_to_server(Message message) {
  const auto client = static_cast<std::size_t>(std::max(message.sender, 0));
  if (plan_.crashed(client, round_)) {
    ++counters_.crash_suppressed;
    return;
  }
  // The attacker poisons at the source, before transport faults: a
  // dropped or corrupted adversarial upload behaves like any other.
  maybe_attack(message, client);
  util::Rng& rng = link_rng(/*uplink=*/true, client);
  // All four decisions are drawn every time so the per-link stream
  // consumption does not depend on earlier outcomes.
  const bool drop = rng.bernoulli(plan_.uplink_drop);
  const bool delay = rng.bernoulli(plan_.uplink_delay);
  const bool corrupt = rng.bernoulli(plan_.uplink_corrupt);
  const bool duplicate = rng.bernoulli(plan_.uplink_duplicate);
  if (drop) {
    ++counters_.uplink_dropped;
    PFRL_LOG_DEBUG("fault: dropped upload from client %zu (round %llu)", client,
                   static_cast<unsigned long long>(message.round));
    return;
  }
  if (corrupt && !message.payload.empty()) {
    corrupt_payload(message, rng);
    ++counters_.uplink_corrupted;
  }
  if (delay && plan_.max_delay_rounds > 0) {
    const auto by = static_cast<std::uint64_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(plan_.max_delay_rounds)));
    ++counters_.delayed;
    delayed_.emplace_back(round_ + by, std::move(message));
    return;
  }
  if (duplicate) {
    ++counters_.duplicated;
    Bus::send_to_server(message);
  }
  Bus::send_to_server(std::move(message));
}

void FaultyBus::send_to_client(std::size_t client, Message message) {
  if (plan_.crashed(client, round_)) {
    ++counters_.crash_suppressed;
    return;
  }
  util::Rng& rng = link_rng(/*uplink=*/false, client);
  const bool drop = rng.bernoulli(plan_.downlink_drop);
  const bool corrupt = rng.bernoulli(plan_.downlink_corrupt);
  if (drop) {
    ++counters_.downlink_dropped;
    PFRL_LOG_DEBUG("fault: dropped download to client %zu (round %llu)", client,
                   static_cast<unsigned long long>(message.round));
    return;
  }
  if (corrupt && !message.payload.empty()) {
    corrupt_payload(message, rng);
    ++counters_.downlink_corrupted;
  }
  Bus::send_to_client(client, std::move(message));
}

void FaultyBus::begin_round(std::uint64_t round) {
  round_ = round;
  std::vector<Message> release;
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (it->first <= round_) {
      release.push_back(std::move(it->second));
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
  // Released messages keep their original round id, so the server's
  // staleness check classifies them as late arrivals.
  for (Message& m : release) Bus::send_to_server(std::move(m));
}

void FaultyBus::save_state(util::ByteWriter& writer) const {
  Bus::save_state(writer);
  writer.write_u64(round_);
  writer.write_u64(delayed_.size());
  for (const auto& [deliver_at, message] : delayed_) {
    writer.write_u64(deliver_at);
    serialize_message(message, writer);
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(link_rngs_.size());
  for (const auto& [key, rng] : link_rngs_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  writer.write_u64(keys.size());
  for (const std::uint64_t key : keys) {
    writer.write_u64(key);
    link_rngs_.at(key).state().serialize(writer);
  }
  writer.write_u64(counters_.uplink_dropped);
  writer.write_u64(counters_.downlink_dropped);
  writer.write_u64(counters_.uplink_corrupted);
  writer.write_u64(counters_.downlink_corrupted);
  writer.write_u64(counters_.duplicated);
  writer.write_u64(counters_.delayed);
  writer.write_u64(counters_.crash_suppressed);
  writer.write_u64(counters_.attacked);
  std::vector<std::uint64_t> replay_keys;
  replay_keys.reserve(replay_cache_.size());
  for (const auto& [client, payload] : replay_cache_) replay_keys.push_back(client);
  std::sort(replay_keys.begin(), replay_keys.end());
  writer.write_u64(replay_keys.size());
  for (const std::uint64_t client : replay_keys) {
    writer.write_u64(client);
    writer.write_bytes(replay_cache_.at(client));
  }
}

void FaultyBus::load_state(util::ByteReader& reader) {
  Bus::load_state(reader);
  round_ = reader.read_u64();
  const std::uint64_t delayed_count = reader.read_u64();
  delayed_.clear();
  for (std::uint64_t i = 0; i < delayed_count; ++i) {
    const std::uint64_t deliver_at = reader.read_u64();
    delayed_.emplace_back(deliver_at, deserialize_message(reader));
  }
  const std::uint64_t rng_count = reader.read_u64();
  link_rngs_.clear();
  for (std::uint64_t i = 0; i < rng_count; ++i) {
    const std::uint64_t key = reader.read_u64();
    // Seed value is irrelevant: set_state overwrites the whole engine.
    auto [it, inserted] = link_rngs_.emplace(key, util::Rng(key));
    it->second.set_state(util::RngState::deserialize(reader));
  }
  counters_.uplink_dropped = reader.read_u64();
  counters_.downlink_dropped = reader.read_u64();
  counters_.uplink_corrupted = reader.read_u64();
  counters_.downlink_corrupted = reader.read_u64();
  counters_.duplicated = reader.read_u64();
  counters_.delayed = reader.read_u64();
  counters_.crash_suppressed = reader.read_u64();
  counters_.attacked = reader.read_u64();
  const std::uint64_t replay_count = reader.read_u64();
  replay_cache_.clear();
  for (std::uint64_t i = 0; i < replay_count; ++i) {
    const std::uint64_t client = reader.read_u64();
    replay_cache_[client] = reader.read_bytes();
  }
}

}  // namespace pfrl::fed
