#include "fed/robust_aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/serialization.hpp"

namespace pfrl::fed {

DefenseMode parse_defense_mode(const std::string& name) {
  if (name == "off") return DefenseMode::kOff;
  if (name == "clip") return DefenseMode::kClip;
  if (name == "trimmed") return DefenseMode::kTrimmedMean;
  if (name == "median") return DefenseMode::kMedian;
  throw std::invalid_argument("unknown defense mode '" + name + "' (off|clip|trimmed|median)");
}

std::string defense_mode_name(DefenseMode mode) {
  switch (mode) {
    case DefenseMode::kOff: return "off";
    case DefenseMode::kClip: return "clip";
    case DefenseMode::kTrimmedMean: return "trimmed";
    case DefenseMode::kMedian: return "median";
  }
  return "off";
}

namespace {

double l2_norm(std::span<const float> v) {
  double acc = 0.0;
  for (const float x : v) acc += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(acc);
}

/// cos(a, b); neutral 1.0 when either vector is (near) zero, so an empty
/// or degenerate reference never flags anyone.
double cosine(std::span<const float> a, std::span<const float> b) {
  double dot = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  const double na = l2_norm(a);
  const double nb = l2_norm(b);
  if (na < 1e-12 || nb < 1e-12) return 1.0;
  return dot / (na * nb);
}

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

}  // namespace

RobustAggregator::RobustAggregator(std::unique_ptr<Aggregator> inner, DefenseConfig config)
    : inner_(std::move(inner)), config_(config) {
  if (!inner_) throw std::invalid_argument("RobustAggregator: null inner aggregator");
  if (config_.trim_fraction < 0.0 || config_.trim_fraction >= 0.5)
    throw std::invalid_argument("RobustAggregator: trim_fraction must be in [0, 0.5)");
  if (config_.norm_window == 0) config_.norm_window = 1;
}

std::string RobustAggregator::name() const {
  return "robust-" + defense_mode_name(config_.mode) + "(" + inner_->name() + ")";
}

void RobustAggregator::set_reference(std::vector<float> reference) {
  reference_ = std::move(reference);
}

std::vector<int> RobustAggregator::quarantined() const {
  std::vector<int> ids;
  for (const auto& [id, rep] : reputation_)
    if (rep.quarantined) ids.push_back(id);
  return ids;
}

std::vector<ClientReputation> RobustAggregator::reputations() const {
  std::vector<ClientReputation> out;
  out.reserve(reputation_.size());
  for (const auto& [id, rep] : reputation_)
    out.push_back({id, rep.score, rep.quarantined, rep.clean_streak, rep.flagged_rounds});
  return out;
}

bool RobustAggregator::update_reputation(int client_id, bool flagged) {
  Reputation& rep = reputation_[client_id];
  if (flagged) {
    rep.score *= 1.0 - config_.reputation_decay;
    rep.clean_streak = 0;
    ++rep.flagged_rounds;
  } else {
    rep.score = std::min(1.0, rep.score + config_.clean_recovery);
    ++rep.clean_streak;
  }
  if (!rep.quarantined && rep.score < config_.quarantine_threshold) {
    rep.quarantined = true;
    rep.clean_streak = 0;
    ++stats_.quarantine_events;
    PFRL_COUNT("fed/quarantined", 1);
    PFRL_LOG_WARN("RobustAggregator: client %d quarantined (reputation %.3f)", client_id,
                  rep.score);
  } else if (rep.quarantined && !flagged && rep.clean_streak >= config_.probation_rounds) {
    rep.quarantined = false;
    rep.score = std::max(rep.score, config_.quarantine_threshold);
    ++stats_.readmissions;
    PFRL_LOG_INFO("RobustAggregator: client %d re-admitted after %llu clean rounds", client_id,
                  static_cast<unsigned long long>(config_.probation_rounds));
  }
  return rep.quarantined;
}

AggregationOutput RobustAggregator::aggregate(const AggregationInput& input) {
  const std::size_t k = input.models.rows();
  const std::size_t p = input.models.cols();
  if (k == 0 || input.client_ids.size() != k)
    throw std::invalid_argument("RobustAggregator: malformed input");

  if (config_.mode == DefenseMode::kOff) {
    // Monitor-only wrapper: pass through untouched.
    AggregationOutput output = inner_->aggregate(input);
    reference_ = output.global_model;
    ++stats_.rounds_scored;
    return output;
  }

  // --- 1. Score every upload (including quarantined clients': their
  // clean streak during probation is measured on real uploads). ---
  std::vector<double> norms(k);
  std::vector<double> cosines(k, 1.0);
  const bool has_reference = !reference_.empty() && reference_.size() == p;
  for (std::size_t i = 0; i < k; ++i) {
    const auto row = input.models.row(i);
    norms[i] = l2_norm(row);
    if (has_reference) cosines[i] = cosine(row, reference_);
  }
  const double round_median_norm = median_of(norms);
  std::vector<double> window = norm_window_;
  if (window.empty()) window.push_back(round_median_norm);
  const double norm_threshold = config_.clip_multiplier * median_of(std::move(window));

  std::vector<char> excluded(k, 0);
  std::size_t flagged_count = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const bool norm_flag = norms[i] > norm_threshold;
    const bool cosine_flag = has_reference && cosines[i] < config_.anomaly_threshold;
    const bool flagged = norm_flag || cosine_flag;
    if (flagged) {
      ++stats_.anomalies;
      ++flagged_count;
      PFRL_COUNT("fed/anomaly", 1);
      if (stats_.first_anomaly_round < 0)
        stats_.first_anomaly_round = static_cast<std::int64_t>(stats_.rounds_scored);
      PFRL_LOG_WARN(
          "RobustAggregator: anomalous upload from client %d (cos %.3f, norm %.3f, limit %.3f)",
          input.client_ids[i], cosines[i], norms[i], norm_threshold);
    }
    const bool now_quarantined = update_reputation(input.client_ids[i], flagged);
    // Norm violations are repaired by clipping below; only directional
    // anomalies (and quarantine) remove a row from the reduction.
    excluded[i] = now_quarantined || (cosine_flag && config_.exclude_flagged) ? 1 : 0;
  }
  norm_window_.push_back(round_median_norm);
  if (norm_window_.size() > config_.norm_window)
    norm_window_.erase(norm_window_.begin(),
                       norm_window_.begin() + (norm_window_.size() - config_.norm_window));

  std::vector<std::size_t> survivors;
  survivors.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    if (!excluded[i]) survivors.push_back(i);
  if (survivors.empty()) {
    // Never let the defense brick a round: with everyone flagged the
    // exclusion is void and clipping alone has to contain the damage.
    PFRL_LOG_WARN("RobustAggregator: every upload flagged; aggregating all %zu clipped rows", k);
    for (std::size_t i = 0; i < k; ++i) survivors.push_back(i);
  }
  stats_.excluded += k - survivors.size();

  // --- 2. Condition survivors: L2-clip to the rolling-median threshold. ---
  AggregationInput robust;
  robust.client_ids.reserve(survivors.size());
  robust.models = nn::Matrix(survivors.size(), p);
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    const std::size_t i = survivors[s];
    robust.client_ids.push_back(input.client_ids[i]);
    const auto src = input.models.row(i);
    auto dst = robust.models.row(s);
    double scale = 1.0;
    if (norms[i] > norm_threshold && norms[i] > 0.0) {
      scale = norm_threshold / norms[i];
      ++stats_.clipped;
      PFRL_COUNT("fed/clipped", 1);
    }
    for (std::size_t j = 0; j < p; ++j) dst[j] = static_cast<float>(src[j] * scale);
  }

  // --- 3. Reduce. ---
  AggregationOutput output;
  if (config_.mode == DefenseMode::kClip) {
    AggregationOutput robust_out = inner_->aggregate(robust);
    output.global_model = std::move(robust_out.global_model);
    output.weights = nn::Matrix(k, k);
    output.personalized.assign(k, {});
    for (std::size_t s = 0; s < survivors.size(); ++s) {
      output.personalized[survivors[s]] = std::move(robust_out.personalized[s]);
      for (std::size_t t = 0; t < survivors.size(); ++t)
        output.weights(survivors[s], survivors[t]) = robust_out.weights(s, t);
    }
  } else {
    // Coordinate-wise trimmed mean / median over the surviving rows. The
    // column values are sorted before reduction, so the result is exactly
    // permutation-invariant and bounded by the per-coordinate extremes.
    const std::size_t s_count = survivors.size();
    std::size_t trim = 0;
    if (config_.mode == DefenseMode::kTrimmedMean)
      trim = static_cast<std::size_t>(config_.trim_fraction * static_cast<double>(s_count));
    if (2 * trim >= s_count) trim = (s_count - 1) / 2;
    std::vector<float> center(p);
    std::vector<double> column(s_count);
    for (std::size_t j = 0; j < p; ++j) {
      for (std::size_t s = 0; s < s_count; ++s)
        column[s] = static_cast<double>(robust.models.row(s)[j]);
      std::sort(column.begin(), column.end());
      if (config_.mode == DefenseMode::kMedian) {
        const std::size_t mid = s_count / 2;
        center[j] = static_cast<float>(s_count % 2 == 1 ? column[mid]
                                                        : 0.5 * (column[mid - 1] + column[mid]));
      } else {
        double acc = 0.0;
        for (std::size_t s = trim; s < s_count - trim; ++s) acc += column[s];
        center[j] = static_cast<float>(acc / static_cast<double>(s_count - 2 * trim));
      }
    }
    // Robust modes trade personalization for consensus: every participant
    // (including excluded ones) is served the robust center, and the
    // diagnostic weight matrix records the uniform surviving mass.
    output.global_model = center;
    output.personalized.assign(k, center);
    output.weights = nn::Matrix(k, k);
    const float w = 1.0F / static_cast<float>(s_count);
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t s = 0; s < s_count; ++s) output.weights(i, survivors[s]) = w;
  }

  // Excluded participants are still answered — with the robust ψ_G.
  for (std::size_t i = 0; i < k; ++i)
    if (output.personalized[i].empty()) output.personalized[i] = output.global_model;

  reference_ = output.global_model;
  ++stats_.rounds_scored;
  if (obs::enabled()) {
    std::size_t active = 0;
    for (const auto& [id, rep] : reputation_)
      if (rep.quarantined) ++active;
    PFRL_GAUGE_SET("fed/quarantined_active", active);
    (void)flagged_count;
  }
  return output;
}

void RobustAggregator::save_state(util::ByteWriter& writer) const {
  writer.write_f32_span(reference_);
  writer.write_f64_span(norm_window_);
  writer.write_u64(reputation_.size());
  for (const auto& [id, rep] : reputation_) {  // std::map: ascending, deterministic
    writer.write_i64(id);
    writer.write_f64(rep.score);
    writer.write_bool(rep.quarantined);
    writer.write_u64(rep.clean_streak);
    writer.write_u64(rep.flagged_rounds);
  }
  writer.write_u64(stats_.rounds_scored);
  writer.write_u64(stats_.anomalies);
  writer.write_u64(stats_.clipped);
  writer.write_u64(stats_.excluded);
  writer.write_u64(stats_.quarantine_events);
  writer.write_u64(stats_.readmissions);
  writer.write_i64(stats_.first_anomaly_round);
  inner_->save_state(writer);
}

void RobustAggregator::load_state(util::ByteReader& reader) {
  reference_ = reader.read_f32_vector();
  norm_window_ = reader.read_f64_vector();
  const std::uint64_t rep_count = reader.read_u64();
  reputation_.clear();
  for (std::uint64_t i = 0; i < rep_count; ++i) {
    const int id = static_cast<int>(reader.read_i64());
    Reputation rep;
    rep.score = reader.read_f64();
    rep.quarantined = reader.read_bool();
    rep.clean_streak = reader.read_u64();
    rep.flagged_rounds = reader.read_u64();
    reputation_.emplace(id, rep);
  }
  stats_.rounds_scored = reader.read_u64();
  stats_.anomalies = reader.read_u64();
  stats_.clipped = reader.read_u64();
  stats_.excluded = reader.read_u64();
  stats_.quarantine_events = reader.read_u64();
  stats_.readmissions = reader.read_u64();
  stats_.first_anomaly_round = reader.read_i64();
  inner_->load_state(reader);
}

}  // namespace pfrl::fed
