#include "fed/mfpo.hpp"

#include <stdexcept>

namespace pfrl::fed {

MfpoAggregator::MfpoAggregator(MfpoConfig config) : config_(config) {}

AggregationOutput MfpoAggregator::aggregate(const AggregationInput& input) {
  const std::size_t k = input.models.rows();
  const std::size_t p = input.models.cols();
  if (k == 0) throw std::invalid_argument("MfpoAggregator: no models");
  if (!models_all_finite(input.models))
    throw std::invalid_argument("MfpoAggregator: non-finite model upload");

  // Average of the uploaded models.
  std::vector<float> avg(p, 0.0F);
  for (std::size_t i = 0; i < k; ++i) {
    const auto row = input.models.row(i);
    for (std::size_t j = 0; j < p; ++j) avg[j] += row[j];
  }
  const float inv_k = 1.0F / static_cast<float>(k);
  for (float& v : avg) v *= inv_k;

  if (global_.empty()) {
    // First round: adopt the average, momentum starts at zero.
    global_ = avg;
    momentum_.assign(p, 0.0F);
  } else {
    if (global_.size() != p)
      throw std::invalid_argument("MfpoAggregator: model dimension changed across rounds");
    for (std::size_t j = 0; j < p; ++j) {
      const float delta = avg[j] - global_[j];
      momentum_[j] = config_.beta * momentum_[j] + (1.0F - config_.beta) * delta;
      global_[j] += config_.server_lr * momentum_[j];
    }
  }

  AggregationOutput out;
  out.global_model = global_;
  out.personalized.assign(k, global_);  // no personalization in MFPO
  out.weights = nn::Matrix(k, k, inv_k);
  return out;
}

}  // namespace pfrl::fed
