// The federated server (Algorithm 1, lines 8–15): drains the round's
// uploads from the bus, runs the pluggable aggregation strategy, then
// answers every participant with its personalized model and every other
// known client with the stored global model ψ_G.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "fed/aggregator.hpp"
#include "fed/bus.hpp"

namespace pfrl::fed {

class FedServer {
 public:
  explicit FedServer(std::unique_ptr<Aggregator> aggregator);

  /// Executes one aggregation round over whatever uploads are waiting in
  /// the bus. `all_clients` lists every known client id; those that did
  /// not upload receive ψ_G (once one exists). Returns the number of
  /// participants.
  std::size_t run_round(Bus& bus, std::uint64_t round, std::span<const std::size_t> all_clients);

  /// Seeds ψ_G before training (initial broadcast) or for tests.
  void set_global_model(std::vector<float> model);
  bool has_global_model() const { return !global_model_.empty(); }
  const std::vector<float>& global_model() const { return global_model_; }

  /// Serialized ψ_G ready to hand to a newly joining client (Fig. 20).
  std::vector<std::uint8_t> global_payload() const;

  /// Weight matrix of the most recent round (diagnostics / heat-maps).
  const nn::Matrix& last_weights() const { return last_weights_; }
  const std::vector<int>& last_participants() const { return last_participants_; }

  const Aggregator& aggregator() const { return *aggregator_; }

 private:
  std::unique_ptr<Aggregator> aggregator_;
  std::vector<float> global_model_;
  nn::Matrix last_weights_;
  std::vector<int> last_participants_;
};

}  // namespace pfrl::fed
