// The federated server (Algorithm 1, lines 8–15): drains the round's
// uploads from the bus, runs the pluggable aggregation strategy, then
// answers every participant with its personalized model and every other
// known client with the stored global model ψ_G.
//
// The receive path is hardened: a malformed, corrupted, stale, mis-sized,
// duplicated, or non-finite upload is rejected and logged — one bad
// client never aborts the federation. Aggregation proceeds only when at
// least `min_participants` valid uploads arrived; otherwise the round is
// skipped and ψ_G carries forward unchanged (quorum semantics).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "fed/aggregator.hpp"
#include "fed/bus.hpp"
#include "fed/robust_aggregator.hpp"

namespace pfrl::fed {

/// Outcome counts of upload validation, cumulative across rounds.
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_type = 0;       // not a kModelUpload
  std::uint64_t rejected_checksum = 0;   // CRC-32 mismatch (corruption)
  std::uint64_t rejected_stale = 0;      // round id != current round
  std::uint64_t rejected_malformed = 0;  // truncated / trailing bytes
  std::uint64_t rejected_size = 0;       // parameter count mismatch
  std::uint64_t rejected_nonfinite = 0;  // NaN/Inf parameters (divergence)
  std::uint64_t rejected_duplicate = 0;  // same sender twice in one round
  std::uint64_t quorum_failures = 0;     // rounds skipped: too few valid uploads

  std::uint64_t total_rejected() const {
    return rejected_type + rejected_checksum + rejected_stale + rejected_malformed +
           rejected_size + rejected_nonfinite + rejected_duplicate;
  }
};

class FedServer {
 public:
  explicit FedServer(std::unique_ptr<Aggregator> aggregator);

  /// Executes one aggregation round over whatever uploads are waiting in
  /// the bus. `all_clients` lists every known client id; those that did
  /// not upload receive ψ_G (once one exists). Invalid uploads are
  /// rejected (see ServerStats); if fewer than min_participants valid
  /// uploads remain the round is skipped, ψ_G carries forward, and every
  /// client is answered with it. Returns the number of uploads
  /// aggregated (0 when the round was skipped).
  std::size_t run_round(Bus& bus, std::uint64_t round, std::span<const std::size_t> all_clients);

  /// Quorum: valid uploads required before aggregating (default 1).
  void set_min_participants(std::size_t n) { min_participants_ = n == 0 ? 1 : n; }
  std::size_t min_participants() const { return min_participants_; }

  /// Pins the architecture's parameter count independently of ψ_G, so a
  /// mis-sized upload is rejected even before the first aggregation (when
  /// ψ_G does not exist yet and would otherwise adopt the bad length).
  void set_expected_params(std::size_t p) { expected_params_ = p; }
  std::size_t expected_params() const { return expected_params_; }

  /// Seeds ψ_G before training (initial broadcast) or for tests.
  void set_global_model(std::vector<float> model);
  bool has_global_model() const { return !global_model_.empty(); }
  const std::vector<float>& global_model() const { return global_model_; }

  /// Serialized ψ_G ready to hand to a newly joining client (Fig. 20).
  std::vector<std::uint8_t> global_payload() const;

  /// Weight matrix of the most recent round (diagnostics / heat-maps).
  const nn::Matrix& last_weights() const { return last_weights_; }
  const std::vector<int>& last_participants() const { return last_participants_; }

  const ServerStats& stats() const { return stats_; }

  const Aggregator& aggregator() const { return *aggregator_; }

  /// The Byzantine-defense decorator when one wraps the aggregator;
  /// nullptr for an undefended server. Gives FedTrainer/NetFedServer one
  /// shared place to read quarantine and anomaly outcomes.
  const RobustAggregator* defense() const { return robust_; }

  /// Persists ψ_G, the last round's weight matrix/participants, the
  /// validation stats, and the aggregator's own cross-round state.
  void save_state(util::ByteWriter& writer) const;
  /// Restores state written by save_state(). The server must already hold
  /// the same aggregator strategy the checkpoint was taken with.
  void load_state(util::ByteReader& reader);

 private:
  std::unique_ptr<Aggregator> aggregator_;
  RobustAggregator* robust_ = nullptr;  // non-owning view into aggregator_
  std::vector<float> global_model_;
  nn::Matrix last_weights_;
  std::vector<int> last_participants_;
  ServerStats stats_;
  std::size_t min_participants_ = 1;
  std::size_t expected_params_ = 0;  // 0 = unpinned (first upload decides)
};

}  // namespace pfrl::fed
