// Fault injection for the federated stack.
//
// Real federations lose uploads, deliver them late, duplicate them,
// corrupt bits in transit, and lose whole clients for stretches of
// training. FaultPlan describes such a fault model (seeded, so every
// run is reproducible); FaultyBus applies it to messages in flight while
// leaving the Bus interface — and therefore FedServer/FedTrainer —
// unchanged. The receive-path hardening that the injected faults
// exercise lives in FedServer::run_round (checksum/round/shape/finite
// validation + quorum) and FedClient::try_apply_download (keep the
// previous public critic; Eq. 15's α then down-weights it).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fed/bus.hpp"
#include "util/rng.hpp"

namespace pfrl::fed {

/// A scheduled client outage: the client is down for rounds
/// [from_round, until_round) — it neither trains, uploads, nor receives.
struct CrashWindow {
  std::size_t client = 0;
  std::uint64_t from_round = 0;
  std::uint64_t until_round = 0;
};

/// Byzantine behaviour of an adversarial client. Unlike the transport
/// faults below, an attacker produces a *valid* message — correct CRC,
/// correct round, finite values — whose parameters are poisoned, so it
/// sails through every transport-level check and must be caught by the
/// aggregation-side defenses (fed/robust_aggregator.hpp).
enum class AttackMode : std::uint8_t {
  kNone = 0,
  kSignFlip,       // upload -Θ: pulls ψ_G away from consensus
  kScale,          // upload K·Θ: one loud client dominates the mean
  kGaussianNoise,  // replace Θ with N(0, σ²) noise: erases information
  kStaleReplay,    // resend the previous round's upload verbatim
};

AttackMode parse_attack_mode(const std::string& name);
std::string attack_mode_name(AttackMode mode);

/// Per-link fault probabilities plus the crash schedule. All-zero (the
/// default) means a perfect network; FedTrainer then uses a plain Bus and
/// behaves byte-for-byte like the fault-free implementation.
struct FaultPlan {
  double uplink_drop = 0.0;        // P(upload silently lost)
  double downlink_drop = 0.0;      // P(download silently lost)
  double uplink_corrupt = 0.0;     // P(upload payload bit-flipped)
  double downlink_corrupt = 0.0;   // P(download payload bit-flipped)
  double uplink_duplicate = 0.0;   // P(upload delivered twice)
  double uplink_delay = 0.0;       // P(upload deferred >= 1 round)
  std::size_t max_delay_rounds = 1;  // delay drawn uniformly from [1, max]
  std::vector<CrashWindow> crashes;
  std::uint64_t seed = 0x5EEDFA17;

  /// Adversarial-update model: `attack_fraction` of the fleet (or the
  /// explicit `attackers` list when non-empty) poisons every upload with
  /// `attack_mode`. Implicit attackers are the highest client ids, so
  /// client 0 — whose parameters seed ψ_G^(0) — stays honest.
  AttackMode attack_mode = AttackMode::kNone;
  double attack_fraction = 0.0;        // fraction of clients adversarial
  double attack_scale = 100.0;         // K for kScale
  double attack_noise = 1.0;           // σ for kGaussianNoise
  std::vector<std::size_t> attackers;  // explicit ids; overrides fraction

  bool enabled() const;
  bool crashed(std::size_t client, std::uint64_t round) const;
  bool attack_enabled() const;
  /// True when `client` behaves adversarially in a fleet of `client_count`.
  bool attacker(std::size_t client, std::size_t client_count) const;
};

/// Produces the adversarial version of an encoded f32 parameter payload.
/// Deterministic in (plan.seed, client, round), so the in-process FaultyBus
/// and a networked NetFedClient generate byte-identical attacks and a
/// checkpoint resume replays the exact same poison. `replay_cache` holds
/// the client's previous upload for kStaleReplay (updated in place); a
/// payload that does not decode as an f32 vector passes through untouched.
std::vector<std::uint8_t> attack_payload(const std::vector<std::uint8_t>& payload,
                                         const FaultPlan& plan, std::size_t client,
                                         std::uint64_t round,
                                         std::vector<std::uint8_t>* replay_cache);

struct FaultCounters {
  std::uint64_t uplink_dropped = 0;
  std::uint64_t downlink_dropped = 0;
  std::uint64_t uplink_corrupted = 0;
  std::uint64_t downlink_corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  /// Messages blackholed because an endpoint was inside a crash window.
  std::uint64_t crash_suppressed = 0;
  /// Uploads replaced with adversarial payloads (AttackMode).
  std::uint64_t attacked = 0;

  std::uint64_t total() const {
    return uplink_dropped + downlink_dropped + uplink_corrupted + downlink_corrupted +
           duplicated + delayed + crash_suppressed + attacked;
  }
};

/// A Bus that injects the FaultPlan's faults. Each (direction, client)
/// link owns an independent RNG stream derived from the plan seed, so
/// fault decisions on one link never shift another link's stream and a
/// fixed seed reproduces the exact fault sequence.
class FaultyBus final : public Bus {
 public:
  FaultyBus(std::size_t client_count, FaultPlan plan);

  void send_to_server(Message message) override;
  void send_to_client(std::size_t client, Message message) override;

  /// Round boundary hook (called by FedTrainer before the upload phase):
  /// advances the crash schedule and releases messages whose delay
  /// expired — they arrive carrying their original round id, so the
  /// server's staleness check sees them as late.
  void begin_round(std::uint64_t round);

  const FaultCounters& counters() const { return counters_; }
  const FaultPlan& plan() const { return plan_; }

  /// Extends Bus::save_state with the fault-injection state: the round
  /// cursor, in-flight delayed messages, every per-link RNG stream
  /// (keys sorted so checkpoint bytes are deterministic), and counters.
  void save_state(util::ByteWriter& writer) const override;
  void load_state(util::ByteReader& reader) override;

 private:
  util::Rng& link_rng(bool uplink, std::size_t client);
  /// Flips 1–4 random bytes of the payload (checksum left as stamped, so
  /// the receiver's CRC verification catches it).
  void corrupt_payload(Message& message, util::Rng& rng);
  /// Swaps an attacker's upload for its adversarial version (re-stamped
  /// CRC: the attack must survive transport validation by construction).
  void maybe_attack(Message& message, std::size_t client);

  FaultPlan plan_;
  std::uint64_t round_ = 0;
  std::vector<std::pair<std::uint64_t, Message>> delayed_;  // (deliver_at, msg)
  std::unordered_map<std::uint64_t, util::Rng> link_rngs_;
  /// Per-attacker previous upload, for AttackMode::kStaleReplay.
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> replay_cache_;
  FaultCounters counters_;
};

}  // namespace pfrl::fed
