// Fault injection for the federated stack.
//
// Real federations lose uploads, deliver them late, duplicate them,
// corrupt bits in transit, and lose whole clients for stretches of
// training. FaultPlan describes such a fault model (seeded, so every
// run is reproducible); FaultyBus applies it to messages in flight while
// leaving the Bus interface — and therefore FedServer/FedTrainer —
// unchanged. The receive-path hardening that the injected faults
// exercise lives in FedServer::run_round (checksum/round/shape/finite
// validation + quorum) and FedClient::try_apply_download (keep the
// previous public critic; Eq. 15's α then down-weights it).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fed/bus.hpp"
#include "util/rng.hpp"

namespace pfrl::fed {

/// A scheduled client outage: the client is down for rounds
/// [from_round, until_round) — it neither trains, uploads, nor receives.
struct CrashWindow {
  std::size_t client = 0;
  std::uint64_t from_round = 0;
  std::uint64_t until_round = 0;
};

/// Per-link fault probabilities plus the crash schedule. All-zero (the
/// default) means a perfect network; FedTrainer then uses a plain Bus and
/// behaves byte-for-byte like the fault-free implementation.
struct FaultPlan {
  double uplink_drop = 0.0;        // P(upload silently lost)
  double downlink_drop = 0.0;      // P(download silently lost)
  double uplink_corrupt = 0.0;     // P(upload payload bit-flipped)
  double downlink_corrupt = 0.0;   // P(download payload bit-flipped)
  double uplink_duplicate = 0.0;   // P(upload delivered twice)
  double uplink_delay = 0.0;       // P(upload deferred >= 1 round)
  std::size_t max_delay_rounds = 1;  // delay drawn uniformly from [1, max]
  std::vector<CrashWindow> crashes;
  std::uint64_t seed = 0x5EEDFA17;

  bool enabled() const;
  bool crashed(std::size_t client, std::uint64_t round) const;
};

struct FaultCounters {
  std::uint64_t uplink_dropped = 0;
  std::uint64_t downlink_dropped = 0;
  std::uint64_t uplink_corrupted = 0;
  std::uint64_t downlink_corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  /// Messages blackholed because an endpoint was inside a crash window.
  std::uint64_t crash_suppressed = 0;

  std::uint64_t total() const {
    return uplink_dropped + downlink_dropped + uplink_corrupted + downlink_corrupted +
           duplicated + delayed + crash_suppressed;
  }
};

/// A Bus that injects the FaultPlan's faults. Each (direction, client)
/// link owns an independent RNG stream derived from the plan seed, so
/// fault decisions on one link never shift another link's stream and a
/// fixed seed reproduces the exact fault sequence.
class FaultyBus final : public Bus {
 public:
  FaultyBus(std::size_t client_count, FaultPlan plan);

  void send_to_server(Message message) override;
  void send_to_client(std::size_t client, Message message) override;

  /// Round boundary hook (called by FedTrainer before the upload phase):
  /// advances the crash schedule and releases messages whose delay
  /// expired — they arrive carrying their original round id, so the
  /// server's staleness check sees them as late.
  void begin_round(std::uint64_t round);

  const FaultCounters& counters() const { return counters_; }
  const FaultPlan& plan() const { return plan_; }

  /// Extends Bus::save_state with the fault-injection state: the round
  /// cursor, in-flight delayed messages, every per-link RNG stream
  /// (keys sorted so checkpoint bytes are deterministic), and counters.
  void save_state(util::ByteWriter& writer) const override;
  void load_state(util::ByteReader& reader) override;

 private:
  util::Rng& link_rng(bool uplink, std::size_t client);
  /// Flips 1–4 random bytes of the payload (checksum left as stamped, so
  /// the receiver's CRC verification catches it).
  void corrupt_payload(Message& message, util::Rng& rng);

  FaultPlan plan_;
  std::uint64_t round_ = 0;
  std::vector<std::pair<std::uint64_t, Message>> delayed_;  // (deliver_at, msg)
  std::unordered_map<std::uint64_t, util::Rng> link_rngs_;
  FaultCounters counters_;
};

}  // namespace pfrl::fed
