// Round orchestration for federated training (Algorithm 1's outer loop).
//
// Each round: every client trains Ω local episodes in parallel (thread
// pool), the round's participants (K ≤ N, sampled) upload their shared
// parameters, the server aggregates and replies, clients apply their
// downloads. The trainer records per-episode rewards/metrics and the
// before/after-aggregation critic losses that Figs. 8–9, 15, 20–21 plot.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fed/bus.hpp"
#include "fed/client.hpp"
#include "fed/server.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace pfrl::fed {

struct FedTrainerConfig {
  std::size_t total_episodes = 300;  // per client
  std::size_t comm_every = 15;       // Ω: local episodes between rounds
  /// Clients uploading per round (K in Algorithm 1); 0 = all.
  std::size_t participants_per_round = 0;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  // 0 = hardware concurrency
  /// Broadcast client 0's shared parameters before training so all
  /// clients start from a common model (standard FL initialization; also
  /// what makes parameter-space similarity measurable).
  bool sync_initial_model = true;
};

struct ClientHistory {
  std::vector<double> episode_rewards;
  std::vector<sim::EpisodeMetrics> episode_metrics;
  /// Shared-critic loss right before/after applying each round's download.
  std::vector<double> critic_loss_before;
  std::vector<double> critic_loss_after;
  /// Episode index (global) at which this client joined.
  std::size_t joined_at_episode = 0;
};

struct TrainingHistory {
  std::vector<ClientHistory> clients;
  std::size_t rounds = 0;
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_bytes = 0;

  /// Mean reward across clients at each episode (clients that had not
  /// joined yet are skipped) — the curves of Figs. 8, 15.
  std::vector<double> mean_reward_curve() const;
};

class FedTrainer {
 public:
  FedTrainer(FedTrainerConfig config, std::unique_ptr<Aggregator> aggregator,
             std::vector<std::unique_ptr<FedClient>> clients);

  /// Runs until every client has executed total_episodes local episodes
  /// (counted from its own join point).
  TrainingHistory run();

  /// One round: Ω local episodes per client + aggregation/exchange.
  void step_round();

  /// Adds a client mid-training (Fig. 20); it is initialized from ψ_G
  /// when one exists. Returns its index.
  std::size_t add_client(std::unique_ptr<FedClient> client);

  std::size_t episodes_done() const { return episodes_done_; }
  std::size_t client_count() const { return clients_.size(); }
  FedClient& client(std::size_t i) { return *clients_[i]; }
  /// Null when training independently (no aggregator was supplied).
  FedServer* server() { return server_ ? server_.get() : nullptr; }
  Bus& bus() { return bus_; }
  const TrainingHistory& history() const { return history_; }
  TrainingHistory snapshot_history() const;

 private:
  bool communication_enabled() const;
  std::vector<std::size_t> pick_participants();

  FedTrainerConfig config_;
  std::unique_ptr<FedServer> server_;
  std::vector<std::unique_ptr<FedClient>> clients_;
  Bus bus_;
  util::Rng rng_;
  util::ThreadPool pool_;
  TrainingHistory history_;
  std::size_t episodes_done_ = 0;  // episodes completed by the oldest client
  std::uint64_t round_index_ = 0;
};

}  // namespace pfrl::fed
