// Round orchestration for federated training (Algorithm 1's outer loop).
//
// Each round: every client trains Ω local episodes in parallel (thread
// pool), the round's participants (K ≤ N, sampled) upload their shared
// parameters, the server aggregates and replies, clients apply their
// downloads. The trainer records per-episode rewards/metrics and the
// before/after-aggregation critic losses that Figs. 8–9, 15, 20–21 plot.
//
// A FaultPlan in the config switches the bus to a fault-injecting one
// (fed/fault.hpp): uploads/downloads may be dropped, delayed, duplicated
// or corrupted, and clients may crash for scheduled round windows. The
// trainer then tracks per-client drop/reject/staleness counters and the
// run degrades gracefully instead of aborting. With the default
// (all-zero) plan, behaviour is byte-for-byte identical to a perfect
// network.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fed/bus.hpp"
#include "fed/client.hpp"
#include "fed/fault.hpp"
#include "fed/server.hpp"
#include "obs/run_report.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace pfrl::fed {

struct FedTrainerConfig {
  std::size_t total_episodes = 300;  // per client
  std::size_t comm_every = 15;       // Ω: local episodes between rounds
  /// Clients uploading per round (K in Algorithm 1); 0 = all.
  std::size_t participants_per_round = 0;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  // 0 = hardware concurrency
  /// Broadcast client 0's shared parameters before training so all
  /// clients start from a common model (standard FL initialization; also
  /// what makes parameter-space similarity measurable).
  bool sync_initial_model = true;
  /// Fault model applied to the bus; all-zero (default) = perfect network.
  FaultPlan faults;
  /// Valid uploads the server requires before aggregating (quorum).
  std::size_t min_participants = 1;
  /// Invoke the checkpoint sink every N completed rounds (0 = only on
  /// stop/abort/completion). Has no effect until a sink is attached.
  std::size_t checkpoint_every_n_rounds = 0;
};

struct ClientHistory {
  std::vector<double> episode_rewards;
  std::vector<sim::EpisodeMetrics> episode_metrics;
  /// Shared-critic loss right before/after applying each round's download.
  std::vector<double> critic_loss_before;
  std::vector<double> critic_loss_after;
  /// Per-round learning diagnostics: the mean of rl::UpdateDiagnostics
  /// over the round's local episodes. Rounds this client spent crashed
  /// contribute a default-constructed entry so indices stay aligned with
  /// the round counter.
  std::vector<rl::UpdateDiagnostics> round_diagnostics;
  /// Episode index (global) at which this client joined.
  std::size_t joined_at_episode = 0;

  // Fault-tolerance accounting (all zero on a perfect network).
  std::size_t uploads_sent = 0;
  std::size_t downloads_applied = 0;
  /// Downloads discarded by validation (corrupt/truncated/mis-sized).
  std::size_t downloads_rejected = 0;
  /// Rounds spent inside a crash window (no training, no traffic).
  std::size_t rounds_crashed = 0;
  /// Communication rounds since a download was last applied; the client
  /// is running on a stale public critic meanwhile (α compensates).
  std::size_t staleness = 0;
  std::size_t max_staleness = 0;
};

/// The attention-weight matrix one aggregation round produced (Alg. 1,
/// Eqs. 18–22): weights(r, c) is how much participant r's personalized
/// model drew from participant c's upload. `participants` maps rows and
/// columns to client ids.
struct AttentionRoundRecord {
  std::uint64_t round = 0;
  std::vector<int> participants;
  nn::Matrix weights;
};

struct TrainingHistory {
  std::vector<ClientHistory> clients;
  std::size_t rounds = 0;
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_bytes = 0;
  /// Bus-level injected-fault counts (zero when faults are disabled).
  FaultCounters faults;
  /// Server-side upload validation outcomes.
  ServerStats server;
  /// Byzantine-defense outcomes (all-zero and inactive when no
  /// RobustAggregator wraps the aggregation).
  bool defense_active = false;
  DefenseStats defense;
  /// Per-client reputation at snapshot time (defense active only).
  std::vector<ClientReputation> reputation;
  /// Attention matrices per aggregation round (empty for non-attention
  /// aggregators, which report no weights).
  std::vector<AttentionRoundRecord> attention_rounds;

  /// Mean reward across clients at each episode (clients that had not
  /// joined yet are skipped) — the curves of Figs. 8, 15.
  std::vector<double> mean_reward_curve() const;
};

/// Renders a TrainingHistory as a self-contained JSON object — the
/// `history` field of a run directory's summary.json (rendered here so
/// obs::RunReporter stays independent of fed types).
std::string training_history_json(const TrainingHistory& history);

/// Renders one client's history as a JSON object — the element shape of
/// training_history_json's "clients" array, and what a networked client
/// process writes with --history-out, so per-client histories from the
/// two runtimes diff directly.
std::string client_history_json(const ClientHistory& history);

/// Appends one training burst (Ω local episodes) to `history`: per-episode
/// rewards/metrics plus the round's mean-diagnostics entry. Shared by
/// FedTrainer::step_round and the networked per-process client so both
/// record histories identically.
void record_training_round(ClientHistory& history, const std::vector<rl::EpisodeStats>& stats);

/// Checkpoint codecs for one client's history (FedTrainer full-state
/// snapshots and the networked client's per-process checkpoints).
void serialize_client_history(const ClientHistory& history, util::ByteWriter& writer);
ClientHistory deserialize_client_history(util::ByteReader& reader);

class FedTrainer {
 public:
  FedTrainer(FedTrainerConfig config, std::unique_ptr<Aggregator> aggregator,
             std::vector<std::unique_ptr<FedClient>> clients);

  /// Runs until every client has executed total_episodes local episodes
  /// (counted from its own join point).
  TrainingHistory run();

  /// One round: Ω local episodes per client + aggregation/exchange.
  void step_round();

  /// Adds a client mid-training (Fig. 20); it is initialized from ψ_G
  /// when one exists. Returns its index.
  std::size_t add_client(std::unique_ptr<FedClient> client);

  std::size_t episodes_done() const { return episodes_done_; }
  std::size_t client_count() const { return clients_.size(); }
  FedClient& client(std::size_t i) { return *clients_[i]; }
  const FedClient& client(std::size_t i) const { return *clients_[i]; }
  /// Null when training independently (no aggregator was supplied).
  FedServer* server() { return server_ ? server_.get() : nullptr; }
  const FedServer* server() const { return server_ ? server_.get() : nullptr; }
  Bus& bus() { return *bus_; }
  /// Non-null only when the config carried an enabled FaultPlan.
  FaultyBus* faulty_bus() { return faulty_bus_; }
  const TrainingHistory& history() const { return history_; }
  TrainingHistory snapshot_history() const;

  /// Attaches a run reporter (not owned; may be null to detach). Every
  /// step_round then emits a LearningRoundEvent, and run() stops at the
  /// next round boundary when the reporter's watchdog requests an abort.
  void set_reporter(obs::RunReporter* reporter) { reporter_ = reporter; }
  obs::RunReporter* reporter() { return reporter_; }

  /// Rounds completed so far (also the id of the next round to run).
  std::uint64_t round_index() const { return round_index_; }

  /// Serializes the complete training state — counters, the participant-
  /// sampling RNG, per-client agent state, the full history, bus traffic
  /// (and fault-injection state), and the server/aggregator — such that a
  /// trainer restored from these bytes continues bit-identically.
  void serialize_state(util::ByteWriter& writer) const;
  /// Restores state written by serialize_state() into a trainer built
  /// from the same configuration. Throws std::invalid_argument on a
  /// topology mismatch (client count / ids / algorithms).
  void deserialize_state(util::ByteReader& reader);

  /// Attaches a checkpoint sink, called with the trainer and the just-
  /// completed round index: every config.checkpoint_every_n_rounds
  /// rounds, on a watchdog abort, on a cooperative stop, and when
  /// training completes. The sink is the trainer's only link to the
  /// checkpoint store (core layer), keeping this layer file-format-free.
  using CheckpointSink = std::function<void(const FedTrainer&, std::uint64_t)>;
  void set_checkpoint_sink(CheckpointSink sink) { checkpoint_sink_ = std::move(sink); }

  /// Adjusts the periodic-checkpoint cadence after construction (the CLI
  /// builds the trainer through core::Federation and only later learns
  /// whether --checkpoint-dir was given).
  void set_checkpoint_every(std::size_t rounds) { config_.checkpoint_every_n_rounds = rounds; }

  /// Cooperative shutdown: `flag` (not owned; may be a signal handler's
  /// target) is polled at every round boundary — when set, run() writes a
  /// final checkpoint through the sink and returns early.
  void set_stop_flag(const std::atomic<bool>* flag) { stop_flag_ = flag; }

 private:
  bool communication_enabled() const;
  std::vector<std::size_t> pick_participants();
  /// Builds and records this round's LearningRoundEvent (reporter set).
  void emit_round_event(std::uint64_t round, const std::vector<char>& crashed,
                        std::size_t episodes_this_round);

  FedTrainerConfig config_;
  std::unique_ptr<FedServer> server_;
  std::vector<std::unique_ptr<FedClient>> clients_;
  std::unique_ptr<Bus> bus_;
  FaultyBus* faulty_bus_ = nullptr;  // aliases bus_ when faults are on
  util::Rng rng_;
  util::ThreadPool pool_;
  TrainingHistory history_;
  obs::RunReporter* reporter_ = nullptr;
  CheckpointSink checkpoint_sink_;
  const std::atomic<bool>* stop_flag_ = nullptr;
  std::size_t episodes_done_ = 0;  // episodes completed by the oldest client
  std::uint64_t round_index_ = 0;
};

}  // namespace pfrl::fed
