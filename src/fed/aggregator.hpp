// Server-side aggregation strategies.
//
// All strategies consume the same input — one flattened parameter vector
// per participating client, stacked into a K × P matrix — and emit one
// personalized vector per participant plus a global model ψ_G for clients
// that skipped the round (Algorithm 1, lines 9–15).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.hpp"

namespace pfrl::fed {

struct AggregationInput {
  std::vector<int> client_ids;  // participant ids, row-aligned with models
  nn::Matrix models;            // K × P flattened parameters (Θ in Eq. 21)
};

struct AggregationOutput {
  /// personalized[k] is the model returned to client_ids[k] (Eq. 21).
  std::vector<std::vector<float>> personalized;
  /// ψ_G — mean of the personalized models (Eq. 22); also the round's
  /// update for non-participants and the initializer for joiners.
  std::vector<float> global_model;
  /// The K × K weight matrix actually used (identity-free diagnostics for
  /// the Figs. 11–13 heat-maps; FedAvg reports the uniform matrix).
  nn::Matrix weights;
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  virtual AggregationOutput aggregate(const AggregationInput& input) = 0;
  virtual std::string name() const = 0;

  /// Persists mutable cross-round state (momentum buffers, lazily created
  /// attention modules) into a checkpoint. Stateless strategies — FedAvg,
  /// fixed-weight — inherit the no-op.
  virtual void save_state(util::ByteWriter& writer) const { (void)writer; }
  /// Restores state written by save_state().
  virtual void load_state(util::ByteReader& reader) { (void)reader; }
};

/// True when every entry of `models` is finite. Aggregators call this as
/// a last line of defense: one diverged (NaN/Inf) upload averaged into
/// ψ_G would poison every client's critic, so such inputs are rejected
/// with std::invalid_argument. (FedServer filters non-finite uploads
/// per-message before they ever reach an aggregator.)
bool models_all_finite(const nn::Matrix& models);

/// Shared implementation: personalized_k = Σ_j W_kj · Θ_j for an arbitrary
/// row-stochastic W, and ψ_G = mean of the personalized rows. The K×P
/// product lands in `personalized_scratch` when provided (capacity reused
/// across rounds by long-lived aggregators) or in a local otherwise.
AggregationOutput weighted_aggregate(const AggregationInput& input, const nn::Matrix& weights,
                                     nn::Matrix* personalized_scratch = nullptr);

/// Aggregates with a caller-supplied constant weight matrix — the
/// Fed-Diff-weight / Fed-Same2-weight configurations of §3.3 (Fig. 10).
class FixedWeightAggregator final : public Aggregator {
 public:
  explicit FixedWeightAggregator(nn::Matrix weights, std::string label = "fixed-weight");

  AggregationOutput aggregate(const AggregationInput& input) override;
  std::string name() const override { return label_; }

 private:
  nn::Matrix weights_;
  std::string label_;
};

}  // namespace pfrl::fed
