// A federated client: one cloud provider's scheduling environment plus
// its learning agent, with algorithm-specific wire behaviour.
//
// What crosses the wire per algorithm:
//   PFRL-DM   — the public critic ψ only (§5.2 highlights the saving);
//   FedAvg    — actor + critic (the paper's FedAvg baseline);
//   MFPO      — actor + critic, momentum applied on the server;
//   Independent — nothing (local PPO baseline).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "env/scheduling_env.hpp"
#include "fed/message.hpp"
#include "rl/dual_critic_ppo.hpp"
#include "rl/ppo.hpp"

namespace pfrl::fed {

enum class FedAlgorithm {
  kIndependent,
  kFedAvg,
  kMfpo,
  kPfrlDm,
  /// FedAvg + client-side proximal term μ‖θ − θ_G‖² (Li et al., MLSys'20).
  kFedProx,
  /// FedAvg + client-side KL(π_θ ‖ π_G) penalty (Xie & Song, JSAC'23).
  kFedKl,
};

std::string algorithm_name(FedAlgorithm algorithm);

struct FedClientConfig {
  int id = 0;
  FedAlgorithm algorithm = FedAlgorithm::kPfrlDm;
  rl::PpoConfig ppo;
  float fedprox_mu = 0.01F;  // proximal strength (kFedProx)
  float fedkl_beta = 0.5F;   // KL penalty strength (kFedKl)
  /// Environments stepped in lockstep per training sweep (rl::VecEnv).
  /// 1 = the serial rollout path, bit-identical to earlier versions;
  /// E > 1 batches policy inference across E episodes (DESIGN.md
  /// "Vectorized rollout").
  std::size_t envs_per_client = 1;
};

class FedClient {
 public:
  FedClient(FedClientConfig config, env::SchedulingEnvConfig env_config,
            workload::Trace train_trace);

  int id() const { return config_.id; }
  FedAlgorithm algorithm() const { return config_.algorithm; }

  /// Runs `episodes` local training episodes (Ω in Algorithm 1).
  std::vector<rl::EpisodeStats> train_episodes(std::size_t episodes);

  /// Serializes the parameters this algorithm shares.
  std::vector<std::uint8_t> make_upload();
  /// Applies a (personalized or global) model from the server.
  void apply_download(std::span<const std::uint8_t> payload);

  /// Validated download path used under the fault model: verifies the
  /// message checksum, decodes, and checks shape and finiteness before
  /// touching any parameters. On failure the model is left untouched and
  /// false is returned (`reason`, if given, says why) — the client keeps
  /// its previous public critic and the adaptive α (Eq. 15) down-weights
  /// it as it goes stale, instead of the federation aborting.
  bool try_apply_download(const Message& message, std::string* reason = nullptr);
  /// Number of floats in an upload — P for the aggregator.
  std::size_t upload_param_count();

  /// Loss of the critic this algorithm shares, evaluated on the agent's
  /// last trajectory buffer (Fig. 9's before/after-aggregation series).
  double shared_critic_loss();

  /// Greedy (masked) evaluation on `test_trace`; the training trace and
  /// episode state are restored afterwards.
  rl::EpisodeStats evaluate_on(workload::Trace test_trace);

  /// Raw-policy evaluation: `rollouts` stochastic episodes, metrics
  /// averaged. This is the deployment-faithful measurement — a policy
  /// that drifted toward idling or infeasible picks pays for it in
  /// waiting time instead of being rescued by an action mask.
  sim::EpisodeMetrics evaluate_on_sampled(workload::Trace test_trace, std::size_t rollouts);

  rl::PpoAgent& agent() { return *agent_; }
  const rl::PpoAgent& agent() const { return *agent_; }
  /// Non-null only for PFRL-DM clients.
  rl::DualCriticPpoAgent* dual_agent();
  env::SchedulingEnv& environment() { return env_; }

  /// Persists this client's identity tag plus the agent's complete
  /// training state (networks, optimizer moments, RNG stream, buffer).
  void save_state(util::ByteWriter& writer) const;
  /// Restores state written by save_state(). Throws std::invalid_argument
  /// when the stored id or algorithm disagrees with this client — loading
  /// a checkpoint into the wrong slot must fail loudly, not silently
  /// cross-load weights.
  void load_state(util::ByteReader& reader);

 private:
  FedClientConfig config_;
  env::SchedulingEnv env_;
  workload::Trace train_trace_;
  std::unique_ptr<rl::PpoAgent> agent_;
  /// Built only when envs_per_client > 1: E replicas of the training env
  /// (same config, same trace) stepped in lockstep by train_episodes.
  std::unique_ptr<rl::VecEnv> vec_env_;
};

/// FNV-1a hash over one client's wire-relevant architecture: algorithm,
/// state/action dimensions, and actor/critic(/public critic) parameter
/// counts — deliberately excluding the client id, so every member of a
/// homogeneous federation shares the hash. Two processes agree on this
/// value iff their uploads/downloads are shape-compatible; the networked
/// handshake rejects a Hello whose hash differs from the server's.
std::uint64_t client_arch_hash(const FedClient& client);

}  // namespace pfrl::fed
