#include "fed/aggregator.hpp"

#include <cmath>
#include <stdexcept>

namespace pfrl::fed {

bool models_all_finite(const nn::Matrix& models) {
  for (const float v : models.flat())
    if (!std::isfinite(v)) return false;
  return true;
}

AggregationOutput weighted_aggregate(const AggregationInput& input, const nn::Matrix& weights,
                                     nn::Matrix* personalized_scratch) {
  const std::size_t k = input.models.rows();
  const std::size_t p = input.models.cols();
  if (weights.rows() != k || weights.cols() != k)
    throw std::invalid_argument("weighted_aggregate: weight matrix must be K x K");
  if (input.client_ids.size() != k)
    throw std::invalid_argument("weighted_aggregate: client ids not row-aligned");
  if (!models_all_finite(input.models))
    throw std::invalid_argument("weighted_aggregate: non-finite model upload");

  AggregationOutput out;
  out.weights = weights;
  out.personalized.resize(k);
  out.global_model.assign(p, 0.0F);

  // ψ_k = Σ_j W_kj Θ_j  (Eq. 21) — a K×K by K×P product.
  nn::Matrix local_product;
  nn::Matrix& personalized = personalized_scratch != nullptr ? *personalized_scratch : local_product;
  weights.matmul_into(input.models, personalized);
  for (std::size_t i = 0; i < k; ++i) {
    const auto row = personalized.row(i);
    out.personalized[i].assign(row.begin(), row.end());
    for (std::size_t j = 0; j < p; ++j) out.global_model[j] += row[j];
  }
  // ψ_G = (1/K) Σ ψ_k  (Eq. 22).
  const float inv_k = 1.0F / static_cast<float>(k);
  for (float& v : out.global_model) v *= inv_k;
  return out;
}

FixedWeightAggregator::FixedWeightAggregator(nn::Matrix weights, std::string label)
    : weights_(std::move(weights)), label_(std::move(label)) {}

AggregationOutput FixedWeightAggregator::aggregate(const AggregationInput& input) {
  return weighted_aggregate(input, weights_);
}

}  // namespace pfrl::fed
