#include "fed/client.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/serialization.hpp"

namespace pfrl::fed {

std::string algorithm_name(FedAlgorithm algorithm) {
  switch (algorithm) {
    case FedAlgorithm::kIndependent: return "PPO";
    case FedAlgorithm::kFedAvg: return "FedAvg";
    case FedAlgorithm::kMfpo: return "MFPO";
    case FedAlgorithm::kPfrlDm: return "PFRL-DM";
    case FedAlgorithm::kFedProx: return "FedProx";
    case FedAlgorithm::kFedKl: return "FedKL";
  }
  return "?";
}

namespace {
std::unique_ptr<rl::PpoAgent> make_agent(FedAlgorithm algorithm, std::size_t state_dim,
                                         int action_count, const rl::PpoConfig& ppo) {
  if (algorithm == FedAlgorithm::kPfrlDm)
    return std::make_unique<rl::DualCriticPpoAgent>(state_dim, action_count, ppo);
  return std::make_unique<rl::PpoAgent>(state_dim, action_count, ppo);
}
}  // namespace

FedClient::FedClient(FedClientConfig config, env::SchedulingEnvConfig env_config,
                     workload::Trace train_trace)
    : config_(config),
      env_(env_config, train_trace),
      train_trace_(std::move(train_trace)),
      agent_(make_agent(config.algorithm, env_.state_dim(), env_.action_count(), config.ppo)) {
  if (config_.envs_per_client == 0) config_.envs_per_client = 1;
  if (config_.envs_per_client > 1) {
    // E replicas of the training env, stepped in lockstep so policy
    // inference over a sweep runs as one forward_batch GEMM.
    std::vector<std::unique_ptr<env::Env>> replicas;
    replicas.reserve(config_.envs_per_client);
    for (std::size_t e = 0; e < config_.envs_per_client; ++e)
      replicas.push_back(std::make_unique<env::SchedulingEnv>(env_config, train_trace_));
    vec_env_ = std::make_unique<rl::VecEnv>(std::move(replicas));
  }
}

std::vector<rl::EpisodeStats> FedClient::train_episodes(std::size_t episodes) {
  std::vector<rl::EpisodeStats> stats;
  stats.reserve(episodes);
  if (vec_env_ == nullptr) {
    for (std::size_t e = 0; e < episodes; ++e) stats.push_back(agent_->train_episode(env_));
    return stats;
  }
  std::size_t remaining = episodes;
  while (remaining > 0) {
    const std::size_t width = std::min(config_.envs_per_client, remaining);
    std::vector<rl::EpisodeStats> sweep = agent_->train_sweep(*vec_env_, width);
    for (rl::EpisodeStats& s : sweep) stats.push_back(std::move(s));
    remaining -= width;
  }
  return stats;
}

rl::DualCriticPpoAgent* FedClient::dual_agent() {
  return dynamic_cast<rl::DualCriticPpoAgent*>(agent_.get());
}

std::vector<std::uint8_t> FedClient::make_upload() {
  util::ByteWriter writer;
  switch (config_.algorithm) {
    case FedAlgorithm::kIndependent:
      break;  // nothing is shared
    case FedAlgorithm::kPfrlDm: {
      const std::vector<float> psi = dual_agent()->public_critic().flatten();
      writer.write_f32_span(psi);
      break;
    }
    case FedAlgorithm::kFedAvg:
    case FedAlgorithm::kMfpo:
    case FedAlgorithm::kFedProx:
    case FedAlgorithm::kFedKl: {
      // Actor and critic travel as one concatenated vector so the
      // aggregator treats them uniformly.
      std::vector<float> flat = agent_->actor().flatten();
      const std::vector<float> critic = agent_->critic().flatten();
      flat.insert(flat.end(), critic.begin(), critic.end());
      writer.write_f32_span(flat);
      break;
    }
  }
  return writer.take();
}

void FedClient::apply_download(std::span<const std::uint8_t> payload) {
  util::ByteReader reader(payload);
  const std::vector<float> flat = reader.read_f32_vector();
  switch (config_.algorithm) {
    case FedAlgorithm::kIndependent:
      throw std::logic_error("FedClient: independent client received a model");
    case FedAlgorithm::kPfrlDm:
      dual_agent()->load_public_critic(flat);
      break;
    case FedAlgorithm::kFedAvg:
    case FedAlgorithm::kMfpo:
    case FedAlgorithm::kFedProx:
    case FedAlgorithm::kFedKl: {
      const std::size_t actor_n = agent_->actor().param_count();
      const std::size_t critic_n = agent_->critic().param_count();
      if (flat.size() != actor_n + critic_n)
        throw std::invalid_argument("FedClient: download size mismatch");
      const auto actor_part = std::span<const float>(flat).subspan(0, actor_n);
      const auto critic_part = std::span<const float>(flat).subspan(actor_n, critic_n);
      agent_->load_actor(actor_part);
      agent_->load_critic(critic_part);
      // The regularized variants also anchor local training to the model
      // they just received.
      if (config_.algorithm == FedAlgorithm::kFedProx)
        agent_->set_proximal_anchor(actor_part, critic_part, config_.fedprox_mu);
      if (config_.algorithm == FedAlgorithm::kFedKl)
        agent_->set_kl_anchor(actor_part, config_.fedkl_beta);
      break;
    }
  }
}

bool FedClient::try_apply_download(const Message& message, std::string* reason) {
  const auto fail = [reason](const char* why) {
    if (reason) *reason = why;
    return false;
  };
  if (config_.algorithm == FedAlgorithm::kIndependent)
    return fail("independent client accepts no downloads");
  if (message.type != MessageType::kModelPersonalized &&
      message.type != MessageType::kModelGlobal)
    return fail("unexpected message type");
  if (!checksum_ok(message)) return fail("checksum mismatch (corrupted payload)");
  std::vector<float> flat;
  try {
    util::ByteReader reader(message.payload);
    flat = reader.read_f32_vector();
    if (!reader.exhausted()) return fail("trailing bytes");
  } catch (const std::exception&) {
    return fail("truncated payload");
  }
  if (flat.size() != upload_param_count()) return fail("parameter count mismatch");
  for (const float v : flat)
    if (!std::isfinite(v)) return fail("non-finite parameters");
  // Validated; the throwing paths below cannot fire now.
  switch (config_.algorithm) {
    case FedAlgorithm::kIndependent:
      return false;  // unreachable
    case FedAlgorithm::kPfrlDm:
      dual_agent()->load_public_critic(flat);
      break;
    case FedAlgorithm::kFedAvg:
    case FedAlgorithm::kMfpo:
    case FedAlgorithm::kFedProx:
    case FedAlgorithm::kFedKl:
      apply_download(message.payload);
      break;
  }
  return true;
}

std::size_t FedClient::upload_param_count() {
  switch (config_.algorithm) {
    case FedAlgorithm::kIndependent: return 0;
    case FedAlgorithm::kPfrlDm: return dual_agent()->public_critic().param_count();
    case FedAlgorithm::kFedAvg:
    case FedAlgorithm::kMfpo:
    case FedAlgorithm::kFedProx:
    case FedAlgorithm::kFedKl:
      return agent_->actor().param_count() + agent_->critic().param_count();
  }
  return 0;
}

double FedClient::shared_critic_loss() {
  if (auto* dual = dual_agent()) return dual->last_public_critic_loss();
  return agent_->last_critic_loss();
}

rl::EpisodeStats FedClient::evaluate_on(workload::Trace test_trace) {
  env_.set_trace(std::move(test_trace));
  const rl::EpisodeStats stats = agent_->evaluate(env_);
  env_.set_trace(train_trace_);
  return stats;
}

sim::EpisodeMetrics FedClient::evaluate_on_sampled(workload::Trace test_trace,
                                                   std::size_t rollouts) {
  env_.set_trace(std::move(test_trace));
  std::vector<sim::EpisodeMetrics> runs;
  runs.reserve(rollouts);
  for (std::size_t r = 0; r < rollouts; ++r)
    runs.push_back(agent_->evaluate_sampled(env_, /*masked=*/false).metrics);
  env_.set_trace(train_trace_);
  return sim::average_metrics(runs);
}

void FedClient::save_state(util::ByteWriter& writer) const {
  writer.write_i64(config_.id);
  writer.write_u8(static_cast<std::uint8_t>(config_.algorithm));
  writer.write_u64(config_.envs_per_client);
  agent_->save_training_state(writer);
}

void FedClient::load_state(util::ByteReader& reader) {
  const auto id = static_cast<int>(reader.read_i64());
  const auto algorithm = static_cast<FedAlgorithm>(reader.read_u8());
  if (id != config_.id)
    throw std::invalid_argument("FedClient::load_state: checkpoint is for client " +
                                std::to_string(id) + ", not client " +
                                std::to_string(config_.id));
  if (algorithm != config_.algorithm)
    throw std::invalid_argument("FedClient::load_state: algorithm mismatch (checkpoint: " +
                                algorithm_name(algorithm) + ", client: " +
                                algorithm_name(config_.algorithm) + ")");
  // Sweep width shapes the RNG-stream consumption pattern, so resuming at
  // a different width could not reproduce the original run bit-for-bit.
  const std::uint64_t envs = reader.read_u64();
  if (envs != config_.envs_per_client)
    throw std::invalid_argument("FedClient::load_state: envs_per_client mismatch (checkpoint: " +
                                std::to_string(envs) + ", client: " +
                                std::to_string(config_.envs_per_client) + ")");
  agent_->load_training_state(reader);
}

std::uint64_t client_arch_hash(const FedClient& client) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (i * 8)) & 0xFF;
      hash *= 0x100000001B3ULL;  // FNV prime
    }
  };
  const rl::PpoAgent& agent = client.agent();
  const auto* dual = dynamic_cast<const rl::DualCriticPpoAgent*>(&agent);
  mix(static_cast<std::uint64_t>(client.algorithm()));
  mix(agent.state_dim());
  mix(static_cast<std::uint64_t>(agent.action_count()));
  mix(agent.actor().param_count());
  mix(agent.critic().param_count());
  mix(dual ? dual->public_critic().param_count() : 0);
  return hash;
}

}  // namespace pfrl::fed
