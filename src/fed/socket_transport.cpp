#include "fed/socket_transport.hpp"

#include <sys/socket.h>

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pfrl::fed {

namespace {

using namespace std::chrono_literals;

/// How often blocked reader/accept loops wake to check the stop flag.
constexpr std::chrono::milliseconds kLoopTick{200};

util::IoResult write_frame_bytes(int fd, const std::vector<std::uint8_t>& bytes,
                                 std::chrono::milliseconds deadline) {
  return util::write_full(fd, bytes.data(), bytes.size(), deadline);
}

Message make_control(MessageType type, int sender, std::uint64_t round,
                     std::vector<std::uint8_t> payload = {}) {
  return make_message(type, sender, round, std::move(payload));
}

std::vector<std::uint8_t> string_payload(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

}  // namespace

std::vector<std::uint8_t> encode_frame(std::uint64_t seq, const Message& message) {
  util::ByteWriter body_writer;
  serialize_message(message, body_writer);
  const std::vector<std::uint8_t> body = std::move(body_writer).take();

  util::ByteWriter writer;
  writer.write_u32(kFrameMagic);
  writer.write_u32(static_cast<std::uint32_t>(body.size()));
  writer.write_u64(seq);
  writer.write_u32(util::crc32(body));
  writer.write_raw_span(body);
  return std::move(writer).take();
}

std::vector<std::uint8_t> encode_frame(std::uint64_t seq, const Message& message,
                                       obs::TraceContext context) {
  if (!context.valid()) return encode_frame(seq, message);
  util::ByteWriter body_writer;
  serialize_message(message, body_writer);
  const std::vector<std::uint8_t> body = std::move(body_writer).take();

  util::ByteWriter writer;
  writer.write_u32(kFrameMagicTraced);
  writer.write_u32(static_cast<std::uint32_t>(body.size()));
  writer.write_u64(seq);
  writer.write_u32(util::crc32(body));
  writer.write_u64(context.trace_id);
  writer.write_u64(context.span_id);
  writer.write_raw_span(body);
  return std::move(writer).take();
}

FrameResult read_frame(int fd, Frame& out, std::chrono::milliseconds idle_timeout,
                       std::chrono::milliseconds io_timeout) {
  // Poll-only wait for the first byte: an idle timeout here never
  // half-consumes a header, so the caller can spin a stop-flag tick.
  if (!util::wait_readable(fd, idle_timeout)) return FrameResult::kTimeout;

  std::uint8_t header[kFrameHeaderBytes];
  switch (util::read_full(fd, header, sizeof(header), io_timeout)) {
    case util::IoResult::kOk:
      break;
    case util::IoResult::kClosed:
      return FrameResult::kClosed;
    case util::IoResult::kTimeout:  // wedged mid-header: stream is dead
    case util::IoResult::kError:
      return FrameResult::kError;
  }

  util::ByteReader reader(std::span<const std::uint8_t>(header, sizeof(header)));
  const std::uint32_t magic = reader.read_u32();
  const std::uint32_t body_len = reader.read_u32();
  const std::uint64_t seq = reader.read_u64();
  const std::uint32_t crc = reader.read_u32();
  if ((magic != kFrameMagic && magic != kFrameMagicTraced) || body_len > kMaxFrameBody)
    return FrameResult::kError;

  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  if (magic == kFrameMagicTraced) {
    std::uint8_t trace_ext[kTracedFrameExtraBytes];
    switch (util::read_full(fd, trace_ext, sizeof(trace_ext), io_timeout)) {
      case util::IoResult::kOk:
        break;
      case util::IoResult::kClosed:
        return FrameResult::kClosed;
      case util::IoResult::kTimeout:
      case util::IoResult::kError:
        return FrameResult::kError;
    }
    util::ByteReader ext_reader(std::span<const std::uint8_t>(trace_ext, sizeof(trace_ext)));
    trace_id = ext_reader.read_u64();
    span_id = ext_reader.read_u64();
  }

  std::vector<std::uint8_t> body(body_len);
  if (body_len > 0) {
    switch (util::read_full(fd, body.data(), body.size(), io_timeout)) {
      case util::IoResult::kOk:
        break;
      case util::IoResult::kClosed:
        return FrameResult::kClosed;
      case util::IoResult::kTimeout:
      case util::IoResult::kError:
        return FrameResult::kError;
    }
  }
  if (util::crc32(body) != crc) return FrameResult::kBadCrc;

  try {
    util::ByteReader body_reader(body);
    out.message = deserialize_message(body_reader);
  } catch (const std::out_of_range&) {
    // CRC matched but the body is not a Message: peer speaks a different
    // dialect — tear the stream down rather than guess at framing.
    return FrameResult::kError;
  }
  out.message.trace_id = trace_id;
  out.message.span_id = span_id;
  out.seq = seq;
  return FrameResult::kOk;
}

// --- Server ------------------------------------------------------------

SocketServerTransport::SocketServerTransport(const util::Endpoint& endpoint,
                                             std::size_t client_count, TransportConfig config,
                                             HandshakeValidator validator)
    : endpoint_(endpoint), config_(config), validator_(std::move(validator)) {
  util::ignore_sigpipe();
  listen_fd_ = util::listen_endpoint(endpoint_);
  endpoint_ = util::local_endpoint(listen_fd_.get(), endpoint_);
  slots_.reserve(client_count);
  for (std::size_t i = 0; i < client_count; ++i) slots_.push_back(std::make_unique<Slot>());
  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketServerTransport::~SocketServerTransport() { stop(); }

void SocketServerTransport::accept_loop() {
  while (!stop_.load()) {
    util::ScopedFd conn;
    try {
      conn = util::accept_connection(listen_fd_.get(), kLoopTick);
    } catch (const std::runtime_error&) {
      if (stop_.load()) break;
      continue;  // transient accept error; keep serving
    }
    if (!conn.valid()) continue;  // tick: recheck stop flag
    const std::scoped_lock lock(threads_mutex_);
    if (stop_.load()) break;
    connection_threads_.emplace_back(
        [this, fd = std::move(conn)]() mutable { connection_loop(std::move(fd)); });
  }
}

void SocketServerTransport::connection_loop(util::ScopedFd fd) {
  // 1. Handshake: the first frame must be a control kHello.
  Frame frame;
  const FrameResult hr =
      read_frame(fd.get(), frame, config_.handshake_timeout, config_.handshake_timeout);
  if (hr != FrameResult::kOk || frame.seq != 0 ||
      frame.message.type != MessageType::kHello || !checksum_ok(frame.message))
    return;  // not a federation client; drop silently

  HelloPayload hello;
  try {
    hello = decode_hello(frame.message.payload);
  } catch (const std::out_of_range&) {
    return;
  }

  std::string reason;
  WelcomePayload welcome;
  bool accepted = hello.protocol >= kMinTransportProtocolVersion &&
                  hello.protocol <= kTransportProtocolVersion && hello.client_id >= 0 &&
                  static_cast<std::size_t>(hello.client_id) < slots_.size();
  if (!accepted) reason = "unknown client id or protocol version";
  if (accepted && validator_ && !validator_(hello, reason, welcome)) accepted = false;
  // Run the lower of the two dialects; the Welcome echoes the decision so
  // both ends agree on whether traced frames may appear on this stream.
  const std::uint32_t negotiated = std::min(hello.protocol, kTransportProtocolVersion);

  if (!accepted) {
    const Message reject =
        make_control(MessageType::kHelloReject, -1, 0, string_payload(reason));
    write_frame_bytes(fd.get(), encode_frame(0, reject), config_.send_deadline);
    return;
  }

  const auto id = static_cast<std::size_t>(hello.client_id);
  Slot& slot = *slots_[id];
  std::uint64_t my_generation = 0;
  bool is_reconnect = false;
  const int raw_fd = fd.get();
  {
    const std::scoped_lock lock(slot.write_mutex);
    if (slot.fd.valid()) {
      // Takeover: wake the old reader, then park the old fd so its number
      // cannot be reused while that thread is still winding down.
      ::shutdown(slot.fd.get(), SHUT_RDWR);
      slot.graveyard = std::move(slot.fd);
      is_reconnect = true;
    }
    is_reconnect = is_reconnect || slot.generation > 0;
    slot.fd = std::move(fd);
    my_generation = ++slot.generation;
    slot.last_seen = std::chrono::steady_clock::now();
    slot.negotiated = negotiated;
    welcome.last_seq_seen = slot.last_seq_in;
    welcome.protocol = negotiated;

    const Message accept_msg =
        make_control(MessageType::kWelcome, -1, welcome.current_round, encode_welcome(welcome));
    if (write_frame_bytes(raw_fd, encode_frame(0, accept_msg), config_.send_deadline) !=
        util::IoResult::kOk) {
      if (slot.generation == my_generation) slot.fd.reset();
      return;
    }
  }
  {
    const std::scoped_lock lock(stats_mutex_);
    ++stats_.handshakes;
    if (is_reconnect) ++stats_.reconnects;
  }
  PFRL_COUNT("net/handshakes", 1);
  if (is_reconnect) PFRL_COUNT("net/reconnects", 1);

  // Surface the join to the runtime (collect init uploads, rejoins, ...).
  push_inbox(make_control(MessageType::kHello, static_cast<int>(id), hello.resume_round,
                          frame.message.payload));

  // 2. Frame loop.
  while (!stop_.load()) {
    {
      const std::scoped_lock lock(slot.write_mutex);
      if (slot.generation != my_generation) return;  // taken over
    }
    const FrameResult fr = read_frame(raw_fd, frame, kLoopTick, config_.send_deadline);
    if (fr == FrameResult::kTimeout) continue;  // idle tick
    if (fr == FrameResult::kBadCrc) {
      const std::scoped_lock lock(stats_mutex_);
      ++stats_.crc_dropped;
      PFRL_COUNT("net/crc_dropped", 1);
      continue;
    }
    if (fr != FrameResult::kOk) break;  // closed / desync

    const std::scoped_lock lock(slot.write_mutex);
    if (slot.generation != my_generation) return;
    slot.last_seen = std::chrono::steady_clock::now();
    if (frame.seq == 0) {
      if (frame.message.type == MessageType::kHeartbeat) {
        const std::scoped_lock stats_lock(stats_mutex_);
        ++stats_.heartbeats_seen;
        PFRL_COUNT("net/heartbeats_seen", 1);
      }
      continue;  // control frames never reach the inbox
    }
    if (frame.seq <= slot.last_seq_in) {
      const std::scoped_lock stats_lock(stats_mutex_);
      ++stats_.duplicates_dropped;
      PFRL_COUNT("net/duplicates_dropped", 1);
      continue;
    }
    slot.last_seq_in = frame.seq;
    // The handshake bound this connection to `id`; the in-band sender
    // field is untrusted and gets overwritten.
    frame.message.sender = static_cast<int>(id);
    push_inbox(std::move(frame.message));
  }

  const std::scoped_lock lock(slot.write_mutex);
  if (slot.generation == my_generation) slot.fd.reset();
}

void SocketServerTransport::push_inbox(Message message) {
  {
    const std::scoped_lock stats_lock(stats_mutex_);
    stats_.bytes_received += message.payload.size();
  }
  {
    const std::scoped_lock lock(inbox_mutex_);
    inbox_.push_back(std::move(message));
  }
  inbox_cv_.notify_one();
}

bool SocketServerTransport::send(std::size_t client, const Message& message) {
  // Capture the caller's context before opening the transport span, so a
  // traced frame parents the receiver to the caller's span (the round),
  // not to the send plumbing.
  const obs::TraceContext context = obs::current_trace_context();
  PFRL_SPAN("net/send");
  if (client >= slots_.size()) return false;
  Slot& slot = *slots_[client];
  // Seq assignment and the write stay under one lock so frames can never
  // hit the wire out of seq order (the receiver's high-water dedup would
  // drop the swapped-back frame).
  const std::scoped_lock lock(slot.write_mutex);
  const std::vector<std::uint8_t> frame =
      slot.negotiated >= 2 ? encode_frame(slot.next_seq_out++, message, context)
                           : encode_frame(slot.next_seq_out++, message);
  {
    const std::scoped_lock stats_lock(stats_mutex_);
    ++stats_.sends;
    ++stats_.send_attempts;
  }
  PFRL_COUNT("net/sends", 1);
  if (!slot.fd.valid() ||
      write_frame_bytes(slot.fd.get(), frame, config_.send_deadline) != util::IoResult::kOk) {
    // Single attempt by design: a client that misses a download recovers
    // the current ψ_G at its next handshake.
    const std::scoped_lock stats_lock(stats_mutex_);
    ++stats_.send_failures;
    PFRL_COUNT("net/send_failures", 1);
    return false;
  }
  const std::scoped_lock stats_lock(stats_mutex_);
  stats_.bytes_sent += frame.size();
  return true;
}

std::optional<Message> SocketServerTransport::poll(std::chrono::milliseconds timeout) {
  std::unique_lock lock(inbox_mutex_);
  if (!inbox_cv_.wait_for(lock, timeout, [this] { return !inbox_.empty() || stop_.load(); })) {
    const std::scoped_lock stats_lock(stats_mutex_);
    ++stats_.recv_timeouts;
    PFRL_COUNT("net/timeouts", 1);
    return std::nullopt;
  }
  if (inbox_.empty()) return std::nullopt;  // woken by stop()
  Message m = std::move(inbox_.front());
  inbox_.pop_front();
  lock.unlock();
  const std::scoped_lock stats_lock(stats_mutex_);
  ++stats_.recv_messages;
  return m;
}

std::vector<std::size_t> SocketServerTransport::live_clients() const {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    const std::scoped_lock lock(slot.write_mutex);
    if (slot.fd.valid() && now - slot.last_seen < config_.liveness_timeout) live.push_back(i);
  }
  return live;
}

void SocketServerTransport::stop() {
  if (stop_.exchange(true)) return;
  // Closing the listener wakes the accept loop; shutting the slots wakes
  // every connection reader.
  if (listen_fd_.valid()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
  listen_fd_.reset();
  for (auto& slot : slots_) {
    const std::scoped_lock lock(slot->write_mutex);
    if (slot->fd.valid()) ::shutdown(slot->fd.get(), SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    const std::scoped_lock lock(threads_mutex_);
    for (std::thread& t : connection_threads_)
      if (t.joinable()) t.join();
    connection_threads_.clear();
  }
  for (auto& slot : slots_) {
    const std::scoped_lock lock(slot->write_mutex);
    slot->fd.reset();
    slot->graveyard.reset();
  }
  inbox_cv_.notify_all();
}

TransportStats SocketServerTransport::stats() const {
  const std::scoped_lock lock(stats_mutex_);
  return stats_;
}

// --- Client ------------------------------------------------------------

SocketClientTransport::SocketClientTransport(util::Endpoint endpoint, HelloPayload hello,
                                             TransportConfig config,
                                             std::function<void(const WelcomePayload&)> on_welcome)
    : endpoint_(std::move(endpoint)),
      hello_(std::move(hello)),
      config_(config),
      on_welcome_(std::move(on_welcome)),
      jitter_rng_(config.jitter_seed ^
                  (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(hello_.client_id) + 1))),
      fault_rng_(config.inject_seed ^
                 (0xC0FFEEULL * (static_cast<std::uint64_t>(hello_.client_id) + 1))),
      fail_budget_(config.inject_send_fail_count),
      duplicate_budget_(config.inject_send_duplicate_count) {
  util::ignore_sigpipe();
}

SocketClientTransport::~SocketClientTransport() { close(); }

void SocketClientTransport::set_resume_round(std::uint64_t round) {
  const std::scoped_lock lock(conn_mutex_);
  hello_.resume_round = round;
}

bool SocketClientTransport::connect() {
  const std::scoped_lock lock(conn_mutex_);
  if (connected_.load()) return true;
  if (rejected_.load()) return false;
  for (std::uint32_t attempt = 0; attempt < config_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      {
        const std::scoped_lock stats_lock(stats_mutex_);
        ++stats_.retries;
      }
      PFRL_COUNT("net/retries", 1);
      std::this_thread::sleep_for(backoff_delay(config_.retry, attempt - 1, jitter_rng_));
    }
    if (connect_locked()) return true;
    if (rejected_.load()) return false;
  }
  return false;
}

bool SocketClientTransport::connected() const { return connected_.load(); }

bool SocketClientTransport::connect_locked() {
  PFRL_SPAN("net/connect");
  teardown_locked(/*count_reconnect=*/false);

  util::ScopedFd fd = util::connect_endpoint(endpoint_, config_.handshake_timeout);
  if (!fd.valid()) return false;

  const Message hello_msg = make_control(MessageType::kHello, static_cast<int>(hello_.client_id),
                                         hello_.resume_round, encode_hello(hello_));
  if (write_frame_bytes(fd.get(), encode_frame(0, hello_msg), config_.handshake_timeout) !=
      util::IoResult::kOk)
    return false;

  Frame frame;
  if (read_frame(fd.get(), frame, config_.handshake_timeout, config_.handshake_timeout) !=
          FrameResult::kOk ||
      frame.seq != 0)
    return false;
  if (frame.message.type == MessageType::kHelloReject) {
    reject_reason_.assign(frame.message.payload.begin(), frame.message.payload.end());
    rejected_.store(true);
    return false;
  }
  if (frame.message.type != MessageType::kWelcome || !checksum_ok(frame.message)) return false;

  WelcomePayload welcome;
  try {
    welcome = decode_welcome(frame.message.payload);
  } catch (const std::out_of_range&) {
    return false;
  }
  // Resume outbound numbering above anything the server already accepted
  // from this id (a restarted process would otherwise look like a replay).
  next_seq_ = std::max(next_seq_, welcome.last_seq_seen + 1);
  // The server's Welcome carries the negotiated dialect (min of both
  // ends); clamp against ours in case the peer is newer than us.
  negotiated_ = std::min(welcome.protocol, kTransportProtocolVersion);
  if (negotiated_ < kMinTransportProtocolVersion) negotiated_ = kMinTransportProtocolVersion;

  fd_ = std::move(fd);
  const std::uint64_t generation = ++generation_;
  connected_.store(true);
  {
    const std::scoped_lock stats_lock(stats_mutex_);
    ++stats_.handshakes;
    if (ever_connected_) ++stats_.reconnects;
  }
  PFRL_COUNT("net/handshakes", 1);
  if (ever_connected_) PFRL_COUNT("net/reconnects", 1);
  ever_connected_ = true;

  reader_thread_ = std::thread([this, raw = fd_.get(), generation] { reader_loop(raw, generation); });
  if (!heartbeat_thread_.joinable())
    heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });

  if (on_welcome_) on_welcome_(welcome);
  return true;
}

void SocketClientTransport::teardown_locked(bool count_reconnect) {
  connected_.store(false);
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
  if (reader_thread_.joinable()) reader_thread_.join();
  fd_.reset();
  if (count_reconnect) {
    const std::scoped_lock stats_lock(stats_mutex_);
    ++stats_.reconnects;
  }
}

void SocketClientTransport::reader_loop(int fd, std::uint64_t generation) {
  Frame frame;
  while (!stop_.load()) {
    {
      // A new handshake may have replaced this connection.
      if (generation_ != generation || !connected_.load()) return;
    }
    const FrameResult fr = read_frame(fd, frame, kLoopTick, config_.send_deadline);
    if (fr == FrameResult::kTimeout) continue;
    if (fr == FrameResult::kBadCrc) {
      const std::scoped_lock stats_lock(stats_mutex_);
      ++stats_.crc_dropped;
      PFRL_COUNT("net/crc_dropped", 1);
      continue;
    }
    if (fr != FrameResult::kOk) break;
    if (frame.seq == 0) continue;  // server control frames: none expected
    if (frame.seq <= last_seq_in_) {
      const std::scoped_lock stats_lock(stats_mutex_);
      ++stats_.duplicates_dropped;
      PFRL_COUNT("net/duplicates_dropped", 1);
      continue;
    }
    last_seq_in_ = frame.seq;
    {
      const std::scoped_lock stats_lock(stats_mutex_);
      stats_.bytes_received += frame.message.payload.size();
    }
    {
      const std::scoped_lock lock(inbox_mutex_);
      inbox_.push_back(std::move(frame.message));
    }
    inbox_cv_.notify_one();
  }
  connected_.store(false);
  inbox_cv_.notify_all();
}

void SocketClientTransport::heartbeat_loop() {
  while (!stop_.load()) {
    {
      std::unique_lock lock(heartbeat_mutex_);
      heartbeat_cv_.wait_for(lock, config_.heartbeat_interval, [this] { return stop_.load(); });
    }
    if (stop_.load()) return;
    const std::scoped_lock lock(conn_mutex_);
    if (!connected_.load()) continue;
    const Message beat = make_control(MessageType::kHeartbeat,
                                      static_cast<int>(hello_.client_id), 0);
    if (write_frame_locked(0, beat)) {
      const std::scoped_lock stats_lock(stats_mutex_);
      ++stats_.heartbeats_sent;
      PFRL_COUNT("net/heartbeats_sent", 1);
    }
  }
}

bool SocketClientTransport::write_frame_locked(std::uint64_t seq, const Message& message,
                                               obs::TraceContext context) {
  const std::scoped_lock lock(write_mutex_);
  if (!fd_.valid()) return false;
  const std::vector<std::uint8_t> frame = negotiated_ >= 2 ? encode_frame(seq, message, context)
                                                           : encode_frame(seq, message);
  if (write_frame_bytes(fd_.get(), frame, config_.send_deadline) != util::IoResult::kOk)
    return false;
  const std::scoped_lock stats_lock(stats_mutex_);
  stats_.bytes_sent += frame.size();
  return true;
}

bool SocketClientTransport::send(const Message& message) {
  // Context before the transport span: see SocketServerTransport::send.
  const obs::TraceContext context = obs::current_trace_context();
  PFRL_SPAN("net/send");
  const std::scoped_lock lock(conn_mutex_);
  {
    const std::scoped_lock stats_lock(stats_mutex_);
    ++stats_.sends;
  }
  PFRL_COUNT("net/sends", 1);
  const std::uint64_t seq = next_seq_++;  // retries resend the same seq

  for (std::uint32_t attempt = 0; attempt < config_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      {
        const std::scoped_lock stats_lock(stats_mutex_);
        ++stats_.retries;
      }
      PFRL_COUNT("net/retries", 1);
      std::this_thread::sleep_for(backoff_delay(config_.retry, attempt - 1, jitter_rng_));
    }
    {
      const std::scoped_lock stats_lock(stats_mutex_);
      ++stats_.send_attempts;
    }

    bool fail_attempt = false;
    bool duplicate_attempt = false;
    if (fail_budget_ > 0) {
      --fail_budget_;
      fail_attempt = true;
    } else if (duplicate_budget_ > 0) {
      --duplicate_budget_;
      duplicate_attempt = true;
    } else if (config_.inject_drop_prob > 0.0 && fault_rng_.bernoulli(config_.inject_drop_prob)) {
      fail_attempt = true;
    } else if (config_.inject_duplicate_prob > 0.0 &&
               fault_rng_.bernoulli(config_.inject_duplicate_prob)) {
      duplicate_attempt = true;
    }
    if (config_.inject_delay_prob > 0.0 && fault_rng_.bernoulli(config_.inject_delay_prob))
      std::this_thread::sleep_for(config_.inject_delay);

    if (fail_attempt) {
      const std::scoped_lock stats_lock(stats_mutex_);
      ++stats_.send_failures;
      PFRL_COUNT("net/send_failures", 1);
      continue;
    }

    if (!connected_.load()) {
      if (!config_.auto_reconnect || rejected_.load() || !connect_locked()) {
        const std::scoped_lock stats_lock(stats_mutex_);
        ++stats_.send_failures;
        PFRL_COUNT("net/send_failures", 1);
        continue;
      }
    }

    if (!write_frame_locked(seq, message, context)) {
      connected_.store(false);  // broken pipe: force reconnect next attempt
      const std::scoped_lock stats_lock(stats_mutex_);
      ++stats_.send_failures;
      PFRL_COUNT("net/send_failures", 1);
      continue;
    }
    if (duplicate_attempt)
      write_frame_locked(seq, message, context);  // wire duplicate; receiver dedups by seq
    return true;
  }
  {
    const std::scoped_lock stats_lock(stats_mutex_);
    ++stats_.give_ups;
  }
  PFRL_COUNT("net/give_ups", 1);
  return false;
}

std::optional<Message> SocketClientTransport::poll(std::chrono::milliseconds timeout) {
  std::unique_lock lock(inbox_mutex_);
  if (!inbox_cv_.wait_for(lock, timeout, [this] { return !inbox_.empty() || stop_.load(); })) {
    const std::scoped_lock stats_lock(stats_mutex_);
    ++stats_.recv_timeouts;
    PFRL_COUNT("net/timeouts", 1);
    return std::nullopt;
  }
  if (inbox_.empty()) return std::nullopt;
  Message m = std::move(inbox_.front());
  inbox_.pop_front();
  lock.unlock();
  const std::scoped_lock stats_lock(stats_mutex_);
  ++stats_.recv_messages;
  return m;
}

void SocketClientTransport::close() {
  {
    const std::scoped_lock lock(conn_mutex_);
    if (stop_.exchange(true)) return;
    teardown_locked(/*count_reconnect=*/false);
  }
  heartbeat_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  inbox_cv_.notify_all();
}

void SocketClientTransport::debug_drop_connection() {
  const std::scoped_lock lock(conn_mutex_);
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
  connected_.store(false);
}

TransportStats SocketClientTransport::stats() const {
  const std::scoped_lock lock(stats_mutex_);
  return stats_;
}

}  // namespace pfrl::fed
