// In-process message bus between federated clients and the server.
//
// Mailbox-per-endpoint with byte accounting; thread-safe so clients
// training on pool threads can post uploads concurrently (MPI-style
// cooperative message passing, no shared model state).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "fed/message.hpp"

namespace pfrl::fed {

// The send/drain entry points are virtual so a fault model can be layered
// on top (fed::FaultyBus drops/delays/duplicates/corrupts in-flight
// messages); the plain Bus stays the zero-overhead perfect network.
class Bus {
 public:
  explicit Bus(std::size_t client_count);
  virtual ~Bus() = default;

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  std::size_t client_count() const {
    const std::scoped_lock lock(mutex_);
    return client_boxes_.size();
  }

  /// Client -> server.
  virtual void send_to_server(Message message);
  /// Server -> one client.
  virtual void send_to_client(std::size_t client, Message message);

  virtual std::vector<Message> drain_server();
  virtual std::vector<Message> drain_client(std::size_t client);

  /// Blocks until the server mailbox is non-empty or `timeout` elapses.
  /// Returns true if a message is waiting. Lets the in-process transport
  /// backend poll without spinning; the single-threaded trainer never
  /// calls these. Note a FaultyBus drop correctly never signals — the
  /// message was lost, there is nothing to wake up for.
  bool wait_server(std::chrono::milliseconds timeout);
  /// Same for one client's mailbox.
  bool wait_client(std::size_t client, std::chrono::milliseconds timeout);

  /// Grow to accommodate a newly joined client (Fig. 20); returns its id.
  virtual std::size_t add_client();

  std::uint64_t uplink_bytes() const;
  std::uint64_t downlink_bytes() const;
  std::uint64_t uplink_messages() const;
  std::uint64_t downlink_messages() const;

  /// Persists mailbox contents and traffic accounting into a checkpoint.
  /// Overridden by FaultyBus to also carry its fault-injection state
  /// (delayed messages, per-link RNG streams, counters).
  virtual void save_state(util::ByteWriter& writer) const;
  /// Restores state written by save_state(). Throws std::invalid_argument
  /// if the stored client count disagrees with this bus's topology.
  virtual void load_state(util::ByteReader& reader);

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> server_box_;
  std::vector<std::deque<Message>> client_boxes_;
  std::uint64_t uplink_bytes_ = 0;
  std::uint64_t downlink_bytes_ = 0;
  std::uint64_t uplink_messages_ = 0;
  std::uint64_t downlink_messages_ = 0;
};

}  // namespace pfrl::fed
