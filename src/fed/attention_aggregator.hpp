// PFRL-DM's personalized aggregator (§4.4, Algorithm 1): multi-head
// attention over the uploaded public-critic parameter vectors produces a
// per-client weight row; each participant receives its own attention-
// weighted combination instead of one shared average.
#pragma once

#include <memory>
#include <optional>

#include "fed/aggregator.hpp"
#include "nn/attention.hpp"

namespace pfrl::fed {

class AttentionAggregator final : public Aggregator {
 public:
  explicit AttentionAggregator(nn::MultiHeadAttentionConfig config = {});

  AggregationOutput aggregate(const AggregationInput& input) override;
  std::string name() const override { return "pfrl-dm-attention"; }

  /// The attention module is created on first use (when P becomes known)
  /// and kept — the random projections must be identical across rounds.
  const nn::MultiHeadAttention* attention() const {
    return attention_ ? &*attention_ : nullptr;
  }

  /// The module's projections are a pure function of (input_dim, config
  /// seed), so the checkpoint stores only whether it exists and its P;
  /// load_state re-creates identical projections eagerly.
  void save_state(util::ByteWriter& writer) const override;
  void load_state(util::ByteReader& reader) override;

 private:
  nn::MultiHeadAttentionConfig config_;
  std::optional<nn::MultiHeadAttention> attention_;
  nn::Matrix personalized_scratch_;  // K×P product workspace, reused per round
};

}  // namespace pfrl::fed
