// Transport abstraction for the federated stack.
//
// FedTrainer historically owned a concrete in-process Bus; resilient
// multi-process federation needs the same message flow over sockets with
// deadlines, retries, heartbeats, and reconnects. ClientTransport /
// ServerTransport capture exactly the surface the federation runtime
// needs, with two backends:
//
//  * Bus-backed (this header + transport.cpp): wraps the existing
//    in-process Bus — including a FaultyBus, whose injection layering is
//    preserved untouched — and adds the transport-level retry/duplicate
//    semantics on top so conformance tests exercise one contract.
//  * Socket-backed (socket_transport.hpp): blocking TCP/UDS with the
//    CRC-32 + length-framed wire format, handshakes, heartbeats, and
//    automatic reconnect.
//
// Retries use bounded exponential backoff with seeded jitter so a run is
// reproducible end to end. Sends are at-least-once with duplicate
// suppression (sender-side for the bus backend, sequence-number dedup at
// the receiver for sockets); FedServer's existing duplicate counter
// remains the last line of defense.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fed/bus.hpp"
#include "fed/message.hpp"
#include "util/rng.hpp"

namespace pfrl::fed {

// Protocol history:
//   v1 — original PFRN framing (magic 'PFRN', 20-byte header).
//   v2 — adds optional traced frames (magic 'PFRT', +16 header bytes of
//        trace/span id) carrying distributed-trace context. Untraced v2
//        frames are byte-identical to v1.
// Both ends advertise kTransportProtocolVersion in Hello/Welcome and run
// the lower of the two, so v1 peers interop untouched; anything outside
// [kMinTransportProtocolVersion, kTransportProtocolVersion] is rejected.
inline constexpr std::uint32_t kTransportProtocolVersion = 2;
inline constexpr std::uint32_t kMinTransportProtocolVersion = 1;

/// Bounded exponential backoff between send attempts:
/// delay(a) = min(base * 2^a, max) * (1 + jitter * U[-1, 1]).
struct RetryPolicy {
  std::uint32_t max_attempts = 5;
  std::chrono::milliseconds base_backoff{10};
  std::chrono::milliseconds max_backoff{1000};
  double jitter = 0.2;  // fraction of the delay; drawn from the seeded RNG
};

std::chrono::milliseconds backoff_delay(const RetryPolicy& policy, std::uint32_t attempt,
                                        util::Rng& rng);

struct TransportConfig {
  RetryPolicy retry;
  std::chrono::milliseconds send_deadline{2000};     // per-attempt I/O deadline
  std::chrono::milliseconds handshake_timeout{5000};
  std::chrono::milliseconds heartbeat_interval{500};
  std::chrono::milliseconds liveness_timeout{2500};  // no frame for this long = dead
  std::uint64_t jitter_seed = 0x7A57C0DE;  // backoff jitter stream (deterministic)
  bool auto_reconnect = true;              // socket client re-dials between attempts

  // Deterministic fault injection, applied at the transport layer (the
  // FaultyBus plan is independent and composes underneath the bus
  // backend). Used by the conformance tests and the bench sweep.
  std::uint32_t inject_send_fail_count = 0;       // first N send attempts fail
  std::uint32_t inject_send_duplicate_count = 0;  // first N sends deliver twice
  double inject_drop_prob = 0.0;       // P(attempt silently lost)
  double inject_duplicate_prob = 0.0;  // P(delivered but reported failed)
  double inject_delay_prob = 0.0;      // P(attempt delayed by inject_delay)
  std::chrono::milliseconds inject_delay{20};
  std::uint64_t inject_seed = 0xFA17;
};

/// Event counters every backend maintains; snapshots are also published
/// into the obs metrics registry under "net/...".
struct TransportStats {
  std::uint64_t sends = 0;            // messages handed to send()
  std::uint64_t send_attempts = 0;    // wire attempts (>= sends)
  std::uint64_t send_failures = 0;    // failed attempts (pre-retry)
  std::uint64_t retries = 0;          // attempts after the first
  std::uint64_t give_ups = 0;         // sends that exhausted the retry budget
  std::uint64_t recv_messages = 0;
  std::uint64_t recv_timeouts = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t crc_dropped = 0;      // frames dropped on CRC mismatch
  std::uint64_t reconnects = 0;
  std::uint64_t handshakes = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_seen = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Client-side endpoint: connects (with handshake on socket backends),
/// sends uploads, and polls for downloads. Control frames (heartbeats,
/// handshakes) never surface through poll().
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  /// Establishes (or re-establishes) the connection, including the
  /// Hello/Welcome handshake on socket backends. Returns false on
  /// permanent failure (e.g. the server rejected the handshake).
  virtual bool connect() = 0;
  virtual bool connected() const = 0;

  /// At-least-once send with retry/backoff per the TransportConfig.
  /// Returns false only after the retry budget is exhausted.
  virtual bool send(const Message& message) = 0;

  /// Next data message, waiting up to `timeout`. std::nullopt on timeout.
  virtual std::optional<Message> poll(std::chrono::milliseconds timeout) = 0;

  virtual void close() = 0;
  virtual TransportStats stats() const = 0;

  /// True for backends where connect()/reconnect is a real operation the
  /// conformance suite can exercise (socket backends).
  virtual bool supports_reconnect() const { return false; }
  /// Test hook: tear the connection down uncleanly (as if the network
  /// dropped), so the next send must reconnect + re-handshake.
  virtual void debug_drop_connection() {}
};

/// Server-side endpoint: addresses clients by id, polls the merged inbox.
class ServerTransport {
 public:
  virtual ~ServerTransport() = default;

  virtual std::size_t client_count() const = 0;

  /// Single-attempt send (documented asymmetry: a client that misses a
  /// download recovers it at the next handshake via the Welcome's ψ_G, so
  /// server-side retries would only delay the round).
  virtual bool send(std::size_t client, const Message& message) = 0;

  /// Next upload/control-data message from any client. The sender id is
  /// authoritative (socket backend stamps the handshake-bound id).
  virtual std::optional<Message> poll(std::chrono::milliseconds timeout) = 0;

  /// Clients considered alive right now (connected and heartbeating
  /// within liveness_timeout). The bus backend reports everyone.
  virtual std::vector<std::size_t> live_clients() const = 0;

  virtual void stop() = 0;
  virtual TransportStats stats() const = 0;
};

// --- Handshake / control payload codecs ------------------------------

/// Client -> server on (re)connect. `init_upload` carries the client's
/// make_upload() bytes so the server can seed ψ_G before round 0 exactly
/// like the in-process sync_initial_model step.
struct HelloPayload {
  std::uint32_t protocol = kTransportProtocolVersion;
  std::int64_t client_id = -1;
  std::uint64_t arch_hash = 0;  // client_arch_hash(); must match the manifest
  std::string algorithm;
  std::uint64_t resume_round = 0;  // first round the client still needs
  std::vector<std::uint8_t> init_upload;
};

/// Server -> client handshake accept. `global_model` is empty before the
/// initial sync; rejoiners get the current ψ_G so they can catch up
/// without stalling the fleet.
struct WelcomePayload {
  std::uint32_t protocol = kTransportProtocolVersion;
  std::uint64_t client_count = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t comm_every = 0;
  std::uint64_t participants_per_round = 0;
  std::uint64_t current_round = 0;
  /// Highest data-frame sequence number the server has accepted from this
  /// client id. A restarted client resumes its outbound counter above
  /// this, so retransmits of pre-crash uploads still dedup while fresh
  /// messages are never mistaken for duplicates.
  std::uint64_t last_seq_seen = 0;
  std::vector<std::uint8_t> global_model;
};

/// Server -> client at the top of each round.
struct RoundBeginPayload {
  std::uint64_t round = 0;
  bool participate = false;  // chosen for the upload set this round
  std::uint64_t episodes = 0;  // local episodes to train before uploading
};

std::vector<std::uint8_t> encode_hello(const HelloPayload& hello);
HelloPayload decode_hello(const std::vector<std::uint8_t>& payload);
std::vector<std::uint8_t> encode_welcome(const WelcomePayload& welcome);
WelcomePayload decode_welcome(const std::vector<std::uint8_t>& payload);
std::vector<std::uint8_t> encode_round_begin(const RoundBeginPayload& begin);
RoundBeginPayload decode_round_begin(const std::vector<std::uint8_t>& payload);

// --- Straggler-tolerant round collection ------------------------------

/// Result of draining one round's uploads from a ServerTransport.
struct RoundCollection {
  std::vector<Message> uploads;       // round-matching, stable-sorted by sender
  std::vector<Message> late;          // stale/early messages (feed the server's
                                      // existing staleness/reject counters)
  std::vector<std::size_t> missing;   // expected senders that never arrived
  bool closed_at_deadline = false;    // quorum closure fired before everyone
};

/// Collects uploads for `round` from `expected` senders. Closes as soon
/// as every expected sender has arrived; otherwise, once `deadline` has
/// elapsed AND at least `quorum` distinct on-round senders have arrived,
/// the round closes and the laggards are left to the staleness path. With
/// fewer than `quorum` arrivals the collection keeps waiting (the
/// caller's run-level timeout bounds a truly dead fleet).
RoundCollection collect_round(ServerTransport& transport, std::uint64_t round,
                              const std::vector<std::size_t>& expected, std::size_t quorum,
                              std::chrono::milliseconds deadline,
                              std::chrono::milliseconds poll_tick = std::chrono::milliseconds(50));

// --- In-process Bus backend -------------------------------------------

/// ClientTransport over the in-process Bus (plain or FaultyBus). Sends
/// are exactly-once on the wire: an injected "duplicate" posts the
/// message once but reports failure, and the retry loop detects the
/// message was already posted, suppresses the repost, and counts a
/// dropped duplicate — mirroring the receiver-side dedup of the socket
/// backend without polluting the mailbox.
class BusClientTransport final : public ClientTransport {
 public:
  BusClientTransport(Bus& bus, std::size_t client_id, TransportConfig config);

  bool connect() override { return true; }
  bool connected() const override { return true; }
  bool send(const Message& message) override;
  std::optional<Message> poll(std::chrono::milliseconds timeout) override;
  void close() override {}
  TransportStats stats() const override;

 private:
  Bus& bus_;
  std::size_t client_id_;
  TransportConfig config_;
  util::Rng jitter_rng_;
  util::Rng fault_rng_;
  std::uint32_t fail_budget_;
  std::uint32_t duplicate_budget_;
  std::deque<Message> pending_;
  TransportStats stats_;
  mutable std::mutex mutex_;
};

/// ServerTransport over the in-process Bus. All clients are local, so
/// everyone is always live and sends cannot fail.
class BusServerTransport final : public ServerTransport {
 public:
  BusServerTransport(Bus& bus, TransportConfig config);

  std::size_t client_count() const override { return bus_.client_count(); }
  bool send(std::size_t client, const Message& message) override;
  std::optional<Message> poll(std::chrono::milliseconds timeout) override;
  std::vector<std::size_t> live_clients() const override;
  void stop() override {}
  TransportStats stats() const override;

 private:
  Bus& bus_;
  TransportConfig config_;
  std::deque<Message> pending_;
  TransportStats stats_;
  mutable std::mutex mutex_;
};

}  // namespace pfrl::fed
