#include "util/cli.hpp"

#include <charconv>
#include <stdexcept>

namespace pfrl::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself an option;
    // otherwise a bare boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool Cli::has(const std::string& key) const { return options_.contains(key); }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  std::int64_t value = 0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw std::invalid_argument("--" + key + " expects an integer, got '" + s + "'");
  return value;
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects a number, got '" + it->second + "'");
  }
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("--" + key + " expects a boolean, got '" + v + "'");
}

}  // namespace pfrl::util
