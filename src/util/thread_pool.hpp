// Fixed-size worker pool used to train federated clients in parallel.
//
// Clients communicate exclusively through fed::Bus messages (MPI-style,
// no shared mutable state), so the pool only needs plain task submission
// plus a fork-join helper for "for each client in parallel" (Algorithm 1,
// line 3).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pfrl::util {

class ThreadPool {
 public:
  /// `threads == 0` picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Drains the queue, joins every worker, and rejects further submits
  /// (std::runtime_error). Idempotent; the destructor calls it.
  void shutdown();

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(0) .. fn(count-1) across the pool and blocks until all
  /// complete. Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace pfrl::util
