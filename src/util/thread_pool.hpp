// Fixed-size worker pool used to train federated clients in parallel.
//
// Clients communicate exclusively through fed::Bus messages (MPI-style,
// no shared mutable state), so the pool only needs plain task submission
// plus a fork-join helper for "for each client in parallel" (Algorithm 1,
// line 3).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <vector>

namespace pfrl::util {

class ThreadPool {
 public:
  /// `threads == 0` picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Drains the queue, joins every worker, and rejects further submits
  /// (std::runtime_error). Idempotent; the destructor calls it.
  void shutdown();

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      enqueue_locked([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Bounded, non-blocking submit: rejects instead of queueing when the
  /// queue already holds `max_queue_depth` pending tasks (or the pool is
  /// shutting down), so callers under overload shed work instead of
  /// growing the queue without bound. Returns nullopt on rejection;
  /// rejections are counted in rejected(). Never throws on a stopped
  /// pool — rejection is the uniform answer.
  template <typename F>
  auto try_submit(F&& fn, std::size_t max_queue_depth)
      -> std::optional<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      if (stopping_ || queue_.size() >= max_queue_depth) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      enqueue_locked([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  // Live-load gauges (obs export happens at the call sites that own a
  // pool; util cannot depend on obs). Update order guarantees the
  // one-sided invariant queue_depth + inflight + completed <= submitted
  // at any single instant, with equality at every quiescent point (queue
  // drained, no task running). A racing reader issuing four separate
  // loads may still double-count a task that moves between reads; only
  // the monotone pair is safe to compare across loads (read completed
  // before submitted and completed <= submitted always holds).

  /// Tasks accepted by submit()/try_submit() so far.
  std::uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }
  /// Tasks turned away by try_submit() (queue at bound, or shutdown).
  std::uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  /// Tasks finished (normally or by exception).
  std::uint64_t completed() const { return completed_.load(std::memory_order_acquire); }
  /// Tasks sitting in the queue, not yet picked up by a worker.
  std::size_t queue_depth() const { return queue_depth_.load(std::memory_order_relaxed); }
  /// Tasks currently executing on workers.
  std::size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }
  /// High-water mark of queue_depth over the pool's lifetime.
  std::size_t peak_queue_depth() const {
    return peak_queue_depth_.load(std::memory_order_relaxed);
  }

  /// Runs fn(0) .. fn(count-1) across the pool and blocks until all
  /// complete. Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  /// Shared tail of submit/try_submit, called with mutex_ held.
  /// submitted_ moves before queue_depth_ (and a pop moves queue_depth_
  /// before inflight_), so at any single instant
  /// depth + inflight + completed <= submitted holds.
  void enqueue_locked(std::function<void()> task) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    queue_.push(std::move(task));
    const std::size_t depth = queue_.size();
    queue_depth_.store(depth, std::memory_order_relaxed);
    std::size_t peak = peak_queue_depth_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !peak_queue_depth_.compare_exchange_weak(peak, depth, std::memory_order_relaxed)) {
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> peak_queue_depth_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
};

}  // namespace pfrl::util
