#include "util/csv.hpp"

#include <charconv>
#include <stdexcept>

namespace pfrl::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path, std::ios::trunc), arity_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(header);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (fields.size() != arity_)
    throw std::invalid_argument("CsvWriter: row arity mismatch");
  write_row(fields);
  ++rows_;
}

void CsvWriter::row(std::initializer_list<std::string> fields) {
  row(std::vector<std::string>(fields));
}

std::string CsvWriter::field(double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) return "nan";
  return std::string(buf, ptr);
}

std::string CsvWriter::field(std::int64_t value) { return std::to_string(value); }

std::string CsvWriter::field(std::size_t value) { return std::to_string(value); }

std::string CsvWriter::escape(std::string_view raw) {
  const bool needs_quote = raw.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(raw);
  std::string quoted;
  quoted.reserve(raw.size() + 2);
  quoted.push_back('"');
  for (const char c : raw) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace pfrl::util
