// EINTR-safe POSIX socket helpers for the networked federation transport.
//
// Deliberately low-level and blocking-with-deadline: the fed layer builds
// retry/backoff/heartbeat semantics on top, and the deadline plumbing
// (poll(2) + remaining-time loops) is what keeps one wedged peer from
// hanging a round forever. Every read and write retries on EINTR — a
// signal landing mid-syscall (the checkpoint SIGTERM handler, a profiler
// attach) must never tear a frame in half — and writes use MSG_NOSIGNAL
// (plus a process-wide SIGPIPE ignore) so a dead peer surfaces as EPIPE
// instead of killing the process.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

namespace pfrl::util {

/// Re-issues `op` (a callable returning an int-like result) while it
/// fails with EINTR; returns the first non-EINTR result. Use around any
/// blocking syscall that a stop/checkpoint signal may interrupt.
template <typename Op>
auto retry_eintr(Op&& op) -> decltype(op()) {
  decltype(op()) result;
  do {
    result = op();
  } while (result < 0 && errno == EINTR);
  return result;
}

/// Installs SIG_IGN for SIGPIPE once per process (idempotent and
/// thread-safe). Socket writes also pass MSG_NOSIGNAL; this covers any
/// path that writes a dying fd outside our helpers.
void ignore_sigpipe();

/// Owning file descriptor. Move-only; closes on destruction.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ScopedFd(ScopedFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  /// Closes the held fd (EINTR-safe) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// A transport address: `unix:<path>` (Unix-domain stream socket) or
/// `<host>:<port>` (TCP; port 0 asks the kernel for an ephemeral port).
struct Endpoint {
  bool is_unix = false;
  std::string path;         // UDS socket path
  std::string host;         // TCP host (name or numeric)
  std::uint16_t port = 0;   // TCP port
  std::string describe() const;
};

/// Parses `unix:/path` or `host:port` (IPv4/hostname). Throws
/// std::invalid_argument on malformed specs.
Endpoint parse_endpoint(const std::string& spec);

/// Creates, binds, and listens. A stale UDS path left by a crashed server
/// is unlinked first. Throws std::runtime_error on failure.
ScopedFd listen_endpoint(const Endpoint& endpoint, int backlog = 64);

/// The endpoint the socket actually bound (resolves TCP port 0 to the
/// kernel-assigned ephemeral port via getsockname).
Endpoint local_endpoint(int fd, const Endpoint& requested);

/// Accepts one connection, waiting up to `timeout`. Returns an invalid fd
/// on timeout; throws std::runtime_error on a non-transient accept error.
ScopedFd accept_connection(int listen_fd, std::chrono::milliseconds timeout);

/// Connects with a deadline (non-blocking connect + poll). Returns an
/// invalid fd on timeout or refusal — callers own the retry policy.
ScopedFd connect_endpoint(const Endpoint& endpoint, std::chrono::milliseconds timeout);

enum class IoResult {
  kOk,       // all bytes transferred
  kTimeout,  // deadline expired mid-transfer
  kClosed,   // peer closed the stream (reads only)
  kError,    // non-transient errno (EPIPE, ECONNRESET, ...)
};

/// Waits (without consuming) until `fd` is readable or `timeout` elapses.
/// Lets a reader loop tick a stop flag between frames without ever
/// half-consuming a frame header. Returns true if readable.
bool wait_readable(int fd, std::chrono::milliseconds timeout);

/// Reads exactly `size` bytes, retrying on EINTR and short reads, bounded
/// by one overall deadline across the whole transfer.
IoResult read_full(int fd, void* data, std::size_t size, std::chrono::milliseconds timeout);

/// Writes exactly `size` bytes (MSG_NOSIGNAL on sockets), retrying on
/// EINTR and short writes, bounded by one overall deadline.
IoResult write_full(int fd, const void* data, std::size_t size, std::chrono::milliseconds timeout);

/// Appends to `out` until it contains `delim` (kept in `out`), the peer
/// closes (kClosed), `max_size` bytes accumulate without the delimiter
/// (kError — the caller's framing assumption is broken), or the deadline
/// expires. Bytes past the delimiter within the final chunk stay in
/// `out`. For line/header-oriented protocols (the telemetry endpoint).
IoResult read_until(int fd, std::string& out, const std::string& delim, std::size_t max_size,
                    std::chrono::milliseconds timeout);

}  // namespace pfrl::util
