// CSV output for experiment results so the paper's figures can be re-plotted
// from the harness output with any external tool.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace pfrl::util {

/// Streams rows to a CSV file. Fields containing commas, quotes, or
/// newlines are quoted per RFC 4180. The file is flushed on destruction.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  /// Writes one row; must match the header's arity.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string> fields);

  /// Convenience: formats arithmetic values with full round-trip precision.
  static std::string field(double value);
  static std::string field(std::int64_t value);
  static std::string field(std::size_t value);

  bool is_open() const { return out_.is_open(); }
  std::size_t rows_written() const { return rows_; }

 private:
  static std::string escape(std::string_view raw);
  void write_row(const std::vector<std::string>& fields);

  std::ofstream out_;
  std::size_t arity_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace pfrl::util
