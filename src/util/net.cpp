#include "util/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace pfrl::util {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left before `deadline`, clamped to [0, INT_MAX] for poll.
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 3'600'000) return 3'600'000;
  return static_cast<int>(left.count());
}

/// Polls `fd` for `events` until the deadline, retrying on EINTR with the
/// remaining time recomputed (a signal must not extend the deadline).
/// Returns >0 ready, 0 timeout, <0 error.
int poll_until(int fd, short events, Clock::time_point deadline) {
  while (true) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, remaining_ms(deadline));
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::invalid_argument("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) retry_eintr([this] { return ::close(fd_); });
  fd_ = fd;
}

std::string Endpoint::describe() const {
  if (is_unix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.is_unix = true;
    ep.path = spec.substr(5);
    if (ep.path.empty()) throw std::invalid_argument("empty unix socket path in '" + spec + "'");
    return ep;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size())
    throw std::invalid_argument("endpoint '" + spec + "' is neither unix:<path> nor <host>:<port>");
  ep.host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 0 || port > 65535)
    throw std::invalid_argument("bad port '" + port_str + "' in endpoint '" + spec + "'");
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

ScopedFd listen_endpoint(const Endpoint& endpoint, int backlog) {
  ignore_sigpipe();
  if (endpoint.is_unix) {
    ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throw std::runtime_error("socket(AF_UNIX): " + std::string(strerror(errno)));
    // A stale path from a crashed server would make bind fail forever.
    ::unlink(endpoint.path.c_str());
    sockaddr_un addr = make_unix_addr(endpoint.path);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
      throw std::runtime_error("bind(" + endpoint.describe() + "): " + strerror(errno));
    if (::listen(fd.get(), backlog) < 0)
      throw std::runtime_error("listen(" + endpoint.describe() + "): " + strerror(errno));
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(endpoint.port);
  const int rc = ::getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0)
    throw std::runtime_error("getaddrinfo(" + endpoint.describe() + "): " + gai_strerror(rc));
  ScopedFd fd;
  std::string error = "no usable address";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    ScopedFd candidate(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) continue;
    const int one = 1;
    ::setsockopt(candidate.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(candidate.get(), ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(candidate.get(), backlog) == 0) {
      fd = std::move(candidate);
      break;
    }
    error = strerror(errno);
  }
  ::freeaddrinfo(res);
  if (!fd.valid())
    throw std::runtime_error("listen(" + endpoint.describe() + "): " + error);
  return fd;
}

Endpoint local_endpoint(int fd, const Endpoint& requested) {
  if (requested.is_unix) return requested;
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  Endpoint resolved = requested;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    if (addr.ss_family == AF_INET)
      resolved.port = ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
    else if (addr.ss_family == AF_INET6)
      resolved.port = ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  return resolved;
}

ScopedFd accept_connection(int listen_fd, std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  while (true) {
    const int ready = poll_until(listen_fd, POLLIN, deadline);
    if (ready == 0) return ScopedFd();
    if (ready < 0) throw std::runtime_error("poll(accept): " + std::string(strerror(errno)));
    const int fd =
        static_cast<int>(retry_eintr([listen_fd] { return ::accept(listen_fd, nullptr, nullptr); }));
    if (fd >= 0) return ScopedFd(fd);
    // Transient per-connection failures (peer gone between poll and
    // accept) are not a listener error; wait for the next connection.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) continue;
    throw std::runtime_error("accept: " + std::string(strerror(errno)));
  }
}

ScopedFd connect_endpoint(const Endpoint& endpoint, std::chrono::milliseconds timeout) {
  ignore_sigpipe();
  const auto deadline = Clock::now() + timeout;

  const auto finish_connect = [&](ScopedFd fd, const sockaddr* addr, socklen_t len) -> ScopedFd {
    set_nonblocking(fd.get(), true);
    const int rc =
        static_cast<int>(retry_eintr([&] { return ::connect(fd.get(), addr, len); }));
    if (rc < 0 && errno != EINPROGRESS) return ScopedFd();
    if (rc < 0) {
      if (poll_until(fd.get(), POLLOUT, deadline) <= 0) return ScopedFd();
      int err = 0;
      socklen_t err_len = sizeof(err);
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 || err != 0)
        return ScopedFd();
    }
    set_nonblocking(fd.get(), false);
    return fd;
  };

  if (endpoint.is_unix) {
    ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) return ScopedFd();
    sockaddr_un addr = make_unix_addr(endpoint.path);
    return finish_connect(std::move(fd), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(endpoint.port);
  if (::getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints, &res) != 0) return ScopedFd();
  ScopedFd connected;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    ScopedFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) continue;
    const int one = 1;
    if (ai->ai_family == AF_INET || ai->ai_family == AF_INET6)
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connected = finish_connect(std::move(fd), ai->ai_addr, ai->ai_addrlen);
    if (connected.valid()) break;
  }
  ::freeaddrinfo(res);
  return connected;
}

bool wait_readable(int fd, std::chrono::milliseconds timeout) {
  return poll_until(fd, POLLIN, Clock::now() + timeout) > 0;
}

IoResult read_full(int fd, void* data, std::size_t size, std::chrono::milliseconds timeout) {
  auto* cursor = static_cast<std::uint8_t*>(data);
  std::size_t done = 0;
  const auto deadline = Clock::now() + timeout;
  while (done < size) {
    const int ready = poll_until(fd, POLLIN, deadline);
    if (ready == 0) return IoResult::kTimeout;
    if (ready < 0) return IoResult::kError;
    const ssize_t n =
        retry_eintr([&] { return ::read(fd, cursor + done, size - done); });
    if (n == 0) return IoResult::kClosed;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // spurious wakeup
      return IoResult::kError;
    }
    done += static_cast<std::size_t>(n);
  }
  return IoResult::kOk;
}

IoResult write_full(int fd, const void* data, std::size_t size, std::chrono::milliseconds timeout) {
  const auto* cursor = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  const auto deadline = Clock::now() + timeout;
  while (done < size) {
    const int ready = poll_until(fd, POLLOUT, deadline);
    if (ready == 0) return IoResult::kTimeout;
    if (ready < 0) return IoResult::kError;
    ssize_t n = retry_eintr(
        [&] { return ::send(fd, cursor + done, size - done, MSG_NOSIGNAL); });
    if (n < 0 && errno == ENOTSOCK)  // pipes in tests have no send(2)
      n = retry_eintr([&] { return ::write(fd, cursor + done, size - done); });
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoResult::kError;
    }
    done += static_cast<std::size_t>(n);
  }
  return IoResult::kOk;
}

IoResult read_until(int fd, std::string& out, const std::string& delim, std::size_t max_size,
                    std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  // Only the tail of the existing buffer can complete a split delimiter,
  // so the search restarts just before the previous end.
  std::size_t search_from = 0;
  while (true) {
    if (out.size() >= delim.size()) {
      const std::size_t at = out.find(delim, search_from);
      if (at != std::string::npos) return IoResult::kOk;
      search_from = out.size() - (delim.size() - 1);
    }
    if (out.size() >= max_size) return IoResult::kError;
    const int ready = poll_until(fd, POLLIN, deadline);
    if (ready == 0) return IoResult::kTimeout;
    if (ready < 0) return IoResult::kError;
    char chunk[512];
    const std::size_t want = std::min(sizeof(chunk), max_size - out.size());
    const ssize_t n = retry_eintr([&] { return ::read(fd, chunk, want); });
    if (n == 0) return IoResult::kClosed;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoResult::kError;
    }
    out.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace pfrl::util
