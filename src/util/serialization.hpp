// Byte-level serialization for federated messages.
//
// Model parameters cross the client/server boundary only as serialized
// payloads (fed::Bus). Keeping an explicit wire format (little-endian,
// length-prefixed) lets the harnesses report the paper's communication
// costs in real bytes and keeps clients honestly isolated.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pfrl::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte span.
/// Federated payloads carry this checksum so a bit-corrupted message is
/// rejected at the receiver instead of being deserialized into garbage
/// parameters.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Append-only binary writer (little-endian).
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { buffer_.push_back(v); }
  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
  void write_f32(float v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }

  void write_string(const std::string& s) {
    write_u32(static_cast<std::uint32_t>(s.size()));
    write_raw(s.data(), s.size());
  }

  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  void write_f32_span(std::span<const float> values) {
    write_u32(static_cast<std::uint32_t>(values.size()));
    write_raw(values.data(), values.size() * sizeof(float));
  }

  void write_f64_span(std::span<const double> values) {
    write_u32(static_cast<std::uint32_t>(values.size()));
    write_raw(values.data(), values.size() * sizeof(double));
  }

  /// Length-prefixed raw byte blob (nested payloads).
  void write_bytes(std::span<const std::uint8_t> bytes) {
    write_u32(static_cast<std::uint32_t>(bytes.size()));
    write_raw(bytes.data(), bytes.size());
  }

  /// Raw bytes with no length prefix (container framing owns the length).
  void write_raw_span(std::span<const std::uint8_t> bytes) {
    write_raw(bytes.data(), bytes.size());
  }

  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  void write_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + n);
  }

  std::vector<std::uint8_t> buffer_;
};

/// Sequential binary reader over a byte span. Throws std::out_of_range on
/// truncated input — a malformed federated message must never be silently
/// accepted.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t read_u8() { return read_scalar<std::uint8_t>(); }
  std::uint32_t read_u32() { return read_scalar<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_scalar<std::uint64_t>(); }
  std::int64_t read_i64() { return read_scalar<std::int64_t>(); }
  float read_f32() { return read_scalar<float>(); }
  double read_f64() { return read_scalar<double>(); }

  std::string read_string() {
    const std::uint32_t n = read_u32();
    require(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + cursor_), n);
    cursor_ += n;
    return s;
  }

  bool read_bool() { return read_u8() != 0; }

  std::vector<float> read_f32_vector() {
    const std::uint32_t n = read_u32();
    require(static_cast<std::size_t>(n) * sizeof(float));
    std::vector<float> values(n);
    std::memcpy(values.data(), bytes_.data() + cursor_, n * sizeof(float));
    cursor_ += n * sizeof(float);
    return values;
  }

  std::vector<double> read_f64_vector() {
    const std::uint32_t n = read_u32();
    require(static_cast<std::size_t>(n) * sizeof(double));
    std::vector<double> values(n);
    std::memcpy(values.data(), bytes_.data() + cursor_, n * sizeof(double));
    cursor_ += n * sizeof(double);
    return values;
  }

  std::vector<std::uint8_t> read_bytes() {
    const std::uint32_t n = read_u32();
    require(n);
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(cursor_ + n));
    cursor_ += n;
    return out;
  }

  std::size_t remaining() const { return bytes_.size() - cursor_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  template <typename T>
  T read_scalar() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) const {
    if (cursor_ + n > bytes_.size())
      throw std::out_of_range("ByteReader: truncated message");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace pfrl::util
