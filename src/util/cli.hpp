// Tiny command-line parser shared by the experiment harnesses and
// examples. Supports `--flag`, `--key value`, and `--key=value`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pfrl::util {

/// Parsed command line. Unknown options are collected rather than
/// rejected so google-benchmark flags can pass through harness mains.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non `--`) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace pfrl::util
