#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace pfrl::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split() { return Rng(next_u64()); }

RngState Rng::state() const {
  RngState snapshot;
  for (std::size_t i = 0; i < snapshot.s.size(); ++i) snapshot.s[i] = state_[i];
  snapshot.cached_normal = cached_normal_;
  snapshot.has_cached_normal = has_cached_normal_;
  return snapshot;
}

void Rng::set_state(const RngState& state) {
  for (std::size_t i = 0; i < state.s.size(); ++i) state_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) {
  assert(lambda > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::pareto(double x_m, double alpha) {
  assert(x_m > 0.0 && alpha > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

double Rng::gamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then apply the standard power correction.
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

std::uint32_t Rng::poisson(double lambda) {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    const double threshold = std::exp(-lambda);
    double product = uniform();
    std::uint32_t count = 0;
    while (product > threshold) {
      product *= uniform();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // arrival-rate magnitudes the workload models use.
  const double draw = normal(lambda, std::sqrt(lambda));
  return draw < 0.5 ? 0u : static_cast<std::uint32_t>(draw + 0.5);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_choice(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(weights.size()) - 1));
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace pfrl::util
