#include "util/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace pfrl::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level '" + std::string(name) +
                              "' (debug|info|warn|error|off)");
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void log_message(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(level_name(level).size()),
               level_name(level).data(), static_cast<int>(message.size()), message.data());
}

std::string format_string(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return "<format error>";
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace pfrl::util
