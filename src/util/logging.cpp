#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <vector>

namespace pfrl::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(level_name(level).size()),
               level_name(level).data(), static_cast<int>(message.size()), message.data());
}

std::string format_string(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return "<format error>";
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace pfrl::util
