// Intentionally header-only (see serialization.hpp); this TU anchors the
// module in the pfrl_util library.
#include "util/serialization.hpp"
