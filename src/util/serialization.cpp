#include "util/serialization.hpp"

#include <array>

namespace pfrl::util {

namespace {
std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc32_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const std::uint8_t b : bytes) crc = table[(crc ^ b) & 0xFFU] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFU;
}

}  // namespace pfrl::util
