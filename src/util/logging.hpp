// Minimal leveled logger (printf-style; gcc 12 has no <format>). The
// experiment harnesses print their results through structured writers
// (csv.hpp / table.hpp); this logger is for progress and diagnostics.
#pragma once

#include <string>
#include <string_view>

namespace pfrl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// "debug" | "info" | "warn" | "error" | "off" (case-insensitive) for
/// --log-level flags. Throws std::invalid_argument on anything else.
LogLevel parse_log_level(std::string_view name);
std::string_view log_level_name(LogLevel level);

/// Thread-safe write of one line to stderr.
void log_message(LogLevel level, std::string_view message);

/// printf-style formatting into a std::string.
std::string format_string(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

#define PFRL_LOG_IMPL(level, ...)                                              \
  do {                                                                         \
    if (::pfrl::util::log_level() <= (level))                                  \
      ::pfrl::util::log_message((level), ::pfrl::util::format_string(__VA_ARGS__)); \
  } while (0)

#define PFRL_LOG_DEBUG(...) PFRL_LOG_IMPL(::pfrl::util::LogLevel::kDebug, __VA_ARGS__)
#define PFRL_LOG_INFO(...) PFRL_LOG_IMPL(::pfrl::util::LogLevel::kInfo, __VA_ARGS__)
#define PFRL_LOG_WARN(...) PFRL_LOG_IMPL(::pfrl::util::LogLevel::kWarn, __VA_ARGS__)
#define PFRL_LOG_ERROR(...) PFRL_LOG_IMPL(::pfrl::util::LogLevel::kError, __VA_ARGS__)

}  // namespace pfrl::util
