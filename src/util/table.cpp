#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace pfrl::util {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TablePrinter: empty header");
}

void TablePrinter::row(std::vector<std::string> fields) {
  if (fields.size() != header_.size())
    throw std::invalid_argument("TablePrinter: row arity mismatch");
  rows_.push_back(std::move(fields));
}

std::string TablePrinter::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());

  const auto emit_row = [&](const std::vector<std::string>& fields, std::string& out) {
    out.push_back('|');
    for (std::size_t c = 0; c < fields.size(); ++c) {
      out.push_back(' ');
      out += fields[c];
      out.append(widths[c] - fields[c].size() + 1, ' ');
      out.push_back('|');
    }
    out.push_back('\n');
  };

  std::string out;
  emit_row(header_, out);
  out.push_back('|');
  for (const std::size_t w : widths) {
    out.append(w + 2, '-');
    out.push_back('|');
  }
  out.push_back('\n');
  for (const auto& r : rows_) emit_row(r, out);
  return out;
}

void TablePrinter::print() const {
  const std::string rendered = render();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

}  // namespace pfrl::util
