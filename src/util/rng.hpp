// Deterministic random number generation for the whole project.
//
// Every stochastic component (workload sampler, policy, initializers, ...)
// owns its own Rng seeded from an experiment-level master seed, so a fixed
// seed reproduces every figure bit-for-bit regardless of thread scheduling.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pfrl::util {

/// xoshiro256** PRNG (Blackman & Vigna). Small, fast, and statistically
/// strong enough for simulation work; seeded through splitmix64 so that
/// nearby seeds produce unrelated streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Derive an independent child stream; used to hand sub-seeds to
  /// components without correlating their randomness.
  Rng split();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second draw).
  double normal();
  double normal(double mean, double stddev);
  /// Log-normal with the given *underlying* normal parameters.
  double lognormal(double mu, double sigma);
  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);
  /// Pareto with scale x_m (> 0) and shape alpha (> 0).
  double pareto(double x_m, double alpha);
  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia–Tsang.
  double gamma(double shape, double scale);
  /// Poisson with mean lambda >= 0 (inversion for small, PTRS-style
  /// normal approximation fallback for large lambda).
  std::uint32_t poisson(double lambda);
  /// Bernoulli trial with probability p.
  bool bernoulli(double p);

  /// Index drawn proportionally to non-negative `weights` (need not sum
  /// to 1). Returns weights.size()-1 if rounding pushes past the end.
  std::size_t weighted_choice(std::span<const double> weights);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// splitmix64 step — exposed because seeding logic elsewhere (e.g. stable
/// per-client sub-seeds) wants the same mixing function.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace pfrl::util
