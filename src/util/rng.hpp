// Deterministic random number generation for the whole project.
//
// Every stochastic component (workload sampler, policy, initializers, ...)
// owns its own Rng seeded from an experiment-level master seed, so a fixed
// seed reproduces every figure bit-for-bit regardless of thread scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/serialization.hpp"

namespace pfrl::util {

/// Complete engine state of an Rng: the four xoshiro256** words plus the
/// Box–Muller cache (a normal() draw produces two values; the undelivered
/// one is part of the stream). Restoring this state makes the generator
/// continue with an identical sequence across every sampling path —
/// the property checkpoint resume depends on.
struct RngState {
  std::array<std::uint64_t, 4> s{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;

  bool operator==(const RngState&) const = default;

  void serialize(ByteWriter& writer) const {
    for (const std::uint64_t w : s) writer.write_u64(w);
    writer.write_f64(cached_normal);
    writer.write_bool(has_cached_normal);
  }

  static RngState deserialize(ByteReader& reader) {
    RngState state;
    for (auto& w : state.s) w = reader.read_u64();
    state.cached_normal = reader.read_f64();
    state.has_cached_normal = reader.read_bool();
    return state;
  }
};

/// xoshiro256** PRNG (Blackman & Vigna). Small, fast, and statistically
/// strong enough for simulation work; seeded through splitmix64 so that
/// nearby seeds produce unrelated streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Derive an independent child stream; used to hand sub-seeds to
  /// components without correlating their randomness.
  Rng split();

  /// Snapshot of the full engine state (xoshiro words + normal cache).
  RngState state() const;
  /// Restores a snapshot; the stream continues exactly where state() was
  /// taken, for every distribution.
  void set_state(const RngState& state);

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second draw).
  double normal();
  double normal(double mean, double stddev);
  /// Log-normal with the given *underlying* normal parameters.
  double lognormal(double mu, double sigma);
  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);
  /// Pareto with scale x_m (> 0) and shape alpha (> 0).
  double pareto(double x_m, double alpha);
  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia–Tsang.
  double gamma(double shape, double scale);
  /// Poisson with mean lambda >= 0 (inversion for small, PTRS-style
  /// normal approximation fallback for large lambda).
  std::uint32_t poisson(double lambda);
  /// Bernoulli trial with probability p.
  bool bernoulli(double p);

  /// Index drawn proportionally to non-negative `weights` (need not sum
  /// to 1). Returns weights.size()-1 if rounding pushes past the end.
  std::size_t weighted_choice(std::span<const double> weights);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// splitmix64 step — exposed because seeding logic elsewhere (e.g. stable
/// per-client sub-seeds) wants the same mixing function.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace pfrl::util
