// ASCII table rendering — the experiment harnesses print their results in
// the same rows/columns the paper's tables and figure legends use.
#pragma once

#include <string>
#include <vector>

namespace pfrl::util {

/// Accumulates rows, then renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void row(std::vector<std::string> fields);

  /// Formats a double with `precision` digits after the decimal point.
  static std::string num(double value, int precision = 3);

  /// Renders header + separator + rows with per-column alignment.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pfrl::util
