#include "util/thread_pool.hpp"

#include <algorithm>

namespace pfrl::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    const std::scoped_lock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      queue_depth_.store(queue_.size(), std::memory_order_relaxed);
      inflight_.fetch_add(1, std::memory_order_relaxed);
    }
    task();
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    // Release pairs with the acquire load in completed(): a reader that
    // sees this task's completion also sees its earlier submitted_ bump,
    // making completed <= submitted safe to compare across two loads.
    completed_.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) futures.push_back(submit([&fn, i] { fn(i); }));
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pfrl::util
