#include "nn/linear.hpp"

#include <cmath>

namespace pfrl::nn {

namespace {
Param xavier_weight(std::size_t in, std::size_t out, util::Rng& rng) {
  Matrix w(in, out);
  const double bound = std::sqrt(6.0 / static_cast<double>(in + out));
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-bound, bound));
  return Param(std::move(w));
}
}  // namespace

Linear::Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng)
    : weight_(xavier_weight(in_features, out_features, rng)),
      bias_(Matrix(1, out_features)) {}

Matrix Linear::forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out = input.matmul(weight_.value);
  out.add_row_broadcast(bias_.value);
  return out;
}

Matrix Linear::backward(const Matrix& grad_output) {
  // dL/dW = xᵀ g ; dL/db = column sums of g ; dL/dx = g Wᵀ.
  weight_.grad += cached_input_.transpose_matmul(grad_output);
  bias_.grad += grad_output.column_sums();
  return grad_output.matmul_transpose(weight_.value);
}

std::unique_ptr<Layer> Linear::clone() const {
  Param w(weight_.value);
  Param b(bias_.value);
  return std::unique_ptr<Layer>(new Linear(std::move(w), std::move(b)));
}

}  // namespace pfrl::nn
