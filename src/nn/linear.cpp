#include "nn/linear.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/kernels.hpp"

namespace pfrl::nn {

namespace {
Param xavier_weight(std::size_t in, std::size_t out, util::Rng& rng) {
  Matrix w(in, out);
  const double bound = std::sqrt(6.0 / static_cast<double>(in + out));
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-bound, bound));
  return Param(std::move(w));
}
}  // namespace

Linear::Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng)
    : weight_(xavier_weight(in_features, out_features, rng)),
      bias_(Matrix(1, out_features)) {}

void Linear::forward_into(const Matrix& input, Matrix& output) {
  if (input.cols() != in_features())
    throw std::invalid_argument("Linear::forward: input width mismatch");
  input.assign_into(cached_input_);
  output.resize(input.rows(), out_features());
  kernels::gemm_bias(input.flat().data(), weight_.value.flat().data(), bias_.value.flat().data(),
                     output.flat().data(), input.rows(), in_features(), out_features());
}

void Linear::backward_into(const Matrix& grad_output, Matrix& grad_input) {
  // dL/dW = xᵀ g ; dL/db = column sums of g ; dL/dx = g Wᵀ.
  cached_input_.transpose_matmul_into(grad_output, weight_.grad, /*accumulate=*/true);
  grad_output.column_sums_into(bias_.grad, /*accumulate=*/true);
  grad_output.matmul_transpose_into(weight_.value, grad_input);
}

void Linear::forward_row(std::span<const float> input, std::span<float> output) const {
  assert(input.size() == in_features() && output.size() == out_features());
  kernels::gemv_bias(input.data(), weight_.value.flat().data(), bias_.value.flat().data(),
                     output.data(), in_features(), out_features());
}

std::unique_ptr<Layer> Linear::clone() const {
  Param w(weight_.value);
  Param b(bias_.value);
  return std::unique_ptr<Layer>(new Linear(std::move(w), std::move(b)));
}

}  // namespace pfrl::nn
