#include "nn/attention.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/softmax.hpp"
#include "obs/trace.hpp"

namespace pfrl::nn {

namespace {
Matrix gaussian_matrix(std::size_t rows, std::size_t cols, double scale, util::Rng& rng) {
  Matrix m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.normal(0.0, scale));
  return m;
}
}  // namespace

MultiHeadAttention::MultiHeadAttention(std::size_t input_dim, MultiHeadAttentionConfig config)
    : config_(config) {
  if (config_.num_heads == 0 || config_.d_model == 0 || config_.d_k == 0)
    throw std::invalid_argument("MultiHeadAttention: zero-sized configuration");
  util::Rng rng(config_.seed);
  // 1/sqrt(dim) scaling keeps embedded norms comparable to input norms.
  embed_ = gaussian_matrix(input_dim, config_.d_model,
                           1.0 / std::sqrt(static_cast<double>(input_dim)), rng);
  w_query_.reserve(config_.num_heads);
  w_key_.reserve(config_.num_heads);
  const double proj_scale = 1.0 / std::sqrt(static_cast<double>(config_.d_model));
  for (std::size_t h = 0; h < config_.num_heads; ++h) {
    w_query_.push_back(gaussian_matrix(config_.d_model, config_.d_k, proj_scale, rng));
    w_key_.push_back(config_.tie_query_key
                         ? w_query_.back()
                         : gaussian_matrix(config_.d_model, config_.d_k, proj_scale, rng));
  }
}

Matrix MultiHeadAttention::embed(const Matrix& models) const {
  if (models.cols() != embed_.rows())
    throw std::invalid_argument("MultiHeadAttention: model dimension mismatch");
  Matrix input = models;
  if (config_.center_models && input.rows() > 1) {
    const Matrix col_mean = input.column_sums() * (1.0F / static_cast<float>(input.rows()));
    for (std::size_t r = 0; r < input.rows(); ++r) {
      auto row = input.row(r);
      const auto mean_row = col_mean.row(0);
      for (std::size_t c = 0; c < row.size(); ++c) row[c] -= mean_row[c];
    }
  }
  Matrix e = input.matmul(embed_);
  if (!config_.normalize_embeddings) return e;
  for (std::size_t r = 0; r < e.rows(); ++r) {
    auto row = e.row(r);
    double mean = 0.0;
    for (const float v : row) mean += static_cast<double>(v);
    mean /= static_cast<double>(row.size());
    double var = 0.0;
    for (const float v : row) {
      const double d = static_cast<double>(v) - mean;
      var += d * d;
    }
    var /= static_cast<double>(row.size());
    const auto inv_std = static_cast<float>(1.0 / std::sqrt(var + 1e-8));
    for (float& v : row) v = (v - static_cast<float>(mean)) * inv_std;
  }
  return e;
}

std::vector<Matrix> MultiHeadAttention::head_weights(const Matrix& models) const {
  const Matrix e = embed(models);
  const auto inv_sqrt_dk = static_cast<float>(1.0 / std::sqrt(static_cast<double>(config_.d_k)));
  std::vector<Matrix> heads;
  heads.reserve(config_.num_heads);
  Matrix q;
  Matrix k;
  for (std::size_t h = 0; h < config_.num_heads; ++h) {
    e.matmul_into(w_query_[h], q);
    e.matmul_into(w_key_[h], k);
    Matrix scores;
    q.matmul_transpose_into(k, scores);
    scores *= inv_sqrt_dk;
    for (std::size_t r = 0; r < scores.rows(); ++r) softmax_inplace(scores.row(r));
    heads.push_back(std::move(scores));
  }
  return heads;
}

Matrix MultiHeadAttention::weights(const Matrix& models) const {
  PFRL_SPAN("nn/attention");
  const Matrix e = embed(models);
  const auto inv_sqrt_dk = static_cast<float>(1.0 / std::sqrt(static_cast<double>(config_.d_k)));
  // q / k / scores are hoisted out of the head loop and capacity-reused.
  Matrix q;
  Matrix k;
  Matrix scores;
  Matrix mean;
  for (std::size_t h = 0; h < config_.num_heads; ++h) {
    e.matmul_into(w_query_[h], q);
    e.matmul_into(w_key_[h], k);
    q.matmul_transpose_into(k, scores);
    scores *= inv_sqrt_dk;
    for (std::size_t r = 0; r < scores.rows(); ++r) softmax_inplace(scores.row(r));
    if (h == 0) {
      scores.assign_into(mean);
    } else {
      mean += scores;
    }
  }
  mean *= 1.0F / static_cast<float>(config_.num_heads);
  return mean;
}

}  // namespace pfrl::nn
