// Element-wise activations (no parameters).
#pragma once

#include "nn/layer.hpp"

namespace pfrl::nn {

class Tanh final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Tanh>(); }

 private:
  Matrix cached_output_;
};

class Relu final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Relu>(); }

 private:
  Matrix cached_input_;
};

}  // namespace pfrl::nn
