// Element-wise activations (no parameters).
//
// Tanh evaluates through kernels::fast_tanh (SIMD-friendly rational
// approximation, |err| < 4e-7 vs libm) on both the batch and row paths,
// so training and inference see identical numerics.
#pragma once

#include "nn/layer.hpp"

namespace pfrl::nn {

class Tanh final : public Layer {
 public:
  void forward_into(const Matrix& input, Matrix& output) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_input) override;
  void forward_row(std::span<const float> input, std::span<float> output) const override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Tanh>(); }

 private:
  Matrix cached_output_;  // capacity-reusing copy for backward
};

class Relu final : public Layer {
 public:
  void forward_into(const Matrix& input, Matrix& output) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_input) override;
  void forward_row(std::span<const float> input, std::span<float> output) const override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Relu>(); }

 private:
  Matrix cached_input_;
};

}  // namespace pfrl::nn
