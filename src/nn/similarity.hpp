// Baseline similarity-based weight generators (paper §3.3, Figs. 12–13).
//
// The paper compares the multi-head attention weights against weights
// derived from KL divergence and cosine similarity over the clients'
// critic models; both baselines fail to concentrate weight on the
// matching client pair. These functions reproduce those baselines.
#pragma once

#include "nn/matrix.hpp"

namespace pfrl::nn {

/// Pairwise cosine similarity of the rows of `models` (K × P) → K × K.
Matrix cosine_similarity_matrix(const Matrix& models);

/// Pairwise KL divergence D(p_i || p_j) where p_i = softmax(|row_i|).
/// Parameter vectors are not distributions, so — as in the paper's
/// baseline — they are squashed into one via softmax of magnitudes first.
Matrix kl_divergence_matrix(const Matrix& models);

/// Row-stochastic weights from a similarity matrix: softmax(sim / tau)
/// per row. Higher similarity → larger weight.
Matrix weights_from_similarity(const Matrix& similarity, float tau = 1.0F);

/// Row-stochastic weights from a divergence matrix: softmax(-div / tau).
Matrix weights_from_divergence(const Matrix& divergence, float tau = 1.0F);

}  // namespace pfrl::nn
