#include "nn/mlp.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "nn/activations.hpp"
#include "nn/kernels.hpp"
#include "nn/linear.hpp"
#include "obs/trace.hpp"

namespace pfrl::nn {

Mlp::Mlp(std::size_t input_dim, const std::vector<std::size_t>& hidden_dims,
         std::size_t output_dim, util::Rng& rng)
    : input_dim_(input_dim), output_dim_(output_dim) {
  std::size_t prev = input_dim;
  for (const std::size_t h : hidden_dims) {
    layers_.push_back(std::make_unique<Linear>(prev, h, rng));
    layers_.push_back(std::make_unique<Tanh>());
    prev = h;
  }
  layers_.push_back(std::make_unique<Linear>(prev, output_dim, rng));
  rebuild_row_plan();
}

Mlp::Mlp(const Mlp& other) : input_dim_(other.input_dim_), output_dim_(other.output_dim_) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
  rebuild_row_plan();
}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this == &other) return *this;
  // The defaulted move keeps row_plan_ valid: it points at Layer objects
  // owned through unique_ptr, whose addresses survive the move.
  Mlp copy(other);
  *this = std::move(copy);
  return *this;
}

void Mlp::rebuild_row_plan() {
  acts_.resize(layers_.size());
  grads_.resize(layers_.size());
  row_plan_.clear();

  std::size_t width = input_dim_;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    RowOp op;
    const auto* linear = dynamic_cast<const Linear*>(layers_[i].get());
    if (linear != nullptr && i + 1 < layers_.size() &&
        dynamic_cast<const Tanh*>(layers_[i + 1].get()) != nullptr) {
      op.fused_linear = linear;
      op.out_width = linear->out_features();
      ++i;  // the Tanh rides in the GEMV epilogue
    } else {
      op.layer = layers_[i].get();
      op.out_width = layers_[i]->output_size(width);
    }
    width = op.out_width;
    row_plan_.push_back(op);
  }

  // Ping-pong scratch sized to the widest intermediate (the last op writes
  // straight into the caller's output span).
  std::size_t max_width = 0;
  for (std::size_t i = 0; i + 1 < row_plan_.size(); ++i)
    max_width = std::max(max_width, row_plan_[i].out_width);
  row_scratch_[0].assign(max_width, 0.0F);
  row_scratch_[1].assign(max_width, 0.0F);
}

const Matrix& Mlp::forward_batch(const Matrix& input) {
  PFRL_SPAN("nn/mlp_forward");
  if (layers_.empty()) throw std::logic_error("Mlp::forward_batch: empty network");
  const Matrix* x = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward_into(*x, acts_[i]);
    x = &acts_[i];
  }
  return acts_.back();
}

const Matrix& Mlp::backward_batch(const Matrix& grad_output) {
  PFRL_SPAN("nn/mlp_backward");
  if (layers_.empty()) throw std::logic_error("Mlp::backward_batch: empty network");
  const Matrix* g = &grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    layers_[i]->backward_into(*g, grads_[i]);
    g = &grads_[i];
  }
  return grads_.front();
}

void Mlp::forward_row(std::span<const float> input, std::span<float> output) const {
  assert(input.size() == input_dim_ && output.size() == output_dim_);
  const float* cur = input.data();
  std::size_t cur_width = input.size();
  for (std::size_t i = 0; i < row_plan_.size(); ++i) {
    const RowOp& op = row_plan_[i];
    float* dst = (i + 1 == row_plan_.size()) ? output.data() : row_scratch_[i % 2].data();
    if (op.fused_linear != nullptr) {
      const Linear& lin = *op.fused_linear;
      kernels::gemv_bias_tanh(cur, lin.weight().value.flat().data(),
                              lin.bias().value.flat().data(), dst, cur_width, op.out_width);
    } else {
      op.layer->forward_row(std::span<const float>(cur, cur_width),
                            std::span<float>(dst, op.out_width));
    }
    cur = dst;
    cur_width = op.out_width;
  }
}

void Mlp::zero_grad() {
  for (Param* p : params()) p->grad.zero();
}

std::vector<Param*> Mlp::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_)
    for (Param* p : layer->params()) all.push_back(p);
  return all;
}

std::vector<const Param*> Mlp::params() const {
  std::vector<const Param*> all;
  for (const auto& layer : layers_)
    for (const Param* p : std::as_const(*layer).params()) all.push_back(p);
  return all;
}

std::size_t Mlp::param_count() const {
  std::size_t count = 0;
  for (const Param* p : params()) count += p->value.size();
  return count;
}

std::vector<float> Mlp::flatten() const {
  std::vector<float> flat;
  flat.reserve(param_count());
  for (const Param* p : params()) {
    const auto values = p->value.flat();
    flat.insert(flat.end(), values.begin(), values.end());
  }
  return flat;
}

void Mlp::unflatten(std::span<const float> flat) {
  if (flat.size() != param_count())
    throw std::invalid_argument("Mlp::unflatten: size mismatch");
  std::size_t offset = 0;
  for (Param* p : params()) {
    auto values = p->value.flat();
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(offset), values.size(),
                values.begin());
    offset += values.size();
  }
}

std::vector<float> Mlp::flatten_grad() const {
  std::vector<float> flat;
  flat.reserve(param_count());
  for (const Param* p : params()) {
    const auto grads = p->grad.flat();
    flat.insert(flat.end(), grads.begin(), grads.end());
  }
  return flat;
}

void Mlp::serialize(util::ByteWriter& writer) const {
  writer.write_u64(input_dim_);
  writer.write_u64(output_dim_);
  const std::vector<float> flat = flatten();
  writer.write_f32_span(flat);
}

void Mlp::deserialize(util::ByteReader& reader) {
  const std::uint64_t in = reader.read_u64();
  const std::uint64_t out = reader.read_u64();
  if (in != input_dim_ || out != output_dim_)
    throw std::invalid_argument("Mlp::deserialize: architecture mismatch");
  const std::vector<float> flat = reader.read_f32_vector();
  unflatten(flat);
}

bool Mlp::same_architecture(const Mlp& other) const {
  return input_dim_ == other.input_dim_ && output_dim_ == other.output_dim_ &&
         param_count() == other.param_count();
}

}  // namespace pfrl::nn
