#include "nn/mlp.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "obs/trace.hpp"

namespace pfrl::nn {

Mlp::Mlp(std::size_t input_dim, const std::vector<std::size_t>& hidden_dims,
         std::size_t output_dim, util::Rng& rng)
    : input_dim_(input_dim), output_dim_(output_dim) {
  std::size_t prev = input_dim;
  for (const std::size_t h : hidden_dims) {
    layers_.push_back(std::make_unique<Linear>(prev, h, rng));
    layers_.push_back(std::make_unique<Tanh>());
    prev = h;
  }
  layers_.push_back(std::make_unique<Linear>(prev, output_dim, rng));
}

Mlp::Mlp(const Mlp& other) : input_dim_(other.input_dim_), output_dim_(other.output_dim_) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this == &other) return *this;
  Mlp copy(other);
  *this = std::move(copy);
  return *this;
}

Matrix Mlp::forward(const Matrix& input) {
  PFRL_SPAN("nn/mlp_forward");
  Matrix x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

Matrix Mlp::backward(const Matrix& grad_output) {
  PFRL_SPAN("nn/mlp_backward");
  Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

void Mlp::zero_grad() {
  for (Param* p : params()) p->grad.zero();
}

std::vector<Param*> Mlp::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_)
    for (Param* p : layer->params()) all.push_back(p);
  return all;
}

std::size_t Mlp::param_count() const {
  std::size_t count = 0;
  for (const auto& layer : layers_)
    for (Param* p : const_cast<Layer&>(*layer).params()) count += p->value.size();
  return count;
}

std::vector<float> Mlp::flatten() const {
  std::vector<float> flat;
  flat.reserve(param_count());
  for (const auto& layer : layers_)
    for (Param* p : const_cast<Layer&>(*layer).params()) {
      const auto values = p->value.flat();
      flat.insert(flat.end(), values.begin(), values.end());
    }
  return flat;
}

void Mlp::unflatten(std::span<const float> flat) {
  if (flat.size() != param_count())
    throw std::invalid_argument("Mlp::unflatten: size mismatch");
  std::size_t offset = 0;
  for (auto& layer : layers_)
    for (Param* p : layer->params()) {
      auto values = p->value.flat();
      std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(offset), values.size(),
                  values.begin());
      offset += values.size();
    }
}

std::vector<float> Mlp::flatten_grad() const {
  std::vector<float> flat;
  flat.reserve(param_count());
  for (const auto& layer : layers_)
    for (Param* p : const_cast<Layer&>(*layer).params()) {
      const auto grads = p->grad.flat();
      flat.insert(flat.end(), grads.begin(), grads.end());
    }
  return flat;
}

void Mlp::serialize(util::ByteWriter& writer) const {
  writer.write_u64(input_dim_);
  writer.write_u64(output_dim_);
  const std::vector<float> flat = flatten();
  writer.write_f32_span(flat);
}

void Mlp::deserialize(util::ByteReader& reader) {
  const std::uint64_t in = reader.read_u64();
  const std::uint64_t out = reader.read_u64();
  if (in != input_dim_ || out != output_dim_)
    throw std::invalid_argument("Mlp::deserialize: architecture mismatch");
  const std::vector<float> flat = reader.read_f32_vector();
  unflatten(flat);
}

bool Mlp::same_architecture(const Mlp& other) const {
  return input_dim_ == other.input_dim_ && output_dim_ == other.output_dim_ &&
         param_count() == other.param_count();
}

}  // namespace pfrl::nn
