#include "nn/kernels.hpp"

#include "obs/metrics.hpp"

// Each hot body below lives in exactly one cloned function: the public
// wrappers do the FLOP accounting (function-local statics in cloned code
// would be duplicated per ISA variant) and immediately tail-call the
// `*_impl` worker, which the compiler specializes per ISA level.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && !defined(__clang__) && \
    __GNUC__ >= 11
#define PFRL_TARGET_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v2", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define PFRL_TARGET_CLONES
#endif

namespace pfrl::nn::kernels {

namespace {

// Width of the register-resident accumulator tiles below. 16 floats is
// two AVX2 vectors — wide enough that each k step issues 8 independent
// FMA chains (latency-hiding), narrow enough that a 4×16 tile plus the
// streamed B vectors fits the 16 ymm registers of x86-64-v3.
constexpr std::size_t kColTile = 16;

/// Shared GEMM body: C = A·B (+ row-broadcast bias). Register blocking: a
/// 4-row × 16-column C tile lives in local accumulators for the ENTIRE
/// k loop, so C memory traffic happens once per tile instead of once per
/// k step. (The previous scheme kept C in memory and re-loaded/re-stored
/// every row on each k pair, leaving the kernel store-bound at ~7 Gflop/s
/// — slower per row than the fused GEMV it was meant to beat.) The
/// k-accumulation order for an output element is strictly sequential and
/// the same in every tile/remainder path, so a row's result is
/// independent of which batch it was computed in.
/// y = x·W + bias for one row, k unrolled by 4; optional fused tanh.
/// `bias == nullptr` seeds the row with zeros (the GEMM m==1 fast path).
PFRL_TARGET_CLONES
void gemv_bias_impl(const float* x, const float* w, const float* bias, float* y, std::size_t k,
                    std::size_t n, bool tanh_epilogue) {
  if (bias == nullptr) {
    std::fill(y, y + n, 0.0F);
  } else {
    std::copy(bias, bias + n, y);
  }
  std::size_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const float x0 = x[kk], x1 = x[kk + 1], x2 = x[kk + 2], x3 = x[kk + 3];
    const float* w0 = w + (kk + 0) * n;
    const float* w1 = w + (kk + 1) * n;
    const float* w2 = w + (kk + 2) * n;
    const float* w3 = w + (kk + 3) * n;
    for (std::size_t j = 0; j < n; ++j)
      y[j] += x0 * w0[j] + x1 * w1[j] + x2 * w2[j] + x3 * w3[j];
  }
  for (; kk < k; ++kk) {
    const float xv = x[kk];
    const float* wr = w + kk * n;
    for (std::size_t j = 0; j < n; ++j) y[j] += xv * wr[j];
  }
  if (tanh_epilogue)
    for (std::size_t j = 0; j < n; ++j) y[j] = fast_tanh(y[j]);
}

/// n == 1 (a value head): B is a contiguous k-vector, so each output is a
/// plain dot product over a contiguous A row — four partial sums give the
/// vectorizer independent lanes. The generic tile path pays its full
/// 16-wide machinery for one live column (~17× wasted work).
PFRL_TARGET_CLONES
void gemm_bias_n1_impl(const float* a, const float* b, const float* bias, float* c,
                       std::size_t m, std::size_t k) {
  const float base = bias == nullptr ? 0.0F : bias[0];
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float s0 = 0.0F, s1 = 0.0F, s2 = 0.0F, s3 = 0.0F;
    std::size_t kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      s0 += ai[kk + 0] * b[kk + 0];
      s1 += ai[kk + 1] * b[kk + 1];
      s2 += ai[kk + 2] * b[kk + 2];
      s3 += ai[kk + 3] * b[kk + 3];
    }
    float s = (s0 + s1) + (s2 + s3);
    for (; kk < k; ++kk) s += ai[kk] * b[kk];
    c[i] = base + s;
  }
}

// Narrow-B staging area: a logits head with a handful of actions leaves
// the tile path's inner loop at a runtime width the vectorizer refuses to
// touch (measured ~5 Gflop/s at n=6 vs ~76 at n=16). Padding B once into
// a full-width buffer restores full-tile code for ~(16/n)× redundant
// flops — a large net win for any n below the tile width.
constexpr std::size_t kPadMaxK = 512;

PFRL_TARGET_CLONES
void gemm_bias_impl(const float* a, const float* b, const float* bias, float* c, std::size_t m,
                    std::size_t k, std::size_t n) {
  if (m == 1) {
    // A batch of one row is exactly a GEMV; the row kernel's k-unrolled
    // form has 4× the independent accumulator chains of a 1×16 tile.
    gemv_bias_impl(a, b, bias, c, k, n, false);
    return;
  }
  if (n == 1) {
    gemm_bias_n1_impl(a, b, bias, c, m, k);
    return;
  }
  if (n < kColTile && k <= kPadMaxK) {
    float b_pad[kPadMaxK * kColTile];
    float bias_pad[kColTile] = {};
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* src = b + kk * n;
      float* dst = b_pad + kk * kColTile;
      std::size_t j = 0;
      for (; j < n; ++j) dst[j] = src[j];
      for (; j < kColTile; ++j) dst[j] = 0.0F;
    }
    if (bias != nullptr) std::copy(bias, bias + n, bias_pad);
    // All row-tile widths accumulate each output element on the same
    // single sequential k chain with the bias added last — bit-identical
    // to the unpadded narrow-tile path, so a row's bits stay independent
    // of its position in the batch (and of the tile width that covers it).
    std::size_t i = 0;
    for (; i + 8 <= m; i += 8) {
      const float* a0 = a + (i + 0) * k;
      const float* a1 = a + (i + 1) * k;
      const float* a2 = a + (i + 2) * k;
      const float* a3 = a + (i + 3) * k;
      const float* a4 = a + (i + 4) * k;
      const float* a5 = a + (i + 5) * k;
      const float* a6 = a + (i + 6) * k;
      const float* a7 = a + (i + 7) * k;
      float t0[kColTile] = {}, t1[kColTile] = {}, t2[kColTile] = {}, t3[kColTile] = {};
      float t4[kColTile] = {}, t5[kColTile] = {}, t6[kColTile] = {}, t7[kColTile] = {};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* br = b_pad + kk * kColTile;
        const float x0 = a0[kk], x1 = a1[kk], x2 = a2[kk], x3 = a3[kk];
        const float x4 = a4[kk], x5 = a5[kk], x6 = a6[kk], x7 = a7[kk];
        for (std::size_t j = 0; j < kColTile; ++j) {
          const float bj = br[j];
          t0[j] += x0 * bj;
          t1[j] += x1 * bj;
          t2[j] += x2 * bj;
          t3[j] += x3 * bj;
          t4[j] += x4 * bj;
          t5[j] += x5 * bj;
          t6[j] += x6 * bj;
          t7[j] += x7 * bj;
        }
      }
      for (std::size_t j = 0; j < n; ++j) {
        const float base = bias_pad[j];
        c[(i + 0) * n + j] = base + t0[j];
        c[(i + 1) * n + j] = base + t1[j];
        c[(i + 2) * n + j] = base + t2[j];
        c[(i + 3) * n + j] = base + t3[j];
        c[(i + 4) * n + j] = base + t4[j];
        c[(i + 5) * n + j] = base + t5[j];
        c[(i + 6) * n + j] = base + t6[j];
        c[(i + 7) * n + j] = base + t7[j];
      }
    }
    for (; i + 4 <= m; i += 4) {
      const float* a0 = a + (i + 0) * k;
      const float* a1 = a + (i + 1) * k;
      const float* a2 = a + (i + 2) * k;
      const float* a3 = a + (i + 3) * k;
      float t0[kColTile] = {}, t1[kColTile] = {}, t2[kColTile] = {}, t3[kColTile] = {};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* br = b_pad + kk * kColTile;
        const float x0 = a0[kk], x1 = a1[kk], x2 = a2[kk], x3 = a3[kk];
        for (std::size_t j = 0; j < kColTile; ++j) {
          const float bj = br[j];
          t0[j] += x0 * bj;
          t1[j] += x1 * bj;
          t2[j] += x2 * bj;
          t3[j] += x3 * bj;
        }
      }
      for (std::size_t j = 0; j < n; ++j) {
        const float base = bias_pad[j];
        c[(i + 0) * n + j] = base + t0[j];
        c[(i + 1) * n + j] = base + t1[j];
        c[(i + 2) * n + j] = base + t2[j];
        c[(i + 3) * n + j] = base + t3[j];
      }
    }
    for (; i < m; ++i) {
      const float* ai = a + i * k;
      float t0[kColTile] = {};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* br = b_pad + kk * kColTile;
        const float x = ai[kk];
        for (std::size_t j = 0; j < kColTile; ++j) t0[j] += x * br[j];
      }
      for (std::size_t j = 0; j < n; ++j)
        c[i * n + j] = (bias == nullptr ? 0.0F : bias[j]) + t0[j];
    }
    return;
  }
  std::size_t i = 0;
  // 8-row tiles first: with only 4 accumulator chains per column tile the
  // loop is FMA-latency-bound (each chain issues one FMA every `latency`
  // cycles); 8 independent chains keep both FMA ports busy. Each output
  // element is still one sequential k chain — bits match the 4-row tile.
  for (; i + 8 <= m; i += 8) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    const float* a2 = a + (i + 2) * k;
    const float* a3 = a + (i + 3) * k;
    const float* a4 = a + (i + 4) * k;
    const float* a5 = a + (i + 5) * k;
    const float* a6 = a + (i + 6) * k;
    const float* a7 = a + (i + 7) * k;
    std::size_t j0 = 0;
    for (; j0 + kColTile <= n; j0 += kColTile) {
      float t0[kColTile] = {}, t1[kColTile] = {}, t2[kColTile] = {}, t3[kColTile] = {};
      float t4[kColTile] = {}, t5[kColTile] = {}, t6[kColTile] = {}, t7[kColTile] = {};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* br = b + kk * n + j0;
        const float x0 = a0[kk], x1 = a1[kk], x2 = a2[kk], x3 = a3[kk];
        const float x4 = a4[kk], x5 = a5[kk], x6 = a6[kk], x7 = a7[kk];
        for (std::size_t j = 0; j < kColTile; ++j) {
          const float bj = br[j];
          t0[j] += x0 * bj;
          t1[j] += x1 * bj;
          t2[j] += x2 * bj;
          t3[j] += x3 * bj;
          t4[j] += x4 * bj;
          t5[j] += x5 * bj;
          t6[j] += x6 * bj;
          t7[j] += x7 * bj;
        }
      }
      for (std::size_t j = 0; j < kColTile; ++j) {
        const float base = bias == nullptr ? 0.0F : bias[j0 + j];
        c[(i + 0) * n + j0 + j] = base + t0[j];
        c[(i + 1) * n + j0 + j] = base + t1[j];
        c[(i + 2) * n + j0 + j] = base + t2[j];
        c[(i + 3) * n + j0 + j] = base + t3[j];
        c[(i + 4) * n + j0 + j] = base + t4[j];
        c[(i + 5) * n + j0 + j] = base + t5[j];
        c[(i + 6) * n + j0 + j] = base + t6[j];
        c[(i + 7) * n + j0 + j] = base + t7[j];
      }
    }
    if (j0 < n) {
      const std::size_t w = n - j0;
      float t0[kColTile] = {}, t1[kColTile] = {}, t2[kColTile] = {}, t3[kColTile] = {};
      float t4[kColTile] = {}, t5[kColTile] = {}, t6[kColTile] = {}, t7[kColTile] = {};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* br = b + kk * n + j0;
        const float x0 = a0[kk], x1 = a1[kk], x2 = a2[kk], x3 = a3[kk];
        const float x4 = a4[kk], x5 = a5[kk], x6 = a6[kk], x7 = a7[kk];
        for (std::size_t j = 0; j < w; ++j) {
          const float bj = br[j];
          t0[j] += x0 * bj;
          t1[j] += x1 * bj;
          t2[j] += x2 * bj;
          t3[j] += x3 * bj;
          t4[j] += x4 * bj;
          t5[j] += x5 * bj;
          t6[j] += x6 * bj;
          t7[j] += x7 * bj;
        }
      }
      for (std::size_t j = 0; j < w; ++j) {
        const float base = bias == nullptr ? 0.0F : bias[j0 + j];
        c[(i + 0) * n + j0 + j] = base + t0[j];
        c[(i + 1) * n + j0 + j] = base + t1[j];
        c[(i + 2) * n + j0 + j] = base + t2[j];
        c[(i + 3) * n + j0 + j] = base + t3[j];
        c[(i + 4) * n + j0 + j] = base + t4[j];
        c[(i + 5) * n + j0 + j] = base + t5[j];
        c[(i + 6) * n + j0 + j] = base + t6[j];
        c[(i + 7) * n + j0 + j] = base + t7[j];
      }
    }
  }
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    const float* a2 = a + (i + 2) * k;
    const float* a3 = a + (i + 3) * k;
    float* c0 = c + (i + 0) * n;
    float* c1 = c + (i + 1) * n;
    float* c2 = c + (i + 2) * n;
    float* c3 = c + (i + 3) * n;
    std::size_t j0 = 0;
    for (; j0 + kColTile <= n; j0 += kColTile) {
      float t0[kColTile] = {}, t1[kColTile] = {}, t2[kColTile] = {}, t3[kColTile] = {};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* br = b + kk * n + j0;
        const float x0 = a0[kk], x1 = a1[kk], x2 = a2[kk], x3 = a3[kk];
        for (std::size_t j = 0; j < kColTile; ++j) {
          const float bj = br[j];
          t0[j] += x0 * bj;
          t1[j] += x1 * bj;
          t2[j] += x2 * bj;
          t3[j] += x3 * bj;
        }
      }
      for (std::size_t j = 0; j < kColTile; ++j) {
        const float base = bias == nullptr ? 0.0F : bias[j0 + j];
        c0[j0 + j] = base + t0[j];
        c1[j0 + j] = base + t1[j];
        c2[j0 + j] = base + t2[j];
        c3[j0 + j] = base + t3[j];
      }
    }
    if (j0 < n) {
      const std::size_t w = n - j0;
      float t0[kColTile] = {}, t1[kColTile] = {}, t2[kColTile] = {}, t3[kColTile] = {};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* br = b + kk * n + j0;
        const float x0 = a0[kk], x1 = a1[kk], x2 = a2[kk], x3 = a3[kk];
        for (std::size_t j = 0; j < w; ++j) {
          const float bj = br[j];
          t0[j] += x0 * bj;
          t1[j] += x1 * bj;
          t2[j] += x2 * bj;
          t3[j] += x3 * bj;
        }
      }
      for (std::size_t j = 0; j < w; ++j) {
        const float base = bias == nullptr ? 0.0F : bias[j0 + j];
        c0[j0 + j] = base + t0[j];
        c1[j0 + j] = base + t1[j];
        c2[j0 + j] = base + t2[j];
        c3[j0 + j] = base + t3[j];
      }
    }
  }
  for (; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
      const std::size_t w = std::min(kColTile, n - j0);
      float t0[kColTile] = {};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* br = b + kk * n + j0;
        const float x = ai[kk];
        for (std::size_t j = 0; j < w; ++j) t0[j] += x * br[j];
      }
      for (std::size_t j = 0; j < w; ++j)
        ci[j0 + j] = (bias == nullptr ? 0.0F : bias[j0 + j]) + t0[j];
    }
  }
}

/// C (m×n) (+)= Aᵀ·B with A (k×m), B (k×n): the same 4×16 register tile
/// as gemm_bias_impl, accumulating over the shared k rows — A is simply
/// read column-wise (stride m scalar loads feeding the broadcasts). C is
/// touched once per tile; the old scheme streamed the whole of C through
/// memory for every 4 k rows, which made the backward weight-gradient
/// pass store-bound.
PFRL_TARGET_CLONES
void gemm_at_b_impl(const float* a, const float* b, float* c, std::size_t k, std::size_t m,
                    std::size_t n, bool accumulate) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    float* c0 = c + (i + 0) * n;
    float* c1 = c + (i + 1) * n;
    float* c2 = c + (i + 2) * n;
    float* c3 = c + (i + 3) * n;
    for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
      const std::size_t w = std::min(kColTile, n - j0);
      float t0[kColTile] = {}, t1[kColTile] = {}, t2[kColTile] = {}, t3[kColTile] = {};
      for (std::size_t r = 0; r < k; ++r) {
        const float* ar = a + r * m + i;
        const float* br = b + r * n + j0;
        const float x0 = ar[0], x1 = ar[1], x2 = ar[2], x3 = ar[3];
        for (std::size_t j = 0; j < w; ++j) {
          const float bj = br[j];
          t0[j] += x0 * bj;
          t1[j] += x1 * bj;
          t2[j] += x2 * bj;
          t3[j] += x3 * bj;
        }
      }
      if (accumulate) {
        for (std::size_t j = 0; j < w; ++j) {
          c0[j0 + j] += t0[j];
          c1[j0 + j] += t1[j];
          c2[j0 + j] += t2[j];
          c3[j0 + j] += t3[j];
        }
      } else {
        for (std::size_t j = 0; j < w; ++j) {
          c0[j0 + j] = t0[j];
          c1[j0 + j] = t1[j];
          c2[j0 + j] = t2[j];
          c3[j0 + j] = t3[j];
        }
      }
    }
  }
  for (; i < m; ++i) {
    float* ci = c + i * n;
    for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
      const std::size_t w = std::min(kColTile, n - j0);
      float t0[kColTile] = {};
      for (std::size_t r = 0; r < k; ++r) {
        const float x = a[r * m + i];
        const float* br = b + r * n + j0;
        for (std::size_t j = 0; j < w; ++j) t0[j] += x * br[j];
      }
      if (accumulate) {
        for (std::size_t j = 0; j < w; ++j) ci[j0 + j] += t0[j];
      } else {
        for (std::size_t j = 0; j < w; ++j) ci[j0 + j] = t0[j];
      }
    }
  }
}

/// C (m×n) = A·Bᵀ with B (n×k): row-by-row dot products, four explicit
/// partial sums per dot so the reduction vectorizes without reassociation
/// licenses (the lanes are the program's own accumulators).
PFRL_TARGET_CLONES
void gemm_a_bt_impl(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                    std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float s0 = 0.0F, s1 = 0.0F, s2 = 0.0F, s3 = 0.0F;
      std::size_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        s0 += ai[kk + 0] * bj[kk + 0];
        s1 += ai[kk + 1] * bj[kk + 1];
        s2 += ai[kk + 2] * bj[kk + 2];
        s3 += ai[kk + 3] * bj[kk + 3];
      }
      float s = (s0 + s1) + (s2 + s3);
      for (; kk < k; ++kk) s += ai[kk] * bj[kk];
      ci[j] = s;
    }
  }
}

PFRL_TARGET_CLONES
void tanh_apply_impl(const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = fast_tanh(x[i]);
}

}  // namespace

void tanh_apply(const float* x, float* y, std::size_t n) { tanh_apply_impl(x, y, n); }

void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k, std::size_t n) {
  PFRL_COUNT("nn/flops", 2 * m * k * n);
  gemm_bias_impl(a, b, nullptr, c, m, k, n);
}

void gemm_bias(const float* a, const float* b, const float* bias, float* c, std::size_t m,
               std::size_t k, std::size_t n) {
  PFRL_COUNT("nn/flops", 2 * m * k * n + m * n);
  gemm_bias_impl(a, b, bias, c, m, k, n);
}

void gemm_at_b(const float* a, const float* b, float* c, std::size_t k, std::size_t m,
               std::size_t n, bool accumulate) {
  PFRL_COUNT("nn/flops", 2 * m * k * n);
  gemm_at_b_impl(a, b, c, k, m, n, accumulate);
}

void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) {
  PFRL_COUNT("nn/flops", 2 * m * k * n);
  gemm_a_bt_impl(a, b, c, m, k, n);
}

void gemv_bias(const float* x, const float* w, const float* bias, float* y, std::size_t k,
               std::size_t n) {
  PFRL_COUNT("nn/flops", 2 * k * n + n);
  gemv_bias_impl(x, w, bias, y, k, n, false);
}

void gemv_bias_tanh(const float* x, const float* w, const float* bias, float* y, std::size_t k,
                    std::size_t n) {
  PFRL_COUNT("nn/flops", 2 * k * n + n);
  gemv_bias_impl(x, w, bias, y, k, n, true);
}

}  // namespace pfrl::nn::kernels
