#include "nn/kernels.hpp"

#include "obs/metrics.hpp"

// Each hot body below lives in exactly one cloned function: the public
// wrappers do the FLOP accounting (function-local statics in cloned code
// would be duplicated per ISA variant) and immediately tail-call the
// `*_impl` worker, which the compiler specializes per ISA level.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && !defined(__clang__) && \
    __GNUC__ >= 11
#define PFRL_TARGET_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v2", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define PFRL_TARGET_CLONES
#endif

namespace pfrl::nn::kernels {

namespace {

/// Shared GEMM body: C = A·B, rows seeded from `bias` (nullptr → zero).
/// Register blocking: 4 C rows × 2 k steps are held in scalars, the inner
/// j loop writes 4 contiguous output rows — unit stride, no aliasing, the
/// shape the vectorizer wants.
PFRL_TARGET_CLONES
void gemm_bias_impl(const float* a, const float* b, const float* bias, float* c, std::size_t m,
                    std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    float* ci = c + i * n;
    if (bias == nullptr) {
      std::fill(ci, ci + n, 0.0F);
    } else {
      std::copy(bias, bias + n, ci);
    }
  }
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    const float* a2 = a + (i + 2) * k;
    const float* a3 = a + (i + 3) * k;
    float* c0 = c + (i + 0) * n;
    float* c1 = c + (i + 1) * n;
    float* c2 = c + (i + 2) * n;
    float* c3 = c + (i + 3) * n;
    std::size_t kk = 0;
    for (; kk + 2 <= k; kk += 2) {
      const float* b0 = b + (kk + 0) * n;
      const float* b1 = b + (kk + 1) * n;
      const float a00 = a0[kk], a01 = a0[kk + 1];
      const float a10 = a1[kk], a11 = a1[kk + 1];
      const float a20 = a2[kk], a21 = a2[kk + 1];
      const float a30 = a3[kk], a31 = a3[kk + 1];
      for (std::size_t j = 0; j < n; ++j) {
        const float b0j = b0[j];
        const float b1j = b1[j];
        c0[j] += a00 * b0j + a01 * b1j;
        c1[j] += a10 * b0j + a11 * b1j;
        c2[j] += a20 * b0j + a21 * b1j;
        c3[j] += a30 * b0j + a31 * b1j;
      }
    }
    for (; kk < k; ++kk) {
      const float* br = b + kk * n;
      const float a0k = a0[kk], a1k = a1[kk], a2k = a2[kk], a3k = a3[kk];
      for (std::size_t j = 0; j < n; ++j) {
        const float bj = br[j];
        c0[j] += a0k * bj;
        c1[j] += a1k * bj;
        c2[j] += a2k * bj;
        c3[j] += a3k * bj;
      }
    }
  }
  for (; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    std::size_t kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const float x0 = ai[kk], x1 = ai[kk + 1], x2 = ai[kk + 2], x3 = ai[kk + 3];
      const float* b0 = b + (kk + 0) * n;
      const float* b1 = b + (kk + 1) * n;
      const float* b2 = b + (kk + 2) * n;
      const float* b3 = b + (kk + 3) * n;
      for (std::size_t j = 0; j < n; ++j)
        ci[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
    }
    for (; kk < k; ++kk) {
      const float x = ai[kk];
      const float* br = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += x * br[j];
    }
  }
}

/// C (m×n) (+)= Aᵀ·B with A (k×m), B (k×n): iterate the shared k rows in
/// blocks of 4 so four B rows stay hot while streaming over all of C.
PFRL_TARGET_CLONES
void gemm_at_b_impl(const float* a, const float* b, float* c, std::size_t k, std::size_t m,
                    std::size_t n, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0F);
  std::size_t r = 0;
  for (; r + 4 <= k; r += 4) {
    const float* a0 = a + (r + 0) * m;
    const float* a1 = a + (r + 1) * m;
    const float* a2 = a + (r + 2) * m;
    const float* a3 = a + (r + 3) * m;
    const float* b0 = b + (r + 0) * n;
    const float* b1 = b + (r + 1) * n;
    const float* b2 = b + (r + 2) * n;
    const float* b3 = b + (r + 3) * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float x0 = a0[i], x1 = a1[i], x2 = a2[i], x3 = a3[i];
      float* ci = c + i * n;
      for (std::size_t j = 0; j < n; ++j)
        ci[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
    }
  }
  for (; r < k; ++r) {
    const float* ar = a + r * m;
    const float* br = b + r * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float x = ar[i];
      float* ci = c + i * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += x * br[j];
    }
  }
}

/// C (m×n) = A·Bᵀ with B (n×k): row-by-row dot products, four explicit
/// partial sums per dot so the reduction vectorizes without reassociation
/// licenses (the lanes are the program's own accumulators).
PFRL_TARGET_CLONES
void gemm_a_bt_impl(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                    std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float s0 = 0.0F, s1 = 0.0F, s2 = 0.0F, s3 = 0.0F;
      std::size_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        s0 += ai[kk + 0] * bj[kk + 0];
        s1 += ai[kk + 1] * bj[kk + 1];
        s2 += ai[kk + 2] * bj[kk + 2];
        s3 += ai[kk + 3] * bj[kk + 3];
      }
      float s = (s0 + s1) + (s2 + s3);
      for (; kk < k; ++kk) s += ai[kk] * bj[kk];
      ci[j] = s;
    }
  }
}

/// y = x·W + bias for one row, k unrolled by 4; optional fused tanh.
PFRL_TARGET_CLONES
void gemv_bias_impl(const float* x, const float* w, const float* bias, float* y, std::size_t k,
                    std::size_t n, bool tanh_epilogue) {
  std::copy(bias, bias + n, y);
  std::size_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const float x0 = x[kk], x1 = x[kk + 1], x2 = x[kk + 2], x3 = x[kk + 3];
    const float* w0 = w + (kk + 0) * n;
    const float* w1 = w + (kk + 1) * n;
    const float* w2 = w + (kk + 2) * n;
    const float* w3 = w + (kk + 3) * n;
    for (std::size_t j = 0; j < n; ++j)
      y[j] += x0 * w0[j] + x1 * w1[j] + x2 * w2[j] + x3 * w3[j];
  }
  for (; kk < k; ++kk) {
    const float xv = x[kk];
    const float* wr = w + kk * n;
    for (std::size_t j = 0; j < n; ++j) y[j] += xv * wr[j];
  }
  if (tanh_epilogue)
    for (std::size_t j = 0; j < n; ++j) y[j] = fast_tanh(y[j]);
}

PFRL_TARGET_CLONES
void tanh_apply_impl(const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = fast_tanh(x[i]);
}

}  // namespace

void tanh_apply(const float* x, float* y, std::size_t n) { tanh_apply_impl(x, y, n); }

void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k, std::size_t n) {
  PFRL_COUNT("nn/flops", 2 * m * k * n);
  gemm_bias_impl(a, b, nullptr, c, m, k, n);
}

void gemm_bias(const float* a, const float* b, const float* bias, float* c, std::size_t m,
               std::size_t k, std::size_t n) {
  PFRL_COUNT("nn/flops", 2 * m * k * n + m * n);
  gemm_bias_impl(a, b, bias, c, m, k, n);
}

void gemm_at_b(const float* a, const float* b, float* c, std::size_t k, std::size_t m,
               std::size_t n, bool accumulate) {
  PFRL_COUNT("nn/flops", 2 * m * k * n);
  gemm_at_b_impl(a, b, c, k, m, n, accumulate);
}

void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) {
  PFRL_COUNT("nn/flops", 2 * m * k * n);
  gemm_a_bt_impl(a, b, c, m, k, n);
}

void gemv_bias(const float* x, const float* w, const float* bias, float* y, std::size_t k,
               std::size_t n) {
  PFRL_COUNT("nn/flops", 2 * k * n + n);
  gemv_bias_impl(x, w, bias, y, k, n, false);
}

void gemv_bias_tanh(const float* x, const float* w, const float* bias, float* y, std::size_t k,
                    std::size_t n) {
  PFRL_COUNT("nn/flops", 2 * k * n + n);
  gemv_bias_impl(x, w, bias, y, k, n, true);
}

}  // namespace pfrl::nn::kernels
