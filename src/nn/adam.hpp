// Adam optimizer (Kingma & Ba) over a set of Params.
//
// The paper trains with Adam: actor lr 3e-4, critic lr 1e-4 (§3.1).
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace pfrl::nn {

struct AdamConfig {
  float lr = 3e-4F;
  float beta1 = 0.9F;
  float beta2 = 0.999F;
  float epsilon = 1e-8F;
  /// Optional global-norm gradient clipping; <= 0 disables.
  float max_grad_norm = 0.5F;
};

class Adam {
 public:
  Adam(std::vector<Param*> params, AdamConfig config);

  /// Applies one update from the accumulated gradients, then leaves the
  /// gradients untouched (caller decides when to zero them).
  void step();

  /// Resets moment estimates and the step counter — used when a client
  /// swaps in a freshly aggregated model whose loss landscape position no
  /// longer matches the accumulated moments.
  void reset_moments();

  /// Re-binds to a (possibly different) parameter set of identical shapes.
  void rebind(std::vector<Param*> params);

  std::int64_t steps_taken() const { return step_count_; }
  const AdamConfig& config() const { return config_; }
  void set_lr(float lr) { config_.lr = lr; }

  /// Writes the step counter and both moment vectors — everything needed
  /// to continue an interrupted optimization bit-identically.
  void serialize(util::ByteWriter& writer) const;
  /// Restores state written by serialize(). Throws std::invalid_argument
  /// if the stored moment shapes disagree with the bound parameter set;
  /// the optimizer is left unchanged in that case.
  void deserialize(util::ByteReader& reader);

 private:
  std::vector<Param*> params_;
  AdamConfig config_;
  std::vector<Matrix> m_;  // first moments, one per param
  std::vector<Matrix> v_;  // second moments
  std::int64_t step_count_ = 0;
};

}  // namespace pfrl::nn
