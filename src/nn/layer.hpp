// Layer abstraction with explicit forward/backward.
//
// There is deliberately no autograd graph: each layer caches what its
// backward pass needs, and composite losses (the clipped PPO surrogate,
// the dual-critic MSE) assemble output gradients by hand. Finite-difference
// tests in tests/nn_gradcheck_test.cpp pin every backward implementation.
#pragma once

#include <memory>
#include <vector>

#include "nn/matrix.hpp"

namespace pfrl::nn {

/// One trainable tensor: value + gradient accumulator of the same shape.
struct Param {
  Matrix value;
  Matrix grad;

  explicit Param(Matrix v) : value(std::move(v)), grad(value.rows(), value.cols()) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch (rows = samples) and caches
  /// whatever backward() needs.
  virtual Matrix forward(const Matrix& input) = 0;

  /// Given dL/d(output), accumulates dL/d(params) into the Param grads and
  /// returns dL/d(input). Must follow a matching forward() call.
  virtual Matrix backward(const Matrix& grad_output) = 0;

  /// Trainable parameters (empty for activations).
  virtual std::vector<Param*> params() { return {}; }

  /// Deep copy including parameter values (gradients reset to zero).
  virtual std::unique_ptr<Layer> clone() const = 0;
};

}  // namespace pfrl::nn
