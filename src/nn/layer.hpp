// Layer abstraction with explicit forward/backward.
//
// There is deliberately no autograd graph: each layer caches what its
// backward pass needs, and composite losses (the clipped PPO surrogate,
// the dual-critic MSE) assemble output gradients by hand. Finite-difference
// tests in tests/nn_gradcheck_test.cpp pin every backward implementation.
//
// The virtual surface is workspace-based: `forward_into`/`backward_into`
// write caller-owned matrices whose capacity is reused across calls (the
// allocation-free training path), and `forward_row` runs single-sample
// inference into caller scratch with zero heap allocations. The
// value-returning `forward`/`backward` remain as thin allocating wrappers
// for tests and cold paths.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace pfrl::nn {

/// One trainable tensor: value + gradient accumulator of the same shape.
struct Param {
  Matrix value;
  Matrix grad;

  explicit Param(Matrix v) : value(std::move(v)), grad(value.rows(), value.cols()) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch (rows = samples) into `output`
  /// (resized in place, capacity reused) and caches whatever backward()
  /// needs. `output` must not alias `input`.
  virtual void forward_into(const Matrix& input, Matrix& output) = 0;

  /// Given dL/d(output), accumulates dL/d(params) into the Param grads and
  /// writes dL/d(input) into `grad_input` (resized in place). Must follow
  /// a matching forward call. `grad_input` must not alias `grad_output`.
  virtual void backward_into(const Matrix& grad_output, Matrix& grad_input) = 0;

  /// Single-row inference into caller scratch — no caching, no heap
  /// allocation. `output.size()` must equal `output_size(input.size())`;
  /// `input` and `output` must not overlap.
  virtual void forward_row(std::span<const float> input, std::span<float> output) const = 0;

  /// Output width produced for a given input width (row-path sizing).
  virtual std::size_t output_size(std::size_t input_size) const { return input_size; }

  /// Allocating convenience wrappers over the workspace interface.
  Matrix forward(const Matrix& input) {
    Matrix out;
    forward_into(input, out);
    return out;
  }
  Matrix backward(const Matrix& grad_output) {
    Matrix grad_input;
    backward_into(grad_output, grad_input);
    return grad_input;
  }

  /// Trainable parameters (empty for activations).
  virtual std::vector<Param*> params() { return {}; }
  virtual std::vector<const Param*> params() const { return {}; }

  /// Deep copy including parameter values (gradients reset to zero).
  virtual std::unique_ptr<Layer> clone() const = 0;
};

}  // namespace pfrl::nn
