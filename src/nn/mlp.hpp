// Sequential network plus the parameter plumbing that federated learning
// needs: flatten/unflatten (aggregation works on flat vectors, Eq. 21–22)
// and byte serialization (models cross the bus as payloads).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layer.hpp"
#include "util/rng.hpp"
#include "util/serialization.hpp"

namespace pfrl::nn {

class Mlp {
 public:
  Mlp() = default;

  /// Builds input -> [hidden tanh]* -> output (linear head), matching the
  /// paper's "single hidden layer of 64 neurons" when hidden = {64}.
  Mlp(std::size_t input_dim, const std::vector<std::size_t>& hidden_dims,
      std::size_t output_dim, util::Rng& rng);

  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;

  Matrix forward(const Matrix& input);
  /// Backward through the whole stack; returns dL/d(input).
  Matrix backward(const Matrix& grad_output);

  void zero_grad();

  std::vector<Param*> params();
  std::size_t param_count() const;

  /// Concatenated parameter values in layer order.
  std::vector<float> flatten() const;
  /// Inverse of flatten(); throws on size mismatch.
  void unflatten(std::span<const float> flat);
  /// Concatenated gradients (same ordering as flatten()).
  std::vector<float> flatten_grad() const;

  void serialize(util::ByteWriter& writer) const;
  /// Restores parameter values into an architecture-compatible net.
  void deserialize(util::ByteReader& reader);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return output_dim_; }

  bool same_architecture(const Mlp& other) const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::size_t input_dim_ = 0;
  std::size_t output_dim_ = 0;
};

}  // namespace pfrl::nn
