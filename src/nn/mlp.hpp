// Sequential network plus the parameter plumbing that federated learning
// needs: flatten/unflatten (aggregation works on flat vectors, Eq. 21–22)
// and byte serialization (models cross the bus as payloads).
//
// Two compute paths (DESIGN.md "Kernel & workspace layer"):
//  - `forward_batch`/`backward_batch` run through per-layer persistent
//    activation/gradient workspaces, so a steady-state PPO epoch performs
//    zero heap allocations;
//  - `forward_row` is the policy-step path: a fused GEMV chain (Linear +
//    Tanh pairs collapse into one bias+tanh-epilogue kernel call) through
//    preallocated scratch, allocation-free from the first call.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/layer.hpp"
#include "util/rng.hpp"
#include "util/serialization.hpp"

namespace pfrl::nn {

class Mlp {
 public:
  Mlp() = default;

  /// Builds input -> [hidden tanh]* -> output (linear head), matching the
  /// paper's "single hidden layer of 64 neurons" when hidden = {64}.
  Mlp(std::size_t input_dim, const std::vector<std::size_t>& hidden_dims,
      std::size_t output_dim, util::Rng& rng);

  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;

  /// Workspace-backed batch forward; the returned reference points at the
  /// last layer's persistent activation workspace and stays valid until
  /// the next forward call on this network.
  const Matrix& forward_batch(const Matrix& input);
  /// Workspace-backed backward through the whole stack; returns a
  /// reference to dL/d(input) with the same lifetime rules.
  const Matrix& backward_batch(const Matrix& grad_output);

  /// Allocating wrappers (tests / cold paths).
  Matrix forward(const Matrix& input) { return forward_batch(input); }
  Matrix backward(const Matrix& grad_output) { return backward_batch(grad_output); }

  /// Single-row inference: `input` is input_dim wide, `output` output_dim
  /// wide. Runs the fused GEMV plan through preallocated scratch — zero
  /// heap allocations per call. Does not populate backward caches.
  void forward_row(std::span<const float> input, std::span<float> output) const;

  void zero_grad();

  std::vector<Param*> params();
  std::vector<const Param*> params() const;
  std::size_t param_count() const;

  /// Concatenated parameter values in layer order.
  std::vector<float> flatten() const;
  /// Inverse of flatten(); throws on size mismatch.
  void unflatten(std::span<const float> flat);
  /// Concatenated gradients (same ordering as flatten()).
  std::vector<float> flatten_grad() const;

  void serialize(util::ByteWriter& writer) const;
  /// Restores parameter values into an architecture-compatible net.
  void deserialize(util::ByteReader& reader);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return output_dim_; }

  bool same_architecture(const Mlp& other) const;

 private:
  /// One step of the fused single-row plan: either a plain layer, or a
  /// Linear whose following Tanh has been folded into the GEMV epilogue.
  struct RowOp {
    const Layer* layer = nullptr;          // used when fused_linear is null
    const class Linear* fused_linear = nullptr;  // Linear+Tanh pair
    std::size_t out_width = 0;
  };

  void rebuild_row_plan();

  std::vector<std::unique_ptr<Layer>> layers_;
  std::size_t input_dim_ = 0;
  std::size_t output_dim_ = 0;

  // Persistent workspaces: acts_[i] / grads_[i] belong to layers_[i].
  std::vector<Matrix> acts_;
  std::vector<Matrix> grads_;

  // Fused single-row plan + ping-pong scratch (sized to the widest
  // intermediate at construction; mutable because row inference is
  // logically const).
  std::vector<RowOp> row_plan_;
  mutable std::vector<float> row_scratch_[2];
};

}  // namespace pfrl::nn
