#include "nn/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace pfrl::nn {

Adam::Adam(std::vector<Param*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++step_count_;
  // Optional global-norm clip across all parameters.
  float clip_scale = 1.0F;
  if (config_.max_grad_norm > 0.0F) {
    double total_sq = 0.0;
    for (const Param* p : params_)
      for (const float g : p->grad.flat()) total_sq += static_cast<double>(g) * g;
    const double norm = std::sqrt(total_sq);
    if (norm > config_.max_grad_norm)
      clip_scale = static_cast<float>(config_.max_grad_norm / (norm + 1e-12));
  }

  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_count_));

  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto values = params_[i]->value.flat();
    auto grads = params_[i]->grad.flat();
    auto m = m_[i].flat();
    auto v = v_[i].flat();
    for (std::size_t j = 0; j < values.size(); ++j) {
      const float g = grads[j] * clip_scale;
      m[j] = config_.beta1 * m[j] + (1.0F - config_.beta1) * g;
      v[j] = config_.beta2 * v[j] + (1.0F - config_.beta2) * g * g;
      const auto m_hat = static_cast<float>(m[j] / bias1);
      const auto v_hat = static_cast<float>(v[j] / bias2);
      values[j] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.epsilon);
    }
  }
}

void Adam::reset_moments() {
  for (auto& m : m_) m.zero();
  for (auto& v : v_) v.zero();
  step_count_ = 0;
}

void Adam::serialize(util::ByteWriter& writer) const {
  writer.write_i64(step_count_);
  writer.write_u32(static_cast<std::uint32_t>(m_.size()));
  for (const Matrix& m : m_) m.serialize(writer);
  for (const Matrix& v : v_) v.serialize(writer);
}

void Adam::deserialize(util::ByteReader& reader) {
  const std::int64_t step_count = reader.read_i64();
  const std::uint32_t count = reader.read_u32();
  if (count != m_.size())
    throw std::invalid_argument("Adam::deserialize: moment count mismatch");
  std::vector<Matrix> m;
  std::vector<Matrix> v;
  m.reserve(count);
  v.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    m.push_back(Matrix::deserialize(reader));
    if (!m.back().same_shape(m_[i]))
      throw std::invalid_argument("Adam::deserialize: first-moment shape mismatch");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    v.push_back(Matrix::deserialize(reader));
    if (!v.back().same_shape(v_[i]))
      throw std::invalid_argument("Adam::deserialize: second-moment shape mismatch");
  }
  m_ = std::move(m);
  v_ = std::move(v);
  step_count_ = step_count;
}

void Adam::rebind(std::vector<Param*> params) {
  if (params.size() != params_.size())
    throw std::invalid_argument("Adam::rebind: param count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i)
    if (!params[i]->value.same_shape(params_[i]->value))
      throw std::invalid_argument("Adam::rebind: param shape mismatch");
  params_ = std::move(params);
}

}  // namespace pfrl::nn
