// Blocked + unrolled CPU kernels behind the NN stack.
//
// Every dense product in the `nn/` layer funnels through the functions in
// this file. They are written so the compiler's autovectorizer emits SIMD
// from plain loops: register-blocked outer loops (multiple A rows / k
// steps held in scalars), contiguous unit-stride inner loops over the
// output columns, and no pointer aliasing the optimizer has to prove away.
// On x86-64 ELF/gcc builds the hot bodies are compiled once per ISA level
// (SSE2 / AVX / AVX2+FMA / AVX-512) via `target_clones` and dispatched at
// load time, so a portable binary still runs the widest vectors the host
// offers; `-DPFRL_NATIVE_ARCH=ON` additionally tunes the whole build for
// the local machine.
//
// Contracts shared by all kernels:
//  - matrices are dense row-major float, shapes given as (rows, cols);
//  - output buffers must not overlap inputs (tanh_inplace excepted);
//  - zero-sized dimensions are valid no-ops;
//  - accumulation over k runs in ascending order per output element, so
//    results are deterministic for a given binary and within 1e-5 of the
//    naive triple loop (bit-identical for the non-reduction kernels);
//  - FLOPs are reported to the `nn/flops` obs counter by the public
//    entry points, exactly as the naive loops used to.
#pragma once

#include <algorithm>
#include <cstddef>

namespace pfrl::nn::kernels {

/// Rational tanh approximation (cephes-style minimax, as popularized by
/// Eigen): |fast_tanh(x) - std::tanh(x)| < 4e-7 over all of R, clamps to
/// ±1 for |x| > 7.9. Unlike libm tanh it is branch-free polynomial math,
/// so the autovectorizer turns element-wise loops over it into SIMD.
inline float fast_tanh(float x) {
  x = std::clamp(x, -7.90531110763549805F, 7.90531110763549805F);
  const float x2 = x * x;
  float p = -2.76076847742355e-16F;
  p = p * x2 + 2.00018790482477e-13F;
  p = p * x2 + -8.60467152213735e-11F;
  p = p * x2 + 5.12229709037114e-08F;
  p = p * x2 + 1.48572235717979e-05F;
  p = p * x2 + 6.37261928875436e-04F;
  p = p * x2 + 4.89352455891786e-03F;
  p = p * x;
  float q = 1.19825839466702e-06F;
  q = q * x2 + 1.18534705686654e-04F;
  q = q * x2 + 2.26843463243900e-03F;
  q = q * x2 + 4.89352518554385e-03F;
  return p / q;
}

/// y[i] = fast_tanh(x[i]); x may alias y.
void tanh_apply(const float* x, float* y, std::size_t n);

/// C (m×n) = A (m×k) · B (k×n). C is overwritten.
void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k, std::size_t n);

/// C (m×n) = A (m×k) · B (k×n) + bias broadcast over rows (bias is 1×n).
void gemm_bias(const float* a, const float* b, const float* bias, float* c, std::size_t m,
               std::size_t k, std::size_t n);

/// C (m×n) = or += Aᵀ · B, where A is (k×m) and B is (k×n) — the dW = Xᵀ·G
/// backward product, without materializing the transpose.
void gemm_at_b(const float* a, const float* b, float* c, std::size_t k, std::size_t m,
               std::size_t n, bool accumulate);

/// C (m×n) = A (m×k) · Bᵀ, where B is (n×k) — the dX = G·Wᵀ backward
/// product, without materializing the transpose.
void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n);

/// y (1×n) = x (1×k) · W (k×n) + bias (1×n). The single-row inference path.
void gemv_bias(const float* x, const float* w, const float* bias, float* y, std::size_t k,
               std::size_t n);

/// gemv_bias with the tanh epilogue fused into the same pass — one call
/// per hidden Linear+Tanh pair on the policy-step hot path.
void gemv_bias_tanh(const float* x, const float* w, const float* bias, float* y, std::size_t k,
                    std::size_t n);

}  // namespace pfrl::nn::kernels
