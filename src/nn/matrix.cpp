#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace pfrl::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill_value)
    : rows_(rows), cols_(cols), data_(rows * cols, fill_value) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols)
    throw std::invalid_argument("Matrix: data size does not match shape");
}

Matrix Matrix::row_vector(std::span<const float> values) {
  return Matrix(1, values.size(), std::vector<float>(values.begin(), values.end()));
}

void Matrix::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Matrix Matrix::matmul(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("matmul: inner dims differ");
  PFRL_COUNT("nn/flops", 2 * rows_ * cols_ * other.cols_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order: streams through `other` row-wise for cache locality.
  for (std::size_t i = 0; i < rows_; ++i) {
    const float* a_row = data_.data() + i * cols_;
    float* o_row = out.data_.data() + i * other.cols_;
    for (std::size_t k = 0; k < cols_; ++k) {
      const float a = a_row[k];
      if (a == 0.0F) continue;
      const float* b_row = other.data_.data() + k * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::transpose_matmul(const Matrix& other) const {
  if (rows_ != other.rows_) throw std::invalid_argument("transpose_matmul: outer dims differ");
  PFRL_COUNT("nn/flops", 2 * rows_ * cols_ * other.cols_);
  Matrix out(cols_, other.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    const float* a_row = data_.data() + k * cols_;
    const float* b_row = other.data_.data() + k * other.cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const float a = a_row[i];
      if (a == 0.0F) continue;
      float* o_row = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_transpose(const Matrix& other) const {
  if (cols_ != other.cols_) throw std::invalid_argument("matmul_transpose: inner dims differ");
  PFRL_COUNT("nn/flops", 2 * rows_ * cols_ * other.rows_);
  Matrix out(rows_, other.rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const float* a_row = data_.data() + i * cols_;
    float* o_row = out.data_.data() + i * other.rows_;
    for (std::size_t j = 0; j < other.rows_; ++j) {
      const float* b_row = other.data_.data() + j * cols_;
      float acc = 0.0F;
      for (std::size_t k = 0; k < cols_; ++k) acc += a_row[k] * b_row[k];
      o_row[j] = acc;
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  if (!same_shape(other)) throw std::invalid_argument("hadamard: shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

void Matrix::add_row_broadcast(const Matrix& bias) {
  if (bias.rows_ != 1 || bias.cols_ != cols_)
    throw std::invalid_argument("add_row_broadcast: bias must be 1 x cols");
  for (std::size_t i = 0; i < rows_; ++i) {
    float* r = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) r[j] += bias.data_[j];
  }
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const float* r = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) out.data_[j] += r[j];
  }
  return out;
}

double Matrix::sum() const {
  double acc = 0.0;
  for (const float v : data_) acc += static_cast<double>(v);
  return acc;
}

float Matrix::max_abs() const {
  float best = 0.0F;
  for (const float v : data_) best = std::max(best, std::fabs(v));
  return best;
}

}  // namespace pfrl::nn
