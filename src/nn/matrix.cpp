#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/kernels.hpp"

namespace pfrl::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill_value)
    : rows_(rows), cols_(cols), data_(rows * cols, fill_value) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols)
    throw std::invalid_argument("Matrix: data size does not match shape");
}

Matrix Matrix::row_vector(std::span<const float> values) {
  return Matrix(1, values.size(), std::vector<float>(values.begin(), values.end()));
}

void Matrix::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::assign_into(Matrix& dst) const {
  assert(&dst != this);
  dst.rows_ = rows_;
  dst.cols_ = cols_;
  dst.data_.assign(data_.begin(), data_.end());
}

void Matrix::serialize(util::ByteWriter& writer) const {
  writer.write_u64(rows_);
  writer.write_u64(cols_);
  writer.write_f32_span(data_);
}

Matrix Matrix::deserialize(util::ByteReader& reader) {
  const auto rows = static_cast<std::size_t>(reader.read_u64());
  const auto cols = static_cast<std::size_t>(reader.read_u64());
  std::vector<float> data = reader.read_f32_vector();
  if (data.size() != rows * cols)
    throw std::invalid_argument("Matrix::deserialize: payload does not match shape");
  return Matrix(rows, cols, std::move(data));
}

Matrix Matrix::matmul(const Matrix& other) const {
  Matrix out;
  matmul_into(other, out);
  return out;
}

void Matrix::matmul_into(const Matrix& other, Matrix& out) const {
  assert(&out != this && &out != &other);
  if (cols_ != other.rows_) throw std::invalid_argument("matmul: inner dims differ");
  out.resize(rows_, other.cols_);
  kernels::gemm(data_.data(), other.data_.data(), out.data_.data(), rows_, cols_, other.cols_);
}

Matrix Matrix::transpose_matmul(const Matrix& other) const {
  Matrix out;
  transpose_matmul_into(other, out);
  return out;
}

void Matrix::transpose_matmul_into(const Matrix& other, Matrix& out, bool accumulate) const {
  assert(&out != this && &out != &other);
  if (rows_ != other.rows_) throw std::invalid_argument("transpose_matmul: outer dims differ");
  if (accumulate) {
    if (out.rows_ != cols_ || out.cols_ != other.cols_)
      throw std::invalid_argument("transpose_matmul_into: accumulate shape mismatch");
  } else {
    out.resize(cols_, other.cols_);
  }
  kernels::gemm_at_b(data_.data(), other.data_.data(), out.data_.data(), rows_, cols_,
                     other.cols_, accumulate);
}

Matrix Matrix::matmul_transpose(const Matrix& other) const {
  Matrix out;
  matmul_transpose_into(other, out);
  return out;
}

void Matrix::matmul_transpose_into(const Matrix& other, Matrix& out) const {
  assert(&out != this && &out != &other);
  if (cols_ != other.cols_) throw std::invalid_argument("matmul_transpose: inner dims differ");
  out.resize(rows_, other.rows_);
  kernels::gemm_a_bt(data_.data(), other.data_.data(), out.data_.data(), rows_, cols_,
                     other.rows_);
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  if (!same_shape(other)) throw std::invalid_argument("hadamard: shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

void Matrix::add_row_broadcast(const Matrix& bias) {
  if (bias.rows_ != 1 || bias.cols_ != cols_)
    throw std::invalid_argument("add_row_broadcast: bias must be 1 x cols");
  for (std::size_t i = 0; i < rows_; ++i) {
    float* r = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) r[j] += bias.data_[j];
  }
}

Matrix Matrix::column_sums() const {
  Matrix out;
  column_sums_into(out);
  return out;
}

void Matrix::column_sums_into(Matrix& out, bool accumulate) const {
  assert(&out != this);
  if (accumulate) {
    if (out.rows_ != 1 || out.cols_ != cols_)
      throw std::invalid_argument("column_sums_into: accumulate shape mismatch");
  } else {
    out.resize(1, cols_);
    out.fill(0.0F);
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    const float* r = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) out.data_[j] += r[j];
  }
}

double Matrix::sum() const {
  double acc = 0.0;
  for (const float v : data_) acc += static_cast<double>(v);
  return acc;
}

float Matrix::max_abs() const {
  float best = 0.0F;
  for (const float v : data_) best = std::max(best, std::fabs(v));
  return best;
}

}  // namespace pfrl::nn
