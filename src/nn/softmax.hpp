// Row-wise softmax utilities.
//
// The PPO policy head consumes raw logits, so softmax lives outside the
// Layer stack: the loss code converts logits -> probabilities with these
// helpers and assembles dL/dlogits directly (which is both simpler and
// numerically better than backprop through an explicit softmax layer).
#pragma once

#include <span>

#include "nn/matrix.hpp"

namespace pfrl::nn {

/// Row-wise softmax with max-subtraction for numerical stability.
Matrix softmax_rows(const Matrix& logits);

/// Workspace form: writes softmax(logits) into `out` (resized in place,
/// capacity reused). `out` must not alias `logits`.
void softmax_rows_into(const Matrix& logits, Matrix& out);

/// Row-wise log-softmax (stable).
Matrix log_softmax_rows(const Matrix& logits);

/// Workspace form of log_softmax_rows. `out` must not alias `logits`.
void log_softmax_rows_into(const Matrix& logits, Matrix& out);

/// Softmax over a single contiguous vector.
void softmax_inplace(std::span<float> values);

/// Given probabilities p = softmax(z) for one row and dL/dp, computes
/// dL/dz = (diag(p) - p pᵀ) · dL/dp. Used by attention backward and in
/// gradient checks of the policy head.
void softmax_backward_row(std::span<const float> probs, std::span<const float> grad_probs,
                          std::span<float> grad_logits);

}  // namespace pfrl::nn
