#include "nn/activations.hpp"

#include "nn/kernels.hpp"

namespace pfrl::nn {

void Tanh::forward_into(const Matrix& input, Matrix& output) {
  output.resize(input.rows(), input.cols());
  kernels::tanh_apply(input.flat().data(), output.flat().data(), input.size());
  output.assign_into(cached_output_);
}

void Tanh::backward_into(const Matrix& grad_output, Matrix& grad_input) {
  grad_input.resize(grad_output.rows(), grad_output.cols());
  const auto out = cached_output_.flat();
  const auto g = grad_output.flat();
  auto gi = grad_input.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) gi[i] = g[i] * (1.0F - out[i] * out[i]);
}

void Tanh::forward_row(std::span<const float> input, std::span<float> output) const {
  assert(input.size() == output.size());
  kernels::tanh_apply(input.data(), output.data(), input.size());
}

void Relu::forward_into(const Matrix& input, Matrix& output) {
  input.assign_into(cached_input_);
  output.resize(input.rows(), input.cols());
  const auto in = input.flat();
  auto out = output.flat();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = in[i] < 0.0F ? 0.0F : in[i];
}

void Relu::backward_into(const Matrix& grad_output, Matrix& grad_input) {
  grad_input.resize(grad_output.rows(), grad_output.cols());
  const auto in = cached_input_.flat();
  const auto g = grad_output.flat();
  auto gi = grad_input.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) gi[i] = in[i] <= 0.0F ? 0.0F : g[i];
}

void Relu::forward_row(std::span<const float> input, std::span<float> output) const {
  assert(input.size() == output.size());
  for (std::size_t i = 0; i < input.size(); ++i) output[i] = input[i] < 0.0F ? 0.0F : input[i];
}

}  // namespace pfrl::nn
