#include "nn/activations.hpp"

#include <cmath>

namespace pfrl::nn {

Matrix Tanh::forward(const Matrix& input) {
  Matrix out = input;
  for (float& v : out.flat()) v = std::tanh(v);
  cached_output_ = out;
  return out;
}

Matrix Tanh::backward(const Matrix& grad_output) {
  Matrix grad_in = grad_output;
  auto out = cached_output_.flat();
  auto g = grad_in.flat();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0F - out[i] * out[i];
  return grad_in;
}

Matrix Relu::forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out = input;
  for (float& v : out.flat())
    if (v < 0.0F) v = 0.0F;
  return out;
}

Matrix Relu::backward(const Matrix& grad_output) {
  Matrix grad_in = grad_output;
  auto in = cached_input_.flat();
  auto g = grad_in.flat();
  for (std::size_t i = 0; i < g.size(); ++i)
    if (in[i] <= 0.0F) g[i] = 0.0F;
  return grad_in;
}

}  // namespace pfrl::nn
