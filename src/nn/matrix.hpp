// Dense row-major float matrix — the single tensor type of the NN stack.
//
// The compute contract (DESIGN.md "Kernel & workspace layer"): every
// product delegates to the blocked SIMD kernels in nn/kernels.hpp, and
// each operation comes in two forms — an allocating value-semantics form
// for cold paths and tests, and an `_into` form that writes a
// caller-owned workspace whose capacity is reused across calls, so
// steady-state training and inference perform no heap allocations.
// Bounds are assertion-checked in debug builds; shape mismatches on the
// public API throw.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "util/serialization.hpp"

namespace pfrl::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0F);
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

  static Matrix row_vector(std::span<const float> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<float> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  void fill(float value);
  void zero() { fill(0.0F); }

  /// Reshapes to rows×cols, reusing the existing buffer capacity (no
  /// allocation once the workspace has grown to its steady-state size).
  /// Element contents are unspecified afterwards.
  void resize(std::size_t rows, std::size_t cols);

  /// Copies *this into `dst`, reusing dst's capacity. The workspace
  /// counterpart of `dst = *this`.
  void assign_into(Matrix& dst) const;

  /// this * other  — (m×k)·(k×n) → m×n.
  Matrix matmul(const Matrix& other) const;
  void matmul_into(const Matrix& other, Matrix& out) const;
  /// thisᵀ * other — (k×m)ᵀ·(k×n) → m×n without materializing the transpose.
  /// The `_into` form can accumulate (the gradient-sum case).
  Matrix transpose_matmul(const Matrix& other) const;
  void transpose_matmul_into(const Matrix& other, Matrix& out, bool accumulate = false) const;
  /// this * otherᵀ — (m×k)·(n×k)ᵀ → m×n without materializing the transpose.
  Matrix matmul_transpose(const Matrix& other) const;
  void matmul_transpose_into(const Matrix& other, Matrix& out) const;

  Matrix transposed() const;

  /// Element-wise operations (shapes must match).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float scalar);
  Matrix hadamard(const Matrix& other) const;

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, float s) { return lhs *= s; }
  friend Matrix operator*(float s, Matrix rhs) { return rhs *= s; }

  /// Adds `bias` (1×cols) to every row.
  void add_row_broadcast(const Matrix& bias);

  /// Column-wise sum → 1×cols (gradient of a row broadcast). The `_into`
  /// form can accumulate into an existing 1×cols matrix.
  Matrix column_sums() const;
  void column_sums_into(Matrix& out, bool accumulate = false) const;

  double sum() const;
  float max_abs() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Writes shape (rows, cols as u64) followed by the row-major payload.
  void serialize(util::ByteWriter& writer) const;
  /// Reads a matrix written by serialize(); throws on truncation or a
  /// payload whose length disagrees with the declared shape.
  static Matrix deserialize(util::ByteReader& reader);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace pfrl::nn
