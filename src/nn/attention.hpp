// Multi-head attention weight generator for the server-side aggregator
// (paper §4.4, Eqs. 18–20).
//
// Input: K flattened client critic-parameter vectors (K × P). The module
//   1. projects each vector to a d_model embedding (a seeded random
//      projection — Johnson–Lindenstrauss-style, preserving the geometry
//      of the parameter vectors without requiring server-side training),
//   2. standardizes each embedding row (zero mean / unit variance) so no
//      single large coordinate dominates the dot products,
//   3. runs H scaled-dot-product heads  softmax(Q Kᵀ / sqrt(d_k)),
//   4. averages the per-head weight matrices into one row-stochastic
//      K × K matrix W.
// The aggregator then forms the personalized models ψ_k = Σ_j W_kj ψ_j
// (Eq. 21); that multiplication lives in fed/attention_aggregator.
#pragma once

#include <cstdint>

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace pfrl::nn {

struct MultiHeadAttentionConfig {
  std::size_t num_heads = 4;
  std::size_t d_model = 64;
  std::size_t d_k = 16;
  std::uint64_t seed = 0x5EEDA77E;  // projections are fixed given the seed
  /// Standardize embedding rows before Q/K projection.
  bool normalize_embeddings = true;
  /// Subtract the per-coordinate mean across clients before embedding.
  /// Federated clients share an initialization, so the raw parameter
  /// vectors are dominated by that common component and every pairwise
  /// similarity saturates; centering cancels it and lets the *divergence*
  /// between clients (what training in different environments produced)
  /// drive the attention weights.
  bool center_models = true;
  /// Share each head's key projection with its query projection. With
  /// *untrained* projections this is essential: independent random W^Q,
  /// W^K make q_i·k_j a zero-mean random form that carries no similarity
  /// signal, whereas tied projections make each head a random-feature
  /// approximation of the embedding dot product (so similar critics —
  /// the C1/C1' pair of Fig. 11 — attend to each other). Disable to get
  /// the literal untied form of Eq. 20.
  bool tie_query_key = true;
};

class MultiHeadAttention {
 public:
  /// `input_dim` is P, the flattened critic size. Projections are created
  /// eagerly so every call sees identical weights.
  MultiHeadAttention(std::size_t input_dim, MultiHeadAttentionConfig config);

  /// models: K × P (one row per client). Returns the K × K row-stochastic
  /// attention weight matrix (head-averaged).
  Matrix weights(const Matrix& models) const;

  /// Per-head weight matrices (for the Fig. 11 heat-map and tests).
  std::vector<Matrix> head_weights(const Matrix& models) const;

  std::size_t input_dim() const { return embed_.rows(); }
  const MultiHeadAttentionConfig& config() const { return config_; }

 private:
  Matrix embed(const Matrix& models) const;

  MultiHeadAttentionConfig config_;
  Matrix embed_;                 // P × d_model shared embedding
  std::vector<Matrix> w_query_;  // per head, d_model × d_k
  std::vector<Matrix> w_key_;    // per head, d_model × d_k
};

}  // namespace pfrl::nn
