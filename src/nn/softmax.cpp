#include "nn/softmax.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pfrl::nn {

Matrix softmax_rows(const Matrix& logits) {
  Matrix out;
  softmax_rows_into(logits, out);
  return out;
}

void softmax_rows_into(const Matrix& logits, Matrix& out) {
  logits.assign_into(out);
  for (std::size_t r = 0; r < out.rows(); ++r) softmax_inplace(out.row(r));
}

Matrix log_softmax_rows(const Matrix& logits) {
  Matrix out;
  log_softmax_rows_into(logits, out);
  return out;
}

void log_softmax_rows_into(const Matrix& logits, Matrix& out) {
  logits.assign_into(out);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    const float max_v = *std::max_element(row.begin(), row.end());
    double total = 0.0;
    for (const float v : row) total += std::exp(static_cast<double>(v - max_v));
    const float log_z = max_v + static_cast<float>(std::log(total));
    for (float& v : row) v -= log_z;
  }
}

void softmax_inplace(std::span<float> values) {
  assert(!values.empty());
  const float max_v = *std::max_element(values.begin(), values.end());
  double total = 0.0;
  for (float& v : values) {
    v = std::exp(v - max_v);
    total += static_cast<double>(v);
  }
  const auto inv = static_cast<float>(1.0 / total);
  for (float& v : values) v *= inv;
}

void softmax_backward_row(std::span<const float> probs, std::span<const float> grad_probs,
                          std::span<float> grad_logits) {
  assert(probs.size() == grad_probs.size() && probs.size() == grad_logits.size());
  double dot = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i)
    dot += static_cast<double>(probs[i]) * static_cast<double>(grad_probs[i]);
  for (std::size_t i = 0; i < probs.size(); ++i)
    grad_logits[i] = probs[i] * (grad_probs[i] - static_cast<float>(dot));
}

}  // namespace pfrl::nn
