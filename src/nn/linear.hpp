// Affine layer: y = x W + b, with W stored input-major (in × out).
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace pfrl::nn {

class Linear final : public Layer {
 public:
  /// Xavier-uniform initialization of W, zero bias.
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  void forward_into(const Matrix& input, Matrix& output) override;
  void backward_into(const Matrix& grad_output, Matrix& grad_input) override;
  void forward_row(std::span<const float> input, std::span<float> output) const override;
  std::size_t output_size(std::size_t) const override { return out_features(); }
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::vector<const Param*> params() const override { return {&weight_, &bias_}; }
  std::unique_ptr<Layer> clone() const override;

  std::size_t in_features() const { return weight_.value.rows(); }
  std::size_t out_features() const { return weight_.value.cols(); }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  const Param& weight() const { return weight_; }
  const Param& bias() const { return bias_; }

 private:
  Linear(Param weight, Param bias) : weight_(std::move(weight)), bias_(std::move(bias)) {}

  Param weight_;
  Param bias_;
  Matrix cached_input_;  // capacity-reusing copy of the last forward input
};

}  // namespace pfrl::nn
