// Affine layer: y = x W + b, with W stored input-major (in × out).
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace pfrl::nn {

class Linear final : public Layer {
 public:
  /// Xavier-uniform initialization of W, zero bias.
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::unique_ptr<Layer> clone() const override;

  std::size_t in_features() const { return weight_.value.rows(); }
  std::size_t out_features() const { return weight_.value.cols(); }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  Linear(Param weight, Param bias) : weight_(std::move(weight)), bias_(std::move(bias)) {}

  Param weight_;
  Param bias_;
  Matrix cached_input_;
};

}  // namespace pfrl::nn
