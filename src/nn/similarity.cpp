#include "nn/similarity.hpp"

#include <cmath>
#include <vector>

#include "nn/softmax.hpp"

namespace pfrl::nn {

Matrix cosine_similarity_matrix(const Matrix& models) {
  const std::size_t k = models.rows();
  std::vector<double> norms(k);
  for (std::size_t i = 0; i < k; ++i) {
    double acc = 0.0;
    for (const float v : models.row(i)) acc += static_cast<double>(v) * static_cast<double>(v);
    norms[i] = std::sqrt(acc);
  }
  Matrix sim(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      double dot = 0.0;
      const auto a = models.row(i);
      const auto b = models.row(j);
      for (std::size_t t = 0; t < a.size(); ++t)
        dot += static_cast<double>(a[t]) * static_cast<double>(b[t]);
      const double denom = norms[i] * norms[j];
      sim(i, j) = denom > 0.0 ? static_cast<float>(dot / denom) : 0.0F;
    }
  }
  return sim;
}

Matrix kl_divergence_matrix(const Matrix& models) {
  const std::size_t k = models.rows();
  const std::size_t p = models.cols();
  // Squash each parameter vector into a distribution over coordinates.
  Matrix dist(k, p);
  for (std::size_t i = 0; i < k; ++i) {
    auto out = dist.row(i);
    const auto in = models.row(i);
    for (std::size_t t = 0; t < p; ++t) out[t] = std::fabs(in[t]);
    softmax_inplace(out);
  }
  Matrix div(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      double acc = 0.0;
      const auto pi = dist.row(i);
      const auto pj = dist.row(j);
      for (std::size_t t = 0; t < p; ++t) {
        const double a = std::max(static_cast<double>(pi[t]), 1e-12);
        const double b = std::max(static_cast<double>(pj[t]), 1e-12);
        acc += a * std::log(a / b);
      }
      div(i, j) = static_cast<float>(acc);
    }
  }
  return div;
}

Matrix weights_from_similarity(const Matrix& similarity, float tau) {
  Matrix w = similarity;
  w *= 1.0F / tau;
  return softmax_rows(w);
}

Matrix weights_from_divergence(const Matrix& divergence, float tau) {
  Matrix w = divergence;
  w *= -1.0F / tau;
  return softmax_rows(w);
}

}  // namespace pfrl::nn
