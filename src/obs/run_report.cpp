#include "obs/run_report.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace pfrl::obs {

void json_escape_append(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += ' ';
        else
          out += c;
    }
  }
  out += '"';
}

void json_number_append(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

BuildInfo BuildInfo::current() {
  BuildInfo info;
#ifdef PFRL_GIT_DESCRIBE
  info.git_describe = PFRL_GIT_DESCRIBE;
#else
  info.git_describe = "unknown";
#endif
#ifdef PFRL_BUILD_TYPE
  info.build_type = PFRL_BUILD_TYPE;
#else
  info.build_type = "unknown";
#endif
#if defined(__clang__)
  info.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
  info.compiler = "gcc " __VERSION__;
#else
  info.compiler = "unknown";
#endif
  return info;
}

namespace {

std::int64_t unix_now() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void append_kv(std::string& out, const char* key, double value, bool* first = nullptr) {
  if (first != nullptr) {
    if (!*first) out += ',';
    *first = false;
  } else {
    out += ',';
  }
  out += '"';
  out += key;
  out += "\":";
  json_number_append(out, value);
}

void append_alert(std::string& out, const WatchdogAlert& a) {
  out += "{\"round\":" + std::to_string(a.round);
  out += ",\"client\":" + std::to_string(a.client);
  out += ",\"kind\":";
  json_escape_append(out, a.kind);
  out += ",\"detail\":";
  json_escape_append(out, a.detail);
  out += '}';
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open())
    throw std::runtime_error("RunReporter: cannot open " + path + " for writing");
  out << content;
}

void append_metrics_snapshot(std::string& out, const Report& report) {
  out += "{\"counters\":[";
  for (std::size_t i = 0; i < report.metrics.counters.size(); ++i) {
    const CounterSample& c = report.metrics.counters[i];
    out += i == 0 ? "{" : ",{";
    out += "\"name\":";
    json_escape_append(out, c.name);
    out += ",\"value\":" + std::to_string(c.value) + "}";
  }
  out += "],\"gauges\":[";
  for (std::size_t i = 0; i < report.metrics.gauges.size(); ++i) {
    const GaugeSample& g = report.metrics.gauges[i];
    out += i == 0 ? "{" : ",{";
    out += "\"name\":";
    json_escape_append(out, g.name);
    out += ",\"value\":";
    json_number_append(out, g.value);
    out += "}";
  }
  out += "],\"histograms\":[";
  for (std::size_t i = 0; i < report.metrics.histograms.size(); ++i) {
    const HistogramSample& h = report.metrics.histograms[i];
    out += i == 0 ? "{" : ",{";
    out += "\"name\":";
    json_escape_append(out, h.name);
    out += ",\"count\":" + std::to_string(h.count);
    append_kv(out, "sum", h.sum);
    append_kv(out, "p50", h.p50);
    append_kv(out, "p95", h.p95);
    append_kv(out, "p99", h.p99);
    out += "}";
  }
  out += "],\"spans\":[";
  for (std::size_t i = 0; i < report.spans.size(); ++i) {
    const SpanAggregate& s = report.spans[i];
    out += i == 0 ? "{" : ",{";
    out += "\"name\":";
    json_escape_append(out, s.name);
    out += ",\"calls\":" + std::to_string(s.count);
    append_kv(out, "total_ms", s.total_ms());
    append_kv(out, "mean_us", s.mean_us());
    out += "}";
  }
  out += "]}";
}

}  // namespace

RunReporter::RunReporter(std::string dir, RunManifest manifest, WatchdogConfig watchdog)
    : dir_(std::move(dir)),
      manifest_(std::move(manifest)),
      watchdog_(watchdog),
      build_(BuildInfo::current()),
      started_unix_(unix_now()) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec && !std::filesystem::is_directory(dir_))
    throw std::runtime_error("RunReporter: cannot create run directory " + dir_ + ": " +
                             ec.message());
  write_manifest("running");
  const std::string learning_path = (std::filesystem::path(dir_) / "learning.jsonl").string();
  learning_.open(learning_path, std::ios::trunc);
  if (!learning_.is_open())
    throw std::runtime_error("RunReporter: cannot open " + learning_path + " for writing");
}

RunReporter::~RunReporter() {
  if (finalized_) return;
  try {
    finalize(capture_report(), {});
  } catch (const std::exception&) {
    // Destructor finalization is best-effort (e.g. disk full mid-run).
  }
}

void RunReporter::write_manifest(const char* status) {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"schema\": \"pfrl-run/1\",\n  \"name\": ";
  json_escape_append(out, manifest_.run_name);
  out += ",\n  \"algorithm\": ";
  json_escape_append(out, manifest_.algorithm);
  out += ",\n  \"seed\": " + std::to_string(manifest_.seed);
  out += ",\n  \"episodes\": " + std::to_string(manifest_.episodes);
  out += ",\n  \"clients\": " + std::to_string(manifest_.clients);
  out += ",\n  \"started_unix\": " + std::to_string(started_unix_);
  if (manifest_.resumed) {
    out += ",\n  \"resume\": {\"parent_run_id\": ";
    json_escape_append(out, manifest_.parent_run_id);
    out += ", \"resumed_round\": " + std::to_string(manifest_.resumed_round) + "}";
  }
  out += ",\n  \"build\": {\"git_describe\": ";
  json_escape_append(out, build_.git_describe);
  out += ", \"build_type\": ";
  json_escape_append(out, build_.build_type);
  out += ", \"compiler\": ";
  json_escape_append(out, build_.compiler);
  out += "},\n  \"config\": {";
  for (std::size_t i = 0; i < manifest_.config.size(); ++i) {
    out += i == 0 ? "" : ", ";
    json_escape_append(out, manifest_.config[i].first);
    out += ": ";
    json_escape_append(out, manifest_.config[i].second);
  }
  out += "},\n  \"watchdog\": {\"min_policy_entropy\": ";
  json_number_append(out, watchdog_.min_policy_entropy);
  out += ", \"max_approx_kl\": ";
  json_number_append(out, watchdog_.max_approx_kl);
  out += ", \"min_explained_variance\": ";
  json_number_append(out, watchdog_.min_explained_variance);
  out += ", \"warmup_rounds\": " + std::to_string(watchdog_.warmup_rounds);
  out += ", \"abort_on_alert\": ";
  out += watchdog_.abort_on_alert ? "true" : "false";
  out += "},\n  \"status\": ";
  json_escape_append(out, status);
  out += ",\n  \"rounds_recorded\": " + std::to_string(rounds_recorded_);
  out += ",\n  \"alerts\": [";
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    out += i == 0 ? "" : ",";
    append_alert(out, alerts_[i]);
  }
  out += "]\n}\n";
  write_file((std::filesystem::path(dir_) / "manifest.json").string(), out);
}

void RunReporter::add_alert(std::uint64_t round, int client, const char* kind,
                            std::string detail) {
  WatchdogAlert alert;
  alert.round = round;
  alert.client = client;
  alert.kind = kind;
  alert.detail = std::move(detail);
  alerts_.push_back(std::move(alert));
  if (watchdog_.abort_on_alert) abort_requested_ = true;
}

void RunReporter::check_round(const LearningRoundEvent& event) {
  const std::size_t before = alerts_.size();
  for (const ClientRoundDiagnostics& c : event.clients) {
    if (c.crashed || c.episodes == 0) continue;  // no update happened
    const bool finite =
        std::isfinite(c.mean_reward) && std::isfinite(c.policy_entropy) &&
        std::isfinite(c.approx_kl) && std::isfinite(c.clip_fraction) &&
        std::isfinite(c.explained_variance) && std::isfinite(c.policy_grad_norm) &&
        std::isfinite(c.critic_grad_norm) && std::isfinite(c.alpha) &&
        std::isfinite(c.local_critic_loss) && std::isfinite(c.public_critic_loss);
    if (!finite) {
      add_alert(event.round, c.id, "non_finite",
                "non-finite learning signal (diverged update)");
      continue;  // the remaining thresholds are meaningless on NaNs
    }
    if (c.approx_kl > watchdog_.max_approx_kl) {
      std::string detail = "approx_kl ";
      json_number_append(detail, c.approx_kl);
      detail += " > ";
      json_number_append(detail, watchdog_.max_approx_kl);
      add_alert(event.round, c.id, "kl_blowup", std::move(detail));
    }
    if (event.round >= watchdog_.warmup_rounds) {
      if (c.policy_entropy < watchdog_.min_policy_entropy) {
        std::string detail = "policy_entropy ";
        json_number_append(detail, c.policy_entropy);
        detail += " < ";
        json_number_append(detail, watchdog_.min_policy_entropy);
        add_alert(event.round, c.id, "entropy_collapse", std::move(detail));
      }
      if (c.explained_variance < watchdog_.min_explained_variance) {
        std::string detail = "explained_variance ";
        json_number_append(detail, c.explained_variance);
        detail += " < ";
        json_number_append(detail, watchdog_.min_explained_variance);
        add_alert(event.round, c.id, "ev_crater", std::move(detail));
      }
    }
  }
  // Alerts land in the manifest immediately so a run killed right after a
  // divergence still explains itself.
  if (alerts_.size() != before) write_manifest("running");
}

void RunReporter::record_round(const LearningRoundEvent& event) {
  if (finalized_)
    throw std::logic_error("RunReporter: record_round after finalize");
  std::string line;
  line.reserve(256 + event.clients.size() * 256);
  line += "{\"round\":" + std::to_string(event.round);
  line += ",\"episodes\":" + std::to_string(event.episodes_done);
  line += ",\"clients\":[";
  for (std::size_t i = 0; i < event.clients.size(); ++i) {
    const ClientRoundDiagnostics& c = event.clients[i];
    line += i == 0 ? "{" : ",{";
    line += "\"id\":" + std::to_string(c.id);
    line += ",\"crashed\":";
    line += c.crashed ? "true" : "false";
    line += ",\"episodes\":" + std::to_string(c.episodes);
    append_kv(line, "reward", c.mean_reward);
    append_kv(line, "entropy", c.policy_entropy);
    append_kv(line, "approx_kl", c.approx_kl);
    append_kv(line, "clip_fraction", c.clip_fraction);
    append_kv(line, "explained_variance", c.explained_variance);
    append_kv(line, "policy_grad_norm", c.policy_grad_norm);
    append_kv(line, "critic_grad_norm", c.critic_grad_norm);
    append_kv(line, "alpha", c.alpha);
    append_kv(line, "local_critic_loss", c.local_critic_loss);
    append_kv(line, "public_critic_loss", c.public_critic_loss);
    append_kv(line, "critic_loss_before", c.critic_loss_before);
    append_kv(line, "critic_loss_after", c.critic_loss_after);
    line += ",\"staleness\":" + std::to_string(c.staleness);
    line += ",\"attention\":[";
    for (std::size_t j = 0; j < c.attention_row.size(); ++j) {
      if (j != 0) line += ',';
      json_number_append(line, c.attention_row[j]);
    }
    line += "]}";
  }
  line += "]}\n";
  learning_ << line;
  learning_.flush();
  ++rounds_recorded_;
  check_round(event);
}

void RunReporter::finalize(const Report& report, std::string_view history_json) {
  if (finalized_) return;
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"pfrl-run-summary/1\",\n  \"rounds_recorded\": " +
         std::to_string(rounds_recorded_);
  out += ",\n  \"aborted\": ";
  out += abort_requested_ ? "true" : "false";
  out += ",\n  \"alerts\": [";
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    out += i == 0 ? "" : ",";
    append_alert(out, alerts_[i]);
  }
  out += "],\n  \"history\": ";
  out += history_json.empty() ? std::string("null") : std::string(history_json);
  out += ",\n  \"metrics\": ";
  append_metrics_snapshot(out, report);
  out += "\n}\n";
  write_file((std::filesystem::path(dir_) / "summary.json").string(), out);
  learning_.flush();
  finalized_ = true;  // set before write_manifest so a throw there cannot recurse
  write_manifest(abort_requested_ ? "aborted" : "completed");
}

}  // namespace pfrl::obs
