// Scoped-span tracer: RAII spans with a thread-local span stack.
//
//   void FedTrainer::step_round() {
//     PFRL_SPAN("fed/round");
//     ...
//   }
//
// Every completed span is aggregated by name (call count, total/min/max
// wall time) and, when a JSONL stream is attached, emitted as one event
// line. Span begin/end is a steady_clock read plus a thread-local push /
// pop; the aggregation update takes a short global mutex on span *end*
// only, so spans belong around work in the >= 10 microsecond range
// (episodes, forward passes, rounds), not innermost loops — those get
// counters. With obs disabled, PFRL_SPAN is one relaxed atomic load.
//
// Span names are stable "<layer>/<operation>" literals; nesting is
// recorded as depth + parent in the stream, while aggregation stays
// keyed by name alone so the summary table is compact.
//
// Distributed tracing: every span carries a 64-bit trace id (shared by
// all spans in one causal tree, across processes) and a 64-bit span id
// (unique per span). A process that receives a request over the wire
// adopts the sender's context with RemoteSpanScope, so the handler span
// it opens becomes a child of the remote span and joins its trace:
//
//   obs::RemoteSpanScope remote({frame.trace_id, frame.span_id});
//   PFRL_SPAN("fed/round");   // child of the server's round span
//
// Per-process trace.jsonl streams are stitched into one timeline by
// tools/pfrl_trace_merge.py using these ids plus the wall-clock anchor
// in the stream's meta line.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pfrl::obs {

/// Aggregated view of one span name.
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;

  double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
  double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(total_ns) / (1e3 * static_cast<double>(count));
  }
};

/// Identifies one span within one trace. trace_id == 0 means "no
/// context": sends carrying it fall back to the untraced wire format.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// One streamed span event (also the shape parse_jsonl_events returns).
struct SpanEvent {
  std::string name;
  std::string parent;      // empty at depth 0
  std::uint64_t ts_us = 0; // start, relative to process start
  std::uint64_t dur_us = 0;
  std::uint64_t thread = 0;
  std::uint32_t depth = 0;
  std::uint64_t trace_id = 0;       // 0 on streams written before ids existed
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0; // 0 for trace roots
};

class Tracer {
 public:
  /// Streams every completed span to `path` as one JSON object per line.
  /// Empty path detaches the stream. Aggregation happens regardless.
  /// The first line of a fresh stream is a meta record carrying the pid,
  /// hostname, and the wall-clock instant of ts_us == 0 so merge tooling
  /// can align per-process relative clocks.
  void set_stream_path(const std::string& path);
  bool streaming() const;

  /// Name-sorted aggregates of every span completed so far.
  std::vector<SpanAggregate> aggregates() const;

  void reset();

  // Called by Span only.
  void record(const char* name, const char* parent, std::uint64_t start_ns,
              std::uint64_t end_ns, std::uint32_t depth, std::uint64_t trace_id,
              std::uint64_t span_id, std::uint64_t parent_span_id);
};

Tracer& tracer();

/// Context of the innermost open span on this thread ({0,0} when no span
/// is open). This is what transports stamp onto outgoing frames.
TraceContext current_trace_context();

/// Adopts a remote trace context for the current scope: spans opened at
/// the stack depth where the scope was entered become children of the
/// remote span and share its trace id (deeper spans nest locally as
/// usual). An invalid context makes the scope a no-op. Scopes nest;
/// destruction restores the previous adoption.
class RemoteSpanScope {
 public:
  explicit RemoteSpanScope(TraceContext context);
  ~RemoteSpanScope();

  RemoteSpanScope(const RemoteSpanScope&) = delete;
  RemoteSpanScope& operator=(const RemoteSpanScope&) = delete;

 private:
  TraceContext saved_context_;
  std::size_t saved_depth_ = 0;
  bool active_ = false;
};

/// Parses a JSONL span stream written by the tracer (round-trip tests and
/// external tooling). Lines that do not parse are skipped.
std::vector<SpanEvent> parse_jsonl_events(const std::string& path);

/// RAII span. Inert (no clock read, no stack push) when obs is disabled
/// at construction time.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's ids ({0,0} when inert). Mostly for tests.
  TraceContext context() const { return {trace_id_, span_id_}; }

 private:
  const char* name_ = nullptr;  // null when inert
  const char* parent_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
};

#define PFRL_OBS_CONCAT_INNER(a, b) a##b
#define PFRL_OBS_CONCAT(a, b) PFRL_OBS_CONCAT_INNER(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define PFRL_SPAN(name) ::pfrl::obs::Span PFRL_OBS_CONCAT(pfrl_obs_span_, __LINE__)(name)

}  // namespace pfrl::obs
