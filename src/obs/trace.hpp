// Scoped-span tracer: RAII spans with a thread-local span stack.
//
//   void FedTrainer::step_round() {
//     PFRL_SPAN("fed/round");
//     ...
//   }
//
// Every completed span is aggregated by name (call count, total/min/max
// wall time) and, when a JSONL stream is attached, emitted as one event
// line. Span begin/end is a steady_clock read plus a thread-local push /
// pop; the aggregation update takes a short global mutex on span *end*
// only, so spans belong around work in the >= 10 microsecond range
// (episodes, forward passes, rounds), not innermost loops — those get
// counters. With obs disabled, PFRL_SPAN is one relaxed atomic load.
//
// Span names are stable "<layer>/<operation>" literals; nesting is
// recorded as depth + parent in the stream, while aggregation stays
// keyed by name alone so the summary table is compact.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pfrl::obs {

/// Aggregated view of one span name.
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;

  double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
  double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(total_ns) / (1e3 * static_cast<double>(count));
  }
};

/// One streamed span event (also the shape parse_jsonl_events returns).
struct SpanEvent {
  std::string name;
  std::string parent;      // empty at depth 0
  std::uint64_t ts_us = 0; // start, relative to process start
  std::uint64_t dur_us = 0;
  std::uint64_t thread = 0;
  std::uint32_t depth = 0;
};

class Tracer {
 public:
  /// Streams every completed span to `path` as one JSON object per line.
  /// Empty path detaches the stream. Aggregation happens regardless.
  void set_stream_path(const std::string& path);
  bool streaming() const;

  /// Name-sorted aggregates of every span completed so far.
  std::vector<SpanAggregate> aggregates() const;

  void reset();

  // Called by Span only.
  void record(const char* name, const char* parent, std::uint64_t start_ns,
              std::uint64_t end_ns, std::uint32_t depth);
};

Tracer& tracer();

/// Parses a JSONL span stream written by the tracer (round-trip tests and
/// external tooling). Lines that do not parse are skipped.
std::vector<SpanEvent> parse_jsonl_events(const std::string& path);

/// RAII span. Inert (no clock read, no stack push) when obs is disabled
/// at construction time.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  // null when inert
  const char* parent_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

#define PFRL_OBS_CONCAT_INNER(a, b) a##b
#define PFRL_OBS_CONCAT(a, b) PFRL_OBS_CONCAT_INNER(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define PFRL_SPAN(name) ::pfrl::obs::Span PFRL_OBS_CONCAT(pfrl_obs_span_, __LINE__)(name)

}  // namespace pfrl::obs
