#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>

namespace pfrl::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// Process start reference so streamed timestamps are small and relative.
std::uint64_t process_epoch_ns() {
  static const std::uint64_t epoch = now_ns();
  return epoch;
}

std::uint64_t thread_ordinal() {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

struct StackEntry {
  const char* name;
};

std::vector<StackEntry>& span_stack() {
  thread_local std::vector<StackEntry> stack;
  return stack;
}

struct TracerState {
  mutable std::mutex mutex;
  std::map<std::string, SpanAggregate, std::less<>> aggregates;
  std::ofstream stream;
  bool streaming = false;
};

TracerState& state() {
  static TracerState* s = new TracerState();  // leaked, like the registry:
  // worker threads may close spans during static destruction.
  return *s;
}

void json_escape_into(std::string& out, const char* text) {
  for (const char* p = text; *p; ++p) {
    switch (*p) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(*p) < 0x20)
          out += ' ';  // control chars never appear in span names
        else
          out += *p;
    }
  }
}

}  // namespace

void Tracer::set_stream_path(const std::string& path) {
  TracerState& s = state();
  const std::scoped_lock lock(s.mutex);
  s.stream.close();
  s.stream.clear();
  s.streaming = false;
  if (path.empty()) return;
  s.stream.open(path, std::ios::trunc);
  if (!s.stream.is_open()) throw std::runtime_error("Tracer: cannot open trace file " + path);
  s.streaming = true;
}

bool Tracer::streaming() const {
  TracerState& s = state();
  const std::scoped_lock lock(s.mutex);
  return s.streaming;
}

std::vector<SpanAggregate> Tracer::aggregates() const {
  TracerState& s = state();
  const std::scoped_lock lock(s.mutex);
  std::vector<SpanAggregate> out;
  out.reserve(s.aggregates.size());
  for (const auto& [name, agg] : s.aggregates) out.push_back(agg);
  return out;
}

void Tracer::reset() {
  TracerState& s = state();
  const std::scoped_lock lock(s.mutex);
  s.aggregates.clear();
}

void Tracer::record(const char* name, const char* parent, std::uint64_t start_ns,
                    std::uint64_t end_ns, std::uint32_t depth) {
  const std::uint64_t dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  TracerState& s = state();
  const std::scoped_lock lock(s.mutex);
  auto it = s.aggregates.find(name);
  if (it == s.aggregates.end()) {
    SpanAggregate agg;
    agg.name = name;
    agg.min_ns = dur_ns;
    it = s.aggregates.emplace(agg.name, std::move(agg)).first;
  }
  SpanAggregate& agg = it->second;
  ++agg.count;
  agg.total_ns += dur_ns;
  agg.min_ns = std::min(agg.min_ns, dur_ns);
  agg.max_ns = std::max(agg.max_ns, dur_ns);

  if (s.streaming) {
    std::string line;
    line.reserve(128);
    line += "{\"name\":\"";
    json_escape_into(line, name);
    line += "\",\"parent\":\"";
    if (parent) json_escape_into(line, parent);
    line += "\",\"ts_us\":" + std::to_string((start_ns - process_epoch_ns()) / 1000);
    line += ",\"dur_us\":" + std::to_string(dur_ns / 1000);
    line += ",\"tid\":" + std::to_string(thread_ordinal());
    line += ",\"depth\":" + std::to_string(depth);
    line += "}\n";
    s.stream << line;
    s.stream.flush();
  }
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

Span::Span(const char* name) {
  if (!enabled()) return;
  process_epoch_ns();  // pin the epoch before the first timestamp
  std::vector<StackEntry>& stack = span_stack();
  parent_ = stack.empty() ? nullptr : stack.back().name;
  depth_ = static_cast<std::uint32_t>(stack.size());
  stack.push_back({name});
  name_ = name;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!name_) return;
  const std::uint64_t end = now_ns();
  std::vector<StackEntry>& stack = span_stack();
  if (!stack.empty()) stack.pop_back();
  tracer().record(name_, parent_, start_ns_, end, depth_);
}

namespace {

/// Minimal field extraction for the fixed shape record() writes.
bool extract_string(const std::string& line, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  out.clear();
  while (i < line.size() && line[i] != '"') {
    if (line[i] == '\\' && i + 1 < line.size()) {
      const char c = line[i + 1];
      out += c == 'n' ? '\n' : c == 't' ? '\t' : c;
      i += 2;
    } else {
      out += line[i++];
    }
  }
  return i < line.size();
}

bool extract_u64(const std::string& line, const std::string& key, std::uint64_t& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  try {
    out = std::stoull(line.substr(at + needle.size()));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<SpanEvent> parse_jsonl_events(const std::string& path) {
  std::vector<SpanEvent> events;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    // A process killed mid-write leaves a truncated final line. Without a
    // closing brace the record is incomplete — and worse, a numeric field
    // cut short ("dur_us":12 truncated from 1234) still parses, silently
    // yielding a wrong value. Require the terminator before extracting.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    if (line.empty() || line.back() != '}') continue;
    SpanEvent e;
    std::uint64_t depth = 0;
    if (!extract_string(line, "name", e.name)) continue;
    extract_string(line, "parent", e.parent);
    if (!extract_u64(line, "ts_us", e.ts_us)) continue;
    if (!extract_u64(line, "dur_us", e.dur_us)) continue;
    extract_u64(line, "tid", e.thread);
    extract_u64(line, "depth", depth);
    e.depth = static_cast<std::uint32_t>(depth);
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace pfrl::obs
