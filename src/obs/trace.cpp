#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>

namespace pfrl::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::system_clock::now().time_since_epoch())
                                        .count());
}

/// Process start reference so streamed timestamps are small and relative.
std::uint64_t process_epoch_ns() {
  static const std::uint64_t epoch = now_ns();
  return epoch;
}

std::uint64_t thread_ordinal() {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Process-unique nonzero 64-bit ids: a splitmix64 walk seeded from the
/// pid and the clock, so ids from concurrently started processes do not
/// collide in a merged trace.
std::uint64_t next_id() {
  static std::atomic<std::uint64_t> counter{
      splitmix64(now_ns() ^ (static_cast<std::uint64_t>(::getpid()) << 32))};
  std::uint64_t id = 0;
  while (id == 0) id = splitmix64(counter.fetch_add(1, std::memory_order_relaxed));
  return id;
}

struct StackEntry {
  const char* name;
  std::uint64_t span_id;
  std::uint64_t trace_id;
};

struct ThreadTrace {
  std::vector<StackEntry> stack;
  TraceContext remote;            // pending adopted remote parent
  std::size_t remote_depth = 0;   // stack depth the adoption applies at
};

ThreadTrace& thread_trace() {
  thread_local ThreadTrace t;
  return t;
}

struct TracerState {
  mutable std::mutex mutex;
  std::map<std::string, SpanAggregate, std::less<>> aggregates;
  std::ofstream stream;
  bool streaming = false;
};

TracerState& state() {
  static TracerState* s = new TracerState();  // leaked, like the registry:
  // worker threads may close spans during static destruction.
  return *s;
}

void json_escape_into(std::string& out, const char* text) {
  for (const char* p = text; *p; ++p) {
    switch (*p) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(*p) < 0x20)
          out += ' ';  // control chars never appear in span names
        else
          out += *p;
    }
  }
}

void append_hex16(std::string& out, std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

void Tracer::set_stream_path(const std::string& path) {
  TracerState& s = state();
  const std::scoped_lock lock(s.mutex);
  s.stream.close();
  s.stream.clear();
  s.streaming = false;
  if (path.empty()) return;
  s.stream.open(path, std::ios::trunc);
  if (!s.stream.is_open()) throw std::runtime_error("Tracer: cannot open trace file " + path);
  s.streaming = true;
  // Meta line: lets merge tooling align this process's relative clock
  // (wall_epoch_us is the wall-clock instant where ts_us == 0) and label
  // events by process. Parsers keying on "name" skip it.
  char host[256] = {0};
  if (::gethostname(host, sizeof(host) - 1) != 0) host[0] = '\0';
  const std::uint64_t rel_us = (now_ns() - process_epoch_ns()) / 1000;
  std::string meta;
  meta += "{\"meta\":\"pfrl-trace/1\",\"pid\":" + std::to_string(::getpid());
  meta += ",\"host\":\"";
  json_escape_into(meta, host);
  meta += "\",\"wall_epoch_us\":" + std::to_string(wall_now_us() - rel_us);
  meta += "}\n";
  s.stream << meta;
  s.stream.flush();
}

bool Tracer::streaming() const {
  TracerState& s = state();
  const std::scoped_lock lock(s.mutex);
  return s.streaming;
}

std::vector<SpanAggregate> Tracer::aggregates() const {
  TracerState& s = state();
  const std::scoped_lock lock(s.mutex);
  std::vector<SpanAggregate> out;
  out.reserve(s.aggregates.size());
  for (const auto& [name, agg] : s.aggregates) out.push_back(agg);
  return out;
}

void Tracer::reset() {
  TracerState& s = state();
  const std::scoped_lock lock(s.mutex);
  s.aggregates.clear();
}

void Tracer::record(const char* name, const char* parent, std::uint64_t start_ns,
                    std::uint64_t end_ns, std::uint32_t depth, std::uint64_t trace_id,
                    std::uint64_t span_id, std::uint64_t parent_span_id) {
  const std::uint64_t dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  TracerState& s = state();
  const std::scoped_lock lock(s.mutex);
  auto it = s.aggregates.find(name);
  if (it == s.aggregates.end()) {
    SpanAggregate agg;
    agg.name = name;
    agg.min_ns = dur_ns;
    it = s.aggregates.emplace(agg.name, std::move(agg)).first;
  }
  SpanAggregate& agg = it->second;
  ++agg.count;
  agg.total_ns += dur_ns;
  agg.min_ns = std::min(agg.min_ns, dur_ns);
  agg.max_ns = std::max(agg.max_ns, dur_ns);

  if (s.streaming) {
    std::string line;
    line.reserve(192);
    line += "{\"name\":\"";
    json_escape_into(line, name);
    line += "\",\"parent\":\"";
    if (parent) json_escape_into(line, parent);
    line += "\",\"ts_us\":" + std::to_string((start_ns - process_epoch_ns()) / 1000);
    line += ",\"dur_us\":" + std::to_string(dur_ns / 1000);
    line += ",\"tid\":" + std::to_string(thread_ordinal());
    line += ",\"depth\":" + std::to_string(depth);
    line += ",\"trace\":\"";
    append_hex16(line, trace_id);
    line += "\",\"span\":\"";
    append_hex16(line, span_id);
    line += "\",\"pspan\":\"";
    append_hex16(line, parent_span_id);
    line += "\"}\n";
    s.stream << line;
    s.stream.flush();
  }
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

TraceContext current_trace_context() {
  if (!enabled()) return {};
  const ThreadTrace& t = thread_trace();
  if (t.stack.empty()) return {};
  return {t.stack.back().trace_id, t.stack.back().span_id};
}

RemoteSpanScope::RemoteSpanScope(TraceContext context) {
  if (!enabled() || !context.valid()) return;
  ThreadTrace& t = thread_trace();
  saved_context_ = t.remote;
  saved_depth_ = t.remote_depth;
  t.remote = context;
  t.remote_depth = t.stack.size();
  active_ = true;
}

RemoteSpanScope::~RemoteSpanScope() {
  if (!active_) return;
  ThreadTrace& t = thread_trace();
  t.remote = saved_context_;
  t.remote_depth = saved_depth_;
}

Span::Span(const char* name) {
  if (!enabled()) return;
  process_epoch_ns();  // pin the epoch before the first timestamp
  ThreadTrace& t = thread_trace();
  span_id_ = next_id();
  if (t.remote.valid() && t.stack.size() == t.remote_depth) {
    // Continuing a request that arrived over the wire: this span parents
    // to the remote span and joins its trace. The remote parent has no
    // local name — the merge tool resolves it by id across processes.
    trace_id_ = t.remote.trace_id;
    parent_span_id_ = t.remote.span_id;
  } else if (!t.stack.empty()) {
    parent_ = t.stack.back().name;
    trace_id_ = t.stack.back().trace_id;
    parent_span_id_ = t.stack.back().span_id;
  } else {
    trace_id_ = next_id();
  }
  depth_ = static_cast<std::uint32_t>(t.stack.size());
  t.stack.push_back({name, span_id_, trace_id_});
  name_ = name;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!name_) return;
  const std::uint64_t end = now_ns();
  ThreadTrace& t = thread_trace();
  if (!t.stack.empty()) t.stack.pop_back();
  tracer().record(name_, parent_, start_ns_, end, depth_, trace_id_, span_id_, parent_span_id_);
}

namespace {

/// Minimal field extraction for the fixed shape record() writes.
bool extract_string(const std::string& line, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  out.clear();
  while (i < line.size() && line[i] != '"') {
    if (line[i] == '\\' && i + 1 < line.size()) {
      const char c = line[i + 1];
      out += c == 'n' ? '\n' : c == 't' ? '\t' : c;
      i += 2;
    } else {
      out += line[i++];
    }
  }
  return i < line.size();
}

bool extract_u64(const std::string& line, const std::string& key, std::uint64_t& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  try {
    out = std::stoull(line.substr(at + needle.size()));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

/// Ids stream as 16-digit hex strings (decimal u64 would overflow the
/// 2^53 integer range of JSON consumers). Absent on pre-id streams.
bool extract_hex_u64(const std::string& line, const std::string& key, std::uint64_t& out) {
  std::string text;
  if (!extract_string(line, key, text) || text.empty()) return false;
  try {
    out = std::stoull(text, nullptr, 16);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<SpanEvent> parse_jsonl_events(const std::string& path) {
  std::vector<SpanEvent> events;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    // A process killed mid-write leaves a truncated final line. Without a
    // closing brace the record is incomplete — and worse, a numeric field
    // cut short ("dur_us":12 truncated from 1234) still parses, silently
    // yielding a wrong value. Require the terminator before extracting.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    if (line.empty() || line.back() != '}') continue;
    SpanEvent e;
    std::uint64_t depth = 0;
    if (!extract_string(line, "name", e.name)) continue;
    extract_string(line, "parent", e.parent);
    if (!extract_u64(line, "ts_us", e.ts_us)) continue;
    if (!extract_u64(line, "dur_us", e.dur_us)) continue;
    extract_u64(line, "tid", e.thread);
    extract_u64(line, "depth", depth);
    e.depth = static_cast<std::uint32_t>(depth);
    extract_hex_u64(line, "trace", e.trace_id);
    extract_hex_u64(line, "span", e.span_id);
    extract_hex_u64(line, "pspan", e.parent_span_id);
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace pfrl::obs
