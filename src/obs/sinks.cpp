#include "obs/sinks.hpp"

#include <cstdio>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace pfrl::obs {

Report capture_report() {
  Report report;
  report.metrics = metrics().snapshot();
  report.spans = tracer().aggregates();
  return report;
}

void write_report_csv(const Report& report, const std::string& path) {
  util::CsvWriter csv(path, {"kind", "name", "count", "value", "p50", "p95", "p99"});
  for (const CounterSample& c : report.metrics.counters)
    csv.row({"counter", c.name, std::to_string(c.value), "", "", "", ""});
  for (const GaugeSample& g : report.metrics.gauges)
    csv.row({"gauge", g.name, "", util::CsvWriter::field(g.value), "", "", ""});
  for (const HistogramSample& h : report.metrics.histograms)
    csv.row({"histogram", h.name, std::to_string(h.count), util::CsvWriter::field(h.sum),
             util::CsvWriter::field(h.p50), util::CsvWriter::field(h.p95),
             util::CsvWriter::field(h.p99)});
  for (const SpanAggregate& s : report.spans)
    csv.row({"span", s.name, std::to_string(s.count), util::CsvWriter::field(s.total_ms()),
             util::CsvWriter::field(s.mean_us()), "",
             util::CsvWriter::field(static_cast<double>(s.max_ns) / 1e3)});
}

std::string render_report(const Report& report) {
  std::string out;
  if (!report.metrics.counters.empty() || !report.metrics.gauges.empty()) {
    util::TablePrinter table({"metric", "kind", "value"});
    for (const CounterSample& c : report.metrics.counters)
      table.row({c.name, "counter", std::to_string(c.value)});
    for (const GaugeSample& g : report.metrics.gauges)
      table.row({g.name, "gauge", util::TablePrinter::num(g.value, 2)});
    out += table.render();
  }
  if (!report.metrics.histograms.empty()) {
    util::TablePrinter table({"histogram", "count", "sum", "p50", "p95", "p99"});
    for (const HistogramSample& h : report.metrics.histograms)
      table.row({h.name, std::to_string(h.count), util::TablePrinter::num(h.sum, 1),
                 util::TablePrinter::num(h.p50, 1), util::TablePrinter::num(h.p95, 1),
                 util::TablePrinter::num(h.p99, 1)});
    if (!out.empty()) out += "\n";
    out += table.render();
  }
  if (!report.spans.empty()) {
    util::TablePrinter table({"span", "calls", "total (ms)", "mean (us)", "max (us)"});
    for (const SpanAggregate& s : report.spans)
      table.row({s.name, std::to_string(s.count), util::TablePrinter::num(s.total_ms(), 2),
                 util::TablePrinter::num(s.mean_us(), 1),
                 util::TablePrinter::num(static_cast<double>(s.max_ns) / 1e3, 1)});
    if (!out.empty()) out += "\n";
    out += table.render();
  }
  return out;
}

void print_report(const Report& report) {
  const std::string rendered = render_report(report);
  if (rendered.empty()) return;
  std::fprintf(stderr, "\n--- observability report ---\n%s", rendered.c_str());
}

}  // namespace pfrl::obs
