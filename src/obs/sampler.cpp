#include "obs/sampler.hpp"

#include <algorithm>

#include "obs/run_report.hpp"

namespace pfrl::obs {

TimeSeriesSampler::TimeSeriesSampler(std::chrono::milliseconds period, std::size_t capacity)
    : period_(std::max(period, std::chrono::milliseconds(10))),
      capacity_(std::max<std::size_t>(capacity, 2)),
      start_(std::chrono::steady_clock::now()) {
  ring_.resize(capacity_);
  thread_ = std::thread([this] { run(); });
}

TimeSeriesSampler::~TimeSeriesSampler() { stop(); }

void TimeSeriesSampler::stop() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TimeSeriesSampler::run() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    // Snapshot outside the ring lock would let readers observe a torn
    // ring; the registry snapshot is cheap enough to take under it.
    Sample s;
    s.t_ms = static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                            std::chrono::steady_clock::now() - start_)
                                            .count());
    s.wall_unix_ms =
        static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                       std::chrono::system_clock::now().time_since_epoch())
                                       .count());
    s.snapshot = metrics().snapshot();
    const std::size_t slot = (head_ + size_) % capacity_;
    ring_[slot] = std::move(s);
    if (size_ < capacity_)
      ++size_;
    else
      head_ = (head_ + 1) % capacity_;
    cv_.wait_for(lock, period_, [this] { return stopping_; });
  }
}

std::vector<TimeSeriesSampler::Sample> TimeSeriesSampler::samples() const {
  const std::scoped_lock lock(mutex_);
  std::vector<Sample> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(ring_[(head_ + i) % capacity_]);
  return out;
}

std::string TimeSeriesSampler::to_json() const {
  const std::vector<Sample> window = samples();
  std::string out;
  out.reserve(1024 + window.size() * 256);
  out += "{\"schema\":\"pfrl-timeseries/1\",\"period_ms\":";
  out += std::to_string(period_.count());
  out += ",\"capacity\":" + std::to_string(capacity_);
  out += ",\"samples\":[";
  bool first_sample = true;
  for (const Sample& s : window) {
    if (!first_sample) out += ',';
    first_sample = false;
    out += "{\"t_ms\":" + std::to_string(s.t_ms);
    out += ",\"wall_unix_ms\":" + std::to_string(s.wall_unix_ms);
    out += ",\"counters\":{";
    bool first = true;
    for (const CounterSample& c : s.snapshot.counters) {
      if (!first) out += ',';
      first = false;
      json_escape_append(out, c.name);
      out += ':' + std::to_string(c.value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const GaugeSample& g : s.snapshot.gauges) {
      if (!first) out += ',';
      first = false;
      json_escape_append(out, g.name);
      out += ':';
      json_number_append(out, g.value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const HistogramSample& h : s.snapshot.histograms) {
      if (!first) out += ',';
      first = false;
      json_escape_append(out, h.name);
      out += ":{\"count\":" + std::to_string(h.count);
      out += ",\"sum\":";
      json_number_append(out, h.sum);
      out += ",\"p50\":";
      json_number_append(out, h.p50);
      out += ",\"p95\":";
      json_number_append(out, h.p95);
      out += ",\"p99\":";
      json_number_append(out, h.p99);
      out += '}';
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace pfrl::obs
