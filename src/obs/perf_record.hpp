// Perf-record writer: the machine-readable documents the perf trajectory
// is built from. One record per bench run, written as `BENCH_<name>.json`:
//
//   {
//     "schema": "pfrl-perf/1",
//     "name": "micro_primitives",
//     "timestamp_unix": 1754400000,
//     "timestamp_end_unix": 1754400041,
//     "git_describe": "v0-9-gabc1234",
//     "host": {"threads": 8, "name": "bench-box-1"},
//     "metrics": [
//       {"name": "BM_MlpForward/64", "value": 1234.5, "unit": "ns",
//        "items_per_second": 51883.1}
//     ]
//   }
//
// The start/end wall-clock stamps, hostname, and git describe make a
// checked-in BENCH_*.json trajectory attributable: which commit, which
// machine, and how long the bench ran.
//
// Successive PRs append records for the same bench name; comparing the
// same metric name across records is the regression check. The schema
// field gates future format changes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/sinks.hpp"

namespace pfrl::obs {

struct PerfMetric {
  std::string name;
  double value = 0.0;
  std::string unit;  // "ns", "ms", "items/s", "bytes", "count", ...
  /// Optional secondary rates (items_per_second, bytes_per_second, ...);
  /// zero-valued entries are still written — absence means "not measured".
  std::vector<std::pair<std::string, double>> extra;
};

class PerfRecord {
 public:
  explicit PerfRecord(std::string bench_name);

  void add(PerfMetric metric);
  void add(const std::string& name, double value, const std::string& unit);

  /// Folds a captured obs report in: histograms become "<name>.p50/.p95/
  /// .p99" metrics, spans become "<name>.total_ms" + "<name>.calls",
  /// counters keep their value.
  void add_report(const Report& report);

  const std::string& name() const { return name_; }
  std::size_t metric_count() const { return metrics_.size(); }

  /// Serializes the record as a JSON document.
  std::string to_json() const;

  /// Writes `to_json()` to `path`, or to `BENCH_<name>.json` in `dir`
  /// when `path` is empty.
  void write(const std::string& path = "") const;

  /// Default output path for this record: BENCH_<name>.json (cwd).
  std::string default_path() const { return "BENCH_" + name_ + ".json"; }

 private:
  std::string name_;
  std::int64_t timestamp_unix_ = 0;  // construction; to_json stamps the end
  std::size_t host_threads_ = 0;
  std::string host_name_;
  std::string git_describe_;
  std::vector<PerfMetric> metrics_;
};

}  // namespace pfrl::obs
