// Live telemetry endpoint: a minimal blocking HTTP/1.1 server over the
// util/net helpers that exposes the metrics registry while the process
// runs, instead of only as a file after it exits.
//
// Routes:
//   /metrics          Prometheus text exposition (version 0.0.4) of all
//                     counters, gauges, and histograms (cumulative
//                     _bucket{le=...} / _sum / _count series);
//   /snapshot.json    the same registry snapshot as JSON;
//   /timeseries.json  the sampler ring (pfrl-timeseries/1), when the
//                     sampler is enabled;
//   /healthz          "ok" — liveness probe.
//
// One accept thread handles one connection at a time, one request per
// connection (Connection: close). That is deliberate: scrape traffic is
// one poll per second or two, and a serial server cannot be wedged into
// unbounded thread growth by a misbehaving scraper. Deadlines bound
// every read/write so a stalled client cannot hold the accept loop for
// more than ~2 s.
//
// Wired behind `--telemetry-port` in pfrldm train / serve / client /
// serve-policy; port 0 binds an ephemeral port, resolved via endpoint().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "util/net.hpp"

namespace pfrl::obs {

/// Renders a registry snapshot in the Prometheus text exposition format.
/// Metric names are prefixed "pfrl_" with path separators mapped to '_'
/// ("serve/latency_us" -> pfrl_serve_latency_us).
std::string prometheus_exposition(const MetricsSnapshot& snapshot);

/// Renders a registry snapshot as one JSON object (pfrl-snapshot/1).
std::string snapshot_json(const MetricsSnapshot& snapshot);

struct TelemetryConfig {
  /// TCP by default; unix:<path> also works for local scrapers.
  util::Endpoint endpoint;
  /// Sampler cadence and window for /timeseries.json; period 0 disables
  /// the sampler (the route then answers 404).
  std::chrono::milliseconds sample_period{1000};
  std::size_t sample_capacity = 512;
  /// Per-request I/O deadline.
  std::chrono::milliseconds io_timeout{2000};
};

class TelemetryExporter {
 public:
  /// Binds and starts serving immediately; throws std::runtime_error when
  /// the endpoint cannot be bound.
  explicit TelemetryExporter(TelemetryConfig config);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// The bound address (ephemeral port resolved).
  const util::Endpoint& endpoint() const { return bound_; }

  std::uint64_t requests_served() const { return requests_.load(std::memory_order_relaxed); }

  /// Stops the accept loop and the sampler; idempotent.
  void stop();

 private:
  void serve_loop();
  void handle_connection(util::ScopedFd fd);

  TelemetryConfig config_;
  util::ScopedFd listen_fd_;
  util::Endpoint bound_;
  std::unique_ptr<TimeSeriesSampler> sampler_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace pfrl::obs
