// Umbrella header for the observability subsystem.
//
// Typical harness wiring:
//   obs::set_enabled(true);                         // arm the macros
//   obs::tracer().set_stream_path("trace.jsonl");   // optional span stream
//   ... run ...
//   obs::Report report = obs::capture_report();
//   obs::write_report_csv(report, "metrics.csv");   // machine-readable
//   obs::print_report(report);                      // stderr table
//
// Naming conventions (enforced by review, not code): metric and span
// names are "<layer>/<thing>" with the layer matching the source
// directory — nn/flops, rl/rollout, fed/round_latency_us,
// env/steps, util/pool_queue_depth.
#pragma once

#include "obs/exporter.hpp"     // IWYU pragma: export
#include "obs/metrics.hpp"      // IWYU pragma: export
#include "obs/perf_record.hpp"  // IWYU pragma: export
#include "obs/run_report.hpp"   // IWYU pragma: export
#include "obs/sampler.hpp"      // IWYU pragma: export
#include "obs/sinks.hpp"        // IWYU pragma: export
#include "obs/trace.hpp"        // IWYU pragma: export
