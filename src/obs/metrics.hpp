// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms cheap enough for hot paths.
//
// Design constraints (DESIGN.md "Observability layer"):
//  - the increment path takes no locks: counters are sharded over
//    cache-line-padded atomics indexed by a per-thread shard id, gauges
//    are single relaxed atomics, histogram recording is one atomic add
//    into a pre-sized bucket array;
//  - registration (name -> instrument) takes a mutex but happens once
//    per call site (cache the returned reference, or use the PFRL_COUNT /
//    PFRL_GAUGE_SET macros which do so via a function-local static);
//  - instruments are never destroyed while the process runs, so cached
//    references stay valid; `reset_values()` zeroes values for tests and
//    benches without invalidating handles.
//
// All of it is inert until `obs::set_enabled(true)` (the macros check one
// relaxed atomic first), keeping instrumented hot loops within the <2%
// overhead budget when observability is off.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pfrl::obs {

/// Global kill switch; all PFRL_* instrumentation macros check it first.
bool enabled();
void set_enabled(bool on);

// Fixed 64 rather than std::hardware_destructive_interference_size: the
// value only affects false-sharing, and gcc warns that the stdlib constant
// varies across -mtune settings (ABI hazard for the public header).
inline constexpr std::size_t kCacheLine = 64;

/// Monotonic counter sharded across cache lines so concurrent writers on
/// different threads do not contend on one atomic.
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void add(std::uint64_t delta) {
    shards_[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLine) Shard {
    std::atomic<std::uint64_t> value{0};
  };

  static std::size_t shard_index();

  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins instantaneous value (queue depth, inflight tasks, ...).
/// `set_max` keeps a high-water mark without a read-modify-write loop on
/// the common path.
class Gauge {
 public:
  void set(double value) { bits_.store(pack(value), std::memory_order_relaxed); }

  void set_max(double value) {
    std::uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (unpack(observed) < value &&
           !bits_.compare_exchange_weak(observed, pack(value), std::memory_order_relaxed)) {
    }
  }

  double value() const { return unpack(bits_.load(std::memory_order_relaxed)); }
  void reset() { set(0.0); }

 private:
  static std::uint64_t pack(double v);
  static double unpack(std::uint64_t bits);

  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of each
/// bucket (ascending); values above the last bound land in an overflow
/// bucket. Recording is one relaxed atomic increment plus two for the
/// running sum/count; quantiles are linearly interpolated inside the
/// owning bucket, so precision is set by the bucket layout.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Default layout for durations in microseconds: 1us..60s, roughly
  /// logarithmic (1-2-5 per decade). Sized for training-scale events
  /// (env steps, rounds); everything below 1us lands in the first bucket.
  static std::vector<double> default_time_bounds_us();

  /// Serving-scale layout: 10ns..1s with the same 1-2-5 progression, so
  /// sub-microsecond latencies (a fused-GEMV policy decision is ~0.5us)
  /// resolve into real buckets instead of being quantized into the
  /// training layout's first bin. Register with
  ///   metrics().histogram(name, Histogram::fine_time_bounds_us())
  /// or the PFRL_HISTOGRAM_RECORD_FINE macro.
  static std::vector<double> fine_time_bounds_us();

  void record(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  /// q in [0, 1]; returns 0 when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max_bound = 0.0;
  // Full bucket layout (bounds are upper edges; buckets has one extra
  // overflow slot) so exporters can render cumulative distributions.
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Name -> instrument registry. Lookup interns the instrument on first
/// use; returned references live for the process lifetime.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is consulted only on first registration of `name`; empty
  /// picks Histogram::default_time_bounds_us().
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

  /// Stable (name-sorted) copy of every instrument's current value.
  MetricsSnapshot snapshot() const;

  /// Zeroes all values; handles stay valid. For tests and benches.
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry every instrumentation site reports into.
MetricsRegistry& metrics();

// Hot-path macros: one relaxed load when disabled; the instrument handle
// is resolved once per call site via a function-local static.
#define PFRL_COUNT(name, delta)                                      \
  do {                                                               \
    if (::pfrl::obs::enabled()) {                                    \
      static ::pfrl::obs::Counter& pfrl_obs_counter_ =               \
          ::pfrl::obs::metrics().counter(name);                      \
      pfrl_obs_counter_.add(static_cast<std::uint64_t>(delta));      \
    }                                                                \
  } while (0)

#define PFRL_GAUGE_SET(name, value)                                  \
  do {                                                               \
    if (::pfrl::obs::enabled()) {                                    \
      static ::pfrl::obs::Gauge& pfrl_obs_gauge_ =                   \
          ::pfrl::obs::metrics().gauge(name);                        \
      pfrl_obs_gauge_.set(static_cast<double>(value));               \
    }                                                                \
  } while (0)

#define PFRL_HISTOGRAM_RECORD(name, value)                           \
  do {                                                               \
    if (::pfrl::obs::enabled()) {                                    \
      static ::pfrl::obs::Histogram& pfrl_obs_hist_ =                \
          ::pfrl::obs::metrics().histogram(name);                    \
      pfrl_obs_hist_.record(static_cast<double>(value));             \
    }                                                                \
  } while (0)

// Same as PFRL_HISTOGRAM_RECORD but registers the histogram with the
// fine (sub-microsecond) bucket layout. Bounds are consulted only on the
// first registration of `name`, so mixing the two macros on one name
// keeps whichever layout registered first.
#define PFRL_HISTOGRAM_RECORD_FINE(name, value)                      \
  do {                                                               \
    if (::pfrl::obs::enabled()) {                                    \
      static ::pfrl::obs::Histogram& pfrl_obs_hist_ =                \
          ::pfrl::obs::metrics().histogram(                          \
              name, ::pfrl::obs::Histogram::fine_time_bounds_us());  \
      pfrl_obs_hist_.record(static_cast<double>(value));             \
    }                                                                \
  } while (0)

}  // namespace pfrl::obs
