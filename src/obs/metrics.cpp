#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace pfrl::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::size_t Counter::shard_index() {
  // One shard per thread, assigned round-robin at first use; threads keep
  // their shard for life so the increment path is a plain indexed access.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

std::uint64_t Gauge::pack(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::unpack(std::uint64_t bits) { return std::bit_cast<double>(bits); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_time_bounds_us();
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::vector<double> Histogram::default_time_bounds_us() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e7; decade *= 10.0)
    for (const double step : {1.0, 2.0, 5.0}) bounds.push_back(decade * step);
  bounds.push_back(6e7);  // 60 s
  return bounds;
}

std::vector<double> Histogram::fine_time_bounds_us() {
  std::vector<double> bounds;
  for (const double decade : {0.01, 0.1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5})
    for (const double step : {1.0, 2.0, 5.0}) bounds.push_back(decade * step);
  bounds.push_back(1e6);  // 1 s
  return bounds;
}

void Histogram::record(double value) {
  if (std::isnan(value)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  return counts;
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    // The overflow bucket has no upper edge; report its lower edge.
    const double hi = i < bounds_.size() ? bounds_[i] : lo;
    const double frac = counts[i] == 0 ? 0.0
                                       : (rank - before) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  const std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.p50 = h->quantile(0.50);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    s.max_bound = h->bounds().empty() ? 0.0 : h->bounds().back();
    s.bounds = h->bounds();
    s.buckets = h->bucket_counts();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed:
  // instrumentation may fire from detached/worker threads during static
  // teardown; leaking one registry keeps cached handles valid forever.
  return *registry;
}

}  // namespace pfrl::obs
