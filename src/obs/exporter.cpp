#include "obs/exporter.hpp"

#include <cstdio>

#include "obs/run_report.hpp"

namespace pfrl::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our "layer/name" paths
/// map '/' (and anything else exotic) to '_' under a "pfrl_" prefix.
std::string prometheus_name(const std::string& name) {
  std::string out = "pfrl_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void append_double(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out += buf;
}

}  // namespace

std::string prometheus_exposition(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(1024);
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    append_double(out, g.value);
    out += "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size() && i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      out += name + "_bucket{le=\"";
      append_double(out, h.bounds[i]);
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    if (!h.buckets.empty()) cumulative += h.buckets.back();  // overflow bucket
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += name + "_sum ";
    append_double(out, h.sum);
    out += "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string snapshot_json(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(1024);
  out += "{\"schema\":\"pfrl-snapshot/1\",\"counters\":{";
  bool first = true;
  for (const CounterSample& c : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    json_escape_append(out, c.name);
    out += ':' + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSample& g : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    json_escape_append(out, g.name);
    out += ':';
    json_number_append(out, g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSample& h : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    json_escape_append(out, h.name);
    out += ":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":";
    json_number_append(out, h.sum);
    out += ",\"p50\":";
    json_number_append(out, h.p50);
    out += ",\"p95\":";
    json_number_append(out, h.p95);
    out += ",\"p99\":";
    json_number_append(out, h.p99);
    out += ",\"bounds\":[";
    bool inner_first = true;
    for (const double b : h.bounds) {
      if (!inner_first) out += ',';
      inner_first = false;
      json_number_append(out, b);
    }
    out += "],\"buckets\":[";
    inner_first = true;
    for (const std::uint64_t b : h.buckets) {
      if (!inner_first) out += ',';
      inner_first = false;
      out += std::to_string(b);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

TelemetryExporter::TelemetryExporter(TelemetryConfig config) : config_(std::move(config)) {
  listen_fd_ = util::listen_endpoint(config_.endpoint);
  bound_ = util::local_endpoint(listen_fd_.get(), config_.endpoint);
  if (config_.sample_period.count() > 0)
    sampler_ = std::make_unique<TimeSeriesSampler>(config_.sample_period, config_.sample_capacity);
  thread_ = std::thread([this] { serve_loop(); });
}

TelemetryExporter::~TelemetryExporter() { stop(); }

void TelemetryExporter::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (sampler_) sampler_->stop();
}

void TelemetryExporter::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    util::ScopedFd conn = util::accept_connection(listen_fd_.get(), std::chrono::milliseconds(200));
    if (!conn.valid()) continue;  // poll tick: re-check the stop flag
    handle_connection(std::move(conn));
  }
}

void TelemetryExporter::handle_connection(util::ScopedFd fd) {
  std::string request;
  const util::IoResult rc =
      util::read_until(fd.get(), request, "\r\n\r\n", 8192, config_.io_timeout);
  if (rc != util::IoResult::kOk) return;  // slow/garbage client: drop

  // Request line: METHOD SP PATH SP VERSION. Query strings are ignored.
  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  std::string method = sp1 == std::string::npos ? "" : line.substr(0, sp1);
  std::string path =
      sp2 == std::string::npos ? "" : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  int status = 200;
  const char* status_text = "OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status = 405;
    status_text = "Method Not Allowed";
    body = "only GET is served\n";
  } else if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = prometheus_exposition(metrics().snapshot());
  } else if (path == "/snapshot.json") {
    content_type = "application/json";
    body = snapshot_json(metrics().snapshot());
  } else if (path == "/timeseries.json") {
    if (sampler_) {
      content_type = "application/json";
      body = sampler_->to_json();
    } else {
      status = 404;
      status_text = "Not Found";
      body = "sampler disabled\n";
    }
  } else if (path == "/healthz") {
    body = "ok\n";
  } else {
    status = 404;
    status_text = "Not Found";
    body = "routes: /metrics /snapshot.json /timeseries.json /healthz\n";
  }

  std::string response;
  response.reserve(128 + body.size());
  response += "HTTP/1.1 " + std::to_string(status) + " " + status_text + "\r\n";
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  util::write_full(fd.get(), response.data(), response.size(), config_.io_timeout);
  requests_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pfrl::obs
