// Time-series sampler: a background thread that snapshots the metrics
// registry every `period` into a fixed-size ring buffer, giving live
// consumers (the /timeseries.json telemetry route, pfrl_top.py) a short
// rolling history to difference rates from without the process ever
// accumulating unbounded state. Oldest samples are overwritten in place;
// with the defaults (1 s x 512 slots) the ring holds ~8.5 minutes.
//
// Snapshotting takes the registry mutex briefly (same cost as the
// end-of-run snapshot), so sub-100ms periods are for tests, not hot
// production loops.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace pfrl::obs {

class TimeSeriesSampler {
 public:
  struct Sample {
    std::uint64_t t_ms = 0;          // since sampler start (steady clock)
    std::uint64_t wall_unix_ms = 0;  // wall clock at capture
    MetricsSnapshot snapshot;
  };

  /// Starts the sampling thread immediately.
  TimeSeriesSampler(std::chrono::milliseconds period, std::size_t capacity);
  ~TimeSeriesSampler();

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  std::chrono::milliseconds period() const { return period_; }
  std::size_t capacity() const { return capacity_; }

  /// Stops the thread; idempotent. Called by the destructor.
  void stop();

  /// Oldest-first copy of the retained window.
  std::vector<Sample> samples() const;

  /// The whole window as a pfrl-timeseries/1 JSON document.
  std::string to_json() const;

 private:
  void run();

  std::chrono::milliseconds period_;
  std::size_t capacity_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::vector<Sample> ring_;  // ring_[ (head_ + i) % capacity_ ], size_ live
  std::size_t head_ = 0;
  std::size_t size_ = 0;

  std::chrono::steady_clock::time_point start_;
  std::thread thread_;
};

}  // namespace pfrl::obs
