// Run reporter: the learning-telemetry sink that makes a training run
// explain itself after the fact.
//
// A RunReporter owns one run directory:
//   <dir>/manifest.json   — who/what/when: run name, algorithm, seed,
//                           git describe + build flags, config echo,
//                           watchdog thresholds, status, fired alerts;
//   <dir>/learning.jsonl  — one line per communication round with every
//                           client's learning diagnostics (entropy,
//                           approx-KL, clip fraction, explained variance,
//                           grad norms, α, critic losses, staleness) and
//                           the attention-weight row it received;
//   <dir>/summary.json    — written by finalize(): fired alerts + the
//                           caller's TrainingHistory JSON + a metrics/
//                           span snapshot of the obs registry.
//
// The divergence watchdog inspects every recorded round and raises
// alerts for non-finite signals, entropy collapse, approx-KL blowup and
// explained-variance cratering against configurable thresholds. Alerts
// are recorded into the manifest immediately (crash-safe) and, with
// `abort_on_alert`, flip `abort_requested()` so the training loop can
// stop a diverged run instead of burning the remaining episodes.
//
// Layering: obs knows nothing about fed/rl types — callers translate
// their round state into LearningRoundEvent and pass their history as a
// pre-rendered JSON fragment. tools/pfrl_report.py renders a run
// directory into a human-readable report.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/sinks.hpp"

namespace pfrl::obs {

// Minimal JSON building blocks shared by the run reporter, the perf
// record writer, and the fed-layer history serializer.
/// Appends `text` as a quoted, escaped JSON string.
void json_escape_append(std::string& out, std::string_view text);
/// Appends a JSON number; non-finite values become null (JSON has no NaN).
void json_number_append(std::string& out, double value);

/// Identity of a training run, echoed into manifest.json.
struct RunManifest {
  std::string run_name;
  std::string algorithm;
  std::uint64_t seed = 0;
  std::size_t episodes = 0;
  std::size_t clients = 0;
  /// Resume lineage: when this run continued from a checkpoint of an
  /// earlier run, `parent_run_id` names that run (its run_name, or the
  /// checkpoint directory when no parent manifest was found) and
  /// `resumed_round` is the round the continuation started from. Empty /
  /// zero with `resumed == false` for a fresh run.
  bool resumed = false;
  std::string parent_run_id;
  std::uint64_t resumed_round = 0;
  /// Free-form config echo, written as a string→string JSON object
  /// ("table": "3", "preset.0": "Google", ...).
  std::vector<std::pair<std::string, std::string>> config;
};

/// Compile-time build facts for the manifest (git describe and the build
/// type are injected by CMake; the compiler string comes from the
/// translation unit).
struct BuildInfo {
  std::string git_describe;
  std::string build_type;
  std::string compiler;

  static BuildInfo current();
};

/// One client's learning signals for one communication round. Field
/// names mirror rl::UpdateDiagnostics; obs stays independent of rl.
struct ClientRoundDiagnostics {
  int id = 0;
  /// True when the client sat the round out inside a crash window; the
  /// watchdog skips crashed rows (no update happened).
  bool crashed = false;
  std::size_t episodes = 0;
  double mean_reward = 0.0;
  double policy_entropy = 0.0;
  double approx_kl = 0.0;
  double clip_fraction = 0.0;
  double explained_variance = 0.0;
  double policy_grad_norm = 0.0;
  double critic_grad_norm = 0.0;
  double alpha = 1.0;
  double local_critic_loss = 0.0;
  double public_critic_loss = 0.0;
  /// Shared-critic loss right before/after the round's download landed.
  double critic_loss_before = 0.0;
  double critic_loss_after = 0.0;
  std::size_t staleness = 0;
  /// Attention weights this client received from the aggregator this
  /// round (row of Alg. 1's W, Eqs. 18–22); empty when the client did not
  /// participate or the aggregator reports no weights.
  std::vector<double> attention_row;
};

/// One learning.jsonl line.
struct LearningRoundEvent {
  std::uint64_t round = 0;
  std::size_t episodes_done = 0;
  std::vector<ClientRoundDiagnostics> clients;
};

/// Divergence-watchdog thresholds. Entropy and explained-variance checks
/// only start after `warmup_rounds` (both signals are legitimately poor
/// while the critics are cold).
struct WatchdogConfig {
  /// Mean policy entropy below this is flagged as entropy collapse.
  double min_policy_entropy = 1e-3;
  /// Approx-KL above this is flagged as a step-size blowup.
  double max_approx_kl = 1.0;
  /// Explained variance below this (well under "uninformative") is
  /// flagged as cratering.
  double min_explained_variance = -1.0;
  std::size_t warmup_rounds = 3;
  /// When true, any alert flips abort_requested(); the training loop is
  /// expected to stop at the next round boundary.
  bool abort_on_alert = false;
};

struct WatchdogAlert {
  std::uint64_t round = 0;
  int client = 0;
  /// "non_finite" | "entropy_collapse" | "kl_blowup" | "ev_crater".
  std::string kind;
  std::string detail;
};

class RunReporter {
 public:
  /// Creates `dir` (and parents) and writes the initial manifest.json.
  /// Throws std::runtime_error when the directory or files cannot be
  /// created.
  RunReporter(std::string dir, RunManifest manifest, WatchdogConfig watchdog = {});

  /// Finalizes with whatever has been recorded if finalize() was never
  /// called (so an aborted run still leaves a complete manifest).
  ~RunReporter();

  RunReporter(const RunReporter&) = delete;
  RunReporter& operator=(const RunReporter&) = delete;

  const std::string& dir() const { return dir_; }

  /// Appends one learning.jsonl line (flushed immediately, so a crashed
  /// run keeps every completed round) and runs the watchdog over it.
  void record_round(const LearningRoundEvent& event);

  const std::vector<WatchdogAlert>& alerts() const { return alerts_; }
  bool abort_requested() const { return abort_requested_; }
  std::uint64_t rounds_recorded() const { return rounds_recorded_; }

  /// Writes summary.json (alerts + `history_json` + the metrics/span
  /// snapshot in `report`) and rewrites manifest.json with final status.
  /// `history_json` must be a complete JSON value (object) or empty.
  void finalize(const Report& report, std::string_view history_json);
  bool finalized() const { return finalized_; }

  const WatchdogConfig& watchdog() const { return watchdog_; }

 private:
  void write_manifest(const char* status);
  void check_round(const LearningRoundEvent& event);
  void add_alert(std::uint64_t round, int client, const char* kind, std::string detail);

  std::string dir_;
  RunManifest manifest_;
  WatchdogConfig watchdog_;
  BuildInfo build_;
  std::int64_t started_unix_ = 0;
  std::ofstream learning_;
  std::vector<WatchdogAlert> alerts_;
  std::uint64_t rounds_recorded_ = 0;
  bool abort_requested_ = false;
  bool finalized_ = false;
};

}  // namespace pfrl::obs
