#include "obs/perf_record.hpp"

#include <unistd.h>

#include <chrono>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "obs/run_report.hpp"  // shared json_escape_append / json_number_append

namespace pfrl::obs {

namespace {

std::int64_t wall_unix_seconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PerfRecord::PerfRecord(std::string bench_name) : name_(std::move(bench_name)) {
  timestamp_unix_ = wall_unix_seconds();
  host_threads_ = std::thread::hardware_concurrency();
  char host[256] = {0};
  if (::gethostname(host, sizeof(host) - 1) == 0) host_name_ = host;
  git_describe_ = BuildInfo::current().git_describe;
}

void PerfRecord::add(PerfMetric metric) { metrics_.push_back(std::move(metric)); }

void PerfRecord::add(const std::string& name, double value, const std::string& unit) {
  add(PerfMetric{name, value, unit, {}});
}

void PerfRecord::add_report(const Report& report) {
  for (const CounterSample& c : report.metrics.counters)
    add(c.name, static_cast<double>(c.value), "count");
  for (const GaugeSample& g : report.metrics.gauges) add(g.name, g.value, "value");
  for (const HistogramSample& h : report.metrics.histograms) {
    PerfMetric m{h.name + ".p50", h.p50, "us", {}};
    m.extra.emplace_back("p95", h.p95);
    m.extra.emplace_back("p99", h.p99);
    m.extra.emplace_back("count", static_cast<double>(h.count));
    add(std::move(m));
  }
  for (const SpanAggregate& s : report.spans) {
    PerfMetric m{s.name + ".total_ms", s.total_ms(), "ms", {}};
    m.extra.emplace_back("calls", static_cast<double>(s.count));
    m.extra.emplace_back("mean_us", s.mean_us());
    add(std::move(m));
  }
}

std::string PerfRecord::to_json() const {
  std::string out;
  out.reserve(256 + metrics_.size() * 96);
  out += "{\n  \"schema\": \"pfrl-perf/1\",\n  \"name\": ";
  json_escape_append(out, name_);
  out += ",\n  \"timestamp_unix\": " + std::to_string(timestamp_unix_);
  // End stamp at serialization time: a bench's write() happens when the
  // session ends, so start/end bracket the measured run.
  out += ",\n  \"timestamp_end_unix\": " + std::to_string(wall_unix_seconds());
  out += ",\n  \"git_describe\": ";
  json_escape_append(out, git_describe_);
  out += ",\n  \"host\": {\"threads\": " + std::to_string(host_threads_);
  out += ", \"name\": ";
  json_escape_append(out, host_name_);
  out += "}";
  out += ",\n  \"metrics\": [";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const PerfMetric& m = metrics_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    json_escape_append(out, m.name);
    out += ", \"value\": ";
    json_number_append(out, m.value);
    out += ", \"unit\": ";
    json_escape_append(out, m.unit);
    for (const auto& [key, value] : m.extra) {
      out += ", ";
      json_escape_append(out, key);
      out += ": ";
      json_number_append(out, value);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void PerfRecord::write(const std::string& path) const {
  const std::string target = path.empty() ? default_path() : path;
  std::ofstream out(target, std::ios::trunc);
  if (!out.is_open())
    throw std::runtime_error("PerfRecord: cannot open " + target + " for writing");
  out << to_json();
}

}  // namespace pfrl::obs
