// Pluggable outputs for a metrics/trace snapshot:
//  - CSV summary (util/csv.hpp) for machine post-processing,
//  - aligned stderr table (util/table.hpp) for end-of-run eyeballing,
//  - JSONL span streaming lives in obs/trace.hpp (attach a stream path).
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pfrl::obs {

/// Metrics snapshot + span aggregates, gathered at one instant.
struct Report {
  MetricsSnapshot metrics;
  std::vector<SpanAggregate> spans;
};

/// Snapshots the global registry and tracer.
Report capture_report();

/// Long-format CSV: kind,name,count,value,p50,p95,p99 (one row per
/// counter/gauge/histogram/span; unused cells empty).
void write_report_csv(const Report& report, const std::string& path);

/// Renders counters/gauges/histograms/spans as aligned ASCII tables.
std::string render_report(const Report& report);

/// render_report to stderr (end-of-run summary).
void print_report(const Report& report);

}  // namespace pfrl::obs
