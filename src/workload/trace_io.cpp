#include "workload/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "util/csv.hpp"

namespace pfrl::workload {

void save_trace_csv(const Trace& trace, const std::string& path) {
  util::CsvWriter csv(path, {"arrival_time", "vcpus", "memory_gb", "duration", "dataset_id"});
  for (const Task& t : trace)
    csv.row({util::CsvWriter::field(t.arrival_time), std::to_string(t.vcpus),
             util::CsvWriter::field(t.memory_gb), util::CsvWriter::field(t.duration),
             std::to_string(t.dataset_id)});
}

namespace {

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (const char c : line) {
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

double parse_double(const std::string& s, std::size_t line_no, const char* what) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(s, &consumed);
    if (consumed != s.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("trace CSV line " + std::to_string(line_no) + ": bad " +
                                what + " '" + s + "'");
  }
}

long parse_long(const std::string& s, std::size_t line_no, const char* what) {
  long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw std::invalid_argument("trace CSV line " + std::to_string(line_no) + ": bad " +
                                what + " '" + s + "'");
  return v;
}

}  // namespace

Trace load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace_csv: cannot open " + path);

  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  bool header_skipped = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    if (!header_skipped) {
      header_skipped = true;
      if (line.rfind("arrival_time", 0) == 0) continue;  // header row present
    }
    const std::vector<std::string> fields = split_fields(line);
    if (fields.size() != 5)
      throw std::invalid_argument("trace CSV line " + std::to_string(line_no) +
                                  ": expected 5 fields, got " + std::to_string(fields.size()));
    Task t;
    t.arrival_time = parse_double(fields[0], line_no, "arrival_time");
    t.vcpus = static_cast<int>(parse_long(fields[1], line_no, "vcpus"));
    t.memory_gb = parse_double(fields[2], line_no, "memory_gb");
    t.duration = parse_double(fields[3], line_no, "duration");
    t.dataset_id = static_cast<std::uint32_t>(parse_long(fields[4], line_no, "dataset_id"));
    if (t.vcpus < 1 || t.memory_gb <= 0.0 || t.duration <= 0.0 || t.arrival_time < 0.0)
      throw std::invalid_argument("trace CSV line " + std::to_string(line_no) +
                                  ": non-positive task attributes");
    trace.push_back(t);
  }
  normalize(trace);
  return trace;
}

}  // namespace pfrl::workload
