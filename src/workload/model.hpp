// Synthetic workload models.
//
// The paper samples 3500 tasks per client "considering the workload
// datasets as distributions" (§5.1). Since the raw traces are external
// data we cannot ship, each dataset is modeled as a WorkloadModel: request
// size, duration, and arrival-process parameters whose families/parameters
// differ per dataset (see catalog.cpp), reproducing the heterogeneity that
// drives every experiment.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "workload/distribution.hpp"
#include "workload/trace.hpp"

namespace pfrl::workload {

struct WorkloadModel {
  std::string name;
  std::uint32_t dataset_id = 0;

  Distribution vcpu_request;   // continuous; rounded to an int >= 1
  Distribution memory_request; // GB
  Distribution duration;       // seconds

  /// Mean arrivals per hour at the diurnal baseline.
  double arrivals_per_hour = 60.0;
  /// 24 multipliers (hour-of-day) shaping the arrival rate — Fig. 4 shows
  /// visibly different hourly patterns per dataset.
  std::array<double, 24> diurnal_profile{};
  /// Hyper-exponential burstiness: with probability `burst_prob` an
  /// inter-arrival is drawn at `burst_rate_multiplier` times the base rate
  /// (traces like Alibaba's are much burstier than HPC queues).
  double burst_prob = 0.0;
  double burst_rate_multiplier = 1.0;

  /// Seconds per modeled hour. Real traces span days; the simulation
  /// compresses a day so that one episode covers full diurnal variation.
  double seconds_per_hour = 60.0;
};

/// Samples `n_tasks` tasks: arrivals from an inhomogeneous (diurnally
/// modulated, optionally bursty) Poisson process, sizes/durations i.i.d.
/// from the model's distributions. Output is sorted with contiguous ids.
Trace sample_trace(const WorkloadModel& model, std::size_t n_tasks, util::Rng& rng);

/// Flat diurnal profile (all ones).
std::array<double, 24> flat_profile();

/// Office-hours profile: low at night, `peak` multiplier around hour 14.
std::array<double, 24> office_hours_profile(double peak);

/// Batch-queue profile: mild bump overnight (HPC backfill behaviour).
std::array<double, 24> night_batch_profile(double peak);

}  // namespace pfrl::workload
