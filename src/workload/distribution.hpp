// Parameterized scalar distributions.
//
// Each synthetic dataset model (catalog.hpp) is assembled from these; the
// family + parameters differ per dataset, which is what reproduces the
// cross-dataset heterogeneity in Figs. 2–5.
#pragma once

#include <string>

#include "util/rng.hpp"

namespace pfrl::workload {

enum class DistFamily {
  kConstant,    // always p1
  kUniform,     // U[p1, p2]
  kNormal,      // N(p1, p2), clamped
  kLogNormal,   // exp(N(p1, p2))
  kExponential, // rate p1
  kPareto,      // scale p1, shape p2
  kGamma,       // shape p1, scale p2
};

/// A distribution plus hard clamping bounds (real traces have physical
/// caps: a task can't request more than the largest machine).
struct Distribution {
  DistFamily family = DistFamily::kConstant;
  double p1 = 1.0;
  double p2 = 0.0;
  double clamp_lo = 0.0;
  double clamp_hi = 1e18;

  double sample(util::Rng& rng) const;

  /// Analytic mean of the *unclamped* distribution (Pareto with shape <= 1
  /// returns infinity). Used by tests and by arrival-rate calibration.
  double mean_unclamped() const;

  std::string describe() const;
};

Distribution constant(double value);
Distribution uniform_dist(double lo, double hi);
Distribution normal_dist(double mean, double stddev, double lo, double hi);
Distribution lognormal_dist(double mu, double sigma, double lo, double hi);
Distribution exponential_dist(double rate, double lo, double hi);
Distribution pareto_dist(double scale, double shape, double lo, double hi);
Distribution gamma_dist(double shape, double scale, double lo, double hi);

}  // namespace pfrl::workload
