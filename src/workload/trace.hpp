// Task records and trace manipulation (train/test splits, the heterogeneous
// union of §3.1, and the hybrid 20/80 mixes of §5.3).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pfrl::workload {

/// One task as the scheduler sees it on arrival. Resource demands are
/// known on arrival (paper §4.1); the duration is known to the *simulator*
/// but is never put in the observation — the agent only sees per-vCPU
/// completion progress (paper's "the VM could track the task's completion
/// progress").
struct Task {
  std::uint64_t id = 0;
  double arrival_time = 0.0;  // seconds since trace start
  int vcpus = 1;              // requested vCPUs
  double memory_gb = 1.0;     // requested memory
  double duration = 1.0;      // execution time in seconds (ground truth)
  std::uint32_t dataset_id = 0;  // which workload model produced it
};

using Trace = std::vector<Task>;

/// Chronological check used by invariants/tests.
bool is_sorted_by_arrival(const Trace& trace);

/// Sorts by arrival time (stable) and reassigns contiguous ids.
void normalize(Trace& trace);

/// First `fraction` of the tasks (chronological) for training, rest for
/// testing — the paper's 60/40 split.
std::pair<Trace, Trace> split_train_test(const Trace& trace, double fraction);

/// Union of traces; arrival times are kept, tasks re-sorted (the
/// "heter-train"/"heter-test" datasets of §3.1). `per_source_cap` limits
/// how many tasks are taken from each source (0 = all).
Trace combine(std::span<const Trace> traces, std::size_t per_source_cap = 0);

/// §5.3 hybrid test set: keeps `keep_fraction` of `own` (chronological
/// subsample) and fills the rest with uniformly drawn tasks from `others`,
/// re-stamping the drawn tasks onto the kept timeline so the mix stays a
/// valid arrival process of the same total size as `own`.
Trace hybrid_mix(const Trace& own, std::span<const Trace> others, double keep_fraction,
                 util::Rng& rng);

/// Aggregate demand (vcpus * duration) — used to sanity-check that traces
/// are comparable in offered load.
double total_cpu_seconds(const Trace& trace);

}  // namespace pfrl::workload
