// Trace import/export. The models in catalog.hpp are synthetic stand-ins;
// users holding the real cluster traces (Google, Alibaba, ...) can export
// them to this CSV schema and drive every experiment with actual data:
//
//   arrival_time,vcpus,memory_gb,duration,dataset_id
//   0.0,2,4.5,120.0,0
//   1.5,1,2.0,30.0,0
#pragma once

#include <string>

#include "workload/trace.hpp"

namespace pfrl::workload {

/// Writes the trace with a header row.
void save_trace_csv(const Trace& trace, const std::string& path);

/// Parses a CSV written by save_trace_csv (or hand-made with the same
/// columns). Tolerates \r\n endings and blank lines; throws
/// std::runtime_error on I/O failure and std::invalid_argument on a
/// malformed row (with its line number). The result is normalized
/// (sorted by arrival, contiguous ids).
Trace load_trace_csv(const std::string& path);

}  // namespace pfrl::workload
