// Workflow (DAG) workloads — the paper's stated future work ("we plan to
// further explore the application of the proposed algorithm on workflow
// datasets with dependencies").
//
// A Workflow is a job whose tasks are partially ordered: a task becomes
// schedulable only when the job has arrived and all of its predecessors
// have completed. Generation follows the common layered-DAG recipe
// (fork-join / map-reduce shapes): tasks are arranged in layers and each
// non-root task depends on one or more tasks of the previous layer.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/model.hpp"
#include "workload/trace.hpp"

namespace pfrl::workload {

struct WorkflowTask {
  Task task;                       // sizes/duration; arrival set at release
  std::vector<std::size_t> deps;   // indices of predecessors within the job
};

struct Workflow {
  std::uint64_t id = 0;
  double arrival_time = 0.0;       // when the job enters the system
  std::vector<WorkflowTask> tasks;

  std::size_t task_count() const { return tasks.size(); }
};

using WorkflowBatch = std::vector<Workflow>;

struct DagShape {
  std::size_t min_tasks = 4;
  std::size_t max_tasks = 12;
  std::size_t max_width = 4;     // tasks per layer
  double extra_edge_prob = 0.3;  // chance of additional cross edges
};

/// Samples `n_jobs` workflows: job arrivals from the model's arrival
/// process, task sizes/durations from its distributions, structure from
/// `shape`. Every non-root task depends on >= 1 previous-layer task.
WorkflowBatch sample_workflows(const WorkloadModel& model, std::size_t n_jobs,
                               const DagShape& shape, util::Rng& rng);

/// True when every dependency points to an earlier task index (the
/// generator's invariant — sufficient for acyclicity).
bool is_topologically_ordered(const Workflow& workflow);

/// Total tasks across the batch.
std::size_t total_tasks(const WorkflowBatch& batch);

/// Length (sum of durations) of the longest dependency chain — the lower
/// bound on the job's makespan given unlimited resources.
double critical_path(const Workflow& workflow);

}  // namespace pfrl::workload
