#include "workload/model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pfrl::workload {

Trace sample_trace(const WorkloadModel& model, std::size_t n_tasks, util::Rng& rng) {
  if (model.arrivals_per_hour <= 0.0)
    throw std::invalid_argument("sample_trace: arrivals_per_hour must be positive");
  Trace trace;
  trace.reserve(n_tasks);
  double now = 0.0;
  for (std::size_t i = 0; i < n_tasks; ++i) {
    // Rate of the modulated Poisson process at the current simulated hour.
    const auto hour =
        static_cast<std::size_t>(now / model.seconds_per_hour) % model.diurnal_profile.size();
    const double multiplier = std::max(model.diurnal_profile[hour], 1e-3);
    double rate_per_second = model.arrivals_per_hour * multiplier / model.seconds_per_hour;
    if (model.burst_prob > 0.0 && rng.bernoulli(model.burst_prob))
      rate_per_second *= std::max(model.burst_rate_multiplier, 1e-3);
    now += rng.exponential(rate_per_second);

    Task task;
    task.id = i;
    task.arrival_time = now;
    task.vcpus = std::max(1, static_cast<int>(std::lround(model.vcpu_request.sample(rng))));
    task.memory_gb = std::max(0.1, model.memory_request.sample(rng));
    task.duration = std::max(1.0, model.duration.sample(rng));
    task.dataset_id = model.dataset_id;
    trace.push_back(task);
  }
  return trace;
}

std::array<double, 24> flat_profile() {
  std::array<double, 24> p{};
  p.fill(1.0);
  return p;
}

std::array<double, 24> office_hours_profile(double peak) {
  std::array<double, 24> p{};
  for (std::size_t h = 0; h < p.size(); ++h) {
    // Smooth bump centred at 14:00, trough around 02:00.
    const double phase = (static_cast<double>(h) - 14.0) / 24.0 * 2.0 * std::numbers::pi;
    p[h] = 1.0 + (peak - 1.0) * 0.5 * (1.0 + std::cos(phase));
  }
  return p;
}

std::array<double, 24> night_batch_profile(double peak) {
  std::array<double, 24> p{};
  for (std::size_t h = 0; h < p.size(); ++h) {
    const double phase = (static_cast<double>(h) - 2.0) / 24.0 * 2.0 * std::numbers::pi;
    p[h] = 1.0 + (peak - 1.0) * 0.5 * (1.0 + std::cos(phase));
  }
  return p;
}

}  // namespace pfrl::workload
