#include "workload/dag.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pfrl::workload {

WorkflowBatch sample_workflows(const WorkloadModel& model, std::size_t n_jobs,
                               const DagShape& shape, util::Rng& rng) {
  if (shape.min_tasks == 0 || shape.min_tasks > shape.max_tasks || shape.max_width == 0)
    throw std::invalid_argument("sample_workflows: degenerate shape");

  WorkflowBatch batch;
  batch.reserve(n_jobs);
  double now = 0.0;
  for (std::size_t j = 0; j < n_jobs; ++j) {
    // Job arrivals reuse the model's (diurnally modulated) process.
    const auto hour =
        static_cast<std::size_t>(now / model.seconds_per_hour) % model.diurnal_profile.size();
    const double multiplier = std::max(model.diurnal_profile[hour], 1e-3);
    now += rng.exponential(model.arrivals_per_hour * multiplier / model.seconds_per_hour);

    Workflow wf;
    wf.id = j;
    wf.arrival_time = now;
    const auto n_tasks = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(shape.min_tasks),
                        static_cast<std::int64_t>(shape.max_tasks)));

    // Assign tasks to layers of random width.
    std::vector<std::size_t> layer_of;
    std::size_t layer = 0;
    std::size_t produced = 0;
    while (produced < n_tasks) {
      const auto width = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(std::min(shape.max_width, n_tasks - produced))));
      for (std::size_t w = 0; w < width; ++w) layer_of.push_back(layer);
      produced += width;
      ++layer;
    }

    for (std::size_t t = 0; t < n_tasks; ++t) {
      WorkflowTask wt;
      wt.task.id = t;
      wt.task.vcpus = std::max(1, static_cast<int>(std::lround(model.vcpu_request.sample(rng))));
      wt.task.memory_gb = std::max(0.1, model.memory_request.sample(rng));
      wt.task.duration = std::max(1.0, model.duration.sample(rng));
      wt.task.dataset_id = model.dataset_id;

      if (layer_of[t] > 0) {
        // Collect the previous layer's task indices.
        std::vector<std::size_t> previous;
        for (std::size_t p = 0; p < t; ++p)
          if (layer_of[p] + 1 == layer_of[t]) previous.push_back(p);
        // At least one dependency, possibly more.
        const std::size_t first = previous[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(previous.size()) - 1))];
        wt.deps.push_back(first);
        for (const std::size_t p : previous)
          if (p != first && rng.bernoulli(shape.extra_edge_prob)) wt.deps.push_back(p);
        std::sort(wt.deps.begin(), wt.deps.end());
      }
      wf.tasks.push_back(std::move(wt));
    }
    batch.push_back(std::move(wf));
  }
  return batch;
}

bool is_topologically_ordered(const Workflow& workflow) {
  for (std::size_t t = 0; t < workflow.tasks.size(); ++t)
    for (const std::size_t dep : workflow.tasks[t].deps)
      if (dep >= t) return false;
  return true;
}

std::size_t total_tasks(const WorkflowBatch& batch) {
  std::size_t n = 0;
  for (const Workflow& wf : batch) n += wf.task_count();
  return n;
}

double critical_path(const Workflow& workflow) {
  std::vector<double> finish(workflow.tasks.size(), 0.0);
  double best = 0.0;
  for (std::size_t t = 0; t < workflow.tasks.size(); ++t) {
    double start = 0.0;
    for (const std::size_t dep : workflow.tasks[t].deps) start = std::max(start, finish[dep]);
    finish[t] = start + workflow.tasks[t].task.duration;
    best = std::max(best, finish[t]);
  }
  return best;
}

}  // namespace pfrl::workload
