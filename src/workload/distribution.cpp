#include "workload/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace pfrl::workload {

double Distribution::sample(util::Rng& rng) const {
  double v = 0.0;
  switch (family) {
    case DistFamily::kConstant: v = p1; break;
    case DistFamily::kUniform: v = rng.uniform(p1, p2); break;
    case DistFamily::kNormal: v = rng.normal(p1, p2); break;
    case DistFamily::kLogNormal: v = rng.lognormal(p1, p2); break;
    case DistFamily::kExponential: v = rng.exponential(p1); break;
    case DistFamily::kPareto: v = rng.pareto(p1, p2); break;
    case DistFamily::kGamma: v = rng.gamma(p1, p2); break;
  }
  return std::clamp(v, clamp_lo, clamp_hi);
}

double Distribution::mean_unclamped() const {
  switch (family) {
    case DistFamily::kConstant: return p1;
    case DistFamily::kUniform: return 0.5 * (p1 + p2);
    case DistFamily::kNormal: return p1;
    case DistFamily::kLogNormal: return std::exp(p1 + 0.5 * p2 * p2);
    case DistFamily::kExponential: return 1.0 / p1;
    case DistFamily::kPareto:
      return p2 > 1.0 ? p2 * p1 / (p2 - 1.0) : std::numeric_limits<double>::infinity();
    case DistFamily::kGamma: return p1 * p2;
  }
  return 0.0;
}

std::string Distribution::describe() const {
  const char* name = "?";
  switch (family) {
    case DistFamily::kConstant: name = "const"; break;
    case DistFamily::kUniform: name = "uniform"; break;
    case DistFamily::kNormal: name = "normal"; break;
    case DistFamily::kLogNormal: name = "lognormal"; break;
    case DistFamily::kExponential: name = "exponential"; break;
    case DistFamily::kPareto: name = "pareto"; break;
    case DistFamily::kGamma: name = "gamma"; break;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s(%.3g,%.3g)[%.3g,%.3g]", name, p1, p2, clamp_lo, clamp_hi);
  return buf;
}

Distribution constant(double value) {
  return {.family = DistFamily::kConstant, .p1 = value, .p2 = 0.0,
          .clamp_lo = value, .clamp_hi = value};
}

Distribution uniform_dist(double lo, double hi) {
  return {.family = DistFamily::kUniform, .p1 = lo, .p2 = hi, .clamp_lo = lo, .clamp_hi = hi};
}

Distribution normal_dist(double mean, double stddev, double lo, double hi) {
  return {.family = DistFamily::kNormal, .p1 = mean, .p2 = stddev, .clamp_lo = lo, .clamp_hi = hi};
}

Distribution lognormal_dist(double mu, double sigma, double lo, double hi) {
  return {.family = DistFamily::kLogNormal, .p1 = mu, .p2 = sigma, .clamp_lo = lo, .clamp_hi = hi};
}

Distribution exponential_dist(double rate, double lo, double hi) {
  return {.family = DistFamily::kExponential, .p1 = rate, .p2 = 0.0, .clamp_lo = lo, .clamp_hi = hi};
}

Distribution pareto_dist(double scale, double shape, double lo, double hi) {
  return {.family = DistFamily::kPareto, .p1 = scale, .p2 = shape, .clamp_lo = lo, .clamp_hi = hi};
}

Distribution gamma_dist(double shape, double scale, double lo, double hi) {
  return {.family = DistFamily::kGamma, .p1 = shape, .p2 = scale, .clamp_lo = lo, .clamp_hi = hi};
}

}  // namespace pfrl::workload
