#include "workload/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace pfrl::workload {

bool is_sorted_by_arrival(const Trace& trace) {
  return std::is_sorted(trace.begin(), trace.end(),
                        [](const Task& a, const Task& b) { return a.arrival_time < b.arrival_time; });
}

void normalize(Trace& trace) {
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Task& a, const Task& b) { return a.arrival_time < b.arrival_time; });
  for (std::size_t i = 0; i < trace.size(); ++i) trace[i].id = i;
}

std::pair<Trace, Trace> split_train_test(const Trace& trace, double fraction) {
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("split_train_test: fraction outside [0, 1]");
  const auto cut = static_cast<std::size_t>(static_cast<double>(trace.size()) * fraction);
  Trace train(trace.begin(), trace.begin() + static_cast<std::ptrdiff_t>(cut));
  Trace test(trace.begin() + static_cast<std::ptrdiff_t>(cut), trace.end());
  // Re-anchor the test set at t = 0 so both halves are standalone traces.
  if (!test.empty()) {
    const double t0 = test.front().arrival_time;
    for (Task& t : test) t.arrival_time -= t0;
  }
  normalize(train);
  normalize(test);
  return {std::move(train), std::move(test)};
}

Trace combine(std::span<const Trace> traces, std::size_t per_source_cap) {
  Trace out;
  for (const Trace& t : traces) {
    const std::size_t take = per_source_cap == 0 ? t.size() : std::min(per_source_cap, t.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  normalize(out);
  return out;
}

Trace hybrid_mix(const Trace& own, std::span<const Trace> others, double keep_fraction,
                 util::Rng& rng) {
  if (keep_fraction < 0.0 || keep_fraction > 1.0)
    throw std::invalid_argument("hybrid_mix: keep_fraction outside [0, 1]");
  Trace out;
  out.reserve(own.size());
  const auto keep = static_cast<std::size_t>(static_cast<double>(own.size()) * keep_fraction);

  // Chronological subsample of the retained share: every k-th task keeps
  // the original arrival pattern's shape.
  if (keep > 0) {
    const double stride = static_cast<double>(own.size()) / static_cast<double>(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      const auto idx = std::min(own.size() - 1, static_cast<std::size_t>(stride * static_cast<double>(i)));
      out.push_back(own[idx]);
    }
  }

  // Fill the remainder from the other clients' traces, re-stamped onto
  // the own-trace timeline so the arrival process stays plausible.
  const std::size_t fill = own.size() - out.size();
  std::vector<const Task*> pool;
  for (const Trace& t : others)
    for (const Task& task : t) pool.push_back(&task);
  if (fill > 0 && pool.empty())
    throw std::invalid_argument("hybrid_mix: no donor tasks available");
  const double horizon = own.empty() ? 0.0 : own.back().arrival_time;
  for (std::size_t i = 0; i < fill; ++i) {
    Task t = *pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    t.arrival_time = rng.uniform(0.0, horizon);
    out.push_back(t);
  }
  normalize(out);
  return out;
}

double total_cpu_seconds(const Trace& trace) {
  double acc = 0.0;
  for (const Task& t : trace) acc += static_cast<double>(t.vcpus) * t.duration;
  return acc;
}

}  // namespace pfrl::workload
