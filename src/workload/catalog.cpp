#include "workload/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pfrl::workload {

namespace {

// Per-dataset parameters. The families and parameters are chosen to
// reproduce the qualitative heterogeneity the paper documents in
// Figs. 2-5: Google/K8s are swarms of small short tasks with strong
// diurnal peaks and bursts; the Alibaba traces are bursty batch/ML mixes
// with medium requests; the HPC queues are few, large, heavy-tailed,
// long-running jobs; the KVM (Chameleon/OpenStack) clouds sit in between
// with memoryless session-like lifetimes.
std::vector<WorkloadModel> build_catalog() {
  std::vector<WorkloadModel> models;
  models.reserve(kDatasetCount);

  {
    WorkloadModel m;
    m.name = "Google";
    m.dataset_id = static_cast<std::uint32_t>(DatasetId::kGoogle);
    m.vcpu_request = lognormal_dist(1.1, 0.8, 1.0, 24.0);
    m.memory_request = lognormal_dist(1.6, 0.9, 0.2, 62.0);
    m.duration = lognormal_dist(3.0, 1.2, 1.0, 600.0);
    m.arrivals_per_hour = 90.0;
    m.diurnal_profile = office_hours_profile(2.5);
    m.burst_prob = 0.10;
    m.burst_rate_multiplier = 5.0;
    models.push_back(m);
  }
  {
    WorkloadModel m;
    m.name = "Alibaba-2017";
    m.dataset_id = static_cast<std::uint32_t>(DatasetId::kAlibaba2017);
    m.vcpu_request = gamma_dist(2.0, 2.5, 1.0, 32.0);
    m.memory_request = gamma_dist(2.0, 6.0, 0.5, 94.0);
    m.duration = gamma_dist(1.5, 30.0, 1.0, 500.0);
    m.arrivals_per_hour = 120.0;
    m.diurnal_profile = office_hours_profile(3.0);
    m.burst_prob = 0.20;
    m.burst_rate_multiplier = 8.0;
    models.push_back(m);
  }
  {
    WorkloadModel m;
    m.name = "Alibaba-2018";
    m.dataset_id = static_cast<std::uint32_t>(DatasetId::kAlibaba2018);
    m.vcpu_request = lognormal_dist(2.0, 0.7, 1.0, 64.0);
    m.memory_request = lognormal_dist(3.3, 0.8, 1.0, 384.0);
    m.duration = lognormal_dist(4.2, 1.0, 2.0, 900.0);
    m.arrivals_per_hour = 100.0;
    m.diurnal_profile = office_hours_profile(2.2);
    m.burst_prob = 0.15;
    m.burst_rate_multiplier = 6.0;
    models.push_back(m);
  }
  {
    WorkloadModel m;
    m.name = "HPC-KS";
    m.dataset_id = static_cast<std::uint32_t>(DatasetId::kHpcKs);
    m.vcpu_request = uniform_dist(8.0, 40.0);
    m.memory_request = gamma_dist(3.0, 10.0, 2.0, 256.0);
    m.duration = pareto_dist(60.0, 1.6, 10.0, 1200.0);
    m.arrivals_per_hour = 20.0;
    m.diurnal_profile = night_batch_profile(1.8);
    models.push_back(m);
  }
  {
    WorkloadModel m;
    m.name = "HPC-HF";
    m.dataset_id = static_cast<std::uint32_t>(DatasetId::kHpcHf);
    m.vcpu_request = uniform_dist(8.0, 48.0);
    m.memory_request = gamma_dist(4.0, 30.0, 4.0, 488.0);
    m.duration = pareto_dist(90.0, 1.5, 15.0, 1500.0);
    m.arrivals_per_hour = 15.0;
    m.diurnal_profile = night_batch_profile(1.6);
    models.push_back(m);
  }
  {
    WorkloadModel m;
    m.name = "HPC-WZ";
    m.dataset_id = static_cast<std::uint32_t>(DatasetId::kHpcWz);
    m.vcpu_request = normal_dist(20.0, 8.0, 4.0, 40.0);
    m.memory_request = normal_dist(64.0, 24.0, 8.0, 488.0);
    m.duration = gamma_dist(2.0, 120.0, 20.0, 1500.0);
    m.arrivals_per_hour = 12.0;
    m.diurnal_profile = night_batch_profile(1.5);
    models.push_back(m);
  }
  {
    WorkloadModel m;
    m.name = "KVM-2019";
    m.dataset_id = static_cast<std::uint32_t>(DatasetId::kKvm2019);
    m.vcpu_request = uniform_dist(1.0, 24.0);
    m.memory_request = uniform_dist(1.0, 64.0);
    m.duration = exponential_dist(1.0 / 120.0, 5.0, 1500.0);
    m.arrivals_per_hour = 40.0;
    m.diurnal_profile = office_hours_profile(1.5);
    models.push_back(m);
  }
  {
    WorkloadModel m;
    m.name = "KVM-2020";
    m.dataset_id = static_cast<std::uint32_t>(DatasetId::kKvm2020);
    m.vcpu_request = uniform_dist(1.0, 12.0);
    m.memory_request = uniform_dist(1.0, 32.0);
    m.duration = exponential_dist(1.0 / 60.0, 2.0, 900.0);
    m.arrivals_per_hour = 60.0;
    m.diurnal_profile = office_hours_profile(1.7);
    m.burst_prob = 0.05;
    m.burst_rate_multiplier = 3.0;
    models.push_back(m);
  }
  {
    WorkloadModel m;
    m.name = "CERIT-SC";
    m.dataset_id = static_cast<std::uint32_t>(DatasetId::kCeritSc);
    m.vcpu_request = gamma_dist(2.0, 4.0, 1.0, 16.0);
    m.memory_request = gamma_dist(2.0, 8.0, 1.0, 117.0);
    m.duration = lognormal_dist(4.5, 1.5, 5.0, 1500.0);
    m.arrivals_per_hour = 25.0;
    m.diurnal_profile = night_batch_profile(1.4);
    models.push_back(m);
  }
  {
    WorkloadModel m;
    m.name = "K8S";
    m.dataset_id = static_cast<std::uint32_t>(DatasetId::kK8s);
    m.vcpu_request = lognormal_dist(0.6, 0.6, 1.0, 8.0);
    m.memory_request = lognormal_dist(0.2, 0.7, 0.1, 16.0);
    m.duration = exponential_dist(1.0 / 20.0, 1.0, 300.0);
    m.arrivals_per_hour = 200.0;
    m.diurnal_profile = office_hours_profile(2.0);
    m.burst_prob = 0.30;
    m.burst_rate_multiplier = 10.0;
    models.push_back(m);
  }

  return models;
}

double clamped_mean(const Distribution& d) {
  return std::clamp(d.mean_unclamped(), d.clamp_lo, d.clamp_hi);
}

}  // namespace

const std::vector<WorkloadModel>& dataset_catalog() {
  static const std::vector<WorkloadModel> catalog = build_catalog();
  return catalog;
}

const WorkloadModel& dataset_model(DatasetId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= dataset_catalog().size())
    throw std::out_of_range("dataset_model: unknown dataset id");
  return dataset_catalog()[idx];
}

std::string dataset_name(DatasetId id) { return dataset_model(id).name; }

WorkloadModel calibrate_arrivals(WorkloadModel model, double total_vcpus,
                                 double target_utilization) {
  if (total_vcpus <= 0.0 || target_utilization <= 0.0)
    throw std::invalid_argument("calibrate_arrivals: non-positive target");
  const double mean_vcpus = std::max(1.0, clamped_mean(model.vcpu_request));
  const double mean_duration = std::max(1.0, clamped_mean(model.duration));
  // Offered load (vCPU-seconds per second) = rate * vcpus * duration.
  const double rate_per_second = target_utilization * total_vcpus / (mean_vcpus * mean_duration);
  model.arrivals_per_hour = rate_per_second * model.seconds_per_hour;
  return model;
}

const std::vector<Table1Row>& table1_machine_specs() {
  // Verbatim rows of the paper's Table 1 (dataset attribution follows the
  // table's grouping: Chameleon/OpenStack, CERIT K8S/Grid-workers,
  // Alibaba PAI block at the bottom).
  static const std::vector<Table1Row> rows = {
      {"Google", "20~24", "7~62", 6, ""},
      {"KVM-2019", "48", "94~127", 1551, "OpenStack"},
      {"KVM-2020", "40", "62~63", 101, "OpenStack"},
      {"K8S", "128", "512", 20, "Kubernetes"},
      {"CERIT-SC", "8", "64", 18, "Grid-workers"},
      {"CERIT-SC", "8", "117", 33, "Grid-workers"},
      {"CERIT-SC", "16", "117", 113, "Grid-workers"},
      {"HPC-KS", "40", "232~488", 36, ""},
      {"HPC-HF", "40", "944~990", 28, ""},
      {"HPC-WZ", "64", "512", 798, ""},
      {"Alibaba-2017", "96", "512", 497, ""},
      {"Alibaba-2018", "96", "512", 280, "Alibaba PAI"},
      {"Alibaba-2018", "96", "384", 135, "Alibaba PAI"},
      {"Alibaba-2018", "96", "512/384", 104, "Alibaba PAI"},
      {"Alibaba-2018", "96", "512", 83, "Alibaba PAI"},
  };
  return rows;
}

}  // namespace pfrl::workload
