// The ten dataset models used throughout the paper, plus the Table 1
// machine-specification inventory.
//
// Dataset ids are stable and used anywhere a client is bound to a
// workload (Tables 2 and 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/model.hpp"

namespace pfrl::workload {

enum class DatasetId : std::uint32_t {
  kGoogle = 0,
  kAlibaba2017 = 1,
  kAlibaba2018 = 2,
  kHpcKs = 3,
  kHpcHf = 4,
  kHpcWz = 5,
  kKvm2019 = 6,
  kKvm2020 = 7,
  kCeritSc = 8,
  kK8s = 9,
};

constexpr std::size_t kDatasetCount = 10;

/// The model for one dataset.
const WorkloadModel& dataset_model(DatasetId id);

/// All ten, indexed by DatasetId.
const std::vector<WorkloadModel>& dataset_catalog();

std::string dataset_name(DatasetId id);

/// Returns a copy of `model` with arrivals_per_hour set so that the
/// offered CPU load (arrival rate x mean vCPUs x mean duration) is
/// `target_utilization` of `total_vcpus`. This is how client presets keep
/// every cluster moderately loaded regardless of the dataset's shape.
WorkloadModel calibrate_arrivals(WorkloadModel model, double total_vcpus,
                                 double target_utilization);

/// One row of the paper's Table 1 (machine specifications of the source
/// clusters). Values are carried verbatim from the paper.
struct Table1Row {
  std::string dataset;
  std::string cpus;
  std::string memory_gib;
  int nodes = 0;
  std::string platform;
};

const std::vector<Table1Row>& table1_machine_specs();

}  // namespace pfrl::workload
