// Train the full PFRL-DM federation on the paper's 10-client Table 3
// setup (scaled down by default) and compare against a baseline of your
// choice on the held-out test splits.
//
//   ./heterogeneous_federation [--algorithm pfrl-dm|fedavg|mfpo|ppo]
//                              [--episodes N] [--clients N] [--seed S]
#include <cstdio>
#include <string>

#include "core/federation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

pfrl::fed::FedAlgorithm parse_algorithm(const std::string& name) {
  if (name == "pfrl-dm") return pfrl::fed::FedAlgorithm::kPfrlDm;
  if (name == "fedavg") return pfrl::fed::FedAlgorithm::kFedAvg;
  if (name == "mfpo") return pfrl::fed::FedAlgorithm::kMfpo;
  if (name == "ppo") return pfrl::fed::FedAlgorithm::kIndependent;
  throw std::invalid_argument("unknown --algorithm '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfrl;
  const util::Cli cli(argc, argv);

  core::FederationConfig cfg;
  cfg.algorithm = parse_algorithm(cli.get("algorithm", "pfrl-dm"));
  cfg.scale = core::ExperimentScale::quick();
  cfg.scale.episodes = static_cast<std::size_t>(cli.get_int("episodes", 40));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  auto presets = core::table3_clients();
  const auto n_clients = static_cast<std::size_t>(
      cli.get_int("clients", static_cast<std::int64_t>(presets.size())));
  presets.resize(std::min(n_clients, presets.size()));

  std::printf("Training %zu clients with %s for %zu episodes (comm every %zu)\n",
              presets.size(), fed::algorithm_name(cfg.algorithm).c_str(),
              cfg.scale.episodes, cfg.scale.comm_every);

  core::Federation federation(presets, cfg);
  const fed::TrainingHistory history = federation.train();

  const auto curve = history.mean_reward_curve();
  std::printf("\nMean reward across clients:\n");
  for (std::size_t e = 0; e < curve.size(); e += std::max<std::size_t>(1, curve.size() / 10))
    std::printf("  episode %3zu: %9.2f\n", e, curve[e]);
  std::printf("  final:       %9.2f\n", curve.back());
  std::printf("Communication: %.1f KiB up / %.1f KiB down over %zu rounds\n",
              static_cast<double>(history.uplink_bytes) / 1024.0,
              static_cast<double>(history.downlink_bytes) / 1024.0, history.rounds);

  util::TablePrinter table(
      {"client", "dataset", "avg response (s)", "makespan (s)", "utilization", "load balance"});
  for (const core::EvalResult& r : federation.evaluate_on_test_splits()) {
    const auto i = static_cast<std::size_t>(r.client_id);
    table.row({std::to_string(r.client_id),
               workload::dataset_name(federation.preset(i).dataset),
               util::TablePrinter::num(r.metrics.avg_response_time, 2),
               util::TablePrinter::num(r.metrics.makespan, 2),
               util::TablePrinter::num(r.metrics.avg_utilization, 3),
               util::TablePrinter::num(r.metrics.avg_load_balance, 3)});
  }
  std::printf("\nHeld-out test-split evaluation:\n");
  table.print();
  return 0;
}
