// A new cloud provider joins the federation mid-training (the Fig. 20
// scenario): the server hands it ψ_G as a warm start, and its convergence
// is compared against training the same environment from scratch.
//
//   ./new_client_join [--join-at N] [--episodes N] [--seed S]
#include <cstdio>

#include "core/federation.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace pfrl;
  const util::Cli cli(argc, argv);
  const auto join_at = static_cast<std::size_t>(cli.get_int("join-at", 20));
  const auto episodes = static_cast<std::size_t>(cli.get_int("episodes", 40));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  core::FederationConfig cfg;
  cfg.algorithm = fed::FedAlgorithm::kPfrlDm;
  cfg.scale = core::ExperimentScale::quick();
  cfg.scale.episodes = episodes;
  cfg.seed = seed;

  const auto presets = core::table3_clients();
  core::Federation federation(presets, cfg);

  std::printf("Pre-training the federation for %zu episodes...\n", join_at);
  while (federation.trainer().episodes_done() < join_at) federation.trainer().step_round();

  std::printf("New client joins (same environment as client 1) — warm-started from the server.\n");
  const std::size_t joiner = federation.add_client(presets[0]);
  while (federation.trainer().episodes_done() < episodes) federation.trainer().step_round();
  const auto history = federation.trainer().snapshot_history();
  const auto& warm = history.clients[joiner].episode_rewards;

  // Baseline: a cold PPO agent in an identical environment.
  core::FederationConfig cold_cfg = cfg;
  cold_cfg.algorithm = fed::FedAlgorithm::kIndependent;
  cold_cfg.scale.episodes = warm.size();
  core::Federation cold({presets[0]}, cold_cfg);
  const auto cold_history = cold.train();
  const auto& cold_rewards = cold_history.clients[0].episode_rewards;

  std::printf("\n%-10s %14s %14s\n", "episode", "warm (PFRL-DM)", "cold (PPO)");
  for (std::size_t e = 0; e < warm.size(); ++e)
    std::printf("%-10zu %14.2f %14.2f\n", e, warm[e],
                e < cold_rewards.size() ? cold_rewards[e] : 0.0);

  double warm_first = 0.0;
  double cold_first = 0.0;
  const std::size_t first = std::min<std::size_t>(5, warm.size());
  for (std::size_t e = 0; e < first; ++e) {
    warm_first += warm[e] / static_cast<double>(first);
    cold_first += cold_rewards[e] / static_cast<double>(first);
  }
  std::printf("\nMean reward over the first %zu episodes: warm %.2f vs cold %.2f\n", first,
              warm_first, cold_first);
  return 0;
}
