// Quickstart: build a single cloud-scheduling environment from a preset,
// train one PPO agent on it, and report the §5.1 metrics on the held-out
// test split.
//
//   ./quickstart [--episodes N] [--tasks N] [--seed S]
//               [--envs-per-client E]
//               [--checkpoint-dir DIR] [--resume]
//               [--metrics-out FILE] [--trace-out FILE] [--run-dir DIR]
//               [--log-level L]
//
// --envs-per-client E > 1 collects rollouts through the vectorized
// engine: E replicas of the training env stepped in lockstep, policy
// inference batched into one GEMM per step (DESIGN.md "Vectorized
// rollout"). E = 1 is the serial path.
//
// --checkpoint-dir snapshots the full training state (network weights,
// Adam moments, RNG stream, reward curve) after every episode as rotated
// crash-safe v2 containers; --resume restores the newest valid snapshot
// and continues the episode loop bit-identically.
//
// The obs flags mirror the pfrldm CLI: --metrics-out writes a CSV
// snapshot of the nn/rl/env counters at exit, --trace-out streams spans
// as JSONL while training runs, and --run-dir writes a run directory
// (manifest.json + learning.jsonl + summary.json) that
// tools/pfrl_report.py renders into a report.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/presets.hpp"
#include "obs/obs.hpp"
#include "rl/ppo.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/serialization.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pfrl;
  const util::Cli cli(argc, argv);

  util::set_log_level(util::parse_log_level(cli.get("log-level", "info")));
  const std::string metrics_out = cli.get("metrics-out", "");
  const std::string trace_out = cli.get("trace-out", "");
  const std::string run_dir = cli.get("run-dir", "");
  if (!metrics_out.empty() || !trace_out.empty() || !run_dir.empty()) {
    obs::set_enabled(true);
    if (!trace_out.empty()) obs::tracer().set_stream_path(trace_out);
  }

  core::ExperimentScale scale = core::ExperimentScale::quick();
  scale.episodes = static_cast<std::size_t>(cli.get_int("episodes", 30));
  scale.tasks_per_client = static_cast<std::size_t>(cli.get_int("tasks", 100));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const auto envs_per_client = static_cast<std::size_t>(cli.get_int("envs-per-client", 1));
  if (envs_per_client == 0) {
    std::fprintf(stderr, "--envs-per-client must be at least 1\n");
    return 1;
  }

  // Client 1 of Table 2: Google workload on a small mixed cluster.
  const core::ClientPreset preset = core::table2_clients().front();
  const core::FederationLayout layout = core::layout_for({&preset, 1}, scale);

  const workload::Trace full = core::make_trace(preset, scale, seed);
  auto [train, test] = workload::split_train_test(full, scale.train_fraction);
  std::printf("Sampled %zu tasks from the %s model (%zu train / %zu test)\n", full.size(),
              workload::dataset_name(preset.dataset).c_str(), train.size(), test.size());

  env::SchedulingEnv environment(core::make_env_config(preset, layout, scale), train);
  std::printf("Environment: %zu VMs, state dim %zu, %d actions\n",
              environment.cluster().vm_count(), environment.state_dim(),
              environment.action_count());

  rl::PpoConfig ppo;
  ppo.seed = seed;
  rl::PpoAgent agent(environment.state_dim(), environment.action_count(), ppo);

  // E > 1: rollouts run through the vectorized engine on E replicas of
  // the training env (same config, same trace).
  std::unique_ptr<rl::VecEnv> vec_env;
  if (envs_per_client > 1) {
    std::vector<std::unique_ptr<env::Env>> replicas;
    replicas.reserve(envs_per_client);
    for (std::size_t i = 0; i < envs_per_client; ++i)
      replicas.push_back(std::make_unique<env::SchedulingEnv>(
          core::make_env_config(preset, layout, scale), train));
    vec_env = std::make_unique<rl::VecEnv>(std::move(replicas));
    std::printf("Vectorized rollouts: %zu envs per sweep\n", envs_per_client);
  }

  // With --run-dir, every episode becomes one learning.jsonl "round" for
  // this single local agent; the watchdog screens the diagnostics as they
  // stream.
  std::unique_ptr<obs::RunReporter> reporter;
  if (!run_dir.empty()) {
    obs::RunManifest manifest;
    manifest.run_name = "quickstart";
    manifest.algorithm = "ppo";
    manifest.seed = seed;
    manifest.episodes = scale.episodes;
    manifest.clients = 1;
    manifest.config.emplace_back("dataset", workload::dataset_name(preset.dataset));
    manifest.config.emplace_back("tasks", std::to_string(full.size()));
    reporter = std::make_unique<obs::RunReporter>(run_dir, std::move(manifest));
  }
  std::vector<double> rewards;
  rewards.reserve(scale.episodes);

  // Crash-safe episode-loop checkpoints: agent training state + episode
  // counter + reward curve in one kSingleAgentRun container per episode.
  const std::string checkpoint_dir = cli.get("checkpoint-dir", "");
  std::optional<core::SnapshotDir> snapshots;
  std::size_t start_episode = 0;
  if (!checkpoint_dir.empty()) {
    snapshots.emplace(checkpoint_dir, core::ContentKind::kSingleAgentRun, "episode");
    if (cli.get_bool("resume", false)) {
      if (const auto loaded = snapshots->load_newest_valid()) {
        util::ByteReader reader{std::span<const std::uint8_t>(loaded->payload)};
        agent.load_training_state(reader);
        start_episode = static_cast<std::size_t>(reader.read_u64());
        rewards = reader.read_f64_vector();
        std::printf("Resumed from %s (%zu episodes done)\n", loaded->path.c_str(), start_episode);
      } else {
        std::printf("No snapshot in %s yet; starting fresh\n", checkpoint_dir.c_str());
      }
    }
  }

  std::printf("\nTraining %zu episodes...\n", scale.episodes);
  for (std::size_t e = start_episode; e < scale.episodes;) {
    // One sweep trains width episodes in lockstep (width = 1 reproduces
    // the serial loop exactly — the sweep IS the serial path then).
    const std::size_t width = vec_env ? std::min(envs_per_client, scale.episodes - e) : 1;
    std::vector<rl::EpisodeStats> batch;
    if (vec_env) {
      batch = agent.train_sweep(*vec_env, width);
    } else {
      batch.push_back(agent.train_episode(environment));
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const rl::EpisodeStats& stats = batch[i];
      const std::size_t episode = e + i;
      rewards.push_back(stats.total_reward);
      if (reporter) {
        obs::LearningRoundEvent event;
        event.round = episode;
        event.episodes_done = episode + 1;
        obs::ClientRoundDiagnostics c;
        c.id = 0;
        c.episodes = 1;
        c.mean_reward = stats.total_reward;
        c.policy_entropy = stats.update.policy_entropy;
        c.approx_kl = stats.update.approx_kl;
        c.clip_fraction = stats.update.clip_fraction;
        c.explained_variance = stats.update.explained_variance;
        c.policy_grad_norm = stats.update.policy_grad_norm;
        c.critic_grad_norm = stats.update.critic_grad_norm;
        c.alpha = stats.update.alpha;
        c.local_critic_loss = stats.update.local_critic_loss;
        c.public_critic_loss = stats.update.public_critic_loss;
        event.clients.push_back(std::move(c));
        reporter->record_round(event);
      }
      if (episode % 5 == 0 || episode + 1 == scale.episodes)
        std::printf(
            "  episode %3zu  reward %9.2f  avg-response %7.2f s  util %4.1f%%  "
            "steps %4zu inval %4zu lazy %3zu\n",
            episode, stats.total_reward, stats.metrics.avg_response_time,
            100.0 * stats.metrics.avg_utilization, stats.metrics.steps,
            stats.metrics.invalid_actions, stats.metrics.lazy_noops);
    }
    e += width;
    if (snapshots) {
      util::ByteWriter writer;
      agent.save_training_state(writer);
      writer.write_u64(static_cast<std::uint64_t>(e));
      writer.write_f64_span(rewards);
      snapshots->write(e, writer.bytes());
    }
  }

  environment.set_trace(test);
  const rl::EpisodeStats eval = agent.evaluate(environment);

  util::TablePrinter table({"metric", "value"});
  table.row({"avg response time (s)", util::TablePrinter::num(eval.metrics.avg_response_time, 2)});
  table.row({"makespan (s)", util::TablePrinter::num(eval.metrics.makespan, 2)});
  table.row({"avg utilization", util::TablePrinter::num(eval.metrics.avg_utilization, 3)});
  table.row({"avg load balance", util::TablePrinter::num(eval.metrics.avg_load_balance, 3)});
  table.row({"completed tasks", std::to_string(eval.metrics.completed_tasks)});
  std::printf("\nGreedy evaluation on the held-out test split:\n");
  table.print();

  if (reporter) {
    std::string history = "{\"rewards\":[";
    for (std::size_t i = 0; i < rewards.size(); ++i) {
      if (i != 0) history += ',';
      obs::json_number_append(history, rewards[i]);
    }
    history += "]}";
    reporter->finalize(obs::capture_report(), history);
    std::printf("\nrun directory written to %s (render: tools/pfrl_report.py %s)\n",
                run_dir.c_str(), run_dir.c_str());
  }
  if (!metrics_out.empty()) {
    obs::write_report_csv(obs::capture_report(), metrics_out);
    std::printf("\nmetrics snapshot written to %s\n", metrics_out.c_str());
  }
  obs::tracer().set_stream_path("");
  return 0;
}
