// The §5.3 generalization scenario: train a federation, then test every
// client on a *hybrid* workload — 20% of its own test tasks, 80% drawn
// from the other nine clients' datasets — simulating workload drift.
//
//   ./hybrid_workload_eval [--keep 0.2] [--episodes N] [--seed S]
#include <cstdio>

#include "core/federation.hpp"
#include "stats/summary.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pfrl;
  const util::Cli cli(argc, argv);
  const double keep = cli.get_double("keep", 0.2);

  core::FederationConfig cfg;
  cfg.algorithm = fed::FedAlgorithm::kPfrlDm;
  cfg.scale = core::ExperimentScale::quick();
  cfg.scale.episodes = static_cast<std::size_t>(cli.get_int("episodes", 40));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  core::Federation federation(core::table3_clients(), cfg);
  std::printf("Training PFRL-DM on 10 heterogeneous clients (%zu episodes)...\n",
              cfg.scale.episodes);
  (void)federation.train();

  std::printf("\nEvaluating on hybrid workloads (keep %.0f%% own, %.0f%% foreign):\n",
              100.0 * keep, 100.0 * (1.0 - keep));
  const auto own = federation.evaluate_on_test_splits();
  const auto hybrid = federation.evaluate_on_hybrid(keep);

  util::TablePrinter table({"client", "dataset", "own response (s)", "hybrid response (s)",
                            "hybrid util", "hybrid load-bal"});
  std::vector<double> hybrid_responses;
  for (std::size_t i = 0; i < hybrid.size(); ++i) {
    hybrid_responses.push_back(hybrid[i].metrics.avg_response_time);
    table.row({std::to_string(i), workload::dataset_name(federation.preset(i).dataset),
               util::TablePrinter::num(own[i].metrics.avg_response_time, 2),
               util::TablePrinter::num(hybrid[i].metrics.avg_response_time, 2),
               util::TablePrinter::num(hybrid[i].metrics.avg_utilization, 3),
               util::TablePrinter::num(hybrid[i].metrics.avg_load_balance, 3)});
  }
  table.print();

  const stats::Summary s = stats::summarize(hybrid_responses);
  std::printf("\nHybrid response time across clients: mean %.2f s, median %.2f s, IQR [%.2f, %.2f]\n",
              s.mean, s.median, s.q25, s.q75);
  return 0;
}
