// Workflow (DAG) scheduling — the paper's future-work extension: train a
// PPO scheduler on dependency-constrained jobs and compare it against the
// classical heuristics on held-out workflows.
//
//   ./workflow_scheduling [--jobs N] [--episodes N] [--seed S]
#include <algorithm>
#include <cstdio>

#include "core/presets.hpp"
#include "env/heuristic_policies.hpp"
#include "env/workflow_env.hpp"
#include "rl/ppo.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pfrl;

namespace {

/// Drives any policy function through a workflow episode.
template <typename PolicyFn>
void run_episode(env::WorkflowEnv& environment, PolicyFn&& policy) {
  environment.reset();
  bool done = false;
  while (!done) done = environment.step(policy(environment)).done;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n_jobs = static_cast<std::size_t>(cli.get_int("jobs", 12));
  const auto episodes = static_cast<std::size_t>(cli.get_int("episodes", 60));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 33));

  core::ExperimentScale scale = core::ExperimentScale::quick();
  const core::ClientPreset preset = core::table2_clients()[0];
  const core::FederationLayout layout = core::layout_for({&preset, 1}, scale);
  env::SchedulingEnvConfig env_cfg = core::make_env_config(preset, layout, scale);

  // Jobs from the Google model, calibrated to the scaled cluster; task
  // sizes clamped to the largest machine like make_trace does.
  workload::WorkloadModel model = workload::calibrate_arrivals(
      workload::dataset_model(preset.dataset),
      sim::total_vcpus(env_cfg.cluster.specs) * scale.cpu_scale, 0.3);
  util::Rng rng(seed);
  workload::DagShape shape;
  shape.min_tasks = 3;
  shape.max_tasks = 8;
  workload::WorkflowBatch train_jobs = workload::sample_workflows(model, n_jobs, shape, rng);
  workload::WorkflowBatch test_jobs = workload::sample_workflows(model, n_jobs, shape, rng);
  const auto clamp_batch = [&](workload::WorkflowBatch& batch) {
    int max_vcpus = 1;
    double max_mem = 1.0;
    for (const sim::MachineSpec& s : env_cfg.cluster.specs) {
      max_vcpus = std::max(max_vcpus, s.vcpus);
      max_mem = std::max(max_mem, s.memory_gb);
    }
    for (workload::Workflow& wf : batch)
      for (workload::WorkflowTask& wt : wf.tasks) {
        wt.task.vcpus = std::clamp((wt.task.vcpus + scale.cpu_scale - 1) / scale.cpu_scale, 1,
                                   max_vcpus);
        wt.task.memory_gb = std::min(wt.task.memory_gb, max_mem);
      }
  };
  clamp_batch(train_jobs);
  clamp_batch(test_jobs);

  std::printf("Training PPO on %zu workflows (%zu tasks) for %zu episodes...\n",
              train_jobs.size(), workload::total_tasks(train_jobs), episodes);
  env::WorkflowEnv environment(env_cfg, train_jobs);
  rl::PpoConfig ppo;
  ppo.seed = seed;
  rl::PpoAgent agent(environment.state_dim(), environment.action_count(), ppo);
  for (std::size_t e = 0; e < episodes; ++e) {
    const rl::EpisodeStats stats = agent.train_episode(environment);
    if (e % 10 == 0)
      std::printf("  episode %3zu  reward %8.2f  job-response %7.2f s\n", e,
                  stats.total_reward, environment.avg_job_response());
  }

  env::WorkflowEnv test_env(env_cfg, test_jobs);
  util::TablePrinter table({"scheduler", "avg job response (s)", "avg task response (s)",
                            "makespan (s)", "load balance"});
  const auto report = [&](const std::string& name) {
    table.row({name, util::TablePrinter::num(test_env.avg_job_response(), 2),
               util::TablePrinter::num(test_env.metrics().avg_response_time, 2),
               util::TablePrinter::num(test_env.metrics().makespan, 2),
               util::TablePrinter::num(test_env.metrics().avg_load_balance, 3)});
  };

  // Persistent observation/mask buffers: the rollout loop reuses them
  // instead of round-tripping through per-step temporaries.
  std::vector<float> obs_buf(test_env.state_dim());
  std::vector<std::uint8_t> mask_buf(static_cast<std::size_t>(test_env.action_count()));
  run_episode(test_env, [&](env::WorkflowEnv& e) {
    e.observe(obs_buf);
    e.valid_actions_into(mask_buf);
    bool any = false;
    for (std::size_t a = 0; a + 1 < mask_buf.size(); ++a) any |= mask_buf[a] != 0;
    if (any) mask_buf.back() = 0;
    return agent.act_greedy_masked(obs_buf, std::span<const std::uint8_t>(mask_buf));
  });
  report("PPO (trained)");

  for (const env::HeuristicPolicy policy :
       {env::HeuristicPolicy::kFirstFit, env::HeuristicPolicy::kBestFit,
        env::HeuristicPolicy::kWorstFit, env::HeuristicPolicy::kRandom}) {
    env::HeuristicScheduler sched(policy, seed);
    (void)sched.run_episode(test_env);
    report(heuristic_name(policy));
  }

  std::printf("\nHeld-out workflow evaluation (%zu jobs):\n", test_jobs.size());
  table.print();
  return 0;
}
