// Classical heuristics (first-fit, best-fit, worst-fit, round-robin,
// random) versus a trained PPO scheduler on the same environment and
// test workload — the sanity anchor for everything else in this repo.
//
//   ./heuristic_vs_rl [--episodes N] [--tasks N] [--seed S]
#include <cstdio>

#include "core/presets.hpp"
#include "env/heuristic_policies.hpp"
#include "rl/ppo.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pfrl;
  const util::Cli cli(argc, argv);

  core::ExperimentScale scale = core::ExperimentScale::quick();
  scale.episodes = static_cast<std::size_t>(cli.get_int("episodes", 60));
  scale.tasks_per_client = static_cast<std::size_t>(cli.get_int("tasks", 150));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));

  const core::ClientPreset preset = core::table2_clients()[1];  // Alibaba-2017
  const core::FederationLayout layout = core::layout_for({&preset, 1}, scale);
  const workload::Trace full = core::make_trace(preset, scale, seed);
  auto [train, test] = workload::split_train_test(full, scale.train_fraction);

  env::SchedulingEnv environment(core::make_env_config(preset, layout, scale), train);

  std::printf("Training PPO for %zu episodes on %zu %s tasks...\n", scale.episodes,
              train.size(), workload::dataset_name(preset.dataset).c_str());
  rl::PpoConfig ppo;
  ppo.seed = seed;
  rl::PpoAgent agent(environment.state_dim(), environment.action_count(), ppo);
  for (std::size_t e = 0; e < scale.episodes; ++e) (void)agent.train_episode(environment);

  util::TablePrinter table(
      {"scheduler", "avg response (s)", "makespan (s)", "utilization", "load balance"});

  environment.set_trace(test);
  const rl::EpisodeStats ppo_eval = agent.evaluate(environment);
  table.row({"PPO (trained)", util::TablePrinter::num(ppo_eval.metrics.avg_response_time, 2),
             util::TablePrinter::num(ppo_eval.metrics.makespan, 2),
             util::TablePrinter::num(ppo_eval.metrics.avg_utilization, 3),
             util::TablePrinter::num(ppo_eval.metrics.avg_load_balance, 3)});

  for (const env::HeuristicPolicy policy :
       {env::HeuristicPolicy::kFirstFit, env::HeuristicPolicy::kBestFit,
        env::HeuristicPolicy::kWorstFit, env::HeuristicPolicy::kRoundRobin,
        env::HeuristicPolicy::kRandom}) {
    env::HeuristicScheduler sched(policy, seed);
    const sim::EpisodeMetrics m = sched.run_episode(environment);
    table.row({heuristic_name(policy), util::TablePrinter::num(m.avg_response_time, 2),
               util::TablePrinter::num(m.makespan, 2),
               util::TablePrinter::num(m.avg_utilization, 3),
               util::TablePrinter::num(m.avg_load_balance, 3)});
  }

  std::printf("\nEvaluation on the held-out test split (%zu tasks):\n", test.size());
  table.print();
  return 0;
}
