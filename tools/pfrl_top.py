#!/usr/bin/env python3
"""Live terminal dashboard for a pfrldm --telemetry-port endpoint.

Polls /snapshot.json (and /timeseries.json when sampling is on) and
renders counters with rates, gauges, and histogram quantiles in place —
`top` for a federation: rounds/s, decisions/s, queue depths, latency
p50/p95/p99, shed/reject rates.

  tools/pfrl_top.py http://127.0.0.1:9464 [--interval 1.0]
  tools/pfrl_top.py http://127.0.0.1:9464 --once     # one frame, no ANSI
  tools/pfrl_top.py http://127.0.0.1:9464 --lint     # check /metrics
                                                     # exposition, exit 0/1

--lint fetches /metrics and validates the Prometheus text exposition
(format 0.0.4): metric-name syntax, parseable sample values, and for
histograms the cumulative bucket invariants (non-decreasing, closed by
le="+Inf" == _count). CI runs this against a live serve-policy process.

Stdlib only — no prometheus client, no curses.
"""

import argparse
import json
import re
import sys
import time
import urllib.error
import urllib.request

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+\d+)?$")


def fetch(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as r:
        return r.read().decode("utf-8", errors="replace")


# --- exposition lint --------------------------------------------------


def lint_exposition(text):
    """Returns (families, samples, errors) for a 0.0.4 text exposition."""
    types = {}
    samples = []  # (name, labels_str, value)
    errors = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append("line %d: malformed TYPE comment" % lineno)
                    continue
                name, kind = parts[2], parts[3]
                if not NAME_RE.match(name):
                    errors.append("line %d: bad metric name %r" % (lineno, name))
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    errors.append("line %d: unknown type %r" % (lineno, kind))
                if name in types:
                    errors.append("line %d: duplicate TYPE for %r" % (lineno, name))
                types[name] = kind
            continue  # HELP / other comments pass through
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append("line %d: unparseable sample %r" % (lineno, line))
            continue
        name, labels, value = m.group(1), m.group(3) or "", m.group(4)
        try:
            val = float(value)
        except ValueError:
            errors.append("line %d: bad value %r" % (lineno, value))
            continue
        samples.append((name, labels, val))

    by_name = {}
    for name, labels, val in samples:
        by_name.setdefault(name, []).append((labels, val))

    for name, kind in types.items():
        if kind == "histogram":
            buckets = by_name.get(name + "_bucket", [])
            les, last = [], None
            for labels, val in buckets:
                lm = re.search(r'le="([^"]*)"', labels)
                if not lm:
                    errors.append("%s_bucket sample without le label" % name)
                    continue
                les.append((lm.group(1), val))
                if last is not None and val < last:
                    errors.append("%s buckets not cumulative" % name)
                last = val
            if not les:
                errors.append("histogram %s has no buckets" % name)
                continue
            if les[-1][0] != "+Inf":
                errors.append("%s buckets not closed by le=\"+Inf\"" % name)
            count = by_name.get(name + "_count")
            if not count:
                errors.append("histogram %s missing _count" % name)
            elif les and count[0][1] != les[-1][1]:
                errors.append("%s: _count %.10g != +Inf bucket %.10g"
                              % (name, count[0][1], les[-1][1]))
            if not by_name.get(name + "_sum"):
                errors.append("histogram %s missing _sum" % name)
        elif kind in ("counter", "gauge"):
            if name not in by_name:
                errors.append("TYPE %s declared but no sample" % name)
    for name in by_name:
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in types and base not in types:
            errors.append("sample %s has no TYPE comment" % name)
    return types, samples, errors


# --- dashboard --------------------------------------------------------


def quantile(bounds, buckets, q):
    """Interpolated quantile from upper-edge bounds + overflow slot,
    mirroring obs::Histogram::quantile."""
    total = sum(buckets)
    if total == 0:
        return 0.0
    rank = q * (total - 1)
    seen = 0
    for i, count in enumerate(buckets):
        if count == 0:
            continue
        if seen + count > rank:
            if i >= len(bounds):  # overflow bucket: report its lower edge
                return bounds[-1] if bounds else 0.0
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i]
            frac = (rank - seen + 1.0) / count
            return lo + (hi - lo) * min(1.0, max(0.0, frac))
        seen += count
    return bounds[-1] if bounds else 0.0


def fmt(v):
    if abs(v) >= 1e6:
        return "%.3gM" % (v / 1e6)
    if abs(v) >= 1e4:
        return "%.3gk" % (v / 1e3)
    return "%.4g" % v


def render(snapshot, prev, dt, url):
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    hists = snapshot.get("histograms", {})
    rates = {}
    if prev and dt > 0:
        for name, val in counters.items():
            rates[name] = max(0.0, (val - prev.get("counters", {}).get(name, 0)) / dt)

    lines = []
    lines.append("pfrl-top — %s — %s" % (url, time.strftime("%H:%M:%S")))
    head = []
    for label, key in (("rounds/s", "fed/rounds"), ("decisions/s", "serve/decisions"),
                       ("episodes/s", "fed/episodes")):
        if key in rates:
            head.append("%s %s" % (label, fmt(rates[key])))
    for name, val in sorted(gauges.items()):
        if "queue" in name:
            head.append("%s %s" % (name, fmt(val)))
    shed = sum(r for n, r in rates.items() if "shed" in n or "reject" in n)
    if any("shed" in n or "reject" in n for n in counters):
        head.append("shed+reject/s %s" % fmt(shed))
    if head:
        lines.append("  " + "   ".join(head))
    lines.append("")

    if counters:
        lines.append("  %-38s %14s %12s" % ("counter", "total", "per-sec"))
        for name, val in sorted(counters.items()):
            lines.append("  %-38s %14s %12s"
                         % (name, fmt(val), fmt(rates[name]) if name in rates else "-"))
        lines.append("")
    if gauges:
        lines.append("  %-38s %14s" % ("gauge", "value"))
        for name, val in sorted(gauges.items()):
            lines.append("  %-38s %14s" % (name, fmt(val)))
        lines.append("")
    if hists:
        lines.append("  %-38s %10s %10s %10s %10s" % ("histogram", "count", "p50", "p95", "p99"))
        for name, h in sorted(hists.items()):
            bounds, buckets = h.get("bounds", []), h.get("buckets", [])
            lines.append("  %-38s %10s %10s %10s %10s"
                         % (name, fmt(h.get("count", 0)),
                            fmt(quantile(bounds, buckets, 0.50)),
                            fmt(quantile(bounds, buckets, 0.95)),
                            fmt(quantile(bounds, buckets, 0.99))))
        lines.append("")
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("url", help="telemetry base URL, e.g. http://127.0.0.1:9464")
    ap.add_argument("--interval", type=float, default=1.0, help="poll period seconds")
    ap.add_argument("--once", action="store_true", help="print one frame and exit")
    ap.add_argument("--lint", action="store_true",
                    help="validate the /metrics exposition and exit")
    args = ap.parse_args()
    base = args.url.rstrip("/")
    if "://" not in base:
        base = "http://" + base

    if args.lint:
        text = fetch(base + "/metrics")
        types, samples, errors = lint_exposition(text)
        for e in errors:
            print("LINT: " + e, file=sys.stderr)
        print("lint %s: %d families, %d samples"
              % ("FAILED" if errors else "OK", len(types), len(samples)))
        return 1 if errors else 0

    prev, prev_t = None, None
    while True:
        try:
            snapshot = json.loads(fetch(base + "/snapshot.json"))
        except (urllib.error.URLError, OSError) as e:
            print("pfrl-top: %s unreachable: %s" % (base, e), file=sys.stderr)
            return 1
        now = time.monotonic()
        frame = render(snapshot, prev, now - (prev_t or now), base)
        if args.once:
            print(frame)
            return 0
        sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n(^C to quit)\n")
        sys.stdout.flush()
        prev, prev_t = snapshot, now
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    sys.exit(main())
