#!/usr/bin/env python3
"""Render a PFRL-DM run directory into a human-readable report.

A run directory is produced by `pfrldm train --run-dir DIR` or
`quickstart --run-dir DIR` and contains:

    manifest.json   run identity, build facts, watchdog config, alerts
    learning.jsonl  one line per round: per-client learning diagnostics
    summary.json    final history + metrics snapshot

Usage:
    tools/pfrl_report.py DIR [--out FILE] [--html]

Markdown goes to stdout by default; --out writes a file; --html wraps the
markdown in a minimal self-contained HTML page (no external assets).
Only the standard library is used. Truncated trailing learning.jsonl
lines (a run killed mid-write) are skipped, matching the C++ parser.
"""

import argparse
import html
import json
import math
import os
import sys

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values, width=60):
    """Renders a numeric series as a unicode sparkline, downsampling to
    `width` buckets by bucket-mean. Non-finite values render as spaces."""
    clean = [v for v in values if v is not None and math.isfinite(v)]
    if not clean:
        return "(no data)"
    if len(values) > width:
        step = len(values) / width
        buckets = []
        for b in range(width):
            chunk = [
                v
                for v in values[int(b * step) : max(int((b + 1) * step), int(b * step) + 1)]
                if v is not None and math.isfinite(v)
            ]
            buckets.append(sum(chunk) / len(chunk) if chunk else None)
        values = buckets
    lo, hi = min(clean), max(clean)
    span = hi - lo
    out = []
    for v in values:
        if v is None or not math.isfinite(v):
            out.append(" ")
        elif span <= 0:
            out.append(SPARK_CHARS[3])
        else:
            idx = int((v - lo) / span * (len(SPARK_CHARS) - 1))
            out.append(SPARK_CHARS[max(0, min(idx, len(SPARK_CHARS) - 1))])
    return "".join(out)


def fmt(value, digits=4):
    if value is None:
        return "nan"
    if isinstance(value, float):
        if not math.isfinite(value):
            return "nan" if math.isnan(value) else "inf"
        return f"{value:.{digits}g}"
    return str(value)


def load_run_dir(run_dir):
    with open(os.path.join(run_dir, "manifest.json"), encoding="utf-8") as f:
        manifest = json.load(f)
    summary = None
    summary_path = os.path.join(run_dir, "summary.json")
    if os.path.exists(summary_path):
        with open(summary_path, encoding="utf-8") as f:
            summary = json.load(f)
    rounds = []
    learning_path = os.path.join(run_dir, "learning.jsonl")
    if os.path.exists(learning_path):
        with open(learning_path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                # A crashed writer leaves a truncated last line; a cut-off
                # numeric field would still parse with a wrong value, so
                # require the closing brace before attempting json.loads.
                if not line.endswith("}"):
                    continue
                try:
                    rounds.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    return manifest, rounds, summary


def client_series(rounds, field):
    """{client_id: [per-round value]}, None-padded for crashed rounds."""
    series = {}
    for r in rounds:
        for c in r.get("clients", []):
            cid = c.get("id", 0)
            value = None if c.get("crashed") else c.get(field)
            series.setdefault(cid, []).append(value)
    return series


def diag_section(lines, rounds):
    lines.append("## Learning diagnostics\n")
    if not rounds:
        lines.append("_No learning.jsonl rounds found._\n")
        return
    diag_fields = [
        ("reward", "Mean reward"),
        ("entropy", "Policy entropy"),
        ("approx_kl", "Approx KL"),
        ("clip_fraction", "Clip fraction"),
        ("explained_variance", "Explained variance"),
        ("policy_grad_norm", "Policy grad L2"),
        ("critic_grad_norm", "Critic grad L2"),
        ("alpha", "α (Eq. 15)"),
        ("local_critic_loss", "Local critic loss"),
        ("public_critic_loss", "Public critic loss"),
    ]
    client_ids = sorted(client_series(rounds, "reward").keys())
    for cid in client_ids:
        lines.append(f"### Client {cid}\n")
        lines.append("| signal | last | trajectory |")
        lines.append("|---|---|---|")
        for field, label in diag_fields:
            values = client_series(rounds, field).get(cid, [])
            finite = [v for v in values if v is not None and math.isfinite(v)]
            last = finite[-1] if finite else None
            lines.append(f"| {label} | {fmt(last)} | `{sparkline(values)}` |")
        lines.append("")


def attention_section(lines, rounds):
    rows = client_series(rounds, "attention")
    has_any = any(any(v for v in values if v) for values in rows.values())
    if not has_any:
        return
    lines.append("## Attention weights (Alg. 1)\n")
    lines.append(
        "Self-weight trajectory per client — how much of each personalized "
        "model came from the client's own upload. The final round's full "
        "row follows.\n"
    )
    lines.append("| client | self-weight | final row |")
    lines.append("|---|---|---|")
    for cid in sorted(rows.keys()):
        # The attention row is ordered by the round's participant list; the
        # self column index isn't recorded per line, so show max weight as
        # the self proxy (attention is strongly diagonal in practice) and
        # print the full final row for exact reading.
        traj = [max(v) if v else None for v in rows[cid]]
        final = next((v for v in reversed(rows[cid]) if v), None)
        final_txt = "—" if final is None else "[" + ", ".join(fmt(w, 3) for w in final) + "]"
        lines.append(f"| {cid} | `{sparkline(traj)}` | {final_txt} |")
    lines.append("")


def alerts_section(lines, manifest):
    alerts = manifest.get("alerts", [])
    lines.append("## Watchdog\n")
    wd = manifest.get("watchdog", {})
    lines.append(
        f"Thresholds: entropy ≥ {fmt(wd.get('min_policy_entropy'))}, "
        f"KL ≤ {fmt(wd.get('max_approx_kl'))}, "
        f"explained variance ≥ {fmt(wd.get('min_explained_variance'))}, "
        f"warmup {wd.get('warmup_rounds', '?')} rounds, "
        f"abort: {wd.get('abort_on_alert', False)}.\n"
    )
    if not alerts:
        lines.append("No alerts fired. ✅\n")
        return
    lines.append(f"**{len(alerts)} alert(s) fired:**\n")
    lines.append("| round | client | kind | detail |")
    lines.append("|---|---|---|---|")
    for a in alerts:
        lines.append(
            f"| {a.get('round')} | {a.get('client')} | {a.get('kind')} | {a.get('detail')} |"
        )
    lines.append("")


def history_section(lines, summary):
    history = (summary or {}).get("history")
    if not isinstance(history, dict):
        return
    curve = history.get("mean_reward_curve") or history.get("rewards")
    if curve:
        lines.append("## Reward curve\n")
        finite = [v for v in curve if v is not None and math.isfinite(v)]
        lines.append(f"`{sparkline(curve)}`\n")
        if finite:
            lines.append(
                f"{len(curve)} episodes; first {fmt(finite[0])}, "
                f"best {fmt(max(finite))}, final {fmt(finite[-1])}.\n"
            )
    faults = history.get("faults")
    server = history.get("server")
    clients = history.get("clients", [])
    if faults is not None and any(faults.values()):
        lines.append("## Fault counters\n")
        lines.append("| fault | count |")
        lines.append("|---|---|")
        for key, value in faults.items():
            lines.append(f"| {key} | {value} |")
        lines.append("")
    if server is not None and (server.get("rejected", 0) or server.get("quorum_failures", 0)):
        lines.append("## Server validation\n")
        lines.append("| outcome | count |")
        lines.append("|---|---|")
        for key, value in server.items():
            lines.append(f"| {key} | {value} |")
        lines.append("")
    if clients and any(
        c.get("rounds_crashed", 0) or c.get("max_staleness", 0) or c.get("downloads_rejected", 0)
        for c in clients
    ):
        lines.append("## Client fault accounting\n")
        lines.append("| client | crashed rounds | max staleness | downloads rejected |")
        lines.append("|---|---|---|---|")
        for i, c in enumerate(clients):
            lines.append(
                f"| {i} | {c.get('rounds_crashed', 0)} | {c.get('max_staleness', 0)} "
                f"| {c.get('downloads_rejected', 0)} |"
            )
        lines.append("")


def render_markdown(manifest, rounds, summary):
    lines = []
    name = manifest.get("name", "run")
    lines.append(f"# Run report: {name}\n")
    build = manifest.get("build", {})
    lines.append("| | |")
    lines.append("|---|---|")
    lines.append(f"| algorithm | {manifest.get('algorithm', '?')} |")
    lines.append(f"| status | **{manifest.get('status', '?')}** |")
    lines.append(f"| seed | {manifest.get('seed', '?')} |")
    lines.append(f"| episodes | {manifest.get('episodes', '?')} |")
    lines.append(f"| clients | {manifest.get('clients', '?')} |")
    lines.append(f"| rounds recorded | {manifest.get('rounds_recorded', '?')} |")
    lines.append(f"| git | {build.get('git_describe', '?')} |")
    lines.append(f"| build | {build.get('build_type', '?')}, {build.get('compiler', '?')} |")
    config = manifest.get("config", {})
    if config:
        lines.append(
            "| config | " + ", ".join(f"{k}={v}" for k, v in sorted(config.items())) + " |"
        )
    lines.append("")
    alerts_section(lines, manifest)
    history_section(lines, summary)
    diag_section(lines, rounds)
    attention_section(lines, rounds)
    metrics = (summary or {}).get("metrics", {})
    spans = metrics.get("spans", [])
    if spans:
        lines.append("## Time breakdown (spans)\n")
        lines.append("| span | calls | total (ms) | mean (µs) |")
        lines.append("|---|---|---|---|")
        for s in sorted(spans, key=lambda x: -(x.get("total_ms") or 0)):
            lines.append(
                f"| {s.get('name')} | {s.get('calls')} | {fmt(s.get('total_ms'), 5)} "
                f"| {fmt(s.get('mean_us'), 5)} |"
            )
        lines.append("")
    return "\n".join(lines) + "\n"


HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
       max-width: 72rem; margin: 2rem auto; padding: 0 1rem; color: #1a1a2e; }}
pre {{ background: #f6f8fa; padding: 1rem; overflow-x: auto;
      font-size: 0.9rem; line-height: 1.5; }}
</style></head>
<body><pre>{body}</pre></body></html>
"""


def main(argv=None):
    parser = argparse.ArgumentParser(description="Render a PFRL-DM run directory")
    parser.add_argument("run_dir", help="directory written by --run-dir")
    parser.add_argument("--out", default="", help="output file (default: stdout)")
    parser.add_argument("--html", action="store_true", help="emit a self-contained HTML page")
    args = parser.parse_args(argv)

    if not os.path.isfile(os.path.join(args.run_dir, "manifest.json")):
        print(f"error: {args.run_dir} has no manifest.json", file=sys.stderr)
        return 2
    manifest, rounds, summary = load_run_dir(args.run_dir)
    report = render_markdown(manifest, rounds, summary)
    if args.html:
        report = HTML_TEMPLATE.format(
            title=html.escape(manifest.get("name", "run report")),
            body=html.escape(report),
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(report)
        print(f"report written to {args.out}")
    else:
        sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
