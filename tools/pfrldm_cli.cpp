// pfrldm — command-line front end for the library.
//
//   pfrldm datasets
//       List the built-in workload models.
//   pfrldm trace --dataset Google --tasks 500 --out trace.csv [--seed S]
//       Sample a synthetic trace to CSV (the same schema load_trace_csv
//       reads, so real traces can be swapped in).
//   pfrldm inspect --in trace.csv
//       Summary statistics of a trace file.
//   pfrldm train --algorithm pfrl-dm --table 3 [--episodes N] [--seed S]
//                [--checkpoint DIR] [--full]
//       Train a federation and optionally persist it.
//   pfrldm evaluate --algorithm pfrl-dm --table 3 --checkpoint DIR
//                   [--hybrid 0.2]
//       Restore a federation and evaluate on held-out / hybrid workloads.
//   pfrldm serve  --listen unix:/tmp/fed.sock --algorithm pfrl-dm --table 3
//       Run the federated server of a multi-process federation.
//   pfrldm client --connect unix:/tmp/fed.sock --index 0 ...
//       Run one federated client process (same config flags as serve).
//   pfrldm serve-policy --checkpoint DIR [--client I] [--snapshot-dir DIR]
//       Serve scheduling decisions from a trained policy to simulated
//       tenants (in-process load generator); --snapshot-dir hot-swaps in
//       new policy generations while serving.
//
// Global options (any command): --log-level debug|info|warn|error|off,
// --metrics-out FILE (CSV metrics snapshot at exit), --trace-out FILE
// (JSONL span stream), --report (observability table on stderr),
// --telemetry-port N (live HTTP endpoint: /metrics, /snapshot.json,
// /timeseries.json, /healthz). Giving any of these arms the obs layer.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/federation.hpp"
#include "core/net_federation.hpp"
#include "obs/obs.hpp"
#include "serve/load_gen.hpp"
#include "serve/policy_server.hpp"
#include "stats/summary.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/net.hpp"
#include "util/table.hpp"
#include "workload/trace_io.hpp"

using namespace pfrl;

namespace {

/// Flipped by SIGINT/SIGTERM (installed once in main for every command);
/// long-running loops — FedTrainer round boundaries, the net-fed
/// server/client — poll it and wind down cleanly. The handler also pokes
/// the self-pipe so ObsScope's flush thread makes --metrics-out durable
/// the moment the signal lands, then resets to the default action: a
/// second ^C force-kills a wedged run.
std::atomic<bool> g_stop_requested{false};
int g_signal_pipe[2] = {-1, -1};
std::atomic<int> g_signal_pipe_wr{-1};

void handle_stop_signal(int sig) {
  g_stop_requested.store(true, std::memory_order_relaxed);
  const int fd = g_signal_pipe_wr.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    (void)::write(fd, &byte, 1);  // async-signal-safe wakeup
  }
  std::signal(sig, SIG_DFL);
}

int usage() {
  std::printf(
      "usage: pfrldm <command> [options]\n"
      "  datasets                              list workload models\n"
      "  trace    --dataset NAME --tasks N --out FILE [--seed S]\n"
      "  inspect  --in FILE\n"
      "  train    --algorithm ALG --table 2|3 [--episodes N] [--seed S]\n"
      "           [--envs-per-client E] [--checkpoint DIR] [--full]\n"
      "           [--checkpoint-dir DIR [--checkpoint-every N] [--resume]]\n"
      "  evaluate --algorithm ALG --table 2|3 --checkpoint DIR [--hybrid F]\n"
      "  serve    --listen EP [--algorithm ALG --table 2|3 --episodes N --seed S]\n"
      "           [--round-deadline-ms N] [--join-timeout-ms N]\n"
      "           [--min-participants N] [--manifest-dir DIR] [--summary-out FILE]\n"
      "  client   --connect EP --index I [--algorithm ALG --table 2|3 ...]\n"
      "           [--checkpoint-dir DIR [--checkpoint-every N] [--resume]]\n"
      "           [--connect-deadline-ms N] [--download-deadline-ms N]\n"
      "           [--idle-timeout-ms N] [--result-out FILE]\n"
      "  serve-policy [--checkpoint DIR] [--client I] [--algorithm ALG --table 2|3]\n"
      "           [--snapshot-dir DIR [--snapshot-poll-ms N]]\n"
      "           [--shards N] [--max-batch N] [--queue-capacity N] [--coalesce-us N]\n"
      "           [--tenants N] [--requests N] [--window N] [--summary-out FILE]\n"
      "endpoints: unix:/path/to.sock or host:port (port 0 = ephemeral)\n"
      "algorithms: pfrl-dm fedavg mfpo fedprox fedkl ppo\n"
      "fleet sizing (train / serve / client):\n"
      "  --clients N          resize the fleet to N clients, cycling the\n"
      "                       chosen table's presets when N exceeds it\n"
      "robustness (train / serve / client):\n"
      "  --defense MODE       off|clip|trimmed|median — Byzantine-robust\n"
      "                       aggregation with anomaly scoring + quarantine\n"
      "  --attack MODE[:F]    inject adversarial uploads from a fraction F\n"
      "                       (default 0.25) of clients: sign-flip, scale,\n"
      "                       gaussian, stale-replay\n"
      "global options:\n"
      "  --log-level LEVEL    debug|info|warn|error|off (default info)\n"
      "  --metrics-out FILE   write a CSV metrics/span snapshot at exit\n"
      "                       (also flushed immediately on SIGINT/SIGTERM)\n"
      "  --trace-out FILE     stream spans as JSONL while running\n"
      "  --report             print the observability tables to stderr\n"
      "  --telemetry-port N   serve live telemetry over HTTP on this TCP\n"
      "                       port (0 = ephemeral; the bound address is\n"
      "                       printed at startup): /metrics (Prometheus\n"
      "                       text), /snapshot.json, /timeseries.json,\n"
      "                       /healthz — watch with tools/pfrl_top.py\n"
      "  --telemetry-bind H   interface for --telemetry-port (default\n"
      "                       127.0.0.1)\n"
      "  --telemetry-sample-ms N\n"
      "                       time-series sampler period (default 1000;\n"
      "                       0 disables /timeseries.json)\n"
      "train options:\n"
      "  --run-dir DIR        write a run directory (manifest.json,\n"
      "                       learning.jsonl, summary.json); render it with\n"
      "                       tools/pfrl_report.py DIR\n"
      "  --watchdog-abort     stop training when the divergence watchdog\n"
      "                       raises an alert\n"
      "  --checkpoint-dir DIR full-state crash-safe checkpoints: rotated\n"
      "                       snapshot generations + federation.json; SIGINT/\n"
      "                       SIGTERM checkpoint-then-stop at a round boundary\n"
      "  --checkpoint-every N snapshot every N rounds (default 1)\n"
      "  --resume             restore the newest valid snapshot from\n"
      "                       --checkpoint-dir and continue bit-identically\n");
  return 2;
}

/// Creates the parent directory of an output path so `--metrics-out
/// runs/a/m.csv` works without a prior mkdir. Throws when creation fails.
void ensure_parent_dir(const std::string& path) {
  if (path.empty()) return;
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec && !std::filesystem::is_directory(parent))
    throw std::runtime_error("cannot create directory " + parent.string() + ": " + ec.message());
}

/// Arms the obs layer from the global flags; flushes sinks at scope exit.
/// With --telemetry-port it also runs the live HTTP exporter for the
/// duration of the command, and (whenever armed) a flush thread parked on
/// the signal self-pipe so a SIGINT/SIGTERM makes --metrics-out durable
/// even if the interrupted command never reaches its graceful exit. The
/// trace stream needs no such treatment: it flushes per span.
class ObsScope {
 public:
  explicit ObsScope(const util::Cli& cli)
      : metrics_out_(cli.get("metrics-out", "")),
        report_(cli.get_bool("report", false)),
        armed_(!metrics_out_.empty() || report_ || cli.has("trace-out") ||
               cli.has("run-dir") || cli.has("telemetry-port")) {
    util::set_log_level(util::parse_log_level(cli.get("log-level", "info")));
    if (!armed_) return;
    obs::set_enabled(true);
    ensure_parent_dir(metrics_out_);
    const std::string trace_out = cli.get("trace-out", "");
    if (!trace_out.empty()) {
      ensure_parent_dir(trace_out);
      obs::tracer().set_stream_path(trace_out);
    }
    if (cli.has("telemetry-port")) {
      obs::TelemetryConfig tcfg;
      tcfg.endpoint.host = cli.get("telemetry-bind", "127.0.0.1");
      tcfg.endpoint.port = static_cast<std::uint16_t>(cli.get_int("telemetry-port", 0));
      tcfg.sample_period = std::chrono::milliseconds(cli.get_int("telemetry-sample-ms", 1000));
      telemetry_ = std::make_unique<obs::TelemetryExporter>(tcfg);
      std::printf("telemetry on http://%s (/metrics /snapshot.json /timeseries.json /healthz)\n",
                  telemetry_->endpoint().describe().c_str());
      std::fflush(stdout);
    }
    if (g_signal_pipe[0] >= 0) {
      flush_thread_ = std::thread([this] {
        char byte = 0;
        while (util::retry_eintr([&] { return ::read(g_signal_pipe[0], &byte, 1); }) > 0)
          write_metrics("stop signal: metrics snapshot flushed to %s\n");
      });
    }
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  ~ObsScope() {
    if (flush_thread_.joinable()) {
      // Retire the handler's write end; EOF on the read end parks the
      // flush thread for joining.
      const int wr = g_signal_pipe_wr.exchange(-1, std::memory_order_relaxed);
      if (wr >= 0) ::close(wr);
      flush_thread_.join();
    }
    if (!armed_) return;
    telemetry_.reset();  // stop serving before the final snapshot
    write_metrics("metrics snapshot written to %s\n");
    if (report_) obs::print_report(obs::capture_report());
    obs::tracer().set_stream_path("");
  }

 private:
  void write_metrics(const char* done_format) {
    if (metrics_out_.empty()) return;
    try {
      obs::write_report_csv(obs::capture_report(), metrics_out_);
      std::fprintf(stderr, done_format, metrics_out_.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: metrics snapshot failed: %s\n", e.what());
    }
  }

  std::string metrics_out_;
  bool report_;
  bool armed_;
  std::unique_ptr<obs::TelemetryExporter> telemetry_;
  std::thread flush_thread_;
};

fed::FedAlgorithm parse_algorithm(const std::string& name) {
  if (name == "pfrl-dm") return fed::FedAlgorithm::kPfrlDm;
  if (name == "fedavg") return fed::FedAlgorithm::kFedAvg;
  if (name == "mfpo") return fed::FedAlgorithm::kMfpo;
  if (name == "fedprox") return fed::FedAlgorithm::kFedProx;
  if (name == "fedkl") return fed::FedAlgorithm::kFedKl;
  if (name == "ppo") return fed::FedAlgorithm::kIndependent;
  throw std::invalid_argument("unknown algorithm '" + name + "'");
}

workload::DatasetId parse_dataset(const std::string& name) {
  for (const workload::WorkloadModel& m : workload::dataset_catalog())
    if (m.name == name) return static_cast<workload::DatasetId>(m.dataset_id);
  throw std::invalid_argument("unknown dataset '" + name + "' (see `pfrldm datasets`)");
}

core::FederationConfig federation_config(const util::Cli& cli) {
  core::FederationConfig cfg;
  cfg.algorithm = parse_algorithm(cli.get("algorithm", "pfrl-dm"));
  if (cli.get_bool("full", false))
    cfg.scale = core::ExperimentScale::paper();
  else if (cli.get_bool("tiny", false))
    cfg.scale = core::ExperimentScale::tiny();  // CI / smoke federations
  else
    cfg.scale = core::ExperimentScale::quick();
  cfg.scale.episodes = static_cast<std::size_t>(
      cli.get_int("episodes", static_cast<std::int64_t>(cfg.scale.episodes)));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cfg.min_participants = static_cast<std::size_t>(cli.get_int("min-participants", 1));
  cfg.envs_per_client = static_cast<std::size_t>(cli.get_int("envs-per-client", 1));
  if (cfg.envs_per_client == 0)
    throw std::invalid_argument("--envs-per-client must be at least 1");
  cfg.defense.mode = fed::parse_defense_mode(cli.get("defense", "off"));
  const std::string attack = cli.get("attack", "");
  if (!attack.empty()) {
    // mode[:fraction], e.g. "sign-flip:0.25". Both serve and client parse
    // the same flag, so attacker identity (derived from fraction × fleet
    // size) agrees across the processes of a networked federation.
    const std::size_t colon = attack.find(':');
    cfg.faults.attack_mode = fed::parse_attack_mode(attack.substr(0, colon));
    cfg.faults.attack_fraction =
        colon == std::string::npos ? 0.25 : std::stod(attack.substr(colon + 1));
    if (cfg.faults.attack_fraction < 0.0 || cfg.faults.attack_fraction > 1.0)
      throw std::invalid_argument("--attack fraction must be in [0, 1]");
  }
  return cfg;
}

std::vector<core::ClientPreset> presets_for(const util::Cli& cli) {
  std::vector<core::ClientPreset> presets =
      cli.get_int("table", 3) == 2 ? core::table2_clients() : core::table3_clients();
  // --clients N shrinks or (cycling the table) grows the fleet — chaos
  // sweeps want more processes than the paper has presets. Every process
  // of a networked federation must agree on N or the arch hash check
  // rejects the handshake.
  const auto n = static_cast<std::size_t>(cli.get_int("clients", 0));
  if (n > 0 && n != presets.size()) {
    const std::size_t base = presets.size();
    presets.resize(n);
    for (std::size_t i = base; i < n; ++i) presets[i] = presets[i % base];
  }
  return presets;
}

int cmd_datasets() {
  util::TablePrinter table({"dataset", "vCPU request", "memory (GB)", "duration (s)"});
  for (const workload::WorkloadModel& m : workload::dataset_catalog())
    table.row({m.name, m.vcpu_request.describe(), m.memory_request.describe(),
               m.duration.describe()});
  table.print();
  return 0;
}

int cmd_trace(const util::Cli& cli) {
  const workload::DatasetId id = parse_dataset(cli.get("dataset", "Google"));
  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks", 500));
  const std::string out = cli.get("out", "trace.csv");
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 42)));
  const workload::Trace trace = workload::sample_trace(workload::dataset_model(id), tasks, rng);
  workload::save_trace_csv(trace, out);
  std::printf("wrote %zu tasks to %s\n", trace.size(), out.c_str());
  return 0;
}

int cmd_inspect(const util::Cli& cli) {
  const std::string in = cli.get("in", "");
  if (in.empty()) return usage();
  const workload::Trace trace = workload::load_trace_csv(in);
  std::vector<double> cpus;
  std::vector<double> mem;
  std::vector<double> durations;
  for (const workload::Task& t : trace) {
    cpus.push_back(t.vcpus);
    mem.push_back(t.memory_gb);
    durations.push_back(t.duration);
  }
  util::TablePrinter table({"attribute", "mean", "median", "min", "max"});
  const auto row = [&](const char* name, const std::vector<double>& v) {
    const stats::Summary s = stats::summarize(v);
    table.row({name, util::TablePrinter::num(s.mean, 2), util::TablePrinter::num(s.median, 2),
               util::TablePrinter::num(s.min, 2), util::TablePrinter::num(s.max, 2)});
  };
  std::printf("%zu tasks, horizon %.1f s\n", trace.size(),
              trace.empty() ? 0.0 : trace.back().arrival_time);
  row("vcpus", cpus);
  row("memory_gb", mem);
  row("duration_s", durations);
  table.print();
  return 0;
}

void print_eval(const char* title, core::Federation& federation,
                const std::vector<core::EvalResult>& results) {
  std::printf("\n%s\n", title);
  util::TablePrinter table(
      {"client", "dataset", "avg response (s)", "makespan (s)", "utilization", "load bal"});
  for (const core::EvalResult& r : results) {
    const auto i = static_cast<std::size_t>(r.client_id);
    table.row({std::to_string(r.client_id),
               workload::dataset_name(federation.preset(i).dataset),
               util::TablePrinter::num(r.metrics.avg_response_time, 2),
               util::TablePrinter::num(r.metrics.makespan, 2),
               util::TablePrinter::num(r.metrics.avg_utilization, 3),
               util::TablePrinter::num(r.metrics.avg_load_balance, 3)});
  }
  table.print();
}

/// Lineage note the CLI leaves beside the snapshots: the run_name of the
/// last run that checkpointed here, so a later --resume can name its
/// parent in manifest.json instead of just pointing at the directory.
std::string lineage_path(const std::string& checkpoint_dir) {
  return (std::filesystem::path(checkpoint_dir) / "last_run").string();
}

std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) return line;
  return {};
}

std::unique_ptr<obs::RunReporter> make_run_reporter(const util::Cli& cli,
                                                    const core::Federation& federation,
                                                    const std::string& checkpoint_dir,
                                                    const std::optional<core::ResumeInfo>& resumed) {
  const std::string run_dir = cli.get("run-dir", "");
  if (run_dir.empty()) return nullptr;
  const core::FederationConfig& cfg = federation.config();
  obs::RunManifest manifest;
  manifest.run_name = std::filesystem::path(run_dir).filename().string();
  if (manifest.run_name.empty()) manifest.run_name = "train";
  manifest.algorithm = fed::algorithm_name(cfg.algorithm);
  manifest.seed = cfg.seed;
  manifest.episodes = cfg.scale.episodes;
  manifest.clients = federation.client_count();
  if (resumed) {
    manifest.resumed = true;
    manifest.parent_run_id = read_first_line(lineage_path(checkpoint_dir));
    if (manifest.parent_run_id.empty()) manifest.parent_run_id = checkpoint_dir;
    manifest.resumed_round = resumed->round;
  }
  manifest.config.emplace_back("table", cli.get("table", "3"));
  manifest.config.emplace_back("comm_every", std::to_string(cfg.scale.comm_every));
  manifest.config.emplace_back("tasks_per_client", std::to_string(cfg.scale.tasks_per_client));
  manifest.config.emplace_back("participants_per_round",
                               std::to_string(cfg.participants_per_round));
  manifest.config.emplace_back("min_participants", std::to_string(cfg.min_participants));
  manifest.config.emplace_back("envs_per_client", std::to_string(cfg.envs_per_client));
  manifest.config.emplace_back("defense", fed::defense_mode_name(cfg.defense.mode));
  manifest.config.emplace_back("attack", fed::attack_mode_name(cfg.faults.attack_mode));
  manifest.config.emplace_back("attack_fraction", std::to_string(cfg.faults.attack_fraction));
  for (std::size_t i = 0; i < federation.client_count(); ++i)
    manifest.config.emplace_back("preset." + std::to_string(i),
                                 workload::dataset_name(federation.preset(i).dataset));
  obs::WatchdogConfig watchdog;
  watchdog.abort_on_alert = cli.get_bool("watchdog-abort", false);
  return std::make_unique<obs::RunReporter>(run_dir, std::move(manifest), watchdog);
}

int cmd_train(const util::Cli& cli) {
  core::Federation federation(presets_for(cli), federation_config(cli));
  fed::FedTrainer& trainer = federation.trainer();
  std::printf("training %zu clients with %s...\n", federation.client_count(),
              fed::algorithm_name(federation.config().algorithm).c_str());

  const std::string checkpoint_dir = cli.get("checkpoint-dir", "");
  if (checkpoint_dir.empty() && cli.get_bool("resume", false))
    throw std::invalid_argument("--resume requires --checkpoint-dir");
  std::optional<core::CheckpointManager> checkpoints;
  std::optional<core::ResumeInfo> resumed;
  if (!checkpoint_dir.empty()) {
    checkpoints.emplace(checkpoint_dir);
    if (cli.get_bool("resume", false)) {
      resumed = checkpoints->try_resume(trainer);
      if (resumed)
        std::printf("resumed from %s at round %llu (%zu episodes done)\n", checkpoint_dir.c_str(),
                    static_cast<unsigned long long>(resumed->round), resumed->episodes_done);
      else
        std::printf("no snapshot in %s yet; starting fresh\n", checkpoint_dir.c_str());
    }
    trainer.set_checkpoint_every(static_cast<std::size_t>(cli.get_int("checkpoint-every", 1)));
    checkpoints->attach(trainer);
  }
  // Stop-at-round-boundary on ^C regardless of checkpointing; with
  // --checkpoint-dir the attached manager also snapshots before exit.
  trainer.set_stop_flag(&g_stop_requested);

  const std::unique_ptr<obs::RunReporter> reporter =
      make_run_reporter(cli, federation, checkpoint_dir, resumed);
  if (reporter) federation.trainer().set_reporter(reporter.get());
  if (checkpoints && reporter) {
    // Leave the lineage note for a future --resume of this directory.
    std::filesystem::create_directories(checkpoint_dir);
    std::ofstream lineage(lineage_path(checkpoint_dir));
    lineage << std::filesystem::path(reporter->dir()).filename().string() << "\n";
  }
  const fed::TrainingHistory history = federation.train();
  if (reporter) {
    federation.trainer().set_reporter(nullptr);
    reporter->finalize(obs::capture_report(), fed::training_history_json(history));
    std::printf("run directory written to %s (render: tools/pfrl_report.py %s)\n",
                reporter->dir().c_str(), reporter->dir().c_str());
    for (const obs::WatchdogAlert& a : reporter->alerts())
      std::fprintf(stderr, "watchdog alert: round %llu client %d %s: %s\n",
                   static_cast<unsigned long long>(a.round), a.client, a.kind.c_str(),
                   a.detail.c_str());
  }
  const std::string history_out = cli.get("history-out", "");
  if (!history_out.empty()) {
    ensure_parent_dir(history_out);
    std::ofstream out(history_out);
    out << fed::training_history_json(history) << "\n";
    if (!out) throw std::runtime_error("cannot write " + history_out);
    std::printf("training history written to %s\n", history_out.c_str());
  }
  const auto curve = history.mean_reward_curve();
  std::printf("episodes %zu, rounds %zu, final mean reward %.2f, uplink %.1f KiB\n",
              curve.size(), history.rounds, curve.empty() ? 0.0 : curve.back(),
              static_cast<double>(history.uplink_bytes) / 1024.0);
  print_eval("held-out test splits:", federation, federation.evaluate_on_test_splits());
  const std::string checkpoint = cli.get("checkpoint", "");
  if (!checkpoint.empty()) {
    core::save_federation(federation.trainer(), checkpoint);
    std::printf("\ncheckpoint written to %s\n", checkpoint.c_str());
  }
  return 0;
}

void write_json_file(const std::string& path, const std::string& json) {
  if (path.empty()) return;
  ensure_parent_dir(path);
  std::ofstream out(path);
  out << json << "\n";
  if (!out) throw std::runtime_error("cannot write " + path);
}

std::chrono::milliseconds cli_ms(const util::Cli& cli, const char* flag, std::int64_t fallback) {
  return std::chrono::milliseconds(cli.get_int(flag, fallback));
}

fed::TransportConfig transport_config(const util::Cli& cli) {
  fed::TransportConfig cfg;
  cfg.retry.max_attempts = static_cast<std::uint32_t>(cli.get_int("retry-max", 5));
  cfg.send_deadline = cli_ms(cli, "send-deadline-ms", cfg.send_deadline.count());
  cfg.heartbeat_interval = cli_ms(cli, "heartbeat-ms", cfg.heartbeat_interval.count());
  cfg.liveness_timeout = std::max(cfg.liveness_timeout, 5 * cfg.heartbeat_interval);
  return cfg;
}

int cmd_serve(const util::Cli& cli) {
  const std::string listen = cli.get("listen", "");
  if (listen.empty()) return usage();
  core::NetFedServerConfig cfg;
  cfg.federation = federation_config(cli);
  cfg.presets = presets_for(cli);
  cfg.listen = util::parse_endpoint(listen);
  cfg.transport = transport_config(cli);
  cfg.round_deadline = cli_ms(cli, "round-deadline-ms", cfg.round_deadline.count());
  cfg.join_timeout = cli_ms(cli, "join-timeout-ms", cfg.join_timeout.count());
  cfg.manifest_dir = cli.get("manifest-dir", "");

  core::NetFedServer server(std::move(cfg));
  server.set_stop_flag(&g_stop_requested);
  std::printf("serving %zu clients on %s (arch hash %llx)\n", presets_for(cli).size(),
              server.endpoint().describe().c_str(),
              static_cast<unsigned long long>(server.expected_arch_hash()));
  std::fflush(stdout);

  const core::NetFedServer::Summary summary = server.run();
  const std::string json = core::NetFedServer::summary_json(summary);
  write_json_file(cli.get("summary-out", ""), json);
  std::printf("%s\n", json.c_str());
  if (!summary.error.empty()) {
    std::fprintf(stderr, "error: %s\n", summary.error.c_str());
    return 1;
  }
  return summary.completed ? 0 : 1;
}

int cmd_client(const util::Cli& cli) {
  const std::string connect = cli.get("connect", "");
  if (connect.empty() || !cli.has("index")) return usage();
  core::NetFedClientConfig cfg;
  cfg.federation = federation_config(cli);
  cfg.presets = presets_for(cli);
  cfg.index = static_cast<std::size_t>(cli.get_int("index", 0));
  cfg.endpoint = util::parse_endpoint(connect);
  cfg.transport = transport_config(cli);
  cfg.checkpoint_dir = cli.get("checkpoint-dir", "");
  cfg.checkpoint_every = static_cast<std::size_t>(cli.get_int("checkpoint-every", 1));
  cfg.resume = cli.get_bool("resume", false);
  cfg.connect_deadline = cli_ms(cli, "connect-deadline-ms", cfg.connect_deadline.count());
  cfg.download_deadline = cli_ms(cli, "download-deadline-ms", cfg.download_deadline.count());
  cfg.idle_timeout = cli_ms(cli, "idle-timeout-ms", cfg.idle_timeout.count());
  cfg.exit_after_rounds = static_cast<std::uint64_t>(cli.get_int("exit-after-rounds", 0));

  core::NetFedClient client(std::move(cfg));
  client.set_stop_flag(&g_stop_requested);

  const core::NetFedClient::Result result = client.run();
  const std::string json = core::NetFedClient::result_json(result);
  write_json_file(cli.get("result-out", ""), json);
  std::printf("%s\n", json.c_str());
  if (!result.error.empty()) {
    std::fprintf(stderr, "error: %s\n", result.error.c_str());
    return 1;
  }
  return result.completed ? 0 : 1;
}

/// `serve-policy`: load a trained policy and answer placement requests
/// from simulated tenants (the in-process load generator). With
/// --snapshot-dir the server hot-swaps new policy generations mid-serve —
/// point it at a directory a trainer is writing policy snapshots into.
int cmd_serve_policy(const util::Cli& cli) {
  // Rebuild client `index` exactly as training did, so the agent's
  // architecture matches the checkpoint bit for bit.
  const auto index = static_cast<std::size_t>(cli.get_int("client", 0));
  const std::vector<core::ClientPreset> presets = presets_for(cli);
  if (index >= presets.size())
    throw std::invalid_argument("--client " + std::to_string(index) + " out of range (" +
                                std::to_string(presets.size()) + " presets)");
  core::SingleClientBuild build = core::build_single_client(presets, federation_config(cli), index);
  rl::PpoAgent& agent = build.client->agent();
  const std::string checkpoint = cli.get("checkpoint", "");
  if (!checkpoint.empty()) {
    const std::string path =
        (std::filesystem::path(checkpoint) / ("client_" + std::to_string(index) + ".ckpt"))
            .string();
    core::load_agent(agent, path);
    std::printf("loaded policy from %s\n", path.c_str());
  }

  serve::PolicyServerConfig server_cfg;
  server_cfg.shards = static_cast<std::size_t>(cli.get_int("shards", 2));
  server_cfg.queue_capacity = static_cast<std::size_t>(cli.get_int("queue-capacity", 4096));
  server_cfg.max_batch = static_cast<std::size_t>(cli.get_int("max-batch", 64));
  server_cfg.coalesce_wait_us = static_cast<std::uint32_t>(cli.get_int("coalesce-us", 0));
  server_cfg.snapshot_poll = cli_ms(cli, "snapshot-poll-ms", 25);

  serve::PolicyServer server(agent.actor(), server_cfg);
  const std::string snapshot_dir = cli.get("snapshot-dir", "");
  if (!snapshot_dir.empty()) {
    server.watch_snapshots(snapshot_dir);
    std::printf("watching %s for policy generations (poll %lld ms)\n", snapshot_dir.c_str(),
                static_cast<long long>(server_cfg.snapshot_poll.count()));
  }
  server.start();

  serve::LoadGenConfig load_cfg;
  load_cfg.tenants = static_cast<std::size_t>(cli.get_int("tenants", 8));
  load_cfg.requests_per_tenant = static_cast<std::size_t>(cli.get_int("requests", 5000));
  load_cfg.window = static_cast<std::size_t>(cli.get_int("window", 32));
  load_cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  std::printf("serving on %zu shards (state dim %zu, %d actions); %zu tenants x %zu requests\n",
              server.shard_count(), server.state_dim(), server.action_count(), load_cfg.tenants,
              load_cfg.requests_per_tenant);
  std::fflush(stdout);

  const serve::LoadGenReport r = serve::run_load(server, load_cfg);
  server.stop();

  util::TablePrinter table({"metric", "value"});
  table.row({"decisions", std::to_string(r.decisions)});
  table.row({"decisions/sec", util::TablePrinter::num(r.decisions_per_sec, 0)});
  table.row({"latency p50 (us)", util::TablePrinter::num(r.p50_us, 2)});
  table.row({"latency p95 (us)", util::TablePrinter::num(r.p95_us, 2)});
  table.row({"latency p99 (us)", util::TablePrinter::num(r.p99_us, 2)});
  table.row({"mean batch", util::TablePrinter::num(r.mean_batch, 2)});
  table.row({"backpressure retries", std::to_string(r.retries)});
  table.row({"hot swaps", std::to_string(server.swap_count())});
  table.row({"swap errors", std::to_string(server.swap_errors())});
  table.row({"model epoch", std::to_string(server.model_epoch())});
  table.print();

  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\"schema\": \"pfrl-serve/1\", \"decisions\": %llu, "
                "\"decisions_per_sec\": %.1f, \"p50_us\": %.3f, \"p95_us\": %.3f, "
                "\"p99_us\": %.3f, \"mean_batch\": %.2f, \"retries\": %llu, "
                "\"batches\": %llu, \"swaps\": %llu, \"swap_errors\": %llu, "
                "\"model_epoch\": %llu, \"shards\": %zu, \"tenants\": %zu, "
                "\"wall_seconds\": %.3f}",
                static_cast<unsigned long long>(r.decisions), r.decisions_per_sec, r.p50_us,
                r.p95_us, r.p99_us, r.mean_batch, static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.batches),
                static_cast<unsigned long long>(server.swap_count()),
                static_cast<unsigned long long>(server.swap_errors()),
                static_cast<unsigned long long>(server.model_epoch()), server.shard_count(),
                load_cfg.tenants, r.wall_seconds);
  write_json_file(cli.get("summary-out", ""), json);
  std::printf("%s\n", json);
  return r.decisions > 0 ? 0 : 1;
}

int cmd_evaluate(const util::Cli& cli) {
  const std::string checkpoint = cli.get("checkpoint", "");
  if (checkpoint.empty()) return usage();
  core::Federation federation(presets_for(cli), federation_config(cli));
  core::load_federation(federation.trainer(), checkpoint);
  std::printf("restored federation from %s\n", checkpoint.c_str());
  print_eval("held-out test splits:", federation, federation.evaluate_on_test_splits());
  if (cli.has("hybrid")) {
    const double keep = cli.get_double("hybrid", 0.2);
    print_eval("hybrid workloads:", federation, federation.evaluate_on_hybrid(keep));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::Cli cli(argc - 1, argv + 1);
  if (::pipe(g_signal_pipe) != 0) g_signal_pipe[0] = g_signal_pipe[1] = -1;
  g_signal_pipe_wr.store(g_signal_pipe[1], std::memory_order_relaxed);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  try {
    const ObsScope obs_scope(cli);
    if (command == "datasets") return cmd_datasets();
    if (command == "trace") return cmd_trace(cli);
    if (command == "inspect") return cmd_inspect(cli);
    if (command == "train") return cmd_train(cli);
    if (command == "evaluate") return cmd_evaluate(cli);
    if (command == "serve") return cmd_serve(cli);
    if (command == "client") return cmd_client(cli);
    if (command == "serve-policy") return cmd_serve_policy(cli);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
