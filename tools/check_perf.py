#!/usr/bin/env python3
"""Compare fresh perf records against the checked-in baselines.

All files use the pfrl-perf/1 schema written by obs/perf_record.hpp
(bench/micro_primitives.cpp and bench/ext_serving_throughput.cpp dump one
per run). Pass --baseline/--fresh once per record pair; pairs are matched
positionally:

  tools/check_perf.py --baseline BENCH_micro_primitives.json \
                      --fresh build/BENCH_fresh.json \
                      --baseline BENCH_ext_serving_throughput.json \
                      --fresh build/BENCH_fresh_serving.json [--threshold 0.25]

Metrics are matched by name within a pair. Direction comes from the
metric's unit: rates (unit ending in "/s") regress when the fresh value
drops below baseline * (1 - threshold); durations in "ns"/"us" regress
when it exceeds baseline * (1 + threshold). Other units (counts, gauges,
coarse wall-clock totals) are reported but never gate — they describe the
workload, not its speed. Metrics present on only one side are reported
but never fail the check (benchmarks come and go across PRs).

Exit codes: 0 = no regression, 1 = at least one regression, 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys

LOWER_IS_BETTER_UNITS = {"ns", "us"}


def load_metrics(path: str) -> dict[str, tuple[float, str]]:
    """name -> (value, unit) for one pfrl-perf/1 record."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_perf: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    if record.get("schema") != "pfrl-perf/1":
        print(f"check_perf: {path}: unexpected schema {record.get('schema')!r}",
              file=sys.stderr)
        sys.exit(2)
    metrics: dict[str, tuple[float, str]] = {}
    for metric in record.get("metrics", []):
        name, value = metric.get("name"), metric.get("value")
        unit = metric.get("unit", "")
        if isinstance(name, str) and isinstance(value, (int, float)):
            metrics[name] = (float(value), unit if isinstance(unit, str) else "")
    if not metrics:
        print(f"check_perf: {path}: no metrics", file=sys.stderr)
        sys.exit(2)
    return metrics


def compare_pair(baseline_path: str, fresh_path: str, threshold: float) -> list[str]:
    """Prints the comparison table; returns the regressed metric lines."""
    baseline = load_metrics(baseline_path)
    fresh = load_metrics(fresh_path)
    print(f"\n{baseline_path} vs {fresh_path}:")

    regressions: list[str] = []
    width = max(len(n) for n in sorted(set(baseline) | set(fresh)))
    for name in sorted(set(baseline) | set(fresh)):
        if name not in baseline:
            print(f"  {name:<{width}}  (new metric, no baseline)")
            continue
        if name not in fresh:
            print(f"  {name:<{width}}  (missing from fresh run)")
            continue
        (base, unit), (now, _) = baseline[name], fresh[name]
        ratio = now / base if base > 0 else float("inf")
        if unit.endswith("/s"):
            regressed, direction = now < base * (1.0 - threshold), "rate"
        elif unit in LOWER_IS_BETTER_UNITS:
            regressed, direction = now > base * (1.0 + threshold), "time"
        else:
            regressed, direction = False, "info"
        marker = "  << REGRESSION" if regressed else ""
        print(f"  {name:<{width}}  {base:>14.1f} -> {now:>14.1f} {unit or '-':<12}"
              f"({ratio:5.2f}x, {direction}){marker}")
        if regressed:
            regressions.append(f"{name}: {base:.1f} -> {now:.1f} {unit} ({ratio:.2f}x)")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", action="append", required=True,
                        help="checked-in perf record (repeatable)")
    parser.add_argument("--fresh", action="append", required=True,
                        help="freshly generated perf record (paired with --baseline)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative change (0.25 = 25%%)")
    args = parser.parse_args()
    if len(args.baseline) != len(args.fresh):
        print("check_perf: --baseline and --fresh must be paired", file=sys.stderr)
        return 2

    regressions: list[str] = []
    for baseline_path, fresh_path in zip(args.baseline, args.fresh):
        regressions += compare_pair(baseline_path, fresh_path, args.threshold)

    if regressions:
        print(f"\ncheck_perf: {len(regressions)} metric(s) regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\ncheck_perf: OK ({args.threshold:.0%} threshold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
